"""repro: reproduction of "Optimal DNN Primitive Selection with PBQP" (Anderson & Gregg, CGO 2018).

The package is organised by subsystem:

* :mod:`repro.layouts` — data layouts, layout tensors and the DT graph;
* :mod:`repro.graph` — the DNN graph IR (layers, scenarios, networks);
* :mod:`repro.models` — AlexNet, VGG and GoogLeNet builders;
* :mod:`repro.primitives` — the library of >70 convolution primitives;
* :mod:`repro.pbqp` — the PBQP solver;
* :mod:`repro.cost` — platform models, cost providers and the persistent
  cost-table store;
* :mod:`repro.core` — the paper's contribution: PBQP-based primitive selection
  with data layout transformations, plus the baseline strategies;
* :mod:`repro.runtime` — functional execution of selected network plans;
* :mod:`repro.service` — the HTTP planning daemon (``repro serve``) and its
  stdlib client;
* :mod:`repro.experiments` — harnesses regenerating every figure and table.

Quickstart (see README.md for the full walkthrough)
---------------------------------------------------
>>> from repro import Session
>>> session = Session(cache_dir="repro-cache")          # doctest: +SKIP
>>> plan = session.plan("alexnet", "intel-haswell")     # doctest: +SKIP
>>> report = plan.execute()                             # doctest: +SKIP
>>> comparison = session.compare("alexnet", "intel-haswell")  # doctest: +SKIP

The session owns the full pipeline: cost tables come from a pluggable
:class:`~repro.cost.provider.CostProvider` (analytical platform model, host
profiler, or a persistent disk-backed :class:`~repro.cost.store.CostStore`),
strategies resolve through the registry in :mod:`repro.core.strategies`, and
:meth:`~repro.api.Session.run` executes the selected plan with per-layer
timing.  The PR-1 :class:`~repro.api.Engine` facade and the original one-shot
:func:`repro.core.select_primitives` remain available.
"""

__version__ = "1.6.0"

from repro.graph import ConvScenario, Network
from repro.models import build_model
from repro.layouts import Layout, LayoutTensor, DTGraph

__all__ = [
    "__version__",
    "ConvScenario",
    "Network",
    "build_model",
    "Layout",
    "LayoutTensor",
    "DTGraph",
    "Session",
    "Engine",
    "Plan",
    "ExecutionReport",
    "ComparisonReport",
    "SelectionRequest",
    "SelectionResult",
    "CostProvider",
    "AnalyticalCostProvider",
    "ProfiledCostProvider",
    "CostModelProvider",
    "CostStore",
    "STRATEGIES",
    "Strategy",
    "register_strategy",
    "select_primitives",
    "PLATFORMS",
    "default_primitive_library",
    "PlannerApp",
    "PlannerClient",
]

#: Names resolved lazily from repro.api (avoids import cycles at package load).
_API_NAMES = (
    "Session",
    "Engine",
    "Plan",
    "ExecutionReport",
    "ComparisonReport",
    "SelectionRequest",
    "SelectionResult",
)
_COST_NAMES = (
    "CostProvider",
    "AnalyticalCostProvider",
    "ProfiledCostProvider",
    "CostModelProvider",
    "CostStore",
    "PLATFORMS",
)


def __getattr__(name):
    """Lazily expose the higher-level API to avoid import cycles at package load."""
    if name in _API_NAMES:
        import repro.api

        return getattr(repro.api, name)
    if name in _COST_NAMES:
        import repro.cost

        return getattr(repro.cost, name)
    if name in ("STRATEGIES", "Strategy", "register_strategy", "get_strategy"):
        import repro.core.strategies

        return getattr(repro.core.strategies, name)
    if name == "select_primitives":
        from repro.core import select_primitives

        return select_primitives
    if name == "default_primitive_library":
        from repro.primitives import default_primitive_library

        return default_primitive_library
    if name in ("PlannerApp", "PlannerClient"):
        import repro.service

        return getattr(repro.service, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
