"""repro: reproduction of "Optimal DNN Primitive Selection with PBQP" (Anderson & Gregg, CGO 2018).

The package is organised by subsystem:

* :mod:`repro.layouts` — data layouts, layout tensors and the DT graph;
* :mod:`repro.graph` — the DNN graph IR (layers, scenarios, networks);
* :mod:`repro.models` — AlexNet, VGG and GoogLeNet builders;
* :mod:`repro.primitives` — the library of >70 convolution primitives;
* :mod:`repro.pbqp` — the PBQP solver;
* :mod:`repro.cost` — platform models, analytical cost model and profiler;
* :mod:`repro.core` — the paper's contribution: PBQP-based primitive selection
  with data layout transformations, plus the baseline strategies;
* :mod:`repro.runtime` — functional execution of selected network plans;
* :mod:`repro.experiments` — harnesses regenerating every figure and table.

Quickstart (see README.md for the full walkthrough)
---------------------------------------------------
>>> from repro import Engine
>>> engine = Engine()
>>> result = engine.select("alexnet", "intel-haswell")  # doctest: +SKIP
>>> rows = engine.compare("alexnet", "intel-haswell")   # doctest: +SKIP

The engine resolves strategies through the registry in
:mod:`repro.core.strategies` and memoizes profiled cost tables, so repeated
selections on the same (network, platform, threads) key skip re-profiling.
The original one-shot entry point :func:`repro.core.select_primitives` remains
available.
"""

__version__ = "1.1.0"

from repro.graph import ConvScenario, Network
from repro.models import build_model
from repro.layouts import Layout, LayoutTensor, DTGraph

__all__ = [
    "__version__",
    "ConvScenario",
    "Network",
    "build_model",
    "Layout",
    "LayoutTensor",
    "DTGraph",
    "Engine",
    "SelectionRequest",
    "SelectionResult",
    "STRATEGIES",
    "Strategy",
    "register_strategy",
    "select_primitives",
    "PLATFORMS",
    "default_primitive_library",
]


def __getattr__(name):
    """Lazily expose the higher-level API to avoid import cycles at package load."""
    if name in ("Engine", "SelectionRequest", "SelectionResult"):
        import repro.api

        return getattr(repro.api, name)
    if name in ("STRATEGIES", "Strategy", "register_strategy", "get_strategy"):
        import repro.core.strategies

        return getattr(repro.core.strategies, name)
    if name == "select_primitives":
        from repro.core import select_primitives

        return select_primitives
    if name == "PLATFORMS":
        from repro.cost import PLATFORMS

        return PLATFORMS
    if name == "default_primitive_library":
        from repro.primitives import default_primitive_library

        return default_primitive_library
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
