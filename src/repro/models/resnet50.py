"""ResNet-50 (He et al., 2016): the bottleneck-block residual model of the zoo.

Where ResNet-18's basic block stacks two 3x3 convolutions, the bottleneck
block sandwiches a 3x3 between two 1x1 convolutions — a 1x1 *reduce* into a
narrow working width, the 3x3 proper, and a 1x1 *expand* back to four times
the working width.  This mixes kernel sizes inside every residual join: the
1x1 layers favour the GEMM-style families while the 3x3 can profit from
Winograd, so the PBQP solve has to trade per-layer wins against the layout
consistency the eltwise-add demands — at 16 bottlenecks, far more joins than
ResNet-18 offers.

The stride-2 reduction sits on the 3x3 convolution (the widely deployed
"v1.5" placement) rather than the leading 1x1 of the original publication.
Batch normalization is folded into the preceding convolution, as everywhere
in this zoo.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.graph.layer import (
    ConvLayer,
    EltwiseAddLayer,
    FlattenLayer,
    FullyConnectedLayer,
    InputLayer,
    PoolLayer,
    PoolMode,
    ReLULayer,
    SoftmaxLayer,
)
from repro.graph.network import Network

#: Output width of a bottleneck block relative to its 3x3 working width.
BOTTLENECK_EXPANSION = 4

#: (stage name, working-width multiplier, blocks, first-block stride) per stage.
RESNET50_STAGES: List[Tuple[str, int, int, int]] = [
    ("conv2", 1, 3, 1),
    ("conv3", 2, 4, 2),
    ("conv4", 4, 6, 2),
    ("conv5", 8, 3, 2),
]


def _add_bottleneck_block(
    net: Network, name: str, source: str, channels: int, stride: int, project: bool
) -> str:
    """Add one bottleneck block; returns the name of its output layer."""
    out_channels = channels * BOTTLENECK_EXPANSION
    net.add_layer(
        ConvLayer(f"{name}/conv1", out_channels=channels, kernel=1, stride=1), [source]
    )
    net.add_layer(ReLULayer(f"{name}/relu1"), [f"{name}/conv1"])
    net.add_layer(
        ConvLayer(f"{name}/conv2", out_channels=channels, kernel=3, stride=stride, padding=1),
        [f"{name}/relu1"],
    )
    net.add_layer(ReLULayer(f"{name}/relu2"), [f"{name}/conv2"])
    net.add_layer(
        ConvLayer(f"{name}/conv3", out_channels=out_channels, kernel=1, stride=1),
        [f"{name}/relu2"],
    )
    if project:
        # Projection shortcut: the first block of every stage changes the
        # channel count (and usually the stride), so the identity path needs
        # a 1x1 stride-matched convolution to align shapes.
        net.add_layer(
            ConvLayer(f"{name}/downsample", out_channels=out_channels, kernel=1, stride=stride),
            [source],
        )
        shortcut = f"{name}/downsample"
    else:
        shortcut = source
    net.add_layer(EltwiseAddLayer(f"{name}/add"), [f"{name}/conv3", shortcut])
    net.add_layer(ReLULayer(f"{name}/relu3"), [f"{name}/add"])
    return f"{name}/relu3"


def build_resnet50(input_size: int = 224, base_width: int = 64) -> Network:
    """Build the ResNet-50 inference graph.

    Parameters
    ----------
    input_size:
        Spatial size of the (square) RGB input; must be a multiple of 32 so
        the five stride-2 reductions land on integer feature-map sizes.
    base_width:
        Working width of the first stage's bottlenecks (64 in the
        publication).  Smaller values give faithfully shaped but cheap
        networks for functional tests.
    """
    if input_size % 32 != 0:
        raise ValueError(f"input_size must be a multiple of 32, got {input_size}")
    if base_width < 1:
        raise ValueError(f"base_width must be >= 1, got {base_width}")
    net = Network("resnet50")
    net.add_layer(InputLayer("data", shape=(3, input_size, input_size)))

    net.add_layer(
        ConvLayer("conv1", out_channels=base_width, kernel=7, stride=2, padding=3),
        ["data"],
    )
    net.add_layer(ReLULayer("conv1_relu"), ["conv1"])
    net.add_layer(
        PoolLayer("pool1", kernel=3, stride=2, padding=1, mode=PoolMode.MAX, ceil_mode=False),
        ["conv1_relu"],
    )

    source = "pool1"
    for stage_name, multiplier, blocks, first_stride in RESNET50_STAGES:
        channels = base_width * multiplier
        for index in range(1, blocks + 1):
            stride = first_stride if index == 1 else 1
            source = _add_bottleneck_block(
                net, f"{stage_name}_{index}", source, channels, stride, project=index == 1
            )

    final_size = input_size // 32
    net.add_layer(
        PoolLayer("pool5", kernel=final_size, stride=1, mode=PoolMode.AVERAGE), [source]
    )
    net.add_layer(FlattenLayer("flatten"), ["pool5"])
    net.add_layer(FullyConnectedLayer("fc", out_features=1000), ["flatten"])
    net.add_layer(SoftmaxLayer("prob"), ["fc"])

    net.validate()
    return net
