"""The VGG network family (Simonyan & Zisserman, 2014).

The paper benchmarks VGG-B, VGG-C and VGG-E on the Intel platform (they are
too large for the embedded ARM board).  Because only configurations D and E
have published Caffe models, the paper reconstructs the others by hand
"exactly following" the publication; we do the same here for all five
configurations A-E (Table 1 of the VGG paper), input 3 x 224 x 224.

Configuration C replaces the third convolution of the last three blocks with
a 1x1 convolution; all other convolutions are 3x3 with padding 1.
"""

from __future__ import annotations

from typing import Dict, List, Tuple, Union

from repro.graph.layer import (
    ConvLayer,
    DropoutLayer,
    FlattenLayer,
    FullyConnectedLayer,
    InputLayer,
    PoolLayer,
    PoolMode,
    ReLULayer,
    SoftmaxLayer,
)
from repro.graph.network import Network

#: A block entry is either the string "M" (2x2 stride-2 max pooling) or a
#: (out_channels, kernel) pair describing one convolution + ReLU.
BlockEntry = Union[str, Tuple[int, int]]

#: VGG configurations from Table 1 of Simonyan & Zisserman.  Kernel size is
#: 3 for all layers except the 1x1 convolutions distinguishing configuration C.
VGG_CONFIGS: Dict[str, List[BlockEntry]] = {
    "A": [
        (64, 3), "M",
        (128, 3), "M",
        (256, 3), (256, 3), "M",
        (512, 3), (512, 3), "M",
        (512, 3), (512, 3), "M",
    ],
    "B": [
        (64, 3), (64, 3), "M",
        (128, 3), (128, 3), "M",
        (256, 3), (256, 3), "M",
        (512, 3), (512, 3), "M",
        (512, 3), (512, 3), "M",
    ],
    "C": [
        (64, 3), (64, 3), "M",
        (128, 3), (128, 3), "M",
        (256, 3), (256, 3), (256, 1), "M",
        (512, 3), (512, 3), (512, 1), "M",
        (512, 3), (512, 3), (512, 1), "M",
    ],
    "D": [
        (64, 3), (64, 3), "M",
        (128, 3), (128, 3), "M",
        (256, 3), (256, 3), (256, 3), "M",
        (512, 3), (512, 3), (512, 3), "M",
        (512, 3), (512, 3), (512, 3), "M",
    ],
    "E": [
        (64, 3), (64, 3), "M",
        (128, 3), (128, 3), "M",
        (256, 3), (256, 3), (256, 3), (256, 3), "M",
        (512, 3), (512, 3), (512, 3), (512, 3), "M",
        (512, 3), (512, 3), (512, 3), (512, 3), "M",
    ],
}


def build_vgg(config: str = "D", input_size: int = 224) -> Network:
    """Build one of the VGG configurations (A, B, C, D or E)."""
    config = config.upper()
    if config not in VGG_CONFIGS:
        raise KeyError(f"unknown VGG configuration {config!r}; choose from {sorted(VGG_CONFIGS)}")

    net = Network(f"vgg-{config.lower()}")
    net.add_layer(InputLayer("data", shape=(3, input_size, input_size)))

    previous = "data"
    block = 1
    conv_in_block = 0
    for entry in VGG_CONFIGS[config]:
        if entry == "M":
            name = f"pool{block}"
            net.add_layer(
                PoolLayer(name, kernel=2, stride=2, mode=PoolMode.MAX, ceil_mode=False),
                [previous],
            )
            previous = name
            block += 1
            conv_in_block = 0
            continue
        out_channels, kernel = entry
        conv_in_block += 1
        name = f"conv{block}_{conv_in_block}"
        padding = 1 if kernel == 3 else 0
        net.add_layer(
            ConvLayer(name, out_channels=out_channels, kernel=kernel, stride=1, padding=padding),
            [previous],
        )
        relu_name = f"relu{block}_{conv_in_block}"
        net.add_layer(ReLULayer(relu_name), [name])
        previous = relu_name

    net.add_layer(FlattenLayer("flatten"), [previous])
    net.add_layer(FullyConnectedLayer("fc6", out_features=4096), ["flatten"])
    net.add_layer(ReLULayer("relu6"), ["fc6"])
    net.add_layer(DropoutLayer("drop6"), ["relu6"])
    net.add_layer(FullyConnectedLayer("fc7", out_features=4096), ["drop6"])
    net.add_layer(ReLULayer("relu7"), ["fc7"])
    net.add_layer(DropoutLayer("drop7"), ["relu7"])
    net.add_layer(FullyConnectedLayer("fc8", out_features=1000), ["drop7"])
    net.add_layer(SoftmaxLayer("prob"), ["fc8"])

    net.validate()
    return net
