"""Model zoo: the networks used in the paper's evaluation.

The paper evaluates AlexNet, the VGG family and GoogLeNet using the public
model definitions (BVLC Caffe Model Zoo / the original publications).  The
builders here reconstruct those graphs layer-by-layer from the publications,
which is sufficient for the reproduction because the selection formulation
consumes only layer shapes and connectivity.
"""

from repro.models.alexnet import build_alexnet
from repro.models.vgg import build_vgg, VGG_CONFIGS
from repro.models.googlenet import build_googlenet

#: Builders for every model used in the evaluation, keyed by the names the
#: paper's figures use.
MODEL_BUILDERS = {
    "alexnet": build_alexnet,
    "vgg-a": lambda: build_vgg("A"),
    "vgg-b": lambda: build_vgg("B"),
    "vgg-c": lambda: build_vgg("C"),
    "vgg-d": lambda: build_vgg("D"),
    "vgg-e": lambda: build_vgg("E"),
    "googlenet": build_googlenet,
}


def build_model(name: str):
    """Build a network from the zoo by its canonical lowercase name."""
    try:
        builder = MODEL_BUILDERS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; available models: {sorted(MODEL_BUILDERS)}"
        ) from None
    return builder()


__all__ = [
    "build_alexnet",
    "build_vgg",
    "build_googlenet",
    "build_model",
    "MODEL_BUILDERS",
    "VGG_CONFIGS",
]
