"""Model zoo: the paper's evaluation networks plus the post-paper extensions.

The paper evaluates AlexNet, the VGG family and GoogLeNet using the public
model definitions (BVLC Caffe Model Zoo / the original publications).  The
builders here reconstruct those graphs layer-by-layer from the publications,
which is sufficient for the reproduction because the selection formulation
consumes only layer shapes and connectivity.  Beyond the paper's three
families the zoo also carries ResNet-18 (residual joins: multi-input
eltwise-add DAGs) and MobileNet-v1 (depthwise-separable convolutions), which
exercise graph structures and primitive capability gaps the paper's networks
do not, plus their successors ResNet-50 (bottleneck blocks) and MobileNet-v2
(inverted residuals with linear bottlenecks).
"""

from repro.models.alexnet import build_alexnet
from repro.models.vgg import build_vgg, VGG_CONFIGS
from repro.models.googlenet import build_googlenet
from repro.models.mobilenet_v1 import build_mobilenet_v1
from repro.models.mobilenet_v2 import build_mobilenet_v2
from repro.models.resnet18 import build_resnet18
from repro.models.resnet50 import build_resnet50

#: Builders for every model of the zoo, keyed by canonical lowercase name;
#: the first seven are the networks of the paper's figures.
MODEL_BUILDERS = {
    "alexnet": build_alexnet,
    "vgg-a": lambda: build_vgg("A"),
    "vgg-b": lambda: build_vgg("B"),
    "vgg-c": lambda: build_vgg("C"),
    "vgg-d": lambda: build_vgg("D"),
    "vgg-e": lambda: build_vgg("E"),
    "googlenet": build_googlenet,
    "googlenet-aux": lambda: build_googlenet(aux_classifiers=True),
    "resnet18": build_resnet18,
    "resnet50": build_resnet50,
    "mobilenet_v1": build_mobilenet_v1,
    "mobilenet_v2": build_mobilenet_v2,
}


def build_model(name: str):
    """Build a network from the zoo by its canonical lowercase name."""
    try:
        builder = MODEL_BUILDERS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; available models: {sorted(MODEL_BUILDERS)}"
        ) from None
    return builder()


__all__ = [
    "build_alexnet",
    "build_vgg",
    "build_googlenet",
    "build_resnet18",
    "build_resnet50",
    "build_mobilenet_v1",
    "build_mobilenet_v2",
    "build_model",
    "MODEL_BUILDERS",
    "VGG_CONFIGS",
]
