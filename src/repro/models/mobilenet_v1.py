"""MobileNet-v1 (Howard et al., 2017): the depthwise-separable model of the zoo.

Every standard convolution after the stem is factored into a depthwise 3x3
convolution (``groups == C``: one filter per input feature map) followed by a
pointwise 1x1 convolution that mixes channels.  Depthwise scenarios are the
stress test of the primitive layer's capability model: the GEMM-based kn2 and
the FFT families decline them outright (their channel-reduction structure
degenerates), so the selector must work with the reduced candidate set and
the per-group overheads the cost model charges the transform-based families.

Batch normalization is folded into the preceding convolution, as everywhere
in this zoo.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.graph.layer import (
    ConvLayer,
    FlattenLayer,
    FullyConnectedLayer,
    InputLayer,
    PoolLayer,
    PoolMode,
    ReLULayer,
    SoftmaxLayer,
)
from repro.graph.network import Network

#: (pointwise out_channels, depthwise stride) of the 13 separable blocks
#: (Table 1 of the MobileNet paper).
MOBILENET_V1_BLOCKS: List[Tuple[int, int]] = [
    (64, 1),
    (128, 2),
    (128, 1),
    (256, 2),
    (256, 1),
    (512, 2),
    (512, 1),
    (512, 1),
    (512, 1),
    (512, 1),
    (512, 1),
    (1024, 2),
    (1024, 1),
]


def _scaled(channels: int, width_multiplier: float) -> int:
    """Apply the paper's width multiplier ``alpha`` to a channel count."""
    return max(int(channels * width_multiplier), 1)


def build_mobilenet_v1(input_size: int = 224, width_multiplier: float = 1.0) -> Network:
    """Build the MobileNet-v1 inference graph.

    Parameters
    ----------
    input_size:
        Spatial size of the (square) RGB input; must be a multiple of 32 so
        the five stride-2 reductions land on integer feature-map sizes.
    width_multiplier:
        The paper's ``alpha``: uniformly thins every layer's channel count
        (the publication evaluates 1.0, 0.75, 0.5 and 0.25).  Small values
        give faithfully shaped but cheap networks for functional tests.
    """
    if input_size % 32 != 0:
        raise ValueError(f"input_size must be a multiple of 32, got {input_size}")
    if width_multiplier <= 0:
        raise ValueError(f"width_multiplier must be > 0, got {width_multiplier}")
    net = Network("mobilenet_v1")
    net.add_layer(InputLayer("data", shape=(3, input_size, input_size)))

    channels = _scaled(32, width_multiplier)
    net.add_layer(
        ConvLayer("conv1", out_channels=channels, kernel=3, stride=2, padding=1), ["data"]
    )
    net.add_layer(ReLULayer("conv1_relu"), ["conv1"])

    source = "conv1_relu"
    for index, (out_channels, stride) in enumerate(MOBILENET_V1_BLOCKS, start=2):
        name = f"conv{index}"
        # Depthwise 3x3: one single-channel filter per input feature map.
        net.add_layer(
            ConvLayer(
                f"{name}/dw",
                out_channels=channels,
                kernel=3,
                stride=stride,
                padding=1,
                groups=channels,
            ),
            [source],
        )
        net.add_layer(ReLULayer(f"{name}/dw_relu"), [f"{name}/dw"])
        # Pointwise 1x1: mixes channels, sets the block's output width.
        channels = _scaled(out_channels, width_multiplier)
        net.add_layer(
            ConvLayer(f"{name}/sep", out_channels=channels, kernel=1, stride=1),
            [f"{name}/dw_relu"],
        )
        net.add_layer(ReLULayer(f"{name}/sep_relu"), [f"{name}/sep"])
        source = f"{name}/sep_relu"

    final_size = input_size // 32
    net.add_layer(
        PoolLayer("pool6", kernel=final_size, stride=1, mode=PoolMode.AVERAGE), [source]
    )
    net.add_layer(FlattenLayer("flatten"), ["pool6"])
    net.add_layer(FullyConnectedLayer("fc", out_features=1000), ["flatten"])
    net.add_layer(SoftmaxLayer("prob"), ["fc"])

    net.validate()
    return net
