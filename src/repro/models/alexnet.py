"""AlexNet (Krizhevsky et al., 2012) as published in the BVLC Caffe model zoo.

Five convolution layers — conv1 is the K=11, stride-4 layer the paper calls
out in Figure 4; conv2/conv4/conv5 are grouped convolutions (groups=2) exactly
as in the public ``bvlc_alexnet`` deploy prototxt (input 3 x 227 x 227).
"""

from __future__ import annotations

from repro.graph.layer import (
    ConvLayer,
    DropoutLayer,
    FlattenLayer,
    FullyConnectedLayer,
    InputLayer,
    LRNLayer,
    PoolLayer,
    PoolMode,
    ReLULayer,
    SoftmaxLayer,
)
from repro.graph.network import Network


def build_alexnet(input_size: int = 227) -> Network:
    """Build the AlexNet inference graph.

    Parameters
    ----------
    input_size:
        Spatial size of the (square) RGB input image.  The public Caffe model
        uses 227; 224 is also seen in the literature and is accepted here.
    """
    net = Network("alexnet")
    net.add_layer(InputLayer("data", shape=(3, input_size, input_size)))

    net.add_layer(
        ConvLayer("conv1", out_channels=96, kernel=11, stride=4, padding=0), ["data"]
    )
    net.add_layer(ReLULayer("relu1"), ["conv1"])
    net.add_layer(LRNLayer("norm1", local_size=5), ["relu1"])
    net.add_layer(
        PoolLayer("pool1", kernel=3, stride=2, mode=PoolMode.MAX), ["norm1"]
    )

    net.add_layer(
        ConvLayer("conv2", out_channels=256, kernel=5, stride=1, padding=2, groups=2),
        ["pool1"],
    )
    net.add_layer(ReLULayer("relu2"), ["conv2"])
    net.add_layer(LRNLayer("norm2", local_size=5), ["relu2"])
    net.add_layer(
        PoolLayer("pool2", kernel=3, stride=2, mode=PoolMode.MAX), ["norm2"]
    )

    net.add_layer(
        ConvLayer("conv3", out_channels=384, kernel=3, stride=1, padding=1), ["pool2"]
    )
    net.add_layer(ReLULayer("relu3"), ["conv3"])

    net.add_layer(
        ConvLayer("conv4", out_channels=384, kernel=3, stride=1, padding=1, groups=2),
        ["relu3"],
    )
    net.add_layer(ReLULayer("relu4"), ["conv4"])

    net.add_layer(
        ConvLayer("conv5", out_channels=256, kernel=3, stride=1, padding=1, groups=2),
        ["relu4"],
    )
    net.add_layer(ReLULayer("relu5"), ["conv5"])
    net.add_layer(
        PoolLayer("pool5", kernel=3, stride=2, mode=PoolMode.MAX), ["relu5"]
    )

    net.add_layer(FlattenLayer("flatten"), ["pool5"])
    net.add_layer(FullyConnectedLayer("fc6", out_features=4096), ["flatten"])
    net.add_layer(ReLULayer("relu6"), ["fc6"])
    net.add_layer(DropoutLayer("drop6"), ["relu6"])
    net.add_layer(FullyConnectedLayer("fc7", out_features=4096), ["drop6"])
    net.add_layer(ReLULayer("relu7"), ["fc7"])
    net.add_layer(DropoutLayer("drop7"), ["relu7"])
    net.add_layer(FullyConnectedLayer("fc8", out_features=1000), ["drop7"])
    net.add_layer(SoftmaxLayer("prob"), ["fc8"])

    net.validate()
    return net
