"""MobileNet-v2 (Sandler et al., 2018): the inverted-residual model of the zoo.

The inverted residual turns both earlier extensions inside out: a 1x1
*expansion* convolution widens the representation by a factor ``t``, a
depthwise 3x3 filters it per-channel, and a 1x1 *projection* narrows it back
to a linear bottleneck — no activation after the projection, and a residual
join across the whole block whenever the stride is 1 and the widths match.
For the selector this combines MobileNet-v1's depthwise capability gaps with
ResNet's layout-consistency pressure at the joins, with the twist that the
*wide* interior (where compute lives) and the *narrow* bottleneck (where the
residual lives) pull layout decisions in different directions.

The publication's ReLU6 is modelled as plain ReLU (selection consumes shapes
and connectivity only) and batch normalization is folded into the preceding
convolution, as everywhere in this zoo.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.graph.layer import (
    ConvLayer,
    EltwiseAddLayer,
    FlattenLayer,
    FullyConnectedLayer,
    InputLayer,
    PoolLayer,
    PoolMode,
    ReLULayer,
    SoftmaxLayer,
)
from repro.graph.network import Network

#: (expansion factor t, out_channels c, repeats n, first-block stride s) per
#: stage (Table 2 of the MobileNet-v2 paper).
MOBILENET_V2_STAGES: List[Tuple[int, int, int, int]] = [
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
]


def _scaled(channels: int, width_multiplier: float) -> int:
    """Apply the paper's width multiplier ``alpha`` to a channel count."""
    return max(int(channels * width_multiplier), 1)


def _add_inverted_residual(
    net: Network, name: str, source: str, in_channels: int, out_channels: int,
    expansion: int, stride: int,
) -> str:
    """Add one inverted-residual block; returns the name of its output layer."""
    expanded = in_channels * expansion
    if expansion != 1:
        net.add_layer(
            ConvLayer(f"{name}/expand", out_channels=expanded, kernel=1, stride=1), [source]
        )
        net.add_layer(ReLULayer(f"{name}/expand_relu"), [f"{name}/expand"])
        interior = f"{name}/expand_relu"
    else:
        # The first stage keeps t=1: no expansion layer, the depthwise
        # filters the input directly.
        interior = source
    net.add_layer(
        ConvLayer(
            f"{name}/dw",
            out_channels=expanded,
            kernel=3,
            stride=stride,
            padding=1,
            groups=expanded,
        ),
        [interior],
    )
    net.add_layer(ReLULayer(f"{name}/dw_relu"), [f"{name}/dw"])
    # Linear bottleneck: the projection carries no activation.
    net.add_layer(
        ConvLayer(f"{name}/project", out_channels=out_channels, kernel=1, stride=1),
        [f"{name}/dw_relu"],
    )
    if stride == 1 and in_channels == out_channels:
        net.add_layer(EltwiseAddLayer(f"{name}/add"), [f"{name}/project", source])
        return f"{name}/add"
    return f"{name}/project"


def build_mobilenet_v2(input_size: int = 224, width_multiplier: float = 1.0) -> Network:
    """Build the MobileNet-v2 inference graph.

    Parameters
    ----------
    input_size:
        Spatial size of the (square) RGB input; must be a multiple of 32 so
        the five stride-2 reductions land on integer feature-map sizes.
    width_multiplier:
        The paper's ``alpha``: uniformly thins every layer's channel count.
        Small values give faithfully shaped but cheap networks for
        functional tests.
    """
    if input_size % 32 != 0:
        raise ValueError(f"input_size must be a multiple of 32, got {input_size}")
    if width_multiplier <= 0:
        raise ValueError(f"width_multiplier must be > 0, got {width_multiplier}")
    net = Network("mobilenet_v2")
    net.add_layer(InputLayer("data", shape=(3, input_size, input_size)))

    channels = _scaled(32, width_multiplier)
    net.add_layer(
        ConvLayer("conv1", out_channels=channels, kernel=3, stride=2, padding=1), ["data"]
    )
    net.add_layer(ReLULayer("conv1_relu"), ["conv1"])

    source = "conv1_relu"
    block = 1
    for expansion, out_channels, repeats, first_stride in MOBILENET_V2_STAGES:
        scaled_out = _scaled(out_channels, width_multiplier)
        for index in range(repeats):
            stride = first_stride if index == 0 else 1
            source = _add_inverted_residual(
                net, f"block{block}", source, channels, scaled_out, expansion, stride
            )
            channels = scaled_out
            block += 1

    # The final 1x1 expansion before the classifier (1280 at alpha = 1; the
    # publication never thins it below 1280, but scaled test builds do).
    head = _scaled(1280, width_multiplier)
    net.add_layer(ConvLayer("conv_head", out_channels=head, kernel=1, stride=1), [source])
    net.add_layer(ReLULayer("conv_head_relu"), ["conv_head"])

    final_size = input_size // 32
    net.add_layer(
        PoolLayer("pool8", kernel=final_size, stride=1, mode=PoolMode.AVERAGE),
        ["conv_head_relu"],
    )
    net.add_layer(FlattenLayer("flatten"), ["pool8"])
    net.add_layer(FullyConnectedLayer("fc", out_features=1000), ["flatten"])
    net.add_layer(SoftmaxLayer("prob"), ["fc"])

    net.validate()
    return net
