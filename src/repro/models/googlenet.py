"""GoogLeNet (Szegedy et al., 2015) with its nine inception modules.

Figure 3 of the primitive-selection paper shows the inception module as the
motivating example of a DAG-shaped subgraph where per-edge layout decisions
interact: the module has four parallel branches whose outputs are channel-
concatenated.  This builder reconstructs the full 22-layer GoogLeNet
inference graph from Table 1 of the GoogLeNet paper, input 3 x 224 x 224.
By default the two auxiliary classifiers are omitted (they are not executed
at inference time); ``aux_classifiers=True`` (the zoo's ``googlenet-aux``)
attaches them after ``inception_4a`` and ``inception_4d``, producing a
three-output network that exercises multi-head execution and reporting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.graph.layer import (
    ConcatLayer,
    ConvLayer,
    DropoutLayer,
    FlattenLayer,
    FullyConnectedLayer,
    InputLayer,
    LRNLayer,
    PoolLayer,
    PoolMode,
    ReLULayer,
    SoftmaxLayer,
)
from repro.graph.network import Network


@dataclass(frozen=True)
class InceptionSpec:
    """Channel counts of one inception module (Table 1 of the GoogLeNet paper)."""

    name: str
    one: int          # 1x1 branch
    three_reduce: int  # 1x1 reduction ahead of the 3x3 branch
    three: int         # 3x3 branch
    five_reduce: int   # 1x1 reduction ahead of the 5x5 branch
    five: int          # 5x5 branch
    pool_proj: int     # 1x1 projection after the 3x3 max-pool branch


#: The nine inception modules of GoogLeNet in execution order.
INCEPTION_SPECS: List[InceptionSpec] = [
    InceptionSpec("inception_3a", 64, 96, 128, 16, 32, 32),
    InceptionSpec("inception_3b", 128, 128, 192, 32, 96, 64),
    InceptionSpec("inception_4a", 192, 96, 208, 16, 48, 64),
    InceptionSpec("inception_4b", 160, 112, 224, 24, 64, 64),
    InceptionSpec("inception_4c", 128, 128, 256, 24, 64, 64),
    InceptionSpec("inception_4d", 112, 144, 288, 32, 64, 64),
    InceptionSpec("inception_4e", 256, 160, 320, 32, 128, 128),
    InceptionSpec("inception_5a", 256, 160, 320, 32, 128, 128),
    InceptionSpec("inception_5b", 384, 192, 384, 48, 128, 128),
]


def _add_conv_relu(
    net: Network, name: str, source: str, out_channels: int, kernel: int, padding: int
) -> str:
    """Add a convolution + ReLU pair and return the name of the ReLU output."""
    net.add_layer(
        ConvLayer(name, out_channels=out_channels, kernel=kernel, stride=1, padding=padding),
        [source],
    )
    relu_name = f"{name}_relu"
    net.add_layer(ReLULayer(relu_name), [name])
    return relu_name


def _add_inception(net: Network, spec: InceptionSpec, source: str) -> str:
    """Add one inception module fed by ``source``; return the concat output name."""
    prefix = spec.name

    branch1 = _add_conv_relu(net, f"{prefix}/1x1", source, spec.one, kernel=1, padding=0)

    reduce3 = _add_conv_relu(
        net, f"{prefix}/3x3_reduce", source, spec.three_reduce, kernel=1, padding=0
    )
    branch3 = _add_conv_relu(net, f"{prefix}/3x3", reduce3, spec.three, kernel=3, padding=1)

    reduce5 = _add_conv_relu(
        net, f"{prefix}/5x5_reduce", source, spec.five_reduce, kernel=1, padding=0
    )
    branch5 = _add_conv_relu(net, f"{prefix}/5x5", reduce5, spec.five, kernel=5, padding=2)

    pool_name = f"{prefix}/pool"
    net.add_layer(
        PoolLayer(pool_name, kernel=3, stride=1, padding=1, mode=PoolMode.MAX), [source]
    )
    branch_pool = _add_conv_relu(
        net, f"{prefix}/pool_proj", pool_name, spec.pool_proj, kernel=1, padding=0
    )

    concat_name = f"{prefix}/output"
    net.add_layer(ConcatLayer(concat_name), [branch1, branch3, branch5, branch_pool])
    return concat_name


def _add_aux_classifier(net: Network, name: str, source: str) -> None:
    """Attach one auxiliary classifier head (section 5 of the GoogLeNet paper).

    Average-pool 5x5/3, a 1x1 convolution to 128 channels, a 1024-unit FC
    layer, dropout and a 1000-way softmax — a full extra output head whose
    softmax is never consumed by any other layer.
    """
    pool_name = f"{name}/ave_pool"
    net.add_layer(
        PoolLayer(pool_name, kernel=5, stride=3, padding=0, mode=PoolMode.AVERAGE),
        [source],
    )
    conv = _add_conv_relu(net, f"{name}/conv", pool_name, 128, kernel=1, padding=0)
    net.add_layer(FlattenLayer(f"{name}/flatten"), [conv])
    net.add_layer(
        FullyConnectedLayer(f"{name}/fc", out_features=1024), [f"{name}/flatten"]
    )
    net.add_layer(ReLULayer(f"{name}/relu_fc"), [f"{name}/fc"])
    net.add_layer(DropoutLayer(f"{name}/drop_fc", ratio=0.7), [f"{name}/relu_fc"])
    net.add_layer(
        FullyConnectedLayer(f"{name}/classifier", out_features=1000),
        [f"{name}/drop_fc"],
    )
    net.add_layer(SoftmaxLayer(f"{name}/prob"), [f"{name}/classifier"])


#: Where the two auxiliary classifiers attach (GoogLeNet paper, section 5).
_AUX_ATTACH_POINTS = {"inception_4a": "loss1", "inception_4d": "loss2"}


def build_googlenet(input_size: int = 224, aux_classifiers: bool = False) -> Network:
    """Build the GoogLeNet inference graph.

    With ``aux_classifiers=True`` the two training-time auxiliary heads are
    attached and the network has three output layers (``loss1/prob``,
    ``loss2/prob`` and the primary ``prob``).
    """
    net = Network("googlenet-aux" if aux_classifiers else "googlenet")
    net.add_layer(InputLayer("data", shape=(3, input_size, input_size)))

    net.add_layer(
        ConvLayer("conv1/7x7_s2", out_channels=64, kernel=7, stride=2, padding=3), ["data"]
    )
    net.add_layer(ReLULayer("conv1/relu"), ["conv1/7x7_s2"])
    net.add_layer(
        PoolLayer("pool1/3x3_s2", kernel=3, stride=2, mode=PoolMode.MAX), ["conv1/relu"]
    )
    net.add_layer(LRNLayer("pool1/norm1", local_size=5), ["pool1/3x3_s2"])

    net.add_layer(
        ConvLayer("conv2/3x3_reduce", out_channels=64, kernel=1, stride=1, padding=0),
        ["pool1/norm1"],
    )
    net.add_layer(ReLULayer("conv2/relu_reduce"), ["conv2/3x3_reduce"])
    net.add_layer(
        ConvLayer("conv2/3x3", out_channels=192, kernel=3, stride=1, padding=1),
        ["conv2/relu_reduce"],
    )
    net.add_layer(ReLULayer("conv2/relu"), ["conv2/3x3"])
    net.add_layer(LRNLayer("conv2/norm2", local_size=5), ["conv2/relu"])
    net.add_layer(
        PoolLayer("pool2/3x3_s2", kernel=3, stride=2, mode=PoolMode.MAX), ["conv2/norm2"]
    )

    previous = "pool2/3x3_s2"
    for spec in INCEPTION_SPECS:
        previous = _add_inception(net, spec, previous)
        if aux_classifiers and spec.name in _AUX_ATTACH_POINTS:
            _add_aux_classifier(net, _AUX_ATTACH_POINTS[spec.name], previous)
        if spec.name == "inception_3b":
            net.add_layer(
                PoolLayer("pool3/3x3_s2", kernel=3, stride=2, mode=PoolMode.MAX), [previous]
            )
            previous = "pool3/3x3_s2"
        elif spec.name == "inception_4e":
            net.add_layer(
                PoolLayer("pool4/3x3_s2", kernel=3, stride=2, mode=PoolMode.MAX), [previous]
            )
            previous = "pool4/3x3_s2"

    net.add_layer(
        PoolLayer(
            "pool5/7x7_s1", kernel=7, stride=1, padding=0, mode=PoolMode.AVERAGE, ceil_mode=False
        ),
        [previous],
    )
    net.add_layer(DropoutLayer("pool5/drop", ratio=0.4), ["pool5/7x7_s1"])
    net.add_layer(FlattenLayer("flatten"), ["pool5/drop"])
    net.add_layer(FullyConnectedLayer("loss3/classifier", out_features=1000), ["flatten"])
    net.add_layer(SoftmaxLayer("prob"), ["loss3/classifier"])

    net.validate()
    return net
