"""ResNet-18 (He et al., 2016): the residual model of the zoo.

The residual connection is the structural novelty this builder adds to the
zoo: every basic block's input fans out to the convolution path and the
identity (or 1x1-projection) shortcut, and the two paths rejoin in an
:class:`~repro.graph.layer.EltwiseAddLayer`.  Like the inception module of
the primitive-selection paper's Figure 3, this makes per-edge layout
decisions interact — the PBQP formulation must keep both paths of every
block layout-consistent or pay for conversions at the join.

Batch normalization is folded into the preceding convolution (the standard
inference-time transformation), so the graph carries no separate BN nodes —
consistent with the zoo's other builders, which model inference graphs only.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.graph.layer import (
    ConvLayer,
    EltwiseAddLayer,
    FlattenLayer,
    FullyConnectedLayer,
    InputLayer,
    PoolLayer,
    PoolMode,
    ReLULayer,
    SoftmaxLayer,
)
from repro.graph.network import Network

#: (stage name, out_channels multiplier, blocks, first-block stride) per stage.
RESNET18_STAGES: List[Tuple[str, int, int, int]] = [
    ("conv2", 1, 2, 1),
    ("conv3", 2, 2, 2),
    ("conv4", 4, 2, 2),
    ("conv5", 8, 2, 2),
]


def _add_basic_block(
    net: Network, name: str, source: str, channels: int, stride: int
) -> str:
    """Add one residual basic block; returns the name of its output layer."""
    net.add_layer(
        ConvLayer(f"{name}/conv1", out_channels=channels, kernel=3, stride=stride, padding=1),
        [source],
    )
    net.add_layer(ReLULayer(f"{name}/relu1"), [f"{name}/conv1"])
    net.add_layer(
        ConvLayer(f"{name}/conv2", out_channels=channels, kernel=3, stride=1, padding=1),
        [f"{name}/relu1"],
    )
    if stride != 1:
        # Projection shortcut: a 1x1 stride-matched convolution aligns the
        # identity path's shape with the convolution path's.
        net.add_layer(
            ConvLayer(f"{name}/downsample", out_channels=channels, kernel=1, stride=stride),
            [source],
        )
        shortcut = f"{name}/downsample"
    else:
        shortcut = source
    net.add_layer(EltwiseAddLayer(f"{name}/add"), [f"{name}/conv2", shortcut])
    net.add_layer(ReLULayer(f"{name}/relu2"), [f"{name}/add"])
    return f"{name}/relu2"


def build_resnet18(input_size: int = 224, base_width: int = 64) -> Network:
    """Build the ResNet-18 inference graph.

    Parameters
    ----------
    input_size:
        Spatial size of the (square) RGB input; must be a multiple of 32 so
        the five stride-2 reductions land on integer feature-map sizes.
    base_width:
        Channel count of the first stage (64 in the publication).  Smaller
        values give faithfully shaped but cheap networks for functional
        tests.
    """
    if input_size % 32 != 0:
        raise ValueError(f"input_size must be a multiple of 32, got {input_size}")
    if base_width < 1:
        raise ValueError(f"base_width must be >= 1, got {base_width}")
    net = Network("resnet18")
    net.add_layer(InputLayer("data", shape=(3, input_size, input_size)))

    net.add_layer(
        ConvLayer("conv1", out_channels=base_width, kernel=7, stride=2, padding=3),
        ["data"],
    )
    net.add_layer(ReLULayer("conv1_relu"), ["conv1"])
    net.add_layer(
        PoolLayer("pool1", kernel=3, stride=2, padding=1, mode=PoolMode.MAX, ceil_mode=False),
        ["conv1_relu"],
    )

    source = "pool1"
    for stage_name, multiplier, blocks, first_stride in RESNET18_STAGES:
        channels = base_width * multiplier
        for index in range(1, blocks + 1):
            stride = first_stride if index == 1 else 1
            source = _add_basic_block(net, f"{stage_name}_{index}", source, channels, stride)

    final_size = input_size // 32
    net.add_layer(
        PoolLayer("pool5", kernel=final_size, stride=1, mode=PoolMode.AVERAGE), [source]
    )
    net.add_layer(FlattenLayer("flatten"), ["pool5"])
    net.add_layer(FullyConnectedLayer("fc", out_features=1000), ["flatten"])
    net.add_layer(SoftmaxLayer("prob"), ["fc"])

    net.validate()
    return net
