"""The im2 family: im2col / im2row GEMM-based convolution.

Section 4: "the im2 family of convolution algorithms are variants of the
well-known im2col approach.  These convolutions first construct a Toeplitz
matrix from the input image, and convolve this with the kernel using a single
call to the BLAS GEMM routine."

The Toeplitz (patch) matrix expands the input by a factor of ``K^2``, so the
family needs a large workspace ("Bad case: large image" in Table 1) but the
single large GEMM runs at a high fraction of machine peak and the approach
handles strided convolution naturally — which is why the selector picks an
im2row variant for AlexNet's K=11, stride-4 conv1 on both platforms
(Figure 4).  Variants differ in patch-matrix orientation (im2col builds a
``(C*K*K, P)`` matrix from CHW data; im2row builds ``(P, K*K*C)`` from
channel-minor data) and in whether the kernel matrix is passed to GEMM
transposed (the "A BT I K" variant of Figure 4).
"""

from __future__ import annotations

import numpy as np

from repro.graph.scenario import ConvScenario
from repro.layouts.layout import CHW, HWC, Layout
from repro.primitives.base import ConvPrimitive, PrimitiveFamily, PrimitiveTraits


def im2col_matrix(x_chw: np.ndarray, scenario: ConvScenario) -> np.ndarray:
    """Build the ``(C*K*K, outH*outW)`` column-patch (Toeplitz) matrix."""
    c, k, stride = scenario.c, scenario.k, scenario.stride
    out_h, out_w = scenario.out_h, scenario.out_w
    columns = np.empty((c, k, k, out_h, out_w), dtype=x_chw.dtype)
    for kh in range(k):
        for kw in range(k):
            columns[:, kh, kw] = x_chw[
                :,
                kh : kh + (out_h - 1) * stride + 1 : stride,
                kw : kw + (out_w - 1) * stride + 1 : stride,
            ]
    return columns.reshape(c * k * k, out_h * out_w)


def im2row_matrix(x_chw: np.ndarray, scenario: ConvScenario) -> np.ndarray:
    """Build the ``(outH*outW, K*K*C)`` row-patch matrix (channel-minor order)."""
    c, k, stride = scenario.c, scenario.k, scenario.stride
    out_h, out_w = scenario.out_h, scenario.out_w
    rows = np.empty((out_h, out_w, k, k, c), dtype=x_chw.dtype)
    x_hwc = np.transpose(x_chw, (1, 2, 0))
    for kh in range(k):
        for kw in range(k):
            rows[:, :, kh, kw, :] = x_hwc[
                kh : kh + (out_h - 1) * stride + 1 : stride,
                kw : kw + (out_w - 1) * stride + 1 : stride,
                :,
            ]
    return rows.reshape(out_h * out_w, k * k * c)


class _Im2Base(ConvPrimitive):
    """Shared cost structure of the im2 family."""

    def __init__(self, *args, transpose_kernel: bool = False, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.transpose_kernel = transpose_kernel

    def traits(self) -> PrimitiveTraits:
        return PrimitiveTraits(
            gemm_fraction=0.92,
            locality=0.75,
            parallel_efficiency=0.88,
            per_call_overhead_ops=6_000.0,
        )

    def workspace_elements(self, scenario: ConvScenario) -> float:
        # The patch matrix holds K*K copies of every input pixel that appears
        # in a window (per group, per image — the buffer is reused across a
        # batch).
        patch = scenario.out_h * scenario.out_w * scenario.k * scenario.k * (
            scenario.c // scenario.groups
        )
        return float(patch * scenario.groups)

    def _compute_batch(self, x_nchw: np.ndarray, kernel: np.ndarray, scenario: ConvScenario) -> np.ndarray:
        """Batched patch-matrix GEMM: one contraction over all images at once.

        Both patch orientations (im2col / im2row) compute the same
        contraction; the batched path gathers ``(N, C, K, K, outH, outW)``
        patches and contracts against the ``(M, C*K*K)`` kernel matrix.
        """
        c, k, stride = scenario.c, scenario.k, scenario.stride
        out_h, out_w = scenario.out_h, scenario.out_w
        n = x_nchw.shape[0]
        x64 = x_nchw.astype(np.float64, copy=False)
        patches = np.empty((n, c, k, k, out_h, out_w), dtype=np.float64)
        for kh in range(k):
            for kw in range(k):
                patches[:, :, kh, kw] = x64[
                    :,
                    :,
                    kh : kh + (out_h - 1) * stride + 1 : stride,
                    kw : kw + (out_w - 1) * stride + 1 : stride,
                ]
        patch_matrix = patches.reshape(n, c * k * k, out_h * out_w)
        kernel_matrix = kernel.reshape(scenario.m, -1).astype(np.float64, copy=False)
        result = np.einsum("mq,nqp->nmp", kernel_matrix, patch_matrix, optimize=True)
        return result.reshape(n, scenario.m, out_h, out_w)


class Im2ColPrimitive(_Im2Base):
    """im2col: CHW input, ``kernel_matrix @ patch_matrix`` GEMM."""

    def __init__(
        self,
        name: str,
        transpose_kernel: bool = False,
        vector_factor: int = 1,
        input_layout: Layout = CHW,
        output_layout: Layout = CHW,
    ) -> None:
        super().__init__(
            name,
            PrimitiveFamily.IM2,
            input_layout=input_layout,
            output_layout=output_layout,
            vector_factor=vector_factor,
            transpose_kernel=transpose_kernel,
        )

    def _compute(self, x_chw: np.ndarray, kernel: np.ndarray, scenario: ConvScenario) -> np.ndarray:
        patches = im2col_matrix(x_chw.astype(np.float64, copy=False), scenario)
        kernel_matrix = kernel.reshape(scenario.m, -1).astype(np.float64, copy=False)
        if self.transpose_kernel:
            # Equivalent GEMM with the kernel operand stored transposed, as in
            # the "A BT I K" selections of Figure 4.
            result = (patches.T @ kernel_matrix.T).T
        else:
            result = kernel_matrix @ patches
        return result.reshape(scenario.m, scenario.out_h, scenario.out_w)


class Im2RowPrimitive(_Im2Base):
    """im2row: channel-minor (HWC) input, ``patch_matrix @ kernel_matrix^T`` GEMM."""

    def __init__(
        self,
        name: str,
        transpose_kernel: bool = False,
        vector_factor: int = 1,
        input_layout: Layout = HWC,
        output_layout: Layout = HWC,
    ) -> None:
        super().__init__(
            name,
            PrimitiveFamily.IM2,
            input_layout=input_layout,
            output_layout=output_layout,
            vector_factor=vector_factor,
            transpose_kernel=transpose_kernel,
        )

    def _compute(self, x_chw: np.ndarray, kernel: np.ndarray, scenario: ConvScenario) -> np.ndarray:
        rows = im2row_matrix(x_chw.astype(np.float64, copy=False), scenario)
        # Kernel reordered to (M, K*K*C) matching the row-patch element order.
        kernel_rows = (
            kernel.astype(np.float64, copy=False)
            .transpose(0, 2, 3, 1)
            .reshape(scenario.m, -1)
        )
        if self.transpose_kernel:
            result = rows @ kernel_rows.T
        else:
            result = (kernel_rows @ rows.T).T
        out_hwm = result.reshape(scenario.out_h, scenario.out_w, scenario.m)
        return np.ascontiguousarray(np.transpose(out_hwm, (2, 0, 1)))
