"""Reference (textbook) convolution and the sum-of-single-channels baseline.

:func:`reference_convolution` is the numerical oracle every other primitive
is tested against.  :class:`Sum2DPrimitive` is the paper's common baseline —
"all convolutions in the network are performed using the textbook
sum-of-single-channels algorithm, with single-threaded execution" (section
5.2) — implemented with the loop ordering ``M x C x H x W x K x K`` described
in section 4.
"""

from __future__ import annotations

import numpy as np

from repro.graph.scenario import ConvScenario
from repro.layouts.layout import CHW
from repro.primitives.base import (
    ConvPrimitive,
    PrimitiveFamily,
    PrimitiveTraits,
    depthwise_shifted_accumulation,
)


def reference_convolution(
    x_chw: np.ndarray, kernel: np.ndarray, scenario: ConvScenario
) -> np.ndarray:
    """Textbook multichannel 2D cross-correlation (DNN convolution).

    Parameters
    ----------
    x_chw:
        Input tensor of shape ``(C, H, W)`` in canonical CHW layout.
    kernel:
        Kernel tensor of shape ``(M, C/groups, K, K)``.
    scenario:
        The convolutional scenario (supplies stride, padding and grouping).

    Returns
    -------
    numpy.ndarray
        Output tensor of shape ``(M, out_H, out_W)``.
    """
    x_chw = np.asarray(x_chw, dtype=np.float64)
    kernel = np.asarray(kernel, dtype=np.float64)
    if x_chw.shape != scenario.input_shape:
        raise ValueError(f"input shape {x_chw.shape} != scenario {scenario.input_shape}")
    if kernel.shape != scenario.kernel_shape:
        raise ValueError(f"kernel shape {kernel.shape} != scenario {scenario.kernel_shape}")

    pad = scenario.padding
    if pad:
        x_chw = np.pad(x_chw, ((0, 0), (pad, pad), (pad, pad)), mode="constant")

    out = np.zeros(scenario.output_shape, dtype=np.float64)
    group_c = scenario.c // scenario.groups
    group_m = scenario.m // scenario.groups
    stride = scenario.stride
    k = scenario.k
    out_h, out_w = scenario.out_h, scenario.out_w

    for g in range(scenario.groups):
        x_group = x_chw[g * group_c : (g + 1) * group_c]
        for m_local in range(group_m):
            m = g * group_m + m_local
            for oh in range(out_h):
                for ow in range(out_w):
                    window = x_group[
                        :, oh * stride : oh * stride + k, ow * stride : ow * stride + k
                    ]
                    out[m, oh, ow] = np.sum(window * kernel[m])
    return out


class Sum2DPrimitive(ConvPrimitive):
    """The sum-of-single-channels direct algorithm (the SUM2D baseline).

    Loop ordering ``M x C x H x W x K x K``: for each output map, the 2D
    convolution of each input channel with the corresponding kernel slice is
    accumulated.  Operates on the canonical CHW layout and has no workspace.
    """

    def __init__(self, name: str = "sum2d") -> None:
        super().__init__(
            name=name,
            family=PrimitiveFamily.SUM2D,
            input_layout=CHW,
            output_layout=CHW,
            vector_factor=1,
        )

    def traits(self) -> PrimitiveTraits:
        return PrimitiveTraits(
            gemm_fraction=0.0,
            locality=0.45,
            parallel_efficiency=0.70,
            per_call_overhead_ops=2_000.0,
        )

    def _compute_depthwise(self, x_chw: np.ndarray, kernel: np.ndarray, scenario: ConvScenario) -> np.ndarray:
        """Depthwise sum2d: each output map is one single-channel 2D convolution."""
        return depthwise_shifted_accumulation(x_chw, kernel, scenario)

    def _compute(self, x_chw: np.ndarray, kernel: np.ndarray, scenario: ConvScenario) -> np.ndarray:
        out = np.zeros(scenario.output_shape, dtype=np.float64)
        stride, k = scenario.stride, scenario.k
        for m in range(scenario.m):
            for c in range(scenario.c):
                plane = x_chw[c]
                weights = kernel[m, c]
                accum = np.zeros((scenario.out_h, scenario.out_w), dtype=np.float64)
                for kh in range(k):
                    for kw in range(k):
                        patch = plane[
                            kh : kh + (scenario.out_h - 1) * stride + 1 : stride,
                            kw : kw + (scenario.out_w - 1) * stride + 1 : stride,
                        ]
                        accum += weights[kh, kw] * patch
                out[m] += accum
        return out
