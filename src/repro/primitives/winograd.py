"""The Winograd family of fast convolution primitives.

Section 4: "the Winograd family of methods use the Winograd algorithm for
convolution with a theoretically optimal number of multiplications ...  We
implemented the Winograd algorithm for scenarios with K = 3 and K = 5."

Two shapes of variant are provided, matching Figure 4 of the paper:

* :class:`Winograd2DPrimitive` — tiled two-dimensional Winograd ``F(m x m,
  r x r)``; minimal multiplications but a large transformed-domain workspace
  (the ``(m+r-1)^2 / m^2`` expansion), which the paper identifies as the
  reason 2D Winograd wins on the large-cache Intel part;
* :class:`Winograd1DPrimitive` — two-dimensional convolution assembled from
  one-dimensional Winograd convolutions ``F(m, r)`` applied along image rows,
  one per kernel row.  More floating point operations but far less memory,
  which is why the selector prefers it on the small-cache ARM Cortex-A57.

The transform matrices ``A^T``, ``G`` and ``B^T`` are generated for arbitrary
``(m, r)`` with the Cook–Toom construction (Vandermonde evaluation matrices
over the standard interpolation points plus the point at infinity); ``B^T``
is recovered by solving the bilinear correctness conditions exactly, and the
construction is validated numerically at build time.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

import numpy as np

from repro.graph.scenario import ConvScenario
from repro.layouts.layout import CHW, HCW, Layout
from repro.primitives.base import ConvPrimitive, PrimitiveFamily, PrimitiveTraits

#: Interpolation points used by the Cook–Toom construction, in the order they
#: are consumed.  Small-magnitude rationals keep the transforms well
#: conditioned for single-precision data (the same points used by wincnn).
_DEFAULT_POINTS = (0.0, 1.0, -1.0, 2.0, -2.0, 0.5, -0.5, 4.0, -4.0, 0.25, -0.25)


class WinogradConstructionError(RuntimeError):
    """Raised when transform generation fails to satisfy the correctness conditions."""


@lru_cache(maxsize=None)
def winograd_matrices(m: int, r: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Generate the 1D Winograd transform matrices for ``F(m, r)``.

    Returns ``(AT, G, BT)`` such that for a signal ``d`` of length
    ``n = m + r - 1`` and a kernel ``g`` of length ``r``::

        AT @ ((G @ g) * (BT @ d))

    equals the ``m`` outputs of the valid correlation of ``d`` with ``g``.

    Parameters
    ----------
    m:
        Output tile size (number of outputs produced per tile).
    r:
        Kernel size.

    Raises
    ------
    WinogradConstructionError
        If the generated matrices do not satisfy the bilinear correctness
        conditions to within numerical tolerance.
    """
    if m < 1 or r < 1:
        raise ValueError("m and r must be positive")
    n = m + r - 1
    if n - 1 > len(_DEFAULT_POINTS):
        raise ValueError(f"F({m},{r}) needs {n - 1} interpolation points; not enough available")
    points = np.array(_DEFAULT_POINTS[: n - 1], dtype=np.float64)

    # f_j = prod_{l != j} (a_j - a_l): the Lagrange denominator of each point.
    f = np.array(
        [np.prod([points[j] - points[q] for q in range(n - 1) if q != j]) for j in range(n - 1)]
    )

    # A^T (m x n): evaluation of the output polynomial at the points, plus the
    # point at infinity contributing only to the highest-order output.
    at = np.zeros((m, n))
    for i in range(m):
        at[i, : n - 1] = points**i
    at[m - 1, n - 1] = 1.0

    # G (n x r): evaluation of the kernel polynomial at the points, scaled by
    # the Lagrange denominators, plus the infinity row.
    g = np.zeros((n, r))
    for k in range(r):
        g[: n - 1, k] = (points**k) / f
    g[n - 1, r - 1] = 1.0

    # B^T (n x n): solved from the bilinear correctness conditions
    #   sum_t AT[i, t] * G[t, q] * BT[t, p] == [p == i + q]
    # which is a linear system W @ BT = D with W[(i, q), t] = AT[i, t] * G[t, q].
    w = np.zeros((m * r, n))
    d = np.zeros((m * r, n))
    row = 0
    for i in range(m):
        for q in range(r):
            w[row] = at[i] * g[:, q]
            d[row, i + q] = 1.0
            row += 1
    bt, residuals, rank, _ = np.linalg.lstsq(w, d, rcond=None)
    if rank < n:
        raise WinogradConstructionError(
            f"F({m},{r}): evaluation matrix is rank deficient (rank {rank} < {n})"
        )
    reconstruction = w @ bt
    if not np.allclose(reconstruction, d, atol=1e-8):
        raise WinogradConstructionError(
            f"F({m},{r}): no exact B^T satisfies the correctness conditions "
            f"(max error {np.max(np.abs(reconstruction - d)):.3e})"
        )
    return at, g, bt


class _WinogradBase(ConvPrimitive):
    """Shared structure of the Winograd variants."""

    def __init__(
        self,
        name: str,
        tile: int,
        kernel_size: int,
        input_layout: Layout,
        output_layout: Layout,
        vector_factor: int,
        requires_features=(),
        excluded_features=(),
    ) -> None:
        super().__init__(
            name=name,
            family=PrimitiveFamily.WINOGRAD,
            input_layout=input_layout,
            output_layout=output_layout,
            vector_factor=vector_factor,
            requires_features=requires_features,
            excluded_features=excluded_features,
        )
        self.tile = tile
        self.kernel_size = kernel_size
        # Build (and validate) the transforms eagerly so a misconfigured
        # variant fails at library construction time, not mid-selection.
        winograd_matrices(tile, kernel_size)

    @property
    def tile_input(self) -> int:
        """Input tile size ``n = m + r - 1``."""
        return self.tile + self.kernel_size - 1

    def supports(self, scenario: ConvScenario, platform=None) -> bool:
        # Every precision is offered, int8 included: the fractional tile
        # transforms run over the quantized operands, which loses more
        # accuracy than GEMM-family int8 — the cost model charges that as a
        # larger modelled accuracy penalty rather than declining outright.
        return (
            scenario.k == self.kernel_size
            and scenario.stride == 1
            and self.supports_dtype(scenario.dtype)
            and self.available_on(platform)
        )


class Winograd2DPrimitive(_WinogradBase):
    """Tiled 2D Winograd convolution ``F(m x m, r x r)``."""

    def __init__(
        self,
        name: str,
        tile: int = 2,
        kernel_size: int = 3,
        input_layout: Layout = CHW,
        output_layout: Layout = CHW,
        vector_factor: int = 1,
    ) -> None:
        super().__init__(name, tile, kernel_size, input_layout, output_layout, vector_factor)

    def traits(self) -> PrimitiveTraits:
        return PrimitiveTraits(
            gemm_fraction=0.88,
            locality=0.70,
            parallel_efficiency=0.85,
            per_call_overhead_ops=12_000.0,
        )

    # -- cost ---------------------------------------------------------------------

    def _tiles(self, scenario: ConvScenario) -> Tuple[int, int]:
        tiles_h = -(-scenario.out_h // self.tile)
        tiles_w = -(-scenario.out_w // self.tile)
        return tiles_h, tiles_w

    def arithmetic_ops(self, scenario: ConvScenario) -> float:
        m, n = self.tile, self.tile_input
        tiles_h, tiles_w = self._tiles(scenario)
        tiles = tiles_h * tiles_w
        c = scenario.c // scenario.groups
        filters = scenario.m // scenario.groups
        # Elementwise multiply-accumulate in the transformed domain.
        elementwise = 2.0 * tiles * n * n * c * filters
        # Input transform: two small matrix products per tile per channel.
        input_transform = tiles * c * 2.0 * (2.0 * n**3)
        # Output transform: two small matrix products per tile per filter.
        output_transform = tiles * filters * 2.0 * (m * n * n + m * m * n)
        # The kernel transform is not charged: weights are static, so the
        # transformed kernels are produced once at deployment time and shipped
        # with the model (like the paper's cost tables).  Every remaining term
        # is per-image work, so the total scales with the batch.
        return scenario.batch * scenario.groups * (
            elementwise + input_transform + output_transform
        )

    def workspace_elements(self, scenario: ConvScenario) -> float:
        n = self.tile_input
        tiles_h, tiles_w = self._tiles(scenario)
        tiles = tiles_h * tiles_w
        c = scenario.c // scenario.groups
        # The transformed input and output tiles of the whole image are live at
        # once; the (pre-)transformed kernels are streamed in blocks of at most
        # 32 output maps.
        filters = scenario.m // scenario.groups
        transformed_input = tiles * c * n * n
        transformed_kernel = min(filters, 32) * c * n * n
        transformed_output = tiles * filters * n * n
        return float(scenario.groups * (transformed_input + transformed_output) + transformed_kernel)

    def inner_working_set_elements(self, scenario: ConvScenario) -> float:
        # The elementwise stage walks, per tile, one transformed input tile for
        # every channel and accumulates one transformed output tile for every
        # output map, so a (C + M) * n^2 slab must stay cache resident.
        n = self.tile_input
        c = scenario.c // scenario.groups
        return float((c + scenario.m // scenario.groups) * n * n)

    # -- execution ------------------------------------------------------------------

    def _compute(self, x_chw: np.ndarray, kernel: np.ndarray, scenario: ConvScenario) -> np.ndarray:
        at, g, bt = winograd_matrices(self.tile, self.kernel_size)
        m_tile, n = self.tile, self.tile_input
        out_h, out_w = scenario.out_h, scenario.out_w
        tiles_h, tiles_w = self._tiles(scenario)

        # Pad the input so that an integer number of tiles covers the output.
        pad_h = (tiles_h - 1) * m_tile + n - scenario.h
        pad_w = (tiles_w - 1) * m_tile + n - scenario.w
        x64 = np.pad(
            x_chw.astype(np.float64, copy=False),
            ((0, 0), (0, max(pad_h, 0)), (0, max(pad_w, 0))),
            mode="constant",
        )

        # Gather input tiles: (C, tiles_h, tiles_w, n, n).
        c = scenario.c
        tiles = np.empty((c, tiles_h, tiles_w, n, n), dtype=np.float64)
        for th in range(tiles_h):
            for tw in range(tiles_w):
                tiles[:, th, tw] = x64[
                    :, th * m_tile : th * m_tile + n, tw * m_tile : tw * m_tile + n
                ]

        # Transform: V = BT @ d @ BT^T ; U = G @ g @ G^T.  The transforms run
        # one two-operand product at a time and every stage buffer is released
        # as soon as the next is built, so the live scratch stays at the
        # transformed input and output tile sets, as workspace_elements models.
        half = np.einsum("ij,cxyjk->cxyik", bt, tiles)
        del tiles
        v = np.einsum("cxyik,lk->cxyil", half, bt)
        del half
        u = np.einsum("ij,mcjk,lk->mcil", g, kernel.astype(np.float64, copy=False), g, optimize=True)

        # Elementwise product summed over channels: (M, tiles_h, tiles_w, n, n),
        # accumulated per transformed-domain position to avoid broadcast copies.
        prod = np.empty((scenario.m, tiles_h, tiles_w, n, n), dtype=np.float64)
        for i in range(n):
            for l in range(n):
                prod[:, :, :, i, l] = np.tensordot(u[:, :, i, l], v[:, :, :, i, l], axes=1)
        del v

        # Inverse transform: Y = AT @ M @ AT^T, shape (M, tiles_h, tiles_w, m, m).
        half = np.einsum("pi,mxyil->mxypl", at, prod)
        del prod
        y = np.einsum("mxypl,ql->mxypq", half, at)
        del half

        # Scatter tiles back into the output plane and crop.
        out_full = np.zeros((scenario.m, tiles_h * m_tile, tiles_w * m_tile), dtype=np.float64)
        for th in range(tiles_h):
            for tw in range(tiles_w):
                out_full[
                    :, th * m_tile : (th + 1) * m_tile, tw * m_tile : (tw + 1) * m_tile
                ] = y[:, th, tw]
        return out_full[:, :out_h, :out_w]


class Winograd1DPrimitive(_WinogradBase):
    """2D convolution as a sum of row-wise 1D Winograd convolutions ``F(m, r)``."""

    def __init__(
        self,
        name: str,
        tile: int = 2,
        kernel_size: int = 3,
        input_layout: Layout = HCW,
        output_layout: Layout = HCW,
        vector_factor: int = 1,
    ) -> None:
        # The row-streaming low-memory form trades arithmetic for footprint —
        # a CPU-cache bargain with no SIMT analogue (GPU libraries implement
        # the tiled 2D form only), so SIMT platforms never price it.
        super().__init__(
            name,
            tile,
            kernel_size,
            input_layout,
            output_layout,
            vector_factor,
            excluded_features=("simt",),
        )
        #: When set, :meth:`_compute` takes the row-streamed path whose live
        #: scratch matches :meth:`workspace_elements` (one row of transformed
        #: tiles plus one row of output partials).  The default vectorized
        #: path computes the identical result but trades memory for numpy
        #: efficiency by materializing every row's tiles at once.
        self.streaming = False

    def traits(self) -> PrimitiveTraits:
        return PrimitiveTraits(
            gemm_fraction=0.80,
            locality=0.78,
            parallel_efficiency=0.83,
            per_call_overhead_ops=9_000.0,
        )

    def _tiles_w(self, scenario: ConvScenario) -> int:
        return -(-scenario.out_w // self.tile)

    def arithmetic_ops(self, scenario: ConvScenario) -> float:
        m_tile, n = self.tile, self.tile_input
        r = self.kernel_size
        tiles_w = self._tiles_w(scenario)
        c = scenario.c // scenario.groups
        filters = scenario.m // scenario.groups
        rows = scenario.out_h
        # One 1D Winograd pass per kernel row.
        per_row_sites = tiles_w * rows
        elementwise = 2.0 * per_row_sites * n * c * filters
        input_transform = per_row_sites * c * 2.0 * n * n
        output_transform = per_row_sites * filters * 2.0 * m_tile * n
        # Kernel-row transforms are precomputed at deployment time (static
        # weights); the remaining per-image work scales with the batch.
        return scenario.batch * scenario.groups * r * (
            elementwise + input_transform + output_transform
        )

    def workspace_elements(self, scenario: ConvScenario) -> float:
        n = self.tile_input
        tiles_w = self._tiles_w(scenario)
        c = scenario.c // scenario.groups
        # Only one row of transformed tiles is live at a time, plus a blocked
        # window of the (pre-)transformed kernel rows — the low-memory
        # property that favours this form on small-cache processors.
        filters = scenario.m // scenario.groups
        transformed_row = tiles_w * c * n
        transformed_kernel = min(filters, 32) * c * n * self.kernel_size
        partial_output = filters * scenario.out_w
        return float(scenario.groups * (transformed_row + partial_output) + transformed_kernel)

    def inner_working_set_elements(self, scenario: ConvScenario) -> float:
        # Only one length-n transformed segment per channel and per output map
        # is live inside the inner loop — the low-memory property of the 1D form.
        n = self.tile_input
        c = scenario.c // scenario.groups
        return float((c + scenario.m // scenario.groups) * n)

    def _compute(self, x_chw: np.ndarray, kernel: np.ndarray, scenario: ConvScenario) -> np.ndarray:
        if self.streaming:
            return self._compute_streamed(x_chw, kernel, scenario)
        at, g, bt = winograd_matrices(self.tile, self.kernel_size)
        m_tile, n = self.tile, self.tile_input
        r = self.kernel_size
        out_h, out_w = scenario.out_h, scenario.out_w
        tiles_w = self._tiles_w(scenario)

        pad_w = (tiles_w - 1) * m_tile + n - scenario.w
        x64 = np.pad(
            x_chw.astype(np.float64, copy=False),
            ((0, 0), (0, 0), (0, max(pad_w, 0))),
            mode="constant",
        )
        kernel64 = kernel.astype(np.float64, copy=False)

        # Transformed kernel rows: (r, M, C, n).
        u_rows = np.einsum("ij,mckj->kmci", g, kernel64, optimize=True)

        out = np.zeros((scenario.m, out_h, out_w), dtype=np.float64)
        for kh in range(r):
            # Rows of the input that align with output rows for this kernel row.
            slab = x64[:, kh : kh + out_h, :]  # (C, out_h, padded_w)
            # Gather width tiles: (C, out_h, tiles_w, n).
            tiles = np.empty((scenario.c, out_h, tiles_w, n), dtype=np.float64)
            for tw in range(tiles_w):
                tiles[:, :, tw, :] = slab[:, :, tw * m_tile : tw * m_tile + n]
            v = np.einsum("ij,chtj->chti", bt, tiles, optimize=True)
            prod = np.einsum("mci,chti->mhti", u_rows[kh], v, optimize=True)
            y = np.einsum("pi,mhti->mhtp", at, prod, optimize=True)
            out += y.reshape(scenario.m, out_h, tiles_w * m_tile)[:, :, :out_w]
        return out

    def _compute_streamed(
        self, x_chw: np.ndarray, kernel: np.ndarray, scenario: ConvScenario
    ) -> np.ndarray:
        """The memory-faithful row-streamed form of the 1D algorithm.

        Processes one output row at a time, so the live scratch is exactly
        what :meth:`workspace_elements` models: one row of transformed input
        tiles, one row of output partials and the transformed kernel rows.
        Numerically identical to the vectorized :meth:`_compute` path.
        """
        at, g, bt = winograd_matrices(self.tile, self.kernel_size)
        m_tile, n = self.tile, self.tile_input
        r = self.kernel_size
        out_h, out_w = scenario.out_h, scenario.out_w
        tiles_w = self._tiles_w(scenario)

        pad_w = (tiles_w - 1) * m_tile + n - scenario.w
        x64 = np.pad(
            x_chw.astype(np.float64, copy=False),
            ((0, 0), (0, 0), (0, max(pad_w, 0))),
            mode="constant",
        )
        kernel64 = kernel.astype(np.float64, copy=False)
        u_rows = np.einsum("ij,mckj->kmci", g, kernel64, optimize=True)

        out = np.empty((scenario.m, out_h, out_w), dtype=np.float64)
        gathered = np.empty((scenario.c, tiles_w, n), dtype=np.float64)
        for h in range(out_h):
            acc = np.zeros((scenario.m, tiles_w, m_tile), dtype=np.float64)
            for kh in range(r):
                row = x64[:, h + kh, :]
                for tw in range(tiles_w):
                    gathered[:, tw, :] = row[:, tw * m_tile : tw * m_tile + n]
                v = np.einsum("ij,ctj->cti", bt, gathered, optimize=True)
                prod = np.einsum("mci,cti->mti", u_rows[kh], v, optimize=True)
                acc += np.einsum("pi,mti->mtp", at, prod, optimize=True)
            out[:, h, :] = acc.reshape(scenario.m, tiles_w * m_tile)[:, :out_w]
        return out
