"""The primitive library: construction and lookup of the full variant set.

The paper's library contains "over 70 different primitive routines that
implement DNN convolution" across six algorithm families (section 3.1).
:func:`default_primitive_library` builds the equivalent library for this
reproduction: every entry is an executable :class:`~repro.primitives.base.ConvPrimitive`
with its own layouts, vectorization factor and algorithm parameters, so the
selection problem has the same structure (and roughly the same size) as the
paper's.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.graph.scenario import ConvScenario
from repro.layouts.layout import CHW, CHW4c, CHW8c, HCW, HWC, Layout
from repro.primitives.base import ConvPrimitive, PrimitiveFamily
from repro.primitives.direct import DirectLoopPrimitive
from repro.primitives.fft import FFT1DPrimitive, FFT2DPrimitive
from repro.primitives.im2 import Im2ColPrimitive, Im2RowPrimitive
from repro.primitives.kn2 import Kn2ColPrimitive, Kn2RowPrimitive
from repro.primitives.reference import Sum2DPrimitive
from repro.primitives.winograd import Winograd1DPrimitive, Winograd2DPrimitive


class PrimitiveLibrary:
    """An indexed collection of convolution primitives."""

    def __init__(self, primitives: Iterable[ConvPrimitive]) -> None:
        self._primitives: Dict[str, ConvPrimitive] = {}
        for primitive in primitives:
            if primitive.name in self._primitives:
                raise ValueError(f"duplicate primitive name {primitive.name!r}")
            self._primitives[primitive.name] = primitive

    def __len__(self) -> int:
        return len(self._primitives)

    def __iter__(self):
        return iter(self._primitives.values())

    def __contains__(self, name: str) -> bool:
        return name in self._primitives

    def get(self, name: str) -> ConvPrimitive:
        """Look up a primitive by name."""
        try:
            return self._primitives[name]
        except KeyError:
            raise KeyError(f"no primitive named {name!r} in the library") from None

    def names(self) -> List[str]:
        return list(self._primitives.keys())

    def primitives(self) -> List[ConvPrimitive]:
        return list(self._primitives.values())

    def by_family(self, family: PrimitiveFamily) -> List[ConvPrimitive]:
        """All primitives belonging to one algorithm family."""
        return [p for p in self._primitives.values() if p.family is family]

    def applicable(
        self,
        scenario: ConvScenario,
        family: Optional[PrimitiveFamily] = None,
        platform=None,
    ) -> List[ConvPrimitive]:
        """Primitives that support the scenario (optionally one family only).

        Passing a :class:`~repro.cost.platform.Platform` additionally applies
        per-platform capability gating — variants the platform does not offer
        (see :attr:`ConvPrimitive.requires_features`) are filtered out, so
        they are never priced into that platform's cost tables.
        """
        candidates = self.primitives() if family is None else self.by_family(family)
        return [p for p in candidates if p.supports(scenario, platform=platform)]

    def layouts_used(self) -> List[Layout]:
        """Every distinct layout consumed or produced by some primitive."""
        seen: Dict[str, Layout] = {}
        for primitive in self._primitives.values():
            seen.setdefault(primitive.input_layout.name, primitive.input_layout)
            seen.setdefault(primitive.output_layout.name, primitive.output_layout)
        return list(seen.values())

    def subset(self, names: Sequence[str]) -> "PrimitiveLibrary":
        """A new library containing only the named primitives."""
        return PrimitiveLibrary([self.get(name) for name in names])


def _direct_variants() -> List[ConvPrimitive]:
    """Direct-loop variants: loop orders x layouts x vector factors."""
    variants: List[ConvPrimitive] = []
    layout_for_vf = {1: CHW, 4: CHW4c, 8: CHW8c}
    for loop_order in ("MCHW", "CMHW", "MHWC", "HWMC", "MHWC_T8", "HWMC_T8"):
        for vf in (1, 4, 8):
            layout = layout_for_vf[vf]
            variants.append(
                DirectLoopPrimitive(
                    name=f"direct_{loop_order.lower()}_vf{vf}",
                    loop_order=loop_order,
                    input_layout=layout,
                    output_layout=layout,
                    vector_factor=vf,
                )
            )
    # A pair of channel-minor direct loops (scalar only), used by HWC pipelines.
    for loop_order in ("MHWC", "HWMC"):
        variants.append(
            DirectLoopPrimitive(
                name=f"direct_{loop_order.lower()}_hwc_vf1",
                loop_order=loop_order,
                input_layout=HWC,
                output_layout=HWC,
                vector_factor=1,
            )
        )
    return variants


def _im2_variants() -> List[ConvPrimitive]:
    """im2col / im2row variants: orientation x kernel transpose x vector factor."""
    variants: List[ConvPrimitive] = []
    for vf in (1, 4, 8):
        for transpose in (False, True):
            suffix = "_bt" if transpose else ""
            variants.append(
                Im2ColPrimitive(
                    name=f"im2col{suffix}_vf{vf}", transpose_kernel=transpose, vector_factor=vf
                )
            )
            variants.append(
                Im2RowPrimitive(
                    name=f"im2row{suffix}_vf{vf}", transpose_kernel=transpose, vector_factor=vf
                )
            )
    return variants


def _kn2_variants() -> List[ConvPrimitive]:
    """kn2row / kn2col variants: orientation x accumulation strategy x vector factor."""
    variants: List[ConvPrimitive] = []
    for vf in (1, 4, 8):
        for accumulating in (True, False):
            suffix = "_acc" if accumulating else "_scratch"
            variants.append(
                Kn2RowPrimitive(
                    name=f"kn2row{suffix}_vf{vf}", accumulating=accumulating, vector_factor=vf
                )
            )
            variants.append(
                Kn2ColPrimitive(
                    name=f"kn2col{suffix}_vf{vf}", accumulating=accumulating, vector_factor=vf
                )
            )
    return variants


def _winograd_variants() -> List[ConvPrimitive]:
    """Winograd variants: 1D/2D x tile size x kernel size x vector factor."""
    variants: List[ConvPrimitive] = []
    layout_for_vf_2d = {1: CHW, 4: CHW4c, 8: CHW8c}
    tile_kernel_pairs = [(2, 3), (3, 3), (4, 3), (2, 5), (3, 5)]
    for tile, kernel in tile_kernel_pairs:
        for vf in (1, 4, 8):
            layout = layout_for_vf_2d[vf]
            variants.append(
                Winograd2DPrimitive(
                    name=f"winograd_2d_m{tile}_r{kernel}_vf{vf}",
                    tile=tile,
                    kernel_size=kernel,
                    input_layout=layout,
                    output_layout=layout,
                    vector_factor=vf,
                )
            )
        for vf in (1, 4, 8):
            variants.append(
                Winograd1DPrimitive(
                    name=f"winograd_1d_m{tile}_r{kernel}_vf{vf}",
                    tile=tile,
                    kernel_size=kernel,
                    input_layout=HCW,
                    output_layout=HCW,
                    vector_factor=vf,
                )
            )
    return variants


def _fft_variants() -> List[ConvPrimitive]:
    """FFT variants: 1D-sum / full-2D x input layout x vector factor."""
    variants: List[ConvPrimitive] = []
    for vf in (1, 4, 8):
        variants.append(
            FFT1DPrimitive(
                name=f"fft_1d_chw_vf{vf}", input_layout=CHW, output_layout=CHW, vector_factor=vf
            )
        )
        variants.append(
            FFT2DPrimitive(
                name=f"fft_2d_chw_vf{vf}", input_layout=CHW, output_layout=CHW, vector_factor=vf
            )
        )
    variants.append(FFT1DPrimitive(name="fft_1d_hwc", input_layout=HWC, output_layout=HWC))
    variants.append(FFT2DPrimitive(name="fft_2d_hwc", input_layout=HWC, output_layout=HWC))
    return variants


def default_primitive_library() -> PrimitiveLibrary:
    """Build the full primitive library (more than 70 convolution routines)."""
    primitives: List[ConvPrimitive] = [Sum2DPrimitive()]
    primitives.extend(_direct_variants())
    primitives.extend(_im2_variants())
    primitives.extend(_kn2_variants())
    primitives.extend(_winograd_variants())
    primitives.extend(_fft_variants())
    return PrimitiveLibrary(primitives)
