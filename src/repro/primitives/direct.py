"""The direct-loop family of convolution primitives.

Section 4 of the paper: "the direct-loop family of convolution algorithms
perform multichannel multi-kernel convolution using a simple six-deep loop
nest.  There are many variants of this loop nest with different reorderings,
tilings, and schedules to improve execution time, vectorization, and spatial
and temporal locality of data access."

All variants perform exactly the textbook operation count; they differ in
loop order, spatial tiling and vectorization factor, which changes locality
and achievable fraction of machine peak (captured by :meth:`traits`) but not
the mathematics.  Strided convolution is the family's strength (Table 1).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.graph.scenario import ConvScenario
from repro.layouts.layout import Layout, CHW
from repro.primitives.base import (
    ConvPrimitive,
    PrimitiveFamily,
    PrimitiveTraits,
    depthwise_shifted_accumulation,
)

#: Locality scores of the supported loop orders.  Orders that keep the spatial
#: loops innermost stream through the image with unit stride; orders that put
#: the channel loops innermost jump across feature maps on every iteration.
LOOP_ORDER_LOCALITY: Dict[str, float] = {
    "MCHW": 0.50,   # output-map outer, channel, then spatial: decent reuse of kernels
    "CMHW": 0.42,   # channel outer: poor output reuse, repeated output traffic
    "MHWC": 0.60,   # spatial mid, channel inner: good for channel-minor layouts
    "HWMC": 0.58,   # spatial outermost: streaming, good with blocked channels
    "MHWC_T8": 0.68,  # 8x8 spatial tiling of MHWC
    "HWMC_T8": 0.66,  # 8x8 spatial tiling of HWMC
}


class DirectLoopPrimitive(ConvPrimitive):
    """One member of the direct-loop family.

    Parameters
    ----------
    loop_order:
        One of the keys of :data:`LOOP_ORDER_LOCALITY`; determines the memory
        locality score used by the analytical cost model.
    input_layout / output_layout:
        The layouts this variant is written for; blocked layouts model the
        vector-friendly register tiling of the hand-optimized variants.
    vector_factor:
        FP32 SIMD width the inner loop is vectorized for.
    """

    def __init__(
        self,
        name: str,
        loop_order: str = "MCHW",
        input_layout: Layout = CHW,
        output_layout: Layout = CHW,
        vector_factor: int = 1,
    ) -> None:
        if loop_order not in LOOP_ORDER_LOCALITY:
            raise ValueError(
                f"unknown loop order {loop_order!r}; supported: {sorted(LOOP_ORDER_LOCALITY)}"
            )
        super().__init__(
            name=name,
            family=PrimitiveFamily.DIRECT,
            input_layout=input_layout,
            output_layout=output_layout,
            vector_factor=vector_factor,
        )
        self.loop_order = loop_order

    def traits(self) -> PrimitiveTraits:
        locality = LOOP_ORDER_LOCALITY[self.loop_order]
        return PrimitiveTraits(
            gemm_fraction=0.0,
            locality=locality,
            parallel_efficiency=0.82,
            per_call_overhead_ops=1_000.0,
        )

    def supports(self, scenario: ConvScenario, platform=None) -> bool:
        # The direct loop nest handles every scenario, including strided and
        # depthwise ones (the channel loop simply collapses per group), at
        # every precision (the MAC loop is the textbook int8/fp16 kernel).
        return self.supports_dtype(scenario.dtype) and self.available_on(platform)

    def _compute_depthwise(self, x_chw: np.ndarray, kernel: np.ndarray, scenario: ConvScenario) -> np.ndarray:
        """Depthwise form of the loop nest: no channel reduction, vectorized per map."""
        return depthwise_shifted_accumulation(x_chw, kernel, scenario)

    def _compute_batch(self, x_nchw: np.ndarray, kernel: np.ndarray, scenario: ConvScenario) -> np.ndarray:
        """Batched loop nest: the image axis rides along every shifted slice."""
        stride, k = scenario.stride, scenario.k
        out_h, out_w = scenario.out_h, scenario.out_w
        x64 = x_nchw.astype(np.float64, copy=False)
        kernel64 = kernel.astype(np.float64, copy=False)
        out = np.zeros((x_nchw.shape[0],) + scenario.output_shape, dtype=np.float64)
        for kh in range(k):
            for kw in range(k):
                window = x64[
                    :,
                    :,
                    kh : kh + (out_h - 1) * stride + 1 : stride,
                    kw : kw + (out_w - 1) * stride + 1 : stride,
                ]
                # (M, C) contraction against (N, C, outH, outW) for this offset.
                out += np.einsum(
                    "mc,nchw->nmhw", kernel64[:, :, kh, kw], window, optimize=True
                )
        return out

    def _compute(self, x_chw: np.ndarray, kernel: np.ndarray, scenario: ConvScenario) -> np.ndarray:
        """Direct convolution via shifted-slice accumulation.

        The arithmetic is identical for every loop order; variants differ
        only in traversal order, which numpy's vectorized execution abstracts
        away.  The kh/kw loops remain explicit, matching the structure of the
        hand-written loop nests.
        """
        stride, k = scenario.stride, scenario.k
        out_h, out_w = scenario.out_h, scenario.out_w
        x64 = x_chw.astype(np.float64, copy=False)
        kernel64 = kernel.astype(np.float64, copy=False)
        out = np.zeros(scenario.output_shape, dtype=np.float64)
        for kh in range(k):
            for kw in range(k):
                # (C, outH, outW) window of the input for this kernel offset.
                window = x64[
                    :,
                    kh : kh + (out_h - 1) * stride + 1 : stride,
                    kw : kw + (out_w - 1) * stride + 1 : stride,
                ]
                # (M, C) x (C, outH*outW) contraction for this offset.
                out += np.tensordot(kernel64[:, :, kh, kw], window, axes=([1], [0]))
        return out
