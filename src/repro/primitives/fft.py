"""The fft family: convolution via the convolution theorem.

Section 4: "the fft family of methods perform FFT convolution via the
convolution theorem, by first computing the Fourier transform of the input
image and the kernel, applying a pointwise multiplication, and then computing
the inverse Fourier transform of the resulting matrix to produce the output.
Our fft implementations compute 2D convolution as a sum of 1D FFT
convolutions, which requires less space than 2D FFT convolution at the cost
of more operations."

Both shapes are provided: the paper's row-wise 1D-sum formulation
(:class:`FFT1DPrimitive`) and a full 2D-FFT formulation
(:class:`FFT2DPrimitive`).  FFT convolution pays a large fixed transform cost
that is only amortized for large kernels, which is why Table 1 lists "small
kernel" as the family's bad case.
"""

from __future__ import annotations

import math

import numpy as np

from repro.graph.scenario import ConvScenario
from repro.layouts.layout import CHW, Layout
from repro.primitives.base import ConvPrimitive, PrimitiveFamily, PrimitiveTraits


def _fft_length(size: int) -> int:
    """Smallest power of two that holds a linear convolution of this size."""
    length = 1
    while length < size:
        length *= 2
    return length


class _FFTBase(ConvPrimitive):
    """Shared capability and trait structure of the fft family."""

    #: The spectral domain stays float: integer operands stop being integers
    #: after the forward transform, so there is no int8 FFT kernel to offer.
    #: fp16 is fine — the spectra are computed in float regardless, only the
    #: operand storage (and hence traffic and lane packing) narrows.
    supported_dtypes = frozenset({"fp32", "fp16"})

    def supports(self, scenario: ConvScenario, platform=None) -> bool:
        # Strided convolution would waste most of the transformed output;
        # like the paper's implementation we only offer unit stride.  Depthwise
        # scenarios are declined too: with a single input channel per group
        # there is no channel accumulation to amortize the spectra over, and a
        # separate FFT plan per group would have to be set up and torn down —
        # the implementation provides no such kernel.
        return (
            scenario.stride == 1
            and not scenario.is_depthwise
            and self.supports_dtype(scenario.dtype)
            and self.available_on(platform)
        )

    def traits(self) -> PrimitiveTraits:
        return PrimitiveTraits(
            gemm_fraction=0.55,
            locality=0.55,
            parallel_efficiency=0.78,
            per_call_overhead_ops=40_000.0,
        )


class FFT1DPrimitive(_FFTBase):
    """2D convolution as a sum of 1D FFT convolutions along image rows."""

    def __init__(
        self,
        name: str,
        input_layout: Layout = CHW,
        output_layout: Layout = CHW,
        vector_factor: int = 1,
    ) -> None:
        super().__init__(
            name=name,
            family=PrimitiveFamily.FFT,
            input_layout=input_layout,
            output_layout=output_layout,
            vector_factor=vector_factor,
            # Like 1D Winograd, the row-wise FFT sum is a low-memory CPU form
            # with no SIMT kernel; GPU libraries offer the full 2D FFT only.
            excluded_features=("simt",),
        )

    def arithmetic_ops(self, scenario: ConvScenario) -> float:
        c = scenario.c // scenario.groups
        length = _fft_length(scenario.w + scenario.k - 1)
        log_len = max(math.log2(length), 1.0)
        rows = scenario.h
        # Forward transforms of the input rows, kernel-row transforms (the
        # spectra are too large to keep precomputed for every filter),
        # pointwise complex multiplies and inverse transforms.
        filters = scenario.m // scenario.groups
        fft_cost = 5.0 * length * log_len
        forward = c * rows * fft_cost
        kernels = scenario.k * filters * c * fft_cost
        pointwise = scenario.k * filters * c * scenario.out_h * 6.0 * length
        inverse = scenario.k * filters * scenario.out_h * fft_cost
        # The kernel-row spectra are computed once per invocation and shared
        # by every image, so a minibatch amortizes them; the per-image
        # forward/pointwise/inverse work scales with the batch.
        per_image = forward + pointwise + inverse
        return scenario.groups * (scenario.batch * per_image + kernels)

    def workspace_elements(self, scenario: ConvScenario) -> float:
        c = scenario.c // scenario.groups
        length = _fft_length(scenario.w + scenario.k - 1)
        # One row-spectrum slab per channel plus a blocked window of the
        # precomputed kernel-row spectra (complex, hence the factor two); the
        # kernel spectra are streamed in blocks of at most 16 output maps.
        m_block = min(scenario.m // scenario.groups, 16)
        return float(2 * (c * scenario.h * length + m_block * c * scenario.k * length))

    def _compute(self, x_chw: np.ndarray, kernel: np.ndarray, scenario: ConvScenario) -> np.ndarray:
        c, k, m = scenario.c, scenario.k, scenario.m
        out_h, out_w = scenario.out_h, scenario.out_w
        length = _fft_length(scenario.w + k - 1)
        x64 = x_chw.astype(np.float64, copy=False)
        kernel64 = kernel.astype(np.float64, copy=False)

        out = np.zeros((m, out_h, out_w), dtype=np.float64)
        # Precompute kernel row spectra with the rows reversed so that the
        # circular convolution implements correlation.
        kernel_spectra = np.fft.rfft(kernel64[:, :, :, ::-1], n=length, axis=3)  # (M, C, K, F)
        for kh in range(k):
            rows = x64[:, kh : kh + out_h, :]  # (C, out_h, W)
            row_spectra = np.fft.rfft(rows, n=length, axis=2)  # (C, out_h, F)
            # Sum over channels of the pointwise product: (M, out_h, F).
            prod = np.einsum("mcf,chf->mhf", kernel_spectra[:, :, kh, :], row_spectra, optimize=True)
            conv = np.fft.irfft(prod, n=length, axis=2)
            # Full linear convolution with the reversed kernel row: the valid
            # correlation outputs start at index k-1.
            out += conv[:, :, k - 1 : k - 1 + out_w]
        return out


class FFT2DPrimitive(_FFTBase):
    """Full 2D-FFT convolution (more memory, fewer operations per pixel)."""

    def __init__(
        self,
        name: str,
        input_layout: Layout = CHW,
        output_layout: Layout = CHW,
        vector_factor: int = 1,
    ) -> None:
        super().__init__(
            name=name,
            family=PrimitiveFamily.FFT,
            input_layout=input_layout,
            output_layout=output_layout,
            vector_factor=vector_factor,
        )

    def arithmetic_ops(self, scenario: ConvScenario) -> float:
        c = scenario.c // scenario.groups
        fft_h = _fft_length(scenario.h + scenario.k - 1)
        fft_w = _fft_length(scenario.w + scenario.k - 1)
        size = fft_h * fft_w
        log_size = max(math.log2(size), 1.0)
        filters = scenario.m // scenario.groups
        fft_cost = 5.0 * size * log_size
        forward = c * fft_cost
        kernels = filters * c * fft_cost
        pointwise = filters * c * 6.0 * size
        inverse = filters * fft_cost
        # Kernel spectra are batch-amortized (computed once per invocation);
        # forward/pointwise/inverse run once per image.
        per_image = forward + pointwise + inverse
        return scenario.groups * (scenario.batch * per_image + kernels)

    def workspace_elements(self, scenario: ConvScenario) -> float:
        c = scenario.c // scenario.groups
        fft_h = _fft_length(scenario.h + scenario.k - 1)
        fft_w = _fft_length(scenario.w + scenario.k - 1)
        size = fft_h * fft_w
        # Complex spectra of the input channels, a blocked window of the
        # precomputed kernel spectra and the output spectra — still the large
        # footprint that makes 2D-FFT unattractive for DNN layers.
        filters = scenario.m // scenario.groups
        m_block = min(filters, 16)
        return float(2 * (c * size + m_block * c * size + filters * size))

    def _compute(self, x_chw: np.ndarray, kernel: np.ndarray, scenario: ConvScenario) -> np.ndarray:
        c, k, m = scenario.c, scenario.k, scenario.m
        out_h, out_w = scenario.out_h, scenario.out_w
        fft_h = _fft_length(scenario.h + k - 1)
        fft_w = _fft_length(scenario.w + k - 1)
        x64 = x_chw.astype(np.float64, copy=False)
        kernel64 = kernel.astype(np.float64, copy=False)

        input_spectra = np.fft.rfft2(x64, s=(fft_h, fft_w))  # (C, fft_h, F)
        kernel_spectra = np.fft.rfft2(kernel64[:, :, ::-1, ::-1], s=(fft_h, fft_w))  # (M, C, fft_h, F)
        prod = np.einsum("mchf,chf->mhf", kernel_spectra, input_spectra, optimize=True)
        conv = np.fft.irfft2(prod, s=(fft_h, fft_w))
        return conv[:, k - 1 : k - 1 + out_h, k - 1 : k - 1 + out_w]

    def _compute_batch(self, x_nchw: np.ndarray, kernel: np.ndarray, scenario: ConvScenario) -> np.ndarray:
        """Batched 2D-FFT path: one set of kernel spectra serves every image."""
        k = scenario.k
        out_h, out_w = scenario.out_h, scenario.out_w
        fft_h = _fft_length(scenario.h + k - 1)
        fft_w = _fft_length(scenario.w + k - 1)
        x64 = x_nchw.astype(np.float64, copy=False)
        kernel64 = kernel.astype(np.float64, copy=False)

        input_spectra = np.fft.rfft2(x64, s=(fft_h, fft_w))  # (N, C, fft_h, F)
        kernel_spectra = np.fft.rfft2(kernel64[:, :, ::-1, ::-1], s=(fft_h, fft_w))
        prod = np.einsum("mchf,nchf->nmhf", kernel_spectra, input_spectra, optimize=True)
        conv = np.fft.irfft2(prod, s=(fft_h, fft_w))
        return conv[:, :, k - 1 : k - 1 + out_h, k - 1 : k - 1 + out_w]
