"""The DNN primitive library.

The paper's evaluation uses a library of **more than 70 primitive routines**
implementing DNN convolution, drawn from six families (section 4):

* ``sum2d`` — the textbook sum-of-single-channels direct loop, used as the
  common baseline of every figure;
* the **direct-loop** family — six-deep loop nests with different loop orders,
  tilings and vectorization factors;
* the **im2** family — im2col / im2row: build a Toeplitz-style patch matrix
  and call a single GEMM;
* the **kn2** family — low-memory GEMM-based convolution (kn2row / kn2col)
  computed as an accumulation of k*k GEMMs;
* the **Winograd** family — fast convolution with a theoretically minimal
  number of multiplications, in 1D (low memory) and 2D (fewer operations)
  forms and for several tile sizes;
* the **fft** family — FFT convolution via the convolution theorem, as a sum
  of 1D FFT convolutions or as a full 2D FFT.

Every primitive is functionally executable on numpy tensors (and verified
against the reference convolution in the test suite), declares the data
layouts it consumes and produces, the scenarios it supports, and exposes the
operation/memory counts the analytical cost model prices.

:func:`default_primitive_library` instantiates the full library (>70 variants).
"""

from repro.primitives.base import (
    ConvPrimitive,
    PrimitiveFamily,
    UnsupportedScenarioError,
)
from repro.primitives.reference import reference_convolution, Sum2DPrimitive
from repro.primitives.direct import DirectLoopPrimitive
from repro.primitives.im2 import Im2ColPrimitive, Im2RowPrimitive
from repro.primitives.kn2 import Kn2RowPrimitive, Kn2ColPrimitive
from repro.primitives.winograd import (
    Winograd2DPrimitive,
    Winograd1DPrimitive,
    winograd_matrices,
)
from repro.primitives.fft import FFT1DPrimitive, FFT2DPrimitive
from repro.primitives.registry import PrimitiveLibrary, default_primitive_library

__all__ = [
    "ConvPrimitive",
    "PrimitiveFamily",
    "UnsupportedScenarioError",
    "reference_convolution",
    "Sum2DPrimitive",
    "DirectLoopPrimitive",
    "Im2ColPrimitive",
    "Im2RowPrimitive",
    "Kn2RowPrimitive",
    "Kn2ColPrimitive",
    "Winograd2DPrimitive",
    "Winograd1DPrimitive",
    "winograd_matrices",
    "FFT1DPrimitive",
    "FFT2DPrimitive",
    "PrimitiveLibrary",
    "default_primitive_library",
]
