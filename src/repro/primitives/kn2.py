"""The kn2 family: low-memory GEMM-based convolution (kn2row / kn2col).

Section 4: "the kn2 family of low-memory GEMM-based convolution algorithms
are presented by Vasudevan et al.  This family of approaches does not
construct a Toeplitz matrix, and instead computes convolution as the sum of
several matrix multiplications.  We use variants of the kn2 family that
compute the sum of GEMMs as an accumulation and achieve good execution times
with low additional memory."

For every kernel offset ``(kh, kw)`` the ``(M, C)`` slice of the kernel is
multiplied with the ``(C, H*W)`` image matrix and the result is shift-added
into the output.  There are ``K^2`` small GEMMs instead of one big one, and
only an ``(M, H*W)`` scratch buffer (or none, for the accumulating variants)
is needed.  The approach requires unit stride (Table 1: "Strided: --",
"Bad cases: few channels").
"""

from __future__ import annotations

import numpy as np

from repro.graph.scenario import ConvScenario
from repro.layouts.layout import CHW, HWC, Layout
from repro.primitives.base import ConvPrimitive, PrimitiveFamily, PrimitiveTraits


class _Kn2Base(ConvPrimitive):
    """Shared implementation of the kn2row / kn2col variants.

    Parameters
    ----------
    accumulating:
        If ``True`` the per-offset GEMM results are accumulated directly into
        the output (no scratch buffer); if ``False`` a full ``(M, H*W)``
        scratch buffer per offset is used (slightly better GEMM shape, more
        memory).
    """

    def __init__(self, *args, accumulating: bool = True, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.accumulating = accumulating

    def supports(self, scenario: ConvScenario, platform=None) -> bool:
        # The shift-add formulation is only efficient (and only implemented)
        # for unit-stride convolution.  Depthwise scenarios are declined: the
        # per-offset (M, C) x (C, H*W) GEMM degenerates to a scalar-vector
        # product per group (the family's "few channels" bad case taken to its
        # limit), which the implementation does not provide a kernel for.
        return (
            scenario.stride == 1
            and not scenario.is_depthwise
            and self.supports_dtype(scenario.dtype)
            and self.available_on(platform)
        )

    def traits(self) -> PrimitiveTraits:
        return PrimitiveTraits(
            gemm_fraction=0.78,
            locality=0.72,
            parallel_efficiency=0.84,
            per_call_overhead_ops=4_000.0 * (1.0 if self.accumulating else 1.5),
        )

    def workspace_elements(self, scenario: ConvScenario) -> float:
        if self.accumulating:
            # Only one (M, H*W) partial-result buffer reused across offsets.
            return float(scenario.m * scenario.h * scenario.w)
        return float(scenario.k * scenario.k * scenario.m * scenario.h * scenario.w) / scenario.k

    def _compute(self, x_chw: np.ndarray, kernel: np.ndarray, scenario: ConvScenario) -> np.ndarray:
        if scenario.stride != 1:
            raise ValueError("kn2 primitives require unit stride")
        c, h, w = scenario.c, scenario.h, scenario.w
        k, m = scenario.k, scenario.m
        out_h, out_w = scenario.out_h, scenario.out_w
        x64 = x_chw.astype(np.float64, copy=False)
        image_matrix = x64.reshape(c, h * w)
        kernel64 = kernel.astype(np.float64, copy=False)
        out = np.zeros((m, out_h, out_w), dtype=np.float64)
        for kh in range(k):
            for kw in range(k):
                # (M, C) x (C, H*W) GEMM for this kernel offset.
                partial = kernel64[:, :, kh, kw] @ image_matrix
                partial = partial.reshape(m, h, w)
                # Shift-add: output pixel (oh, ow) needs input pixel (oh+kh, ow+kw).
                out += partial[:, kh : kh + out_h, kw : kw + out_w]
        return out

    def _compute_batch(self, x_nchw: np.ndarray, kernel: np.ndarray, scenario: ConvScenario) -> np.ndarray:
        """Batched shift-add: each per-offset GEMM contracts all images at once."""
        if scenario.stride != 1:
            raise ValueError("kn2 primitives require unit stride")
        c, h, w = scenario.c, scenario.h, scenario.w
        k, m = scenario.k, scenario.m
        out_h, out_w = scenario.out_h, scenario.out_w
        n = x_nchw.shape[0]
        x64 = x_nchw.astype(np.float64, copy=False)
        image_matrix = x64.reshape(n, c, h * w)
        kernel64 = kernel.astype(np.float64, copy=False)
        out = np.zeros((n, m, out_h, out_w), dtype=np.float64)
        for kh in range(k):
            for kw in range(k):
                partial = np.einsum(
                    "mc,ncp->nmp", kernel64[:, :, kh, kw], image_matrix, optimize=True
                ).reshape(n, m, h, w)
                out += partial[:, :, kh : kh + out_h, kw : kw + out_w]
        return out


class Kn2RowPrimitive(_Kn2Base):
    """kn2row: channel-minor (HWC) data, row-major shift-add accumulation."""

    def __init__(
        self,
        name: str,
        accumulating: bool = True,
        vector_factor: int = 1,
        input_layout: Layout = HWC,
        output_layout: Layout = HWC,
    ) -> None:
        super().__init__(
            name,
            PrimitiveFamily.KN2,
            input_layout=input_layout,
            output_layout=output_layout,
            vector_factor=vector_factor,
            accumulating=accumulating,
        )


class Kn2ColPrimitive(_Kn2Base):
    """kn2col: channel-major (CHW) data, column-major shift-add accumulation."""

    def __init__(
        self,
        name: str,
        accumulating: bool = True,
        vector_factor: int = 1,
        input_layout: Layout = CHW,
        output_layout: Layout = CHW,
    ) -> None:
        super().__init__(
            name,
            PrimitiveFamily.KN2,
            input_layout=input_layout,
            output_layout=output_layout,
            vector_factor=vector_factor,
            accumulating=accumulating,
        )
