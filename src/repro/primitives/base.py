"""Base classes for DNN convolution primitives.

A *primitive* is one concrete routine implementing DNN convolution.  The
paper models a primitive as the 3-tuple ``{L_in, P, L_out}`` — input layout,
primitive identifier, output layout (section 3): a primitive only accepts
inputs in its declared layout and only produces outputs in its declared
layout, and connecting two primitives whose layouts disagree requires a data
layout transformation.

Every primitive here is *functionally executable*: :meth:`ConvPrimitive.execute`
computes a numerically correct convolution on numpy tensors, which the test
suite verifies against the reference implementation.  In addition, each
primitive exposes the quantities the analytical platform model prices —
arithmetic operation count, memory traffic and workspace footprint — which is
how the reproduction substitutes for wall-clock profiling of hand-tuned
C/assembly kernels on the paper's two hardware platforms (see DESIGN.md).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, FrozenSet, Iterable, Optional, Tuple

import numpy as np

from repro.graph.scenario import DTYPES, ConvScenario
from repro.layouts.layout import CHW, Layout
from repro.layouts.tensor import LayoutTensor, fp16_round_trip, quantize_symmetric

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.cost.platform import Platform


class UnsupportedScenarioError(ValueError):
    """Raised when a primitive is executed on a scenario it does not support."""


class PrimitiveFamily(str, enum.Enum):
    """The six convolution algorithm families of section 4 of the paper."""

    SUM2D = "sum2d"
    DIRECT = "direct"
    IM2 = "im2"
    KN2 = "kn2"
    WINOGRAD = "winograd"
    FFT = "fft"


@dataclass(frozen=True)
class PrimitiveTraits:
    """Static, platform-independent characteristics used by the cost model.

    Attributes
    ----------
    gemm_fraction:
        Fraction of the arithmetic performed inside large, regular GEMM-like
        kernels (which achieve high fractions of machine peak) as opposed to
        irregular scalar code.
    locality:
        A [0, 1] score describing the spatial/temporal locality of the
        memory access pattern of the non-GEMM portion of the algorithm.
    parallel_efficiency:
        Fraction of ideal speedup achieved under multithreaded execution.
    per_call_overhead_ops:
        Fixed overhead (scheduling, buffer management, transform setup)
        expressed in scalar-operation equivalents, charged once per layer
        invocation.  Penalizes algorithms that are expensive to set up on
        tiny layers (e.g. FFT plans, Winograd transforms on 1x1-sized work).
    """

    gemm_fraction: float
    locality: float
    parallel_efficiency: float
    per_call_overhead_ops: float = 0.0


class ConvPrimitive:
    """Abstract base class for convolution primitives.

    Parameters
    ----------
    name:
        Unique primitive identifier, e.g. ``"winograd_2d_m2_r3_vf8"``.
    family:
        The algorithm family (section 4 of the paper).
    input_layout, output_layout:
        The layouts consumed and produced.  An edge between two primitives is
        legal iff the producer's output layout equals the consumer's input
        layout; otherwise the legalizer must insert transformations.
    vector_factor:
        The SIMD width (FP32 lanes) the variant is written for: 1 (scalar),
        4 (NEON) or 8 (AVX2).  A variant whose vector factor exceeds the
        platform's native width is heavily penalized by the cost model,
        which is how the selector ends up picking VF8 variants on Haswell and
        VF4 variants on Cortex-A57 (Figure 4 of the paper).
    requires_features, excluded_features:
        Per-platform gating: when :meth:`supports` is asked about a concrete
        :class:`~repro.cost.platform.Platform`, the primitive declines
        platforms missing any required feature or exhibiting any excluded
        one (e.g. the row-streaming 1D Winograd/FFT forms do not exist on
        ``simt`` machines).  Both default to empty — available everywhere.
    supported_dtypes:
        The numeric precisions this routine implements.  Defaults to all of
        them; families whose algorithm cannot run below fp32 restrict the
        set, either per instance (this argument) or for a whole family with
        a class-level ``supported_dtypes`` declaration (FFT declines int8 —
        the spectral domain stays float — see
        :class:`~repro.primitives.fft._FFTBase`).  :meth:`supports` declines
        any scenario whose dtype is not in the set, so cost tables never
        price an impossible (primitive, precision) pairing.
    """

    #: Class-level default; subclasses may narrow it for the whole family.
    supported_dtypes: FrozenSet[str] = frozenset(DTYPES)

    def __init__(
        self,
        name: str,
        family: PrimitiveFamily,
        input_layout: Layout = CHW,
        output_layout: Layout = CHW,
        vector_factor: int = 1,
        requires_features: Iterable[str] = (),
        excluded_features: Iterable[str] = (),
        supported_dtypes: Optional[Iterable[str]] = None,
    ) -> None:
        if vector_factor < 1:
            raise ValueError("vector_factor must be >= 1")
        self.name = name
        self.family = family
        self.input_layout = input_layout
        self.output_layout = output_layout
        self.vector_factor = vector_factor
        self.requires_features: FrozenSet[str] = frozenset(requires_features)
        self.excluded_features: FrozenSet[str] = frozenset(excluded_features)
        if supported_dtypes is not None:
            # An explicit argument narrows (or widens) the class declaration.
            self.supported_dtypes = frozenset(supported_dtypes)
        unknown = self.supported_dtypes - set(DTYPES)
        if unknown:
            raise ValueError(f"unknown dtypes {sorted(unknown)}; valid: {DTYPES}")

    # -- capability -------------------------------------------------------------

    def supports(
        self, scenario: ConvScenario, platform: Optional["Platform"] = None
    ) -> bool:
        """Whether this primitive can implement the scenario on the platform.

        ``platform=None`` asks the platform-independent question ("can this
        routine compute the convolution at all?" — what :meth:`execute`
        checks); passing a platform additionally applies the capability
        gating of :attr:`requires_features` / :attr:`excluded_features`, so
        cost tables never price a variant the platform does not offer.
        The scenario's dtype is part of the platform-independent question:
        a routine that does not implement the precision declines outright.
        """
        return self.supports_dtype(scenario.dtype) and self.available_on(platform)

    def supports_dtype(self, dtype: str) -> bool:
        """Whether this routine has a compute path at the given precision."""
        return dtype in self.supported_dtypes

    def available_on(self, platform: Optional["Platform"]) -> bool:
        """Whether this primitive exists at all on the given platform."""
        if platform is None:
            return True
        if not self.requires_features <= platform.features:
            return False
        return not (self.excluded_features & platform.features)

    def traits(self) -> PrimitiveTraits:
        """Platform-independent characteristics priced by the cost model."""
        raise NotImplementedError

    # -- work estimates ------------------------------------------------------------

    def arithmetic_ops(self, scenario: ConvScenario) -> float:
        """Floating-point operations actually executed by this algorithm.

        Direct, im2 and kn2 algorithms all perform the textbook operation
        count; fast algorithms (Winograd) perform fewer multiplications and
        FFT-based convolution has an asymptotically different count.
        """
        return float(scenario.flops())

    def workspace_elements(self, scenario: ConvScenario) -> float:
        """Extra scratch elements allocated beyond input, kernel and output.

        This is the *per-image* scratch footprint: batched execution streams
        the images of a minibatch through the same buffers, so the allocation
        does not grow with the batch (the traffic through it does — see
        :meth:`memory_traffic_elements`).
        """
        return 0.0

    def inner_working_set_elements(self, scenario: ConvScenario) -> float:
        """Elements the innermost kernel needs resident in the per-core cache.

        Zero (the default) means the algorithm's inner loops are blocked to
        fit any reasonable cache (GEMM-based algorithms tile their operands by
        construction).  Algorithms whose inner stage must keep a structurally
        determined working set live — such as the per-tile transformed-domain
        buffers of 2D Winograd — report it here, and the cost model penalizes
        variants whose inner working set overflows the per-core cache.  This
        is the mechanism behind the paper's observation that the low-memory
        1D Winograd form wins on the small-cache Cortex-A57 while the
        operation-minimal 2D form wins on the Haswell part (Figure 4).
        """
        return 0.0

    def memory_traffic_elements(self, scenario: ConvScenario) -> float:
        """Tensor elements moved to/from memory, including workspace traffic.

        Input and output elements already scale with the scenario's batch;
        the kernel is read once per invocation regardless of batch, and the
        per-image workspace is written and read once per image.
        """
        base = (
            scenario.input_elements()
            + scenario.output_elements()
            + scenario.kernel_elements()
        )
        return float(base) + 2.0 * scenario.batch * self.workspace_elements(scenario)

    # -- execution ---------------------------------------------------------------

    def execute(
        self,
        tensor: LayoutTensor,
        kernel: np.ndarray,
        scenario: ConvScenario,
    ) -> LayoutTensor:
        """Run the primitive.

        ``tensor`` must be stored in :attr:`input_layout`; the kernel is a
        ``(M, C/groups, K, K)`` array shared by every image of the batch; the
        result is produced in :attr:`output_layout`.  A batched scenario
        requires a batched tensor of the same batch size and vice versa.
        """
        if not self.supports(scenario):
            raise UnsupportedScenarioError(
                f"{self.name} does not support scenario [{scenario.describe()}]"
            )
        if tensor.layout != self.input_layout:
            raise UnsupportedScenarioError(
                f"{self.name} expects layout {self.input_layout.name}, "
                f"got {tensor.layout.name}"
            )
        if tensor.logical_shape != scenario.input_shape:
            raise ValueError(
                f"input tensor shape {tensor.logical_shape} does not match "
                f"scenario input shape {scenario.input_shape}"
            )
        kernel = np.asarray(kernel)
        if kernel.shape != scenario.kernel_shape:
            raise ValueError(
                f"kernel shape {kernel.shape} does not match scenario kernel "
                f"shape {scenario.kernel_shape}"
            )
        out_dtype = tensor.dtype if tensor.dtype.kind == "f" else np.float32
        if tensor.batch is not None:
            if tensor.batch != scenario.batch:
                raise ValueError(
                    f"input tensor batch {tensor.batch} does not match "
                    f"scenario batch {scenario.batch}"
                )
            out_nchw = self._run_precision(
                tensor.to_nchw(), kernel, scenario,
                lambda x, k: self._run_batched(x, k, scenario.per_image),
            )
            expected_batched = scenario.batched_output_shape
            if out_nchw.shape != expected_batched:
                raise RuntimeError(
                    f"{self.name} produced shape {out_nchw.shape}, expected {expected_batched}"
                )
            return LayoutTensor.from_nchw(
                out_nchw.astype(out_dtype, copy=False), self.output_layout
            )
        if scenario.batch != 1:
            raise ValueError(
                f"scenario has batch {scenario.batch} but the input tensor is "
                "not batched; build it with LayoutTensor.from_nchw"
            )
        out_chw = self._run_precision(
            tensor.to_chw(), kernel, scenario,
            lambda x, k: self._run_grouped(x, k, scenario),
        )
        expected = scenario.output_shape
        if out_chw.shape != expected:
            raise RuntimeError(
                f"{self.name} produced shape {out_chw.shape}, expected {expected}"
            )
        return LayoutTensor.from_chw(out_chw.astype(out_dtype, copy=False), self.output_layout)

    # -- helpers for subclasses ----------------------------------------------------

    def _run_precision(self, x, kernel, scenario: ConvScenario, run) -> np.ndarray:
        """Dispatch the convolution at the scenario's precision.

        Every family's ``_compute`` path is value-polymorphic (it accumulates
        in float64), so reduced precision is applied at the operand level —
        exactly how the quantized kernels it models work:

        * ``fp16``: operands are rounded to half precision, accumulation
          stays wide (fp16 FMA units accumulate in fp32).
        * ``int8``: symmetric per-tensor quantization of activations and
          weights; the integer-valued products are accumulated exactly (an
          int32 accumulator — float64 holds integer sums below 2**53 without
          rounding), then rescaled by the two tensor scales.  Transform
          families (Winograd) run their fractional transforms over the
          quantized operands, which is where their extra modelled accuracy
          loss comes from.
        """
        if scenario.dtype == "fp16":
            return run(fp16_round_trip(x), fp16_round_trip(kernel))
        if scenario.dtype == "int8":
            qx, x_scale = quantize_symmetric(x)
            qk, k_scale = quantize_symmetric(kernel)
            acc = run(qx.astype(np.float64), qk.astype(np.float64))
            return acc * (x_scale * k_scale)
        return run(x, kernel)

    def _run_batched(
        self, x_nchw: np.ndarray, kernel: np.ndarray, scenario: ConvScenario
    ) -> np.ndarray:
        """Compute a batched convolution; ``scenario`` is the per-image scenario.

        Ungrouped scenarios first try the family's vectorized
        :meth:`_compute_batch` path; everything else (and families without
        one) falls back to a per-image loop over :meth:`_run_grouped`, which
        is correct for every family but pays Python-loop overhead once per
        image.  The whole-batch input is only padded when the family actually
        overrides the fast path — the fallback pads per image.
        """
        has_fast_path = type(self)._compute_batch is not ConvPrimitive._compute_batch
        if scenario.groups == 1 and has_fast_path:
            padded, inner = _pad_scenario(x_nchw, scenario)
            fast = self._compute_batch(padded, kernel, inner)
            if fast is not None:
                return fast
        return np.stack(
            [self._run_grouped(x_nchw[i], kernel, scenario) for i in range(x_nchw.shape[0])]
        )

    def _compute_batch(
        self, x_nchw: np.ndarray, kernel: np.ndarray, scenario: ConvScenario
    ) -> Optional[np.ndarray]:
        """Optional vectorized path over the batch axis.

        ``x_nchw`` is already padded and ``scenario`` is the per-image
        scenario with ``padding=0`` and ``groups=1``.  Families whose loop
        structure vectorizes naturally across images override this to return
        the ``(N, M, out_H, out_W)`` result; the ``None`` default falls back
        to the per-image loop.
        """
        return None

    def _run_grouped(
        self, x_chw: np.ndarray, kernel: np.ndarray, scenario: ConvScenario
    ) -> np.ndarray:
        """Handle padding and grouped convolution, delegating per-group work."""
        padded, inner = _pad_scenario(x_chw, scenario)
        if scenario.groups == 1:
            return self._compute(padded, kernel, inner)
        if inner.is_depthwise and inner.m == inner.c:
            fast = self._compute_depthwise(padded, kernel, inner)
            if fast is not None:
                return fast
        group_c = scenario.c // scenario.groups
        group_m = scenario.m // scenario.groups
        sub_scenario = ConvScenario(
            c=group_c,
            h=inner.h,
            w=inner.w,
            stride=inner.stride,
            k=inner.k,
            m=group_m,
            padding=0,
            groups=1,
            dtype=inner.dtype,
        )
        outputs = []
        for g in range(scenario.groups):
            x_group = padded[g * group_c : (g + 1) * group_c]
            k_group = kernel[g * group_m : (g + 1) * group_m]
            outputs.append(self._compute(x_group, k_group, sub_scenario))
        return np.concatenate(outputs, axis=0)

    def _compute_depthwise(
        self, x_chw: np.ndarray, kernel: np.ndarray, scenario: ConvScenario
    ) -> Optional[np.ndarray]:
        """Optional batched path for depthwise scenarios (``groups == c == m``).

        ``x_chw`` is already padded, ``scenario`` has ``padding=0`` and the
        kernel has shape ``(C, 1, K, K)``.  Families whose loop structure
        vectorizes naturally across channels override this; the ``None``
        default falls back to the generic per-group loop, which is correct for
        every family but pays Python-loop overhead once per channel.
        """
        return None

    def _compute(
        self, x_chw: np.ndarray, kernel: np.ndarray, scenario: ConvScenario
    ) -> np.ndarray:
        """Compute a single-group, already-padded convolution in CHW space.

        ``scenario`` has ``padding=0`` and ``groups=1``; ``x_chw`` has shape
        ``scenario.input_shape`` and the kernel ``scenario.kernel_shape``.
        Subclasses implement their algorithm here.
        """
        raise NotImplementedError

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(name={self.name!r}, "
            f"{self.input_layout.name}->{self.output_layout.name}, vf={self.vector_factor})"
        )


def depthwise_shifted_accumulation(
    x_chw: np.ndarray, kernel: np.ndarray, scenario: ConvScenario
) -> np.ndarray:
    """Depthwise convolution by shifted-window accumulation over all channels.

    The common loop structure of the direct/sum2d depthwise paths: no channel
    reduction, one scaled window accumulation per kernel offset, vectorized
    across every feature map at once.  ``x_chw`` is already padded,
    ``scenario`` has ``padding=0`` and ``groups == c == m``; the kernel has
    shape ``(C, 1, K, K)``.
    """
    stride, k = scenario.stride, scenario.k
    out_h, out_w = scenario.out_h, scenario.out_w
    x64 = x_chw.astype(np.float64, copy=False)
    kernel64 = kernel.astype(np.float64, copy=False)
    out = np.zeros(scenario.output_shape, dtype=np.float64)
    for kh in range(k):
        for kw in range(k):
            window = x64[
                :,
                kh : kh + (out_h - 1) * stride + 1 : stride,
                kw : kw + (out_w - 1) * stride + 1 : stride,
            ]
            out += kernel64[:, 0, kh, kw][:, None, None] * window
    return out


def _pad_scenario(
    x: np.ndarray, scenario: ConvScenario
) -> Tuple[np.ndarray, ConvScenario]:
    """Zero-pad the spatial axes and return the equivalent padding-free scenario.

    Works on a single ``(C, H, W)`` image or a batched ``(N, C, H, W)``
    tensor: only the trailing two (spatial) axes are padded.
    """
    if scenario.padding == 0:
        return x, scenario
    pad = scenario.padding
    widths = ((0, 0),) * (x.ndim - 2) + ((pad, pad), (pad, pad))
    padded = np.pad(x, widths, mode="constant")
    inner = replace(
        scenario, h=scenario.h + 2 * pad, w=scenario.w + 2 * pad, padding=0
    )
    return padded, inner
