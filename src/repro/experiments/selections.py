"""PBQP selections for AlexNet on the two platforms (Figure 4 of the paper).

Figure 4 shows which primitive the PBQP formulation selects for each of
AlexNet's five convolution layers under multithreaded execution on the ARM
Cortex-A57 and the Intel Core i5-4570.  The paper highlights three structural
properties of the selections, which the reproduction checks:

* conv1 (the K=11, stride-4 layer) gets an im2-family primitive on both
  platforms — no fast algorithm applies to it;
* the remaining layers get Winograd-family primitives on both platforms;
* the Intel selection favours 2D Winograd with 8-wide (AVX2) vector variants,
  while the ARM selection favours the low-memory 1D Winograd form and 4-wide
  (NEON) vector variants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.cost.platform import PLATFORMS, Platform
from repro.primitives.registry import PrimitiveLibrary

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api import Session


@dataclass
class SelectionComparison:
    """The per-layer PBQP selections on two platforms."""

    network: str
    threads: int
    #: platform name -> layer name -> selected primitive name.
    selections: Dict[str, Dict[str, str]] = field(default_factory=dict)

    def layers(self) -> List[str]:
        first = next(iter(self.selections.values()))
        return list(first.keys())

    def format(self) -> str:
        platforms = list(self.selections.keys())
        header = f"{'layer':<12}" + "".join(f"{p:>28}" for p in platforms)
        lines = [
            f"PBQP selections for {self.network} (threads={self.threads})",
            header,
            "-" * len(header),
        ]
        for layer in self.layers():
            row = f"{layer:<12}"
            for platform in platforms:
                row += f"{self.selections[platform][layer]:>28}"
            lines.append(row)
        return "\n".join(lines)


def selection_comparison(
    network: str,
    threads: int = 4,
    platforms: Optional[List[Platform]] = None,
    library: Optional[PrimitiveLibrary] = None,
    session: Optional["Session"] = None,
) -> SelectionComparison:
    """The per-layer PBQP selections for one zoo network across platforms.

    Figure 4 of the paper shows this comparison for AlexNet; the harness is
    generic so the residual/depthwise zoo extensions (ResNet-18,
    MobileNet-v1) get the same per-platform selection tables.
    """
    if session is None:
        from repro.api import Session

        session = Session(library=library)
    platforms = platforms or [PLATFORMS["arm-cortex-a57"], PLATFORMS["intel-haswell"]]
    comparison = SelectionComparison(network=network, threads=threads)
    for platform in platforms:
        result = session.select(network, platform, strategy="pbqp", threads=threads)
        comparison.selections[platform.name] = result.plan.conv_selections()
    return comparison


def alexnet_selection_comparison(
    threads: int = 4,
    platforms: Optional[List[Platform]] = None,
    library: Optional[PrimitiveLibrary] = None,
    session: Optional["Session"] = None,
) -> SelectionComparison:
    """Reproduce Figure 4: the PBQP selections for AlexNet on ARM and Intel."""
    return selection_comparison(
        "alexnet", threads=threads, platforms=platforms, library=library, session=session
    )
