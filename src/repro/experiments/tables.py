"""Absolute single-inference times (Tables 2 and 3 of the paper).

Table 2 reports the single-inference time in milliseconds on the Intel Core
i5-4570 and Table 3 on the ARM Cortex-A57, for AlexNet and GoogLeNet, under
single-threaded and multithreaded execution, for four instantiations: the
SUM2D baseline, the Local Optimal (CHW) strategy, the PBQP selection, and
Caffe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.core.strategies import get_strategy
from repro.cost.platform import Platform
from repro.primitives.registry import PrimitiveLibrary

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api import Session

#: Column header -> registered strategy name, in paper order.
COLUMN_STRATEGIES: Dict[str, str] = {
    "SUM2D": "sum2d",
    "L.OPT": "local_optimal",
    "PBQP": "pbqp",
    "CAFFE": "caffe",
}

#: The columns of Tables 2 and 3, in paper order.
TABLE_COLUMNS: List[str] = list(COLUMN_STRATEGIES)

#: The networks of Tables 2 and 3 (the subset that runs on both platforms).
TABLE_NETWORKS: List[str] = ["alexnet", "googlenet"]


@dataclass
class AbsoluteTimeRow:
    """One row of Table 2 / Table 3."""

    network: str
    threads: int
    times_ms: Dict[str, float] = field(default_factory=dict)

    @property
    def mode(self) -> str:
        """The (S)/(M) marker the paper uses for single/multi-threaded rows."""
        return "M" if self.threads > 1 else "S"


def run_absolute_time_table(
    platform: Platform,
    networks: Optional[List[str]] = None,
    thread_counts: Tuple[int, ...] = (1, 4),
    library: Optional[PrimitiveLibrary] = None,
    session: Optional["Session"] = None,
) -> List[AbsoluteTimeRow]:
    """Compute every row of Table 2 (Intel) or Table 3 (ARM) for a platform.

    Pass a shared :class:`repro.api.Session` to reuse profiled cost tables
    across calls.
    """
    if session is None:
        from repro.api import Session

        session = Session(library=library)
    networks = networks if networks is not None else list(TABLE_NETWORKS)
    rows: List[AbsoluteTimeRow] = []
    for threads in thread_counts:
        for model_name in networks:
            context = session.context_for(model_name, platform, threads)
            row = AbsoluteTimeRow(network=model_name, threads=threads)
            for column, strategy_name in COLUMN_STRATEGIES.items():
                plan = get_strategy(strategy_name).build_plan(context)
                row.times_ms[column] = plan.total_ms
            rows.append(row)
    return rows


def format_absolute_table(rows: List[AbsoluteTimeRow], title: str) -> str:
    """Render rows in the layout of Tables 2 and 3."""
    header = f"{'Network':<18}" + "".join(f"{column:>12}" for column in TABLE_COLUMNS)
    lines = [title, header, "-" * len(header)]
    for row in rows:
        label = f"({row.mode}) {row.network}"
        line = f"{label:<18}"
        for column in TABLE_COLUMNS:
            line += f"{row.times_ms[column]:>12.2f}"
        lines.append(line)
    lines.append("(single inference time in ms; lower is better)")
    return "\n".join(lines)
