"""Batch-scaling study: how minibatch size shifts the PBQP selections.

The paper restricts its evaluation to batch size 1 (latency-sensitive
inference) but notes that minibatching is one more integer parameter of the
formulation.  With the batch threaded through the whole system (scenario,
cost model, store and executor), this harness asks the follow-up question:
*does the optimal instantiation change as the batch grows?*

For each batch size the study produces two plans against the same batched
cost tables:

* the **PBQP plan at that batch** — a fresh selection over the batched costs;
* the **replayed batch-1 plan** — the primitives and layouts the selector
  chose at batch 1, re-priced (legalized) at the larger batch.  This is what
  a deployment that profiles once at batch 1 and then serves minibatches
  would actually run.

The gap between the two is the price of ignoring the batch dimension during
selection, and the per-layer differences show *which* primitives overtake
which: fixed per-call setup (patch-matrix packing, Winograd/FFT transforms,
kernel spectra) amortizes over the batch, so transform/GEMM-heavy families
gain on the direct loops as the batch grows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.core.legalize import finalize_plan
from repro.core.plan import NetworkPlan
from repro.cost.platform import PLATFORMS, Platform
from repro.primitives.registry import PrimitiveLibrary

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api import Session
    from repro.core.selector import SelectionContext

#: The batch sizes swept by default (1 is the paper's setting).
DEFAULT_BATCHES: Tuple[int, ...] = (1, 4, 16, 64)


def replay_plan(
    context: "SelectionContext", base_plan: NetworkPlan, strategy: str = "replay"
) -> NetworkPlan:
    """Re-price a plan's choices under another context's cost tables.

    Keeps every per-layer choice of ``base_plan`` — the convolution
    primitives and the layouts of the non-convolution layers — and legalizes
    them against ``context`` (typically the same network priced at a
    different batch size), so the returned plan carries the costs that fixed
    assignment would incur there.
    """
    conv_primitives = base_plan.conv_selections()
    wildcard_layouts = {
        name: decision.output_layout
        for name, decision in base_plan.layer_decisions.items()
        if decision.primitive is None
    }
    return finalize_plan(context, strategy, conv_primitives, wildcard_layouts)


@dataclass
class BatchPoint:
    """The two plans (and their divergence) for one batch size."""

    batch: int
    #: Fresh PBQP selection over the batch-``batch`` cost tables.
    pbqp_plan: NetworkPlan
    #: The batch-1 PBQP plan re-priced at this batch.
    replayed_plan: NetworkPlan
    #: Convolution layers where the fresh selection differs from batch 1,
    #: mapped to (batch-1 primitive, batch-``batch`` primitive).
    selection_changes: Dict[str, Tuple[str, str]] = field(default_factory=dict)

    @property
    def pbqp_ms(self) -> float:
        return self.pbqp_plan.total_ms

    @property
    def replayed_ms(self) -> float:
        return self.replayed_plan.total_ms

    @property
    def pbqp_per_image_ms(self) -> float:
        return self.pbqp_plan.per_image_ms

    @property
    def replayed_per_image_ms(self) -> float:
        return self.replayed_plan.per_image_ms

    @property
    def advantage(self) -> float:
        """Speedup of re-selecting at this batch over replaying the batch-1 plan."""
        return self.replayed_ms / self.pbqp_ms


@dataclass
class BatchScalingResult:
    """The whole sweep for one (network, platform, threads)."""

    network: str
    platform: str
    threads: int
    points: List[BatchPoint] = field(default_factory=list)

    def point(self, batch: int) -> BatchPoint:
        for point in self.points:
            if point.batch == batch:
                return point
        raise KeyError(f"no batch {batch} in this sweep")

    def format(self) -> str:
        """Render the sweep as a table plus the per-layer divergences."""
        header = (
            f"{'batch':>6}{'pbqp ms':>12}{'replay ms':>12}"
            f"{'pbqp ms/img':>13}{'advantage':>11}{'changed':>9}"
        )
        lines = [
            f"Batch scaling — {self.network} on {self.platform} "
            f"({self.threads} thread{'s' if self.threads != 1 else ''})",
            header,
            "-" * len(header),
        ]
        for point in self.points:
            lines.append(
                f"{point.batch:>6}{point.pbqp_ms:>12.2f}{point.replayed_ms:>12.2f}"
                f"{point.pbqp_per_image_ms:>13.3f}{point.advantage:>10.3f}x"
                f"{len(point.selection_changes):>9}"
            )
        lines.append(
            "(replay = the batch-1 PBQP plan re-priced at each batch; "
            "advantage = replay / pbqp)"
        )
        for point in self.points:
            for layer, (before, after) in sorted(point.selection_changes.items()):
                lines.append(f"  batch {point.batch:>3}: {layer:<20} {before} -> {after}")
        return "\n".join(lines)


def run_batch_scaling(
    model_name: str,
    platform: Platform,
    batches: Sequence[int] = DEFAULT_BATCHES,
    threads: int = 1,
    library: Optional[PrimitiveLibrary] = None,
    session: Optional["Session"] = None,
) -> BatchScalingResult:
    """Sweep batch sizes for one network/platform, comparing fresh vs replayed plans.

    Pass a shared :class:`repro.api.Session` to reuse profiled contexts (the
    batch-1 context is shared with every other harness).
    """
    if session is None:
        from repro.api import Session

        session = Session(library=library)
    if 1 not in batches:
        batches = (1,) + tuple(batches)
    base = session.select(model_name, platform, strategy="pbqp", threads=threads, batch=1)
    base_selection = base.plan.conv_selections()

    result = BatchScalingResult(
        network=model_name, platform=platform.name, threads=threads
    )
    for batch in batches:
        fresh = session.select(
            model_name, platform, strategy="pbqp", threads=threads, batch=batch
        )
        context = session.context_for(model_name, platform, threads, batch)
        replayed = base.plan if batch == 1 else replay_plan(context, base.plan)
        changes = {
            layer: (base_selection[layer], primitive)
            for layer, primitive in fresh.plan.conv_selections().items()
            if base_selection[layer] != primitive
        }
        result.points.append(
            BatchPoint(
                batch=batch,
                pbqp_plan=fresh.plan,
                replayed_plan=replayed,
                selection_changes=changes,
            )
        )
    return result


def main() -> None:  # pragma: no cover - manual study entry point
    """Run the sweep on both modelled platforms and print the tables."""
    from repro.api import Session

    session = Session()
    for platform_name in ("intel-haswell", "arm-cortex-a57"):
        result = run_batch_scaling(
            "alexnet", PLATFORMS[platform_name], session=session
        )
        print(result.format())
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
