"""Experiment harnesses regenerating every table and figure of the paper.

Each module corresponds to one artifact of the evaluation section (see the
per-experiment index in DESIGN.md):

* :mod:`repro.experiments.whole_network` — Figures 5, 6, 7a, 7b (whole-network
  speedup over the single-threaded SUM2D baseline, per strategy);
* :mod:`repro.experiments.tables` — Tables 2 and 3 (absolute single-inference
  times for SUM2D / Local Optimal / PBQP / Caffe);
* :mod:`repro.experiments.selections` — Figure 4 (the primitives PBQP selects
  for AlexNet on the two platforms);
* :mod:`repro.experiments.family_traits` — Table 1 (qualitative strengths and
  weaknesses of the algorithm families);
* :mod:`repro.experiments.overhead` — section 5.4 (PBQP solve time);
* :mod:`repro.experiments.pbqp_example` — Figure 2 (the worked PBQP example);
* :mod:`repro.experiments.ablation` — the design-choice ablations called out
  in DESIGN.md (DT-cost awareness, exact vs heuristic solving);
* :mod:`repro.experiments.batch_scaling` — the post-paper batching study:
  how the PBQP selections shift as the minibatch size grows, versus replaying
  the batch-1 plan at larger batches;
* :mod:`repro.experiments.memory_budget` — the multi-objective study: how a
  peak-workspace cap flips per-layer family selections across the platform
  zoo (epsilon-constraint solves from :mod:`repro.multiobj.frontier`).
"""

from repro.experiments.whole_network import (
    EXTENDED_NETWORKS,
    WholeNetworkResult,
    run_whole_network,
    format_speedup_table,
)
from repro.experiments.tables import run_absolute_time_table, format_absolute_table
from repro.experiments.selections import (
    alexnet_selection_comparison,
    selection_comparison,
)
from repro.experiments.overhead import solver_overhead_report
from repro.experiments.family_traits import family_traits_table
from repro.experiments.pbqp_example import figure2_example
from repro.experiments.ablation import dt_cost_ablation, solver_mode_ablation
from repro.experiments.batch_scaling import (
    BatchScalingResult,
    replay_plan,
    run_batch_scaling,
)
from repro.experiments.memory_budget import (
    MemoryBudgetResult,
    run_memory_budget,
)


def __getattr__(name):
    """``FIGURE_STRATEGIES`` is a live view over the strategy registry."""
    if name == "FIGURE_STRATEGIES":
        from repro.core.strategies import figure_strategy_names

        return figure_strategy_names()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "EXTENDED_NETWORKS",
    "WholeNetworkResult",
    "run_whole_network",
    "format_speedup_table",
    "FIGURE_STRATEGIES",
    "run_absolute_time_table",
    "format_absolute_table",
    "alexnet_selection_comparison",
    "selection_comparison",
    "solver_overhead_report",
    "family_traits_table",
    "figure2_example",
    "dt_cost_ablation",
    "solver_mode_ablation",
    "BatchScalingResult",
    "replay_plan",
    "run_batch_scaling",
    "MemoryBudgetResult",
    "run_memory_budget",
]
