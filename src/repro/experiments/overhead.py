"""Optimization overhead (section 5.4 of the paper).

"Solving the PBQP optimization query took less than one second for each of
the networks we experimented with ...  In each case, the solver reported that
the optimal solution was found."

:func:`solver_overhead_report` measures, for every network of the evaluation,
the size of the PBQP instance, the wall-clock solve time and whether the
solution is provably optimal.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, TYPE_CHECKING

from repro.core.selector import PBQPSelector
from repro.cost.platform import PLATFORMS, Platform
from repro.primitives.registry import PrimitiveLibrary

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api import Session


@dataclass
class SolverOverheadEntry:
    """Solver statistics for one network."""

    network: str
    pbqp_nodes: int
    pbqp_edges: int
    solve_seconds: float
    total_seconds: float
    optimal: bool


def solver_overhead_report(
    networks: Optional[List[str]] = None,
    platform: Optional[Platform] = None,
    threads: int = 1,
    library: Optional[PrimitiveLibrary] = None,
    session: Optional["Session"] = None,
) -> List[SolverOverheadEntry]:
    """Measure PBQP construction + solve time for each evaluation network."""
    if session is None:
        from repro.api import Session

        session = Session(library=library)
    networks = networks or ["alexnet", "vgg-b", "vgg-c", "vgg-e", "googlenet"]
    platform = platform or PLATFORMS["intel-haswell"]
    entries: List[SolverOverheadEntry] = []
    selector = PBQPSelector()
    for model_name in networks:
        context = session.context_for(model_name, platform, threads)
        start = time.perf_counter()
        plan = selector.select(context)
        total = time.perf_counter() - start
        entries.append(
            SolverOverheadEntry(
                network=model_name,
                pbqp_nodes=int(plan.metadata["pbqp_nodes"]),
                pbqp_edges=int(plan.metadata["pbqp_edges"]),
                solve_seconds=float(plan.metadata["solver_seconds"]),
                total_seconds=total,
                optimal=bool(plan.metadata["pbqp_optimal"]),
            )
        )
    return entries


def format_overhead_report(entries: List[SolverOverheadEntry]) -> str:
    """Render the overhead report as a table."""
    header = f"{'network':<12}{'nodes':>8}{'edges':>8}{'solve (s)':>12}{'total (s)':>12}{'optimal':>10}"
    lines = ["PBQP optimization overhead (section 5.4)", header, "-" * len(header)]
    for entry in entries:
        lines.append(
            f"{entry.network:<12}{entry.pbqp_nodes:>8}{entry.pbqp_edges:>8}"
            f"{entry.solve_seconds:>12.4f}{entry.total_seconds:>12.3f}"
            f"{str(entry.optimal):>10}"
        )
    return "\n".join(lines)
