"""Whole-network benchmarking harness (Figures 5, 6, 7a and 7b of the paper).

The paper's figures plot, for each network and strategy, the speedup of one
forward pass over a common baseline: the whole network implemented with the
single-threaded sum-of-single-channels (SUM2D) algorithm.  The strategies are
the five per-family greedy instantiations (direct, im2, kn2, Winograd, fft),
the canonical-layout "Local Optimal (CHW)" strategy, the PBQP selection, and
the vendor frameworks available on each platform (MKL-DNN and Caffe on Intel,
ARM Compute Library and Caffe on ARM).

:func:`run_whole_network` evaluates every strategy for one
(network, platform, thread-count) combination and returns a
:class:`WholeNetworkResult` whose rows mirror the bars of the corresponding
figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.baselines import (
    family_greedy_plan,
    greedy_ignore_dt_plan,
    local_optimal_plan,
    sum2d_plan,
)
from repro.core.frameworks import armcl_like_plan, caffe_like_plan, mkldnn_like_plan
from repro.core.plan import NetworkPlan
from repro.core.selector import PBQPSelector, SelectionContext
from repro.cost.platform import PLATFORMS, Platform
from repro.models import build_model
from repro.primitives.base import PrimitiveFamily
from repro.primitives.registry import PrimitiveLibrary

#: The bar order used by the paper's figures.
FIGURE_STRATEGIES: List[str] = [
    "direct",
    "im2",
    "kn2",
    "winograd",
    "fft",
    "local_optimal",
    "pbqp",
    "mkldnn",
    "armcl",
    "caffe",
]

#: Networks per figure, exactly as in the paper (VGG-B/C/E do not fit on the
#: embedded board, so the ARM figures cover AlexNet and GoogLeNet only).
FIGURE_NETWORKS: Dict[str, List[str]] = {
    "intel-haswell": ["alexnet", "vgg-b", "vgg-c", "vgg-e", "googlenet"],
    "arm-cortex-a57": ["alexnet", "googlenet"],
}


@dataclass
class WholeNetworkResult:
    """All strategy measurements for one (network, platform, threads) cell."""

    network: str
    platform: str
    threads: int
    #: Total time of the common baseline (single-threaded SUM2D), in ms.
    baseline_ms: float
    #: Strategy name -> total time in ms.
    times_ms: Dict[str, float] = field(default_factory=dict)
    #: Strategy name -> the full plan (for inspection of selections).
    plans: Dict[str, NetworkPlan] = field(default_factory=dict)

    def speedup(self, strategy: str) -> float:
        """Speedup of a strategy over the common single-threaded SUM2D baseline."""
        return self.baseline_ms / self.times_ms[strategy]

    def speedups(self) -> Dict[str, float]:
        """Speedups of every evaluated strategy, in figure bar order."""
        return {
            name: self.speedup(name)
            for name in FIGURE_STRATEGIES
            if name in self.times_ms
        }

    def best_strategy(self) -> str:
        """The fastest strategy for this cell."""
        return min(self.times_ms, key=self.times_ms.get)


def run_whole_network(
    model_name: str,
    platform: Platform,
    threads: int = 1,
    library: Optional[PrimitiveLibrary] = None,
    include_frameworks: bool = True,
) -> WholeNetworkResult:
    """Evaluate every strategy of the figures for one network/platform/threads.

    The speedup baseline is always the *single-threaded* SUM2D instantiation,
    matching the paper's methodology ("all bars represent a speedup over a
    common baseline ... with single-threaded execution").
    """
    network = build_model(model_name)
    context = SelectionContext.create(
        network, platform=platform, library=library, threads=threads
    )
    if threads == 1:
        baseline_context = context
    else:
        baseline_context = SelectionContext.create(
            network, platform=platform, library=context.library, dt_graph=context.dt_graph, threads=1
        )

    baseline = sum2d_plan(baseline_context)
    result = WholeNetworkResult(
        network=model_name,
        platform=platform.name,
        threads=threads,
        baseline_ms=baseline.total_ms,
    )
    result.plans["sum2d_baseline"] = baseline

    def record(name: str, plan: NetworkPlan) -> None:
        result.times_ms[name] = plan.total_ms
        result.plans[name] = plan

    for family in (
        PrimitiveFamily.DIRECT,
        PrimitiveFamily.IM2,
        PrimitiveFamily.KN2,
        PrimitiveFamily.WINOGRAD,
        PrimitiveFamily.FFT,
    ):
        record(family.value, family_greedy_plan(context, family))

    record("local_optimal", local_optimal_plan(context))
    record("pbqp", PBQPSelector().select(context))
    record("greedy_ignore_dt", greedy_ignore_dt_plan(context))

    if include_frameworks:
        record("caffe", caffe_like_plan(context))
        if platform.vector_width >= 8:
            record("mkldnn", mkldnn_like_plan(context))
        else:
            record("armcl", armcl_like_plan(context))

    return result


def format_speedup_table(results: List[WholeNetworkResult], title: str) -> str:
    """Render a list of results as the text analogue of one of the figures."""
    strategies = [
        name
        for name in FIGURE_STRATEGIES
        if any(name in result.times_ms for result in results)
    ]
    header = f"{'network':<12}" + "".join(f"{name:>15}" for name in strategies)
    lines = [title, header, "-" * len(header)]
    for result in results:
        row = f"{result.network:<12}"
        for name in strategies:
            if name in result.times_ms:
                row += f"{result.speedup(name):>15.2f}"
            else:
                row += f"{'-':>15}"
        lines.append(row)
    lines.append("(speedup over single-threaded SUM2D baseline; higher is better)")
    return "\n".join(lines)
