"""Whole-network benchmarking harness (Figures 5, 6, 7a and 7b of the paper).

The paper's figures plot, for each network and strategy, the speedup of one
forward pass over a common baseline: the whole network implemented with the
single-threaded sum-of-single-channels (SUM2D) algorithm.  The strategies are
the five per-family greedy instantiations (direct, im2, kn2, Winograd, fft),
the canonical-layout "Local Optimal (CHW)" strategy, the PBQP selection, and
the vendor frameworks available on each platform (MKL-DNN and Caffe on Intel,
ARM Compute Library and Caffe on ARM).

:func:`run_whole_network` evaluates every strategy for one
(network, platform, thread-count) combination and returns a
:class:`WholeNetworkResult` whose rows mirror the bars of the corresponding
figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.core.plan import NetworkPlan
from repro.core.strategies import (
    BASELINE_STRATEGY,
    applicable_strategies,
    figure_strategy_names,
    get_strategy,
)
from repro.cost.platform import Platform
from repro.primitives.registry import PrimitiveLibrary

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api import Session

def __getattr__(name: str):
    """``FIGURE_STRATEGIES`` is a live view over the strategy registry.

    Evaluated on access (PEP 562) rather than snapshotted at import, so a
    strategy registered later with a ``figure_order`` immediately gains a
    figure bar.  Prefer :func:`repro.core.strategies.figure_strategy_names`
    in new code.
    """
    if name == "FIGURE_STRATEGIES":
        return figure_strategy_names()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

#: Networks per figure, exactly as in the paper (VGG-B/C/E do not fit on the
#: embedded board, so the ARM figures cover AlexNet and GoogLeNet only).
FIGURE_NETWORKS: Dict[str, List[str]] = {
    "intel-haswell": ["alexnet", "vgg-b", "vgg-c", "vgg-e", "googlenet"],
    "arm-cortex-a57": ["alexnet", "googlenet"],
}

#: Networks used for platforms without a dedicated figure in the paper
#: (anything registered beyond the original pair).
DEFAULT_FIGURE_NETWORKS: List[str] = ["alexnet", "googlenet"]

#: The post-paper zoo extension: residual (ResNet-18) and depthwise-separable
#: (MobileNet-v1) networks, per platform.  Both fit on the embedded board
#: (MobileNet was designed for it), so they run everywhere.
EXTENDED_NETWORKS: Dict[str, List[str]] = {
    "intel-haswell": ["resnet18", "mobilenet_v1"],
    "arm-cortex-a57": ["resnet18", "mobilenet_v1"],
}


@dataclass
class WholeNetworkResult:
    """All strategy measurements for one (network, platform, threads) cell."""

    network: str
    platform: str
    threads: int
    #: Total time of the common baseline (single-threaded SUM2D), in ms.
    baseline_ms: float
    #: Strategy name -> total time in ms.
    times_ms: Dict[str, float] = field(default_factory=dict)
    #: Strategy name -> the full plan (for inspection of selections).
    plans: Dict[str, NetworkPlan] = field(default_factory=dict)

    def speedup(self, strategy: str) -> float:
        """Speedup of a strategy over the common single-threaded SUM2D baseline."""
        return self.baseline_ms / self.times_ms[strategy]

    def speedups(self) -> Dict[str, float]:
        """Speedups of every evaluated strategy, in figure bar order."""
        return {
            name: self.speedup(name)
            for name in figure_strategy_names()
            if name in self.times_ms
        }

    def best_strategy(self) -> str:
        """The fastest strategy for this cell."""
        return min(self.times_ms, key=self.times_ms.get)


def run_whole_network(
    model_name: str,
    platform: Platform,
    threads: int = 1,
    library: Optional[PrimitiveLibrary] = None,
    include_frameworks: bool = True,
    session: Optional["Session"] = None,
) -> WholeNetworkResult:
    """Evaluate every strategy of the figures for one network/platform/threads.

    The speedup baseline is always the *single-threaded* SUM2D instantiation,
    matching the paper's methodology ("all bars represent a speedup over a
    common baseline ... with single-threaded execution").

    Pass a shared :class:`repro.api.Session` to reuse profiled cost tables
    across calls (and, with a session ``cache_dir``, across processes).
    """
    if session is None:
        from repro.api import Session

        session = Session(library=library)
    context = session.context_for(model_name, platform, threads)
    if threads == 1:
        baseline_context = context
    else:
        baseline_context = session.context_for(model_name, platform, 1)

    baseline = get_strategy(BASELINE_STRATEGY).build_plan(baseline_context)
    result = WholeNetworkResult(
        network=model_name,
        platform=platform.name,
        threads=threads,
        baseline_ms=baseline.total_ms,
    )
    result.plans["sum2d_baseline"] = baseline

    for strategy in applicable_strategies(context, include_frameworks=include_frameworks):
        if strategy.name == BASELINE_STRATEGY:
            continue  # the baseline bar is the single-threaded plan above
        plan = strategy.build_plan(context)
        result.times_ms[strategy.name] = plan.total_ms
        result.plans[strategy.name] = plan

    return result


def format_speedup_table(results: List[WholeNetworkResult], title: str) -> str:
    """Render a list of results as the text analogue of one of the figures."""
    strategies = [
        name
        for name in figure_strategy_names()
        if any(name in result.times_ms for result in results)
    ]
    header = f"{'network':<12}" + "".join(f"{name:>15}" for name in strategies)
    lines = [title, header, "-" * len(header)]
    for result in results:
        row = f"{result.network:<12}"
        for name in strategies:
            if name in result.times_ms:
                row += f"{result.speedup(name):>15.2f}"
            else:
                row += f"{'-':>15}"
        lines.append(row)
    lines.append("(speedup over single-threaded SUM2D baseline; higher is better)")
    return "\n".join(lines)
