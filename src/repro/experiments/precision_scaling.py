"""Precision-scaling study: how numeric precision shifts the PBQP selections.

The paper prices every primitive in fp32.  With dtype threaded through the
whole system (scenario, primitives, cost model, store, frontier and
executor), this harness asks the follow-up question the quantization era
makes unavoidable: *is the optimal int8 instantiation the quantized fp32
plan?*

For each precision the study produces two plans against the same
precision-priced cost tables:

* the **PBQP plan at that precision** — a fresh selection over tables priced
  with the precision's lane widths, traffic and capability gates;
* the **quantized replay** — the primitives and layouts the selector chose
  at fp32, re-priced (legalized) under the narrow-precision tables.  This is
  what a deployment that selects once in fp32 and then "just quantizes"
  would actually run.

The gap between the two is the price of quantizing after selection instead
of selecting under quantization.  It is nonzero for a structural reason: the
int8 lane-packing features (``vnni``/``dotprod``) quadruple the arithmetic
rate of the GEMM-style families but not the plain loops, FFT declines int8
outright, and Winograd's int8 numerical fragility is priced as an accuracy
penalty — so the relative order of the families changes, and with it the
whole-network optimum.

The frontier section exercises the third axis end-to-end: with
``accuracy_proxy`` as a fourth objective, :meth:`Session.plan_frontier`
spans all precisions and must place an int8 plan at min-time and the fp32
plan at max-accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.cost.platform import PLATFORMS, Platform
from repro.experiments.batch_scaling import replay_plan
from repro.core.plan import NetworkPlan
from repro.graph.scenario import DTYPES
from repro.primitives.registry import PrimitiveLibrary

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api import Session
    from repro.multiobj.frontier import ParetoFrontier

#: The precisions swept by default (fp32 is the paper's setting).
DEFAULT_DTYPES: Tuple[str, ...] = DTYPES


@dataclass
class PrecisionPoint:
    """The two plans (and their divergence) for one precision."""

    dtype: str
    #: Fresh PBQP selection over the precision-priced cost tables.
    pbqp_plan: NetworkPlan
    #: The fp32 PBQP plan re-priced (quantized post hoc) at this precision.
    replayed_plan: NetworkPlan
    #: Convolution layers where the fresh selection differs from fp32,
    #: mapped to (fp32 primitive, this-precision primitive).
    selection_changes: Dict[str, Tuple[str, str]] = field(default_factory=dict)

    @property
    def pbqp_ms(self) -> float:
        return self.pbqp_plan.total_ms

    @property
    def replayed_ms(self) -> float:
        return self.replayed_plan.total_ms

    @property
    def accuracy_proxy(self) -> float:
        """Modelled accuracy loss of the fresh plan (sum of per-layer losses)."""
        return self.pbqp_plan.accuracy_proxy

    @property
    def advantage(self) -> float:
        """Speedup of selecting under this precision over quantizing the fp32 plan."""
        return self.replayed_ms / self.pbqp_ms


@dataclass
class PrecisionScalingResult:
    """The whole sweep for one (network, platform, threads)."""

    network: str
    platform: str
    threads: int
    points: List[PrecisionPoint] = field(default_factory=list)

    def point(self, dtype: str) -> PrecisionPoint:
        for point in self.points:
            if point.dtype == dtype:
                return point
        raise KeyError(f"no dtype {dtype!r} in this sweep")

    def format(self) -> str:
        """Render the sweep as a table plus the per-layer divergences."""
        header = (
            f"{'dtype':>6}{'pbqp ms':>12}{'replay ms':>12}"
            f"{'advantage':>11}{'acc loss':>10}{'changed':>9}"
        )
        lines = [
            f"Precision scaling — {self.network} on {self.platform} "
            f"({self.threads} thread{'s' if self.threads != 1 else ''})",
            header,
            "-" * len(header),
        ]
        for point in self.points:
            lines.append(
                f"{point.dtype:>6}{point.pbqp_ms:>12.2f}{point.replayed_ms:>12.2f}"
                f"{point.advantage:>10.3f}x{point.accuracy_proxy:>10.5f}"
                f"{len(point.selection_changes):>9}"
            )
        lines.append(
            "(replay = the fp32 PBQP plan re-priced at each precision; "
            "advantage = replay / pbqp)"
        )
        for point in self.points:
            for layer, (before, after) in sorted(point.selection_changes.items()):
                lines.append(f"  {point.dtype:>5}: {layer:<20} {before} -> {after}")
        return "\n".join(lines)


def run_precision_scaling(
    model_name: str,
    platform: Platform,
    dtypes: Sequence[str] = DEFAULT_DTYPES,
    threads: int = 1,
    library: Optional[PrimitiveLibrary] = None,
    session: Optional["Session"] = None,
) -> PrecisionScalingResult:
    """Sweep precisions for one network/platform, comparing fresh vs replayed plans.

    Pass a shared :class:`repro.api.Session` to reuse profiled contexts (the
    fp32 context is shared with every other harness).
    """
    if session is None:
        from repro.api import Session

        session = Session(library=library)
    if "fp32" not in dtypes:
        dtypes = ("fp32",) + tuple(dtypes)
    base = session.select(
        model_name, platform, strategy="pbqp", threads=threads, dtype="fp32"
    )
    base_selection = base.plan.conv_selections()

    result = PrecisionScalingResult(
        network=model_name, platform=platform.name, threads=threads
    )
    for dtype in dtypes:
        fresh = session.select(
            model_name, platform, strategy="pbqp", threads=threads, dtype=dtype
        )
        context = session.context_for(model_name, platform, threads, 1, dtype)
        replayed = (
            base.plan
            if dtype == "fp32"
            else replay_plan(context, base.plan, strategy="quantized-replay")
        )
        changes = {
            layer: (base_selection[layer], primitive)
            for layer, primitive in fresh.plan.conv_selections().items()
            if base_selection[layer] != primitive
        }
        result.points.append(
            PrecisionPoint(
                dtype=dtype,
                pbqp_plan=fresh.plan,
                replayed_plan=replayed,
                selection_changes=changes,
            )
        )
    return result


def frontier_endpoints(frontier: "ParetoFrontier") -> Tuple[str, str]:
    """The dtypes of a frontier's min-time and min-accuracy-loss points."""
    fastest = min(frontier.points, key=lambda point: point.vector.time_ms)
    most_accurate = min(
        frontier.points, key=lambda point: (point.vector.accuracy_proxy, point.vector.time_ms)
    )
    return fastest.plan.dtype, most_accurate.plan.dtype


def main() -> None:  # pragma: no cover - manual study entry point
    """Run the sweep on the lane-packing platforms and print the tables."""
    from repro.api import Session

    session = Session()
    for platform_name in ("avx512-server", "arm-cortex-a57"):
        result = run_precision_scaling(
            "googlenet", PLATFORMS[platform_name], session=session
        )
        print(result.format())
        print()
    frontier = session.plan_frontier("googlenet", "avx512-server")
    print(frontier.format())
    fastest_dtype, most_accurate_dtype = frontier_endpoints(frontier)
    print(
        f"frontier endpoints: min-time is {fastest_dtype}, "
        f"max-accuracy is {most_accurate_dtype}"
    )


if __name__ == "__main__":  # pragma: no cover
    main()
