"""The worked PBQP example of Figure 2 of the paper.

Figure 2 shows a three-layer linear graph (conv1 -> conv2 -> conv3) where each
layer can be implemented by one of three primitives A, B, C with node costs

    conv1: (8, 6, 10)   conv2: (17, 19, 14)   conv3: (20, 17, 22)

In part (a) there are no edge costs and the optimal selection is simply the
per-node minimum (B, C, B) with total cost 37.  In part (b) each edge carries
a cost matrix representing the data-layout conversion penalty between
differing primitives (zero on the diagonal), and the optimum changes: cheap
per-node choices can force expensive conversions, so the globally optimal
assignment is no longer the per-node minimum.

The exact matrix values in the published figure are only partially legible in
the available text, so the reproduction uses the node costs above with a
representative pair of diagonal-zero conversion matrices and checks the two
qualitative properties the figure demonstrates: (1) without edge costs the
solver returns the per-node minima; (2) with edge costs the optimal total
differs from "sum of per-node minima plus their conversion penalties" — i.e.
edge costs change the selection — and the solver's answer matches exhaustive
enumeration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.pbqp.bruteforce import brute_force_solve
from repro.pbqp.graph import PBQPGraph
from repro.pbqp.solution import PBQPSolution
from repro.pbqp.solver import PBQPSolver

#: Node costs from Figure 2 (primitives A, B, C per layer).
FIGURE2_NODE_COSTS: Dict[str, Tuple[float, float, float]] = {
    "conv1": (8.0, 6.0, 10.0),
    "conv2": (17.0, 19.0, 14.0),
    "conv3": (20.0, 17.0, 22.0),
}

#: Edge conversion-cost matrices (rows: producer's primitive, cols: consumer's).
#: Diagonals are zero — keeping the same primitive (and hence layout) is free.
FIGURE2_EDGE_COSTS: Dict[Tuple[str, str], List[List[float]]] = {
    ("conv1", "conv2"): [[0.0, 3.0, 5.0], [6.0, 0.0, 5.0], [1.0, 5.0, 0.0]],
    ("conv2", "conv3"): [[0.0, 2.0, 4.0], [4.0, 0.0, 5.0], [2.0, 1.0, 0.0]],
}

PRIMITIVE_LABELS = ("A", "B", "C")


@dataclass
class Figure2Result:
    """Solutions of the node-only and node+edge variants of the example."""

    node_only: PBQPSolution
    node_only_selection: Dict[str, str]
    with_edges: PBQPSolution
    with_edges_selection: Dict[str, str]
    brute_force_cost: float

    @property
    def node_only_cost(self) -> float:
        return self.node_only.cost

    @property
    def with_edges_cost(self) -> float:
        return self.with_edges.cost


def _build_graph(include_edges: bool) -> PBQPGraph:
    graph = PBQPGraph()
    ids = {}
    for layer, costs in FIGURE2_NODE_COSTS.items():
        ids[layer] = graph.add_node(list(costs), name=layer, labels=PRIMITIVE_LABELS)
    if include_edges:
        for (producer, consumer), matrix in FIGURE2_EDGE_COSTS.items():
            graph.add_edge(ids[producer], ids[consumer], matrix)
    return graph


def figure2_example() -> Figure2Result:
    """Solve both variants of the Figure 2 example and cross-check with brute force."""
    solver = PBQPSolver()

    node_graph = _build_graph(include_edges=False)
    node_solution = solver.solve(node_graph)

    edge_graph = _build_graph(include_edges=True)
    edge_solution = solver.solve(edge_graph)
    brute = brute_force_solve(edge_graph)

    return Figure2Result(
        node_only=node_solution,
        node_only_selection=node_solution.named_selection(node_graph),
        with_edges=edge_solution,
        with_edges_selection=edge_solution.named_selection(edge_graph),
        brute_force_cost=brute.cost,
    )
