"""Platform-zoo study: how the modelled platform shifts the PBQP selections.

The paper's central claim is that the best primitive/layout mix is *platform
dependent* — its Haswell and Cortex-A57 machines disagree on most layers of
Figure 4.  With the platform registry (:mod:`repro.cost.platform`) the claim
can be probed over a whole zoo: this harness sweeps every network over every
registered platform (by default) at several batch sizes, records the fresh
PBQP selection on each, and reports **selection drift** — the layers whose
selected algorithm *family* on one platform differs from the family selected
on *every* CPU baseline platform at the same batch.

Headline expectations encoded by ``benchmarks/test_bench_platform_zoo.py``:

* the GPU-shaped platform pushes selections into the transform/GEMM families
  even at batch 1 (direct loops occupy the SIMT lanes poorly), and its
  launch-bound small layers reward whole-graph selection over the
  per-layer-greedy cuDNN comparator;
* the AVX-512 server part — with its bigger last-level cache and far higher
  memory bandwidth — tolerates more layout churn and larger transformed-
  domain working sets than Haswell, widening the batch-amortization drift
  found in the PR-4 batch-scaling study.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.core.plan import NetworkPlan
from repro.cost.platform import list_platforms

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api import ModelLike, Session

#: Default network sweep: the paper's two smallest figures plus the post-paper
#: zoo extension (residual and depthwise-separable structure).
DEFAULT_NETWORKS: Tuple[str, ...] = ("alexnet", "googlenet", "resnet18", "mobilenet_v1")

#: Batch sizes swept by default: the paper's latency setting and one
#: throughput setting (where PR-4 found the CPU selections drifting).
DEFAULT_BATCHES: Tuple[int, ...] = (1, 16)

#: The paper's two CPU platforms: the drift baselines.
CPU_BASELINES: Tuple[str, str] = ("intel-haswell", "arm-cortex-a57")


@dataclass
class PlatformCell:
    """One fresh PBQP selection: (network, platform, batch)."""

    network: str
    platform: str
    batch: int
    plan: NetworkPlan
    #: Convolution layer name -> selected algorithm family (``"im2"``, ...).
    families: Dict[str, str] = field(default_factory=dict)

    @property
    def total_ms(self) -> float:
        return self.plan.total_ms

    @property
    def per_image_ms(self) -> float:
        return self.plan.per_image_ms

    def family_histogram(self) -> Dict[str, int]:
        """How many layers each family won on this cell."""
        histogram: Dict[str, int] = {}
        for family in self.families.values():
            histogram[family] = histogram.get(family, 0) + 1
        return histogram


@dataclass
class PlatformScalingResult:
    """The whole sweep: networks x platforms x batches."""

    networks: List[str]
    platforms: List[str]
    batches: List[int]
    threads: int
    cells: List[PlatformCell] = field(default_factory=list)
    #: Platforms used as the drift baselines (present in ``platforms``).
    baselines: Tuple[str, ...] = CPU_BASELINES

    def cell(self, network: str, platform: str, batch: int) -> PlatformCell:
        for cell in self.cells:
            if (
                cell.network == network
                and cell.platform == platform
                and cell.batch == batch
            ):
                return cell
        raise KeyError(f"no cell ({network!r}, {platform!r}, batch {batch})")

    def drift_layers(
        self, network: str, platform: str, batch: int
    ) -> Dict[str, Tuple[str, Dict[str, str]]]:
        """Layers whose family differs from *every* CPU baseline's choice.

        Returns ``layer -> (family on platform, {baseline -> its family})``
        for each convolution layer where the platform's selected family
        matches none of the baselines at the same batch.
        """
        target = self.cell(network, platform, batch)
        baseline_cells = [
            self.cell(network, name, batch)
            for name in self.baselines
            if name != platform
        ]
        drifted: Dict[str, Tuple[str, Dict[str, str]]] = {}
        for layer, family in target.families.items():
            others = {cell.platform: cell.families[layer] for cell in baseline_cells}
            if others and all(family != other for other in others.values()):
                drifted[layer] = (family, others)
        return drifted

    def drift_count(self, network: str, platform: str, batch: int) -> int:
        """Number of layers drifted away from both CPU baselines."""
        return len(self.drift_layers(network, platform, batch))

    def format(self) -> str:
        """Render the sweep: one drift table per (network, batch)."""
        lines: List[str] = []
        plural = "s" if self.threads != 1 else ""
        lines.append(
            f"Platform scaling — {len(self.platforms)} platforms, "
            f"{self.threads} thread{plural} "
            f"(drift = layers whose family differs from both CPU baselines)"
        )
        header = (
            f"  {'platform':<16}{'total ms':>11}{'ms/img':>9}{'drift':>7}  families"
        )
        for network in self.networks:
            for batch in self.batches:
                lines.append(f"{network}, batch {batch}:")
                lines.append(header)
                lines.append("  " + "-" * (len(header) - 2))
                for platform in self.platforms:
                    cell = self.cell(network, platform, batch)
                    histogram = ", ".join(
                        f"{family}:{count}"
                        for family, count in sorted(cell.family_histogram().items())
                    )
                    drift = (
                        "-"
                        if platform in self.baselines
                        else str(self.drift_count(network, platform, batch))
                    )
                    lines.append(
                        f"  {platform:<16}{cell.total_ms:>11.2f}"
                        f"{cell.per_image_ms:>9.3f}{drift:>7}  {histogram}"
                    )
        return "\n".join(lines)


def run_platform_scaling(
    networks: Sequence["ModelLike"] = DEFAULT_NETWORKS,
    platform_names: Optional[Sequence[str]] = None,
    batches: Sequence[int] = DEFAULT_BATCHES,
    threads: int = 1,
    session: Optional["Session"] = None,
) -> PlatformScalingResult:
    """Sweep networks x platforms x batches with fresh PBQP selections.

    ``platform_names`` defaults to every registered platform; the CPU
    baseline platforms are always included (drift is measured against them).
    Pass a shared :class:`repro.api.Session` to reuse profiled contexts
    across harnesses (and, with a session ``cache_dir``, across processes).
    """
    if session is None:
        from repro.api import Session

        session = Session()
    names = list(platform_names) if platform_names is not None else list_platforms()
    for baseline in CPU_BASELINES:
        if baseline not in names:
            names.append(baseline)

    library = session.library
    result = PlatformScalingResult(
        networks=[
            network if isinstance(network, str) else network.name
            for network in networks
        ],
        platforms=names,
        batches=list(batches),
        threads=threads,
    )
    for network in networks:
        for platform in names:
            for batch in batches:
                selected = session.select(
                    network, platform, strategy="pbqp", threads=threads, batch=batch
                )
                families = {
                    layer: library.get(primitive).family.value
                    for layer, primitive in selected.plan.conv_selections().items()
                }
                result.cells.append(
                    PlatformCell(
                        network=network if isinstance(network, str) else network.name,
                        platform=platform,
                        batch=batch,
                        plan=selected.plan,
                        families=families,
                    )
                )
    return result


def main() -> None:  # pragma: no cover - manual study entry point
    """Run the full sweep over every registered platform and print the tables."""
    from repro.api import Session

    result = run_platform_scaling(session=Session())
    print(result.format())


if __name__ == "__main__":  # pragma: no cover
    main()
