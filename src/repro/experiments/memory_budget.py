"""Memory-budget study: how a peak-workspace cap reshapes the selections.

The frontier's epsilon-constraint generator answers "what is the fastest
plan that fits in X bytes of scratch?" exactly (peak workspace is a max over
layers, so pruning the primitives above the cap encodes the budget in the
PBQP instance).  This harness sweeps that question across the platform zoo:
for each (network, platform) it takes the unconstrained PBQP plan's peak
workspace as the reference, re-solves under caps at fixed fractions of it,
and records which convolution layers *flip* algorithm family to fit.

The expected shape of the answer — encoded by ``tests/test_multiobj.py`` and
reproduced by ``benchmarks/test_bench_frontier.py`` — is the paper's memory
story inverted: the unconstrained selections lean on the scratch-hungry
GEMM/transform families (im2col patch matrices, FFT spectra), so tightening
the cap drives layers toward the direct loops and the low-workspace 1D
Winograd forms, at a measured time cost per budget level.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.core.plan import NetworkPlan
from repro.cost.platform import list_platforms
from repro.multiobj.frontier import solve_under_workspace_cap

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api import ModelLike, Session

#: Default network sweep: the two paper networks the issue's memory story
#: names (AlexNet's large early layers, GoogLeNet's many small ones).
DEFAULT_NETWORKS: Tuple[str, ...] = ("alexnet", "googlenet")

#: Caps as fractions of the unconstrained plan's peak workspace.  1.0 is the
#: sanity row (the cap the unconstrained plan already satisfies).
DEFAULT_FRACTIONS: Tuple[float, ...] = (1.0, 0.5, 0.25, 0.1, 0.02)


@dataclass
class BudgetCell:
    """One capped solve: (network, platform, fraction of unconstrained peak)."""

    network: str
    platform: str
    fraction: float
    cap_bytes: float
    #: The fastest plan under the cap, or ``None`` when the cap is infeasible.
    plan: Optional[NetworkPlan]
    #: Convolution layers whose family changed versus the unconstrained plan,
    #: mapped to (unconstrained family, capped family).
    flips: Dict[str, Tuple[str, str]] = field(default_factory=dict)

    @property
    def feasible(self) -> bool:
        return self.plan is not None

    def family_histogram(self) -> Dict[str, int]:
        """How many layers each family won under this cap."""
        histogram: Dict[str, int] = {}
        for _, capped in self.flips.values():
            histogram[capped] = histogram.get(capped, 0) + 1
        return histogram


@dataclass
class MemoryBudgetResult:
    """The whole sweep: networks x platforms x budget fractions."""

    networks: List[str]
    platforms: List[str]
    fractions: List[float]
    threads: int
    batch: int
    cells: List[BudgetCell] = field(default_factory=list)
    #: Unconstrained PBQP plans, keyed by (network, platform).
    baselines: Dict[Tuple[str, str], NetworkPlan] = field(default_factory=dict)

    def cell(self, network: str, platform: str, fraction: float) -> BudgetCell:
        for cell in self.cells:
            if (
                cell.network == network
                and cell.platform == platform
                and cell.fraction == fraction
            ):
                return cell
        raise KeyError(f"no cell ({network!r}, {platform!r}, fraction {fraction})")

    def flip_count(self, network: str, platform: str, fraction: float) -> int:
        return len(self.cell(network, platform, fraction).flips)

    def format(self) -> str:
        """Render one budget table per (network, platform)."""
        lines: List[str] = []
        plural = "s" if self.threads != 1 else ""
        batch = f", batch {self.batch}" if self.batch != 1 else ""
        lines.append(
            f"Memory-budget sweep — caps as fractions of the unconstrained "
            f"peak ({self.threads} thread{plural}{batch})"
        )
        header = (
            f"  {'cap':>6} {'cap KiB':>10} {'time ms':>9} {'peak KiB':>10} "
            f"{'flips':>6}  flipped to"
        )
        for network in self.networks:
            for platform in self.platforms:
                base = self.baselines[(network, platform)]
                lines.append(
                    f"{network} on {platform} (unconstrained: {base.total_ms:.2f} ms, "
                    f"peak {base.peak_workspace_bytes / 1024.0:.0f} KiB):"
                )
                lines.append(header)
                lines.append("  " + "-" * (len(header) - 2))
                for fraction in self.fractions:
                    cell = self.cell(network, platform, fraction)
                    if cell.plan is None:
                        lines.append(
                            f"  {fraction:>6.0%} {cell.cap_bytes / 1024.0:>10.0f} "
                            f"{'infeasible':>27}"
                        )
                        continue
                    histogram = " ".join(
                        f"{family}x{count}"
                        for family, count in sorted(cell.family_histogram().items())
                    )
                    lines.append(
                        f"  {fraction:>6.0%} {cell.cap_bytes / 1024.0:>10.0f} "
                        f"{cell.plan.total_ms:>9.2f} "
                        f"{cell.plan.peak_workspace_bytes / 1024.0:>10.0f} "
                        f"{len(cell.flips):>6}  {histogram or '-'}"
                    )
        return "\n".join(lines)


def run_memory_budget(
    networks: Sequence["ModelLike"] = DEFAULT_NETWORKS,
    platform_names: Optional[Sequence[str]] = None,
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    threads: int = 1,
    batch: int = 1,
    session: Optional["Session"] = None,
) -> MemoryBudgetResult:
    """Sweep workspace caps over networks x platforms, tracking family flips.

    ``platform_names`` defaults to every registered platform.  Pass a shared
    :class:`repro.api.Session` to reuse profiled contexts (and, with a
    session ``cache_dir``, to persist the cost tables across processes).
    """
    if session is None:
        from repro.api import Session

        session = Session()
    names = list(platform_names) if platform_names is not None else list_platforms()
    library = session.library

    result = MemoryBudgetResult(
        networks=[
            network if isinstance(network, str) else network.name
            for network in networks
        ],
        platforms=names,
        fractions=list(fractions),
        threads=threads,
        batch=batch,
    )

    def families(plan: NetworkPlan) -> Dict[str, str]:
        return {
            layer: library.get(primitive).family.value
            for layer, primitive in plan.conv_selections().items()
        }

    for network in networks:
        network_name = network if isinstance(network, str) else network.name
        for platform in names:
            context = session.context_for(
                network, platform, threads=threads, batch=batch
            )
            base = session.select(
                network, platform, strategy="pbqp", threads=threads, batch=batch
            ).plan
            result.baselines[(network_name, platform)] = base
            base_families = families(base)
            peak = base.peak_workspace_bytes
            for fraction in fractions:
                cap = fraction * peak
                plan = solve_under_workspace_cap(context, cap)
                flips: Dict[str, Tuple[str, str]] = {}
                if plan is not None:
                    for layer, family in families(plan).items():
                        if family != base_families[layer]:
                            flips[layer] = (base_families[layer], family)
                result.cells.append(
                    BudgetCell(
                        network=network_name,
                        platform=platform,
                        fraction=fraction,
                        cap_bytes=cap,
                        plan=plan,
                        flips=flips,
                    )
                )
    return result


def main() -> None:  # pragma: no cover - manual study entry point
    """Run the sweep over every registered platform and print the tables."""
    from repro.api import Session

    print(run_memory_budget(session=Session()).format())


if __name__ == "__main__":  # pragma: no cover
    main()
