"""Ablations of the design choices called out in DESIGN.md.

Two ablations are provided:

* :func:`dt_cost_ablation` — how much modelling data-layout transformation
  costs *during* selection matters.  It compares the PBQP selection against
  the "greedy ignoring DT costs" strategy (pick the per-layer fastest
  primitive, pay conversions afterwards) and against the canonical-layout
  Local Optimal strategy while scaling the cost of layout transformations.
  This quantifies section 5.8's observation that post-hoc legalization can
  erase (or invert) the benefit of faster primitives.
* :func:`solver_mode_ablation` — exact branch-and-bound core search versus the
  RN heuristic, measuring solution quality and solve time on the real
  selection instances (the paper's solver proves optimality; the ablation
  shows what the heuristic would give up).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, TYPE_CHECKING

from repro.core.selector import PBQPSelector
from repro.core.strategies import get_strategy
from repro.cost.analytical import AnalyticalCostModel
from repro.cost.platform import PLATFORMS, Platform
from repro.cost.provider import CostModelProvider
from repro.graph.scenario import ConvScenario
from repro.layouts.transforms import LayoutTransform
from repro.pbqp.solver import PBQPSolver
from repro.primitives.base import ConvPrimitive
from repro.primitives.registry import PrimitiveLibrary

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api import Session


class ScaledTransformCostModel:
    """Wrap a cost model, scaling only the layout-transformation costs."""

    def __init__(self, inner, scale: float) -> None:
        if scale < 0:
            raise ValueError("scale must be non-negative")
        self.inner = inner
        self.scale = scale

    def primitive_cost(
        self, primitive: ConvPrimitive, scenario: ConvScenario, threads: int = 1
    ) -> float:
        return self.inner.primitive_cost(primitive, scenario, threads=threads)

    def transform_cost(
        self,
        transform: LayoutTransform,
        shape: Tuple[int, int, int],
        threads: int = 1,
        batch: int = 1,
        dtype: str = "fp32",
    ) -> float:
        return self.scale * self.inner.transform_cost(
            transform, shape, threads=threads, batch=batch, dtype=dtype
        )


@dataclass
class DTCostAblationPoint:
    """Strategy costs for one DT-cost scale factor."""

    scale: float
    pbqp_ms: float
    greedy_ignore_dt_ms: float
    local_optimal_ms: float

    @property
    def pbqp_advantage_over_greedy(self) -> float:
        return self.greedy_ignore_dt_ms / self.pbqp_ms

    @property
    def pbqp_advantage_over_local(self) -> float:
        return self.local_optimal_ms / self.pbqp_ms


def dt_cost_ablation(
    model_name: str = "googlenet",
    platform: Optional[Platform] = None,
    scales: Tuple[float, ...] = (0.0, 0.5, 1.0, 2.0, 4.0),
    threads: int = 1,
    library: Optional[PrimitiveLibrary] = None,
) -> List[DTCostAblationPoint]:
    """Sweep the cost of layout transformations and compare selection strategies.

    At scale 0 conversions are free, so greedy per-layer selection matches
    PBQP; as conversions get more expensive the gap widens (and the
    canonical-layout strategy becomes relatively more attractive, though never
    better than PBQP, which subsumes it).
    """
    from repro.api import Session

    platform = platform or PLATFORMS["intel-haswell"]
    base_model = AnalyticalCostModel(platform)
    points: List[DTCostAblationPoint] = []
    for scale in scales:
        cost_model = ScaledTransformCostModel(base_model, scale)
        # Each scale gets its own session: the scaled model is injected as a
        # cost provider, so the selection pipeline is exactly the public one.
        session = Session(
            library=library,
            provider=CostModelProvider(cost_model, name=f"scaled-dt[{scale}]"),
        )
        context = session.context_for(model_name, None, threads)
        pbqp = get_strategy("pbqp").build_plan(context)
        greedy = get_strategy("greedy_ignore_dt").build_plan(context)
        local = get_strategy("local_optimal").build_plan(context)
        points.append(
            DTCostAblationPoint(
                scale=scale,
                pbqp_ms=pbqp.total_ms,
                greedy_ignore_dt_ms=greedy.total_ms,
                local_optimal_ms=local.total_ms,
            )
        )
    return points


@dataclass
class SolverModeResult:
    """Exact versus heuristic solving on one network's selection instance."""

    network: str
    exact_cost: float
    exact_seconds: float
    exact_provably_optimal: bool
    heuristic_cost: float
    heuristic_seconds: float

    @property
    def heuristic_gap(self) -> float:
        """Relative cost increase of the heuristic solution (0.0 = matches exact)."""
        if self.exact_cost == 0:
            return 0.0
        return (self.heuristic_cost - self.exact_cost) / self.exact_cost


def solver_mode_ablation(
    networks: Optional[List[str]] = None,
    platform: Optional[Platform] = None,
    threads: int = 1,
    library: Optional[PrimitiveLibrary] = None,
) -> List[SolverModeResult]:
    """Compare the exact branch-and-bound core search against the RN heuristic."""
    from repro.api import Session

    networks = networks or ["alexnet", "googlenet"]
    platform = platform or PLATFORMS["intel-haswell"]
    session = Session(library=library)
    results: List[SolverModeResult] = []
    for model_name in networks:
        context = session.context_for(model_name, platform, threads)
        exact_selector = PBQPSelector(PBQPSolver())
        exact_plan = exact_selector.select(context)
        exact_stats = exact_selector.solver.last_stats

        # Forcing an impossibly small exact-core limit makes the solver fall
        # back to the RN heuristic for any non-trivial irreducible core.
        heuristic_selector = PBQPSelector(PBQPSolver(exact_core_limit=1))
        heuristic_plan = heuristic_selector.select(context)
        heuristic_stats = heuristic_selector.solver.last_stats

        results.append(
            SolverModeResult(
                network=model_name,
                exact_cost=exact_plan.total_cost,
                exact_seconds=exact_stats.solve_seconds if exact_stats else 0.0,
                exact_provably_optimal=bool(exact_plan.metadata["pbqp_optimal"]),
                heuristic_cost=heuristic_plan.total_cost,
                heuristic_seconds=heuristic_stats.solve_seconds if heuristic_stats else 0.0,
            )
        )
    return results
