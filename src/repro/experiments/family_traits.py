"""Qualitative family strengths and weaknesses (Table 1 of the paper).

Table 1 summarizes the trade-offs of the algorithm families:

========  =====  ======  =======  ================
family    time   memory  strided  bad cases
========  =====  ======  =======  ================
direct    ``-``  ``--``  ``++``   non-strided
im2       ``+``  ``--``  ``++``   large image
kn2       ``+``  ``+``   ``--``   few channels
Winograd  ``++`` ``-``   ``-``    unpredictable
fft       ``-``  ``+``   (n/a)    small kernel
========  =====  ======  =======  ================

:func:`family_traits_table` derives the same qualitative judgements from the
reproduction's cost model by sweeping a set of probe scenarios and comparing,
per family, the best achievable cost and workspace against the other
families.  The benchmark asserts the derived judgements match the table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cost.analytical import AnalyticalCostModel
from repro.cost.platform import PLATFORMS, Platform
from repro.graph.scenario import ConvScenario
from repro.primitives.base import PrimitiveFamily
from repro.primitives.registry import PrimitiveLibrary, default_primitive_library

#: Probe scenarios spanning the regimes Table 1 talks about.
PROBE_SCENARIOS: Dict[str, ConvScenario] = {
    # A bread-and-butter K=3 mid-network layer.
    "k3_mid": ConvScenario(c=128, h=28, w=28, stride=1, k=3, m=128, padding=1),
    # A large-image early layer (im2's bad case: the Toeplitz matrix of a
    # 224x224 image is enormous).
    "large_image": ConvScenario(c=64, h=224, w=224, stride=1, k=3, m=64, padding=1),
    # A strided layer (kn2/winograd cannot run it).
    "strided": ConvScenario(c=3, h=227, w=227, stride=4, k=11, m=96),
    # A few-channels layer (kn2's bad case).
    "few_channels": ConvScenario(c=4, h=56, w=56, stride=1, k=3, m=64, padding=1),
    # A K=5 layer with a reasonably large image (fft's good case).
    "k5_layer": ConvScenario(c=48, h=27, w=27, stride=1, k=5, m=256, padding=2),
    # A 1x1 layer (fft's bad case: tiny kernel).
    "pointwise": ConvScenario(c=256, h=14, w=14, stride=1, k=1, m=64),
}

FAMILIES: List[PrimitiveFamily] = [
    PrimitiveFamily.DIRECT,
    PrimitiveFamily.IM2,
    PrimitiveFamily.KN2,
    PrimitiveFamily.WINOGRAD,
    PrimitiveFamily.FFT,
]


@dataclass
class FamilyTraitsResult:
    """Best cost and workspace per family per probe scenario."""

    platform: str
    #: scenario name -> family -> best cost in seconds (None if unsupported).
    best_cost: Dict[str, Dict[str, Optional[float]]] = field(default_factory=dict)
    #: scenario name -> family -> workspace elements of the best variant.
    workspace: Dict[str, Dict[str, Optional[float]]] = field(default_factory=dict)

    def supports(self, scenario_name: str, family: PrimitiveFamily) -> bool:
        return self.best_cost[scenario_name][family.value] is not None

    def fastest_family(self, scenario_name: str) -> str:
        costs = {
            family: cost
            for family, cost in self.best_cost[scenario_name].items()
            if cost is not None
        }
        return min(costs, key=costs.get)

    def format(self) -> str:
        header = f"{'scenario':<14}" + "".join(f"{f.value:>12}" for f in FAMILIES)
        lines = [f"Family behaviour on probe scenarios ({self.platform})", header, "-" * len(header)]
        for name in self.best_cost:
            row = f"{name:<14}"
            for family in FAMILIES:
                cost = self.best_cost[name][family.value]
                row += f"{'unsupported':>12}" if cost is None else f"{1e3 * cost:>12.3f}"
            lines.append(row)
        lines.append("(best variant cost per family, ms; 'unsupported' where no variant applies)")
        return "\n".join(lines)


def family_traits_table(
    platform: Optional[Platform] = None,
    library: Optional[PrimitiveLibrary] = None,
    threads: int = 1,
) -> FamilyTraitsResult:
    """Evaluate the best variant of every family on every probe scenario."""
    platform = platform or PLATFORMS["intel-haswell"]
    library = library or default_primitive_library()
    cost_model = AnalyticalCostModel(platform)
    result = FamilyTraitsResult(platform=platform.name)
    for name, scenario in PROBE_SCENARIOS.items():
        result.best_cost[name] = {}
        result.workspace[name] = {}
        for family in FAMILIES:
            candidates = library.applicable(scenario, family=family, platform=platform)
            if not candidates:
                result.best_cost[name][family.value] = None
                result.workspace[name][family.value] = None
                continue
            costs = {
                p.name: cost_model.primitive_cost(p, scenario, threads=threads)
                for p in candidates
            }
            best_name = min(costs, key=costs.get)
            best = library.get(best_name)
            result.best_cost[name][family.value] = costs[best_name]
            result.workspace[name][family.value] = best.workspace_elements(scenario)
    return result
