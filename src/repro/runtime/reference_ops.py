"""Reference implementations of the non-convolution DNN layers.

The primitive-selection formulation treats these layers as zero-cost dummy
nodes (paper section 5.2), but the functional runtime still has to execute
them to run whole networks end to end.  All operators work on canonical
``(C, H, W)`` numpy arrays and transparently accept a leading batch axis
(``(N, C, H, W)``), applying the layer independently to every image.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

#: Axes of the per-image (C, H, W) block, counted from the end so the same
#: indexing works with and without a leading batch axis.
_CHANNEL_AXIS = -3
_IMAGE_AXES = (-3, -2, -1)


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear activation."""
    return np.maximum(x, 0.0)


def _pool_windows(
    x: np.ndarray, kernel: int, stride: int, padding: int, out_h: int, out_w: int, pad_value: float
) -> np.ndarray:
    """Gather pooling windows into a (..., C, out_h, out_w, kernel*kernel) array."""
    lead = x.shape[:-3]
    c, h, w = x.shape[-3:]
    padded = np.full(
        lead + (c, h + 2 * padding + kernel, w + 2 * padding + kernel),
        pad_value,
        dtype=x.dtype,
    )
    padded[..., padding : padding + h, padding : padding + w] = x
    windows = np.empty(lead + (c, out_h, out_w, kernel * kernel), dtype=x.dtype)
    index = 0
    for kh in range(kernel):
        for kw in range(kernel):
            windows[..., index] = padded[
                ...,
                kh : kh + (out_h - 1) * stride + 1 : stride,
                kw : kw + (out_w - 1) * stride + 1 : stride,
            ]
            index += 1
    return windows


def max_pool(
    x: np.ndarray,
    kernel: int,
    stride: int,
    padding: int,
    output_shape: Tuple[int, int, int],
) -> np.ndarray:
    """Max pooling with Caffe-compatible output geometry supplied by the caller."""
    _, out_h, out_w = output_shape
    windows = _pool_windows(x, kernel, stride, padding, out_h, out_w, pad_value=-np.inf)
    return windows.max(axis=-1)


def average_pool(
    x: np.ndarray,
    kernel: int,
    stride: int,
    padding: int,
    output_shape: Tuple[int, int, int],
) -> np.ndarray:
    """Average pooling (zero padded, dividing by the full window size)."""
    _, out_h, out_w = output_shape
    windows = _pool_windows(x, kernel, stride, padding, out_h, out_w, pad_value=0.0)
    return windows.sum(axis=-1) / float(kernel * kernel)


def local_response_norm(
    x: np.ndarray, local_size: int = 5, alpha: float = 1e-4, beta: float = 0.75, k: float = 1.0
) -> np.ndarray:
    """AlexNet-style across-channel local response normalization."""
    c = x.shape[_CHANNEL_AXIS]
    squared = x**2
    half = local_size // 2
    scale = np.full_like(x, k)
    for channel in range(c):
        lo = max(0, channel - half)
        hi = min(c, channel + half + 1)
        scale[..., channel, :, :] += (alpha / local_size) * squared[..., lo:hi, :, :].sum(
            axis=_CHANNEL_AXIS
        )
    return x / scale**beta


def fully_connected(x: np.ndarray, weights: np.ndarray, bias: np.ndarray) -> np.ndarray:
    """Inner-product layer: flattens each image and applies ``W x + b``.

    Returns an ``(out_features, 1, 1)`` tensor per image to keep the 3D
    logical shape (with the batch axis preserved when present).
    """
    lead = x.shape[:-3]
    flat = x.reshape(lead + (-1,))
    if weights.shape[1] != flat.shape[-1]:
        raise ValueError(
            f"weight matrix expects {weights.shape[1]} inputs, got {flat.shape[-1]}"
        )
    out = flat @ weights.T + bias
    return out.reshape(lead + (-1, 1, 1))


def softmax(x: np.ndarray) -> np.ndarray:
    """Numerically stable softmax over each image's elements."""
    shifted = x - x.max(axis=_IMAGE_AXES, keepdims=True)
    exps = np.exp(shifted)
    return exps / exps.sum(axis=_IMAGE_AXES, keepdims=True)


def concat_channels(inputs: Sequence[np.ndarray]) -> np.ndarray:
    """Channel-wise concatenation (the inception join)."""
    return np.concatenate(list(inputs), axis=_CHANNEL_AXIS)


def eltwise_add(inputs: Sequence[np.ndarray]) -> np.ndarray:
    """Elementwise sum of same-shape tensors (the residual join)."""
    inputs = list(inputs)
    if len(inputs) < 2:
        raise ValueError(f"eltwise add needs at least two inputs, got {len(inputs)}")
    shapes = {tensor.shape for tensor in inputs}
    if len(shapes) != 1:
        raise ValueError(f"eltwise add inputs disagree on shape: {sorted(shapes)}")
    out = inputs[0].copy()
    for tensor in inputs[1:]:
        out += tensor
    return out


def flatten(x: np.ndarray) -> np.ndarray:
    """Flatten each image to a ``(C*H*W, 1, 1)`` tensor (batch axis preserved)."""
    return x.reshape(x.shape[:-3] + (-1, 1, 1))
