"""Functional runtime: execute a selected network plan on real tensors.

The paper maps the PBQP solution to code "with a simple code generator which
emitted calls to primitive operations in our library".  The equivalent here is
:class:`~repro.runtime.executor.NetworkExecutor`: it walks a
:class:`~repro.core.plan.NetworkPlan` in topological order, applies the layout
conversion chains the legalizer inserted on each edge, invokes the selected
convolution primitive of each convolution layer, and evaluates every other
layer with the reference operators in :mod:`repro.runtime.reference_ops`.

Because every primitive is numerically correct, *any* plan — PBQP-selected,
per-family greedy, canonical layout — computes the same function; the
integration tests rely on this to validate whole plans end to end.
"""

from repro.runtime.reference_ops import (
    relu,
    max_pool,
    average_pool,
    local_response_norm,
    fully_connected,
    softmax,
    concat_channels,
    flatten,
)
from repro.runtime.weights import WeightStore
from repro.runtime.executor import NetworkExecutor, ExecutionTrace
from repro.runtime.codegen import generate_schedule, ScheduleStep

__all__ = [
    "relu",
    "max_pool",
    "average_pool",
    "local_response_norm",
    "fully_connected",
    "softmax",
    "concat_channels",
    "flatten",
    "WeightStore",
    "NetworkExecutor",
    "ExecutionTrace",
    "generate_schedule",
    "ScheduleStep",
]
