"""Deterministic random weights for functional network execution.

The selection problem never looks at weight *values* (costs depend only on
tensor shapes, paper section 2.2), but the functional runtime needs concrete
kernels and fully-connected matrices to execute a network.  ``WeightStore``
generates them deterministically from a seed and the layer name, so two
executors built with the same seed produce bit-identical weights — which is
what lets the integration tests compare a PBQP-selected execution against the
all-SUM2D reference execution of the same network.
"""

from __future__ import annotations

import zlib
from typing import Dict, Tuple

import numpy as np

from repro.graph.layer import ConvLayer, FullyConnectedLayer
from repro.graph.network import Network


class WeightStore:
    """Deterministic per-layer weight generator and cache."""

    def __init__(self, network: Network, seed: int = 0, scale: float = 0.1) -> None:
        self.network = network
        self.seed = seed
        self.scale = scale
        self._cache: Dict[str, Tuple[np.ndarray, ...]] = {}
        self._shapes = network.infer_shapes()

    def _rng_for(self, layer_name: str) -> np.random.Generator:
        digest = zlib.crc32(layer_name.encode("utf-8"))
        return np.random.default_rng((self.seed << 32) ^ digest)

    def conv_weights(self, layer_name: str) -> np.ndarray:
        """Kernel tensor ``(M, C/groups, K, K)`` for a convolution layer."""
        if layer_name in self._cache:
            return self._cache[layer_name][0]
        layer = self.network.layer(layer_name)
        if not isinstance(layer, ConvLayer):
            raise TypeError(f"{layer_name!r} is not a convolution layer")
        (producer,) = self.network.inputs_of(layer_name)
        scenario = layer.scenario(self._shapes[producer])
        rng = self._rng_for(layer_name)
        kernel = (self.scale * rng.standard_normal(scenario.kernel_shape)).astype(np.float32)
        self._cache[layer_name] = (kernel,)
        return kernel

    def fc_weights(self, layer_name: str) -> Tuple[np.ndarray, np.ndarray]:
        """Weight matrix and bias vector for a fully-connected layer."""
        if layer_name in self._cache:
            cached = self._cache[layer_name]
            return cached[0], cached[1]
        layer = self.network.layer(layer_name)
        if not isinstance(layer, FullyConnectedLayer):
            raise TypeError(f"{layer_name!r} is not a fully-connected layer")
        (producer,) = self.network.inputs_of(layer_name)
        c, h, w = self._shapes[producer]
        rng = self._rng_for(layer_name)
        weights = (self.scale * rng.standard_normal((layer.out_features, c * h * w))).astype(
            np.float32
        )
        bias = (self.scale * rng.standard_normal(layer.out_features)).astype(np.float32)
        self._cache[layer_name] = (weights, bias)
        return weights, bias
