"""Execute a network plan on real tensors.

:class:`NetworkExecutor` is the runtime half of the paper's "simple code
generator which emitted calls to primitive operations in our library": it
walks the plan's layers in topological order, converts tensors between data
layouts exactly where the legalizer placed conversion chains, runs the
selected convolution primitive for each convolution layer, and uses the
reference operators for everything else.  Inputs may be a single ``(C, H, W)``
image or an ``(N, C, H, W)`` minibatch; batched runs thread the ``N`` axis
through every primitive, layout conversion and reference operator.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.plan import NetworkPlan
from repro.graph.layer import (
    ConcatLayer,
    ConvLayer,
    DropoutLayer,
    EltwiseAddLayer,
    FlattenLayer,
    FullyConnectedLayer,
    InputLayer,
    LRNLayer,
    PoolLayer,
    PoolMode,
    ReLULayer,
    SoftmaxLayer,
)
from repro.graph.network import Network
from repro.layouts.tensor import LayoutTensor
from repro.primitives.registry import PrimitiveLibrary
from repro.runtime import reference_ops
from repro.runtime.weights import WeightStore


@dataclass
class ExecutionTrace:
    """What happened during one forward pass."""

    layer_order: List[str] = field(default_factory=list)
    conversions_executed: int = 0
    wall_seconds: float = 0.0
    #: Number of images in the forward pass (1 for a single-image run).
    batch: int = 1
    #: Layer name -> measured compute time (seconds), conversions excluded.
    layer_seconds: Dict[str, float] = field(default_factory=dict)
    #: (producer, consumer) -> measured time (seconds) of the edge's
    #: layout-conversion chain; edges without an executed chain are absent.
    conversion_seconds: Dict[Tuple[str, str], float] = field(default_factory=dict)
    #: Layer name -> output tensor (kept only when tracing is enabled).
    outputs: Dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def total_conversion_seconds(self) -> float:
        """Total measured time spent in layout conversions."""
        return sum(self.conversion_seconds.values())

    @property
    def conversion_seconds_per_image(self) -> Dict[Tuple[str, str], float]:
        """Per-image conversion cost of every executed chain.

        A batched conversion moves the whole minibatch in one call; dividing
        by the batch gives the per-image accounting the batch-scaling studies
        compare against single-image runs.
        """
        return {
            edge: seconds / self.batch for edge, seconds in self.conversion_seconds.items()
        }


class NetworkExecutor:
    """Run forward passes of a network according to a selection plan.

    Parameters
    ----------
    network:
        The DNN graph the plan was built for.
    plan:
        The selection plan (any strategy).
    library:
        The primitive library the plan's primitive names refer to.
    weights:
        Optional shared weight store; pass the same store to two executors to
        compare their outputs on identical weights.
    """

    def __init__(
        self,
        network: Network,
        plan: NetworkPlan,
        library: PrimitiveLibrary,
        weights: Optional[WeightStore] = None,
        seed: int = 0,
    ) -> None:
        if plan.network_name != network.name:
            raise ValueError(
                f"plan was built for network {plan.network_name!r}, got {network.name!r}"
            )
        self.network = network
        self.plan = plan
        self.library = library
        self.weights = weights if weights is not None else WeightStore(network, seed=seed)
        self._shapes = network.infer_shapes()
        self._scenarios = network.conv_scenarios()
        self._edge_chain = {
            (edge.producer, edge.consumer): edge for edge in plan.edge_decisions
        }
        self._validate_multi_input_layouts()

    def _validate_multi_input_layouts(self) -> None:
        """Every inbound edge of a multi-input layer must deliver one layout.

        Plans built by :func:`~repro.core.legalize.finalize_plan` satisfy this
        by construction; this guards hand-assembled or deserialized plans,
        whose edge decisions arrive here unchecked.  A concat or eltwise-add
        fed two different layouts would silently mix physical orders.
        """
        for layer in self.network.layers():
            producers = self.network.inputs_of(layer.name)
            if len(producers) < 2:
                continue
            targets = {
                self._edge_chain[(producer, layer.name)].target_layout.name
                for producer in producers
            }
            if len(targets) > 1:
                raise ValueError(
                    f"plan is inconsistent: multi-input layer {layer.name!r} has "
                    f"inbound edges targeting different layouts {sorted(targets)}"
                )

    # -- execution --------------------------------------------------------------

    def run(
        self, input_chw: np.ndarray, keep_outputs: bool = False
    ) -> Union[np.ndarray, Dict[str, np.ndarray]]:
        """Execute one forward pass and return the network output.

        For a single-output network this is that output's CHW array; for a
        multi-output network it is a dict keyed by output layer name (see
        :meth:`run_traced`).
        """
        result, _ = self.run_traced(input_chw, keep_outputs=keep_outputs)
        return result

    def run_traced(
        self, input_chw: np.ndarray, keep_outputs: bool = False
    ) -> tuple[Union[np.ndarray, Dict[str, np.ndarray]], ExecutionTrace]:
        """Execute one forward pass, returning the output and an execution trace.

        The input is either a single ``(C, H, W)`` image or a batched
        ``(N, C, H, W)`` minibatch; a batched run carries the ``N`` axis
        through every primitive, conversion and reference operator and
        returns ``(N, ...)`` outputs.  A single-output network returns its
        output array directly (the common fast path); a multi-output network
        returns ``{layer name: output}`` covering *every* output layer, so no
        result is silently dropped.
        """
        input_chw = np.asarray(input_chw, dtype=np.float32)
        batched = input_chw.ndim == 4
        batch = input_chw.shape[0] if batched else 1
        trace = ExecutionTrace(batch=batch)
        start = time.perf_counter()
        tensors: Dict[str, LayoutTensor] = {}
        # A producer feeding several consumers that demand the same target
        # layout has its conversion chain executed once and the result reused;
        # keyed by (producer, target layout) since every edge leaving one
        # producer starts from the same source layout.
        converted: Dict[Tuple[str, str], LayoutTensor] = {}

        for layer in self.network.topological_order():
            decision = self.plan.decision(layer.name)
            inputs: List[LayoutTensor] = []
            for producer in self.network.inputs_of(layer.name):
                edge = self._edge_chain[(producer, layer.name)]
                tensor = tensors[producer]
                if edge.needs_conversion:
                    cache_key = (producer, edge.target_layout.name)
                    cached = converted.get(cache_key)
                    if cached is None:
                        convert_start = time.perf_counter()
                        tensor = edge.chain.apply(tensor)
                        trace.conversion_seconds[(producer, layer.name)] = (
                            time.perf_counter() - convert_start
                        )
                        trace.conversions_executed += 1
                        converted[cache_key] = tensor
                    else:
                        # Reused conversion: nothing ran, so the trace gets no
                        # (producer, consumer) timing entry for this edge.
                        tensor = cached
                inputs.append(tensor)

            layer_start = time.perf_counter()
            if isinstance(layer, InputLayer):
                expected = (batch,) + layer.shape if batched else layer.shape
                if input_chw.shape != expected:
                    raise ValueError(
                        f"input has shape {input_chw.shape}, expected {expected}"
                    )
                output = self._from_logical(input_chw, decision.output_layout)
            elif isinstance(layer, ConvLayer):
                primitive = self.library.get(decision.primitive)
                kernel = self.weights.conv_weights(layer.name)
                # The plan's dtype selects the primitive's compute path:
                # quantized plans run their layers through the int8/fp16
                # execution paths the selection was priced for.
                scenario = self._scenarios[layer.name].with_dtype(self.plan.dtype)
                if batched:
                    scenario = scenario.with_batch(batch)
                output = primitive.execute(inputs[0], kernel, scenario)
            else:
                output_logical = self._run_reference(layer, [t.to_logical() for t in inputs])
                output = self._from_logical(
                    output_logical.astype(np.float32, copy=False), decision.output_layout
                )
            trace.layer_seconds[layer.name] = time.perf_counter() - layer_start

            tensors[layer.name] = output
            trace.layer_order.append(layer.name)
            if keep_outputs:
                trace.outputs[layer.name] = output.to_logical()

        outputs = self.network.output_layers()
        if len(outputs) == 1:
            final: Union[np.ndarray, Dict[str, np.ndarray]] = tensors[
                outputs[0].name
            ].to_logical()
        else:
            final = {layer.name: tensors[layer.name].to_logical() for layer in outputs}
        trace.wall_seconds = time.perf_counter() - start
        return final, trace

    @staticmethod
    def _from_logical(array: np.ndarray, layout) -> LayoutTensor:
        """Wrap a (C, H, W) or (N, C, H, W) array as a tensor in ``layout``."""
        if array.ndim == 4:
            return LayoutTensor.from_nchw(array, layout)
        return LayoutTensor.from_chw(array, layout)

    # -- helpers ------------------------------------------------------------------

    def _run_reference(self, layer, inputs: List[np.ndarray]) -> np.ndarray:
        """Evaluate a non-convolution layer with the reference operators.

        ``inputs`` are canonical logical arrays — ``(C, H, W)`` or batched
        ``(N, C, H, W)``; every reference operator handles the leading batch
        axis transparently.
        """
        output_shape = self._shapes[layer.name]
        if isinstance(layer, ReLULayer):
            return reference_ops.relu(inputs[0])
        if isinstance(layer, PoolLayer):
            if layer.mode is PoolMode.MAX:
                return reference_ops.max_pool(
                    inputs[0], layer.kernel, layer.stride, layer.padding, output_shape
                )
            return reference_ops.average_pool(
                inputs[0], layer.kernel, layer.stride, layer.padding, output_shape
            )
        if isinstance(layer, LRNLayer):
            return reference_ops.local_response_norm(
                inputs[0], local_size=layer.local_size, alpha=layer.alpha, beta=layer.beta
            )
        if isinstance(layer, FullyConnectedLayer):
            weights, bias = self.weights.fc_weights(layer.name)
            return reference_ops.fully_connected(inputs[0], weights, bias)
        if isinstance(layer, ConcatLayer):
            return reference_ops.concat_channels(inputs)
        if isinstance(layer, EltwiseAddLayer):
            return reference_ops.eltwise_add(inputs)
        if isinstance(layer, DropoutLayer):
            return inputs[0]
        if isinstance(layer, SoftmaxLayer):
            return reference_ops.softmax(inputs[0])
        if isinstance(layer, FlattenLayer):
            return reference_ops.flatten(inputs[0])
        raise NotImplementedError(f"no reference operator for layer type {type(layer).__name__}")
