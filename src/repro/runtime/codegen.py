"""Schedule generation: the textual analogue of the paper's code generator.

The paper "mapped the solution to code with a simple code generator which
emitted calls to primitive operations in our library".  This module produces
the equivalent artifact for a :class:`~repro.core.plan.NetworkPlan`: a linear
schedule of steps (convert / convolve / evaluate) in execution order, which
can be rendered as pseudo-code and is also a convenient structure for tests
to assert properties of a plan (e.g. "no conversions inside the Winograd
region").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.plan import NetworkPlan
from repro.graph.network import Network


@dataclass(frozen=True)
class ScheduleStep:
    """One emitted operation of the generated schedule.

    ``kind`` is one of ``"input"``, ``"convert"``, ``"convolution"`` or
    ``"layer"``.
    """

    kind: str
    layer: str
    detail: str

    def render(self) -> str:
        return f"{self.kind:<12} {self.layer:<28} {self.detail}"


def generate_schedule(network: Network, plan: NetworkPlan) -> List[ScheduleStep]:
    """Emit the linear schedule implementing a plan."""
    edge_of = {(e.producer, e.consumer): e for e in plan.edge_decisions}
    steps: List[ScheduleStep] = []
    for layer in network.topological_order():
        decision = plan.decision(layer.name)
        for producer in network.inputs_of(layer.name):
            edge = edge_of[(producer, layer.name)]
            if edge.needs_conversion:
                steps.append(
                    ScheduleStep(
                        kind="convert",
                        layer=layer.name,
                        detail=f"{producer}: {edge.chain.name}",
                    )
                )
        if decision.primitive is not None:
            steps.append(
                ScheduleStep(
                    kind="convolution",
                    layer=layer.name,
                    detail=(
                        f"{decision.primitive} "
                        f"[{decision.input_layout.name}->{decision.output_layout.name}]"
                    ),
                )
            )
        elif not network.inputs_of(layer.name):
            steps.append(
                ScheduleStep(kind="input", layer=layer.name, detail=decision.output_layout.name)
            )
        else:
            steps.append(
                ScheduleStep(
                    kind="layer",
                    layer=layer.name,
                    detail=f"{type(layer).__name__} [{decision.output_layout.name}]",
                )
            )
    return steps


def render_schedule(network: Network, plan: NetworkPlan) -> str:
    """Render the generated schedule as readable pseudo-code."""
    header = f"// schedule for {plan.network_name} [{plan.strategy}] on {plan.platform_name}"
    lines = [header]
    lines.extend(step.render() for step in generate_schedule(network, plan))
    return "\n".join(lines)
