"""Data layouts, layout tensors, layout transformations and the DT graph.

The paper (section 3.1) models data layouts of 3D feature-map tensors
(logical dimensions ``C`` x ``H`` x ``W``) and a *data-layout transformation
graph* (DT graph) whose nodes are layouts and whose edges are the direct
conversion routines shipped with the primitive library.  Because the set of
direct routines is deliberately incomplete, converting between two layouts
may require a chain of transformations; the cost of the cheapest chain is the
all-pairs shortest path over the DT graph.

Public API
----------
``Layout``
    Description of a tensor layout (a permutation of C, H, W optionally with
    channel blocking for vectorized kernels).
``LayoutTensor``
    A numpy array together with the layout it is stored in, convertible
    to/from the canonical CHW representation.
``LayoutTransform``
    A direct conversion routine between two layouts.
``DTGraph``
    The data-layout transformation graph, with transitive closure and
    all-pairs shortest path queries.
``STANDARD_LAYOUTS`` / ``default_transform_library``
    The layouts and direct transforms used throughout the reproduction.
"""

from repro.layouts.layout import (
    Layout,
    CHW,
    HWC,
    HCW,
    WHC,
    CHW4c,
    CHW8c,
    HWC4c,
    HWC8c,
    STANDARD_LAYOUTS,
    get_layout,
)
from repro.layouts.tensor import LayoutTensor
from repro.layouts.transforms import (
    LayoutTransform,
    TransformChain,
    default_transform_library,
)
from repro.layouts.dt_graph import DTGraph, DTPath

__all__ = [
    "Layout",
    "CHW",
    "HWC",
    "HCW",
    "WHC",
    "CHW4c",
    "CHW8c",
    "HWC4c",
    "HWC8c",
    "STANDARD_LAYOUTS",
    "get_layout",
    "LayoutTensor",
    "LayoutTransform",
    "TransformChain",
    "default_transform_library",
    "DTGraph",
    "DTPath",
]
