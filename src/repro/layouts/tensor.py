"""Layout-aware tensor wrapper.

``LayoutTensor`` couples a numpy array with the :class:`~repro.layouts.layout.Layout`
it is stored in, plus the logical ``(C, H, W)`` shape (needed because blocked
layouts pad the channel dimension).  All primitives in
:mod:`repro.primitives` consume and produce ``LayoutTensor`` values; the
canonical interchange format is the ``CHW`` logical view obtained with
:meth:`LayoutTensor.to_chw`.

A tensor may additionally carry an explicit **batch** axis: ``batch=None``
(the default) is a single image whose physical array is exactly
``layout.physical_shape(C, H, W)``; ``batch=N`` prepends one outermost ``N``
axis to that physical shape, i.e. the batch is stored as ``N`` consecutive
per-image layouts (the ``(N, C, H, W)`` family of physical formats).  The
batched interchange format is the ``(N, C, H, W)`` view of
:meth:`LayoutTensor.to_nchw`; layout conversions treat the batch axis as
purely elementwise, so every transform chain works unchanged on batched
tensors.

Precision support lives here too: :data:`NUMPY_DTYPES` maps the scenario
dtype axis (``"fp32"``/``"fp16"``/``"int8"``) onto numpy storage types, and
:func:`quantize_symmetric`/:func:`dequantize` implement the int8 scheme every
quantized primitive shares — symmetric per-tensor scaling into ``[-127, 127]``
with exact int32-style accumulation (integer-valued products are accumulated
without rounding, then rescaled once per tensor).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.layouts.layout import CHW, Layout

#: Numpy storage type per scenario precision.  Layout conversions are
#: dtype-polymorphic (``_chw_to_physical`` preserves the array dtype), so a
#: blocked int8 tensor pads with int8 zeros and moves 1-byte elements.
NUMPY_DTYPES = {"fp32": np.float32, "fp16": np.float16, "int8": np.int8}

#: The int8 quantization grid: symmetric, so -128 is never produced and the
#: representable range is exactly ``[-127 * scale, 127 * scale]``.
INT8_QUANT_MAX = 127


def numpy_dtype(dtype: str):
    """The numpy storage type for a scenario precision string."""
    try:
        return NUMPY_DTYPES[dtype]
    except KeyError:
        raise ValueError(
            f"unknown dtype {dtype!r}; expected one of {sorted(NUMPY_DTYPES)}"
        ) from None


def quantize_symmetric(array: np.ndarray) -> Tuple[np.ndarray, float]:
    """Quantize a float tensor to int8 with one symmetric per-tensor scale.

    Returns ``(q, scale)`` with ``q`` an int8 array in ``[-127, 127]`` and
    ``scale`` the dequantization step, chosen so the tensor's max magnitude
    maps to 127 (``scale = max|x| / 127``).  An all-zero tensor quantizes to
    zeros with scale 1.0 so dequantization is always well defined.
    """
    array = np.asarray(array, dtype=np.float64)
    peak = float(np.max(np.abs(array))) if array.size else 0.0
    if peak == 0.0:
        return np.zeros(array.shape, dtype=np.int8), 1.0
    scale = peak / INT8_QUANT_MAX
    q = np.clip(np.rint(array / scale), -INT8_QUANT_MAX, INT8_QUANT_MAX)
    return q.astype(np.int8), scale


def dequantize(q: np.ndarray, scale: float) -> np.ndarray:
    """Map int8 (or int32 accumulator) values back onto the real line."""
    return np.asarray(q, dtype=np.float64) * float(scale)


def fp16_round_trip(array: np.ndarray) -> np.ndarray:
    """Round a float tensor through IEEE fp16 storage precision.

    Models an fp16 compute path: operands are held in half precision, the
    accumulation happens in a wider type (as real fp16 FMA units do), so the
    precision loss is exactly the fp16 rounding of the operands.
    """
    return np.asarray(array).astype(np.float16).astype(np.float32)


@dataclass
class LayoutTensor:
    """A feature-map tensor stored in a particular data layout.

    Attributes
    ----------
    data:
        The physical numpy array.  For a single image its shape equals
        ``layout.physical_shape(*logical_shape)``; for a batched tensor a
        leading ``(batch,)`` axis is prepended.
    layout:
        The layout the data is stored in.
    logical_shape:
        The logical per-image ``(C, H, W)`` dimensions (excluding any block
        padding and excluding the batch axis).
    batch:
        ``None`` for a single image; the batch size ``N`` for a batched
        tensor.
    """

    data: np.ndarray
    layout: Layout
    logical_shape: Tuple[int, int, int]
    batch: Optional[int] = None

    def __post_init__(self) -> None:
        expected = self.layout.physical_shape(*self.logical_shape)
        if self.batch is not None:
            if self.batch < 1:
                raise ValueError(f"batch must be >= 1 or None, got {self.batch}")
            expected = (self.batch,) + expected
        if tuple(self.data.shape) != expected:
            raise ValueError(
                f"array shape {tuple(self.data.shape)} does not match physical "
                f"shape {expected} for layout {self.layout.name}, logical "
                f"shape {self.logical_shape} and batch {self.batch}"
            )

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_chw(cls, array: np.ndarray, layout: Layout = CHW) -> "LayoutTensor":
        """Build a single-image tensor in ``layout`` from a ``(C, H, W)`` array."""
        array = np.asarray(array)
        if array.ndim != 3:
            raise ValueError(f"expected a 3D (C, H, W) array, got ndim={array.ndim}")
        c, h, w = array.shape
        physical = _chw_to_physical(array, layout)
        return cls(data=physical, layout=layout, logical_shape=(c, h, w))

    @classmethod
    def from_nchw(cls, array: np.ndarray, layout: Layout = CHW) -> "LayoutTensor":
        """Build a batched tensor in ``layout`` from an ``(N, C, H, W)`` array."""
        array = np.asarray(array)
        if array.ndim != 4:
            raise ValueError(f"expected a 4D (N, C, H, W) array, got ndim={array.ndim}")
        n, c, h, w = array.shape
        physical = _chw_to_physical(array, layout)
        return cls(data=physical, layout=layout, logical_shape=(c, h, w), batch=n)

    @classmethod
    def zeros(
        cls,
        logical_shape: Tuple[int, int, int],
        layout: Layout = CHW,
        dtype=np.float32,
        batch: Optional[int] = None,
    ) -> "LayoutTensor":
        """A zero tensor of the given logical shape in the given layout."""
        physical_shape = layout.physical_shape(*logical_shape)
        if batch is not None:
            physical_shape = (batch,) + physical_shape
        physical = np.zeros(physical_shape, dtype=dtype)
        return cls(data=physical, layout=layout, logical_shape=logical_shape, batch=batch)

    # -- conversions --------------------------------------------------------

    def to_chw(self) -> np.ndarray:
        """Return the canonical ``(C, H, W)`` view of a single-image tensor."""
        if self.batch is not None:
            raise ValueError(
                f"tensor is batched (batch={self.batch}); use to_nchw() instead"
            )
        return _physical_to_chw(self.data, self.layout, self.logical_shape)

    def to_nchw(self) -> np.ndarray:
        """Return the canonical ``(N, C, H, W)`` view of a batched tensor."""
        if self.batch is None:
            raise ValueError("tensor is not batched; use to_chw() instead")
        return _physical_to_chw(self.data, self.layout, self.logical_shape)

    def to_logical(self) -> np.ndarray:
        """The canonical logical view: ``(C, H, W)`` or ``(N, C, H, W)``."""
        return _physical_to_chw(self.data, self.layout, self.logical_shape)

    def convert(self, layout: Layout) -> "LayoutTensor":
        """Return a copy of this tensor stored in another layout."""
        if layout == self.layout:
            return LayoutTensor(
                data=self.data.copy(),
                layout=self.layout,
                logical_shape=self.logical_shape,
                batch=self.batch,
            )
        if self.batch is not None:
            return LayoutTensor.from_nchw(self.to_nchw(), layout)
        return LayoutTensor.from_chw(self.to_chw(), layout)

    # -- niceties ------------------------------------------------------------

    @property
    def channels(self) -> int:
        return self.logical_shape[0]

    @property
    def height(self) -> int:
        return self.logical_shape[1]

    @property
    def width(self) -> int:
        return self.logical_shape[2]

    @property
    def dtype(self):
        return self.data.dtype

    def allclose(self, other: "LayoutTensor", rtol: float = 1e-5, atol: float = 1e-6) -> bool:
        """Compare two layout tensors by their logical contents."""
        if self.logical_shape != other.logical_shape or self.batch != other.batch:
            return False
        return np.allclose(self.to_logical(), other.to_logical(), rtol=rtol, atol=atol)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        batch = "" if self.batch is None else f", batch={self.batch}"
        return (
            f"LayoutTensor(layout={self.layout.name}, logical_shape={self.logical_shape}"
            f"{batch}, dtype={self.data.dtype})"
        )


# ---------------------------------------------------------------------------
# Physical <-> logical conversion helpers.
#
# Both helpers accept an optional leading batch axis: a 4D (N, C, H, W)
# logical array maps to a physical array with the same leading N, and the
# per-image layout permutation / blocking applies to the trailing axes.
# ---------------------------------------------------------------------------


def _chw_to_physical(array: np.ndarray, layout: Layout) -> np.ndarray:
    """Convert a canonical (C, H, W) or (N, C, H, W) array into physical form."""
    lead = array.ndim - 3  # 0 for a single image, 1 for a batched tensor
    c, h, w = array.shape[lead:]
    if layout.channel_block is None:
        perm = tuple(range(lead)) + tuple(lead + "CHW".index(a) for a in layout.order)
        return np.ascontiguousarray(np.transpose(array, perm))
    block = layout.channel_block
    blocks = -(-c // block)
    padded = np.zeros(array.shape[:lead] + (blocks * block, h, w), dtype=array.dtype)
    padded[..., :c, :, :] = array
    # Shape (..., blocks, block, H, W) then move the block to the innermost
    # axis and reorder the outer axes according to the layout permutation of
    # (Cb, H, W).
    grouped = padded.reshape(array.shape[:lead] + (blocks, block, h, w))
    sizes = {"C": 0, "H": 2, "W": 3}
    outer_axes = (
        tuple(range(lead))
        + tuple(lead + sizes[a] for a in layout.order)
        + (lead + 1,)
    )
    return np.ascontiguousarray(np.transpose(grouped, outer_axes))


def _physical_to_chw(
    physical: np.ndarray, layout: Layout, logical_shape: Tuple[int, int, int]
) -> np.ndarray:
    """Convert a physical array back into the canonical (C, H, W) / (N, C, H, W) view."""
    c, h, w = logical_shape
    per_image_ndim = 4 if layout.channel_block is not None else 3
    lead = physical.ndim - per_image_ndim
    if layout.channel_block is None:
        inverse = tuple(range(lead)) + tuple(
            lead + layout.order.index(a) for a in "CHW"
        )
        return np.ascontiguousarray(np.transpose(physical, inverse))
    block = layout.channel_block
    # Per-image physical shape is outer-permutation of (Cb, H, W) plus trailing block.
    positions = {axis: i for i, axis in enumerate(layout.order)}
    restore = tuple(range(lead)) + tuple(
        lead + i for i in (positions["C"], len(layout.order), positions["H"], positions["W"])
    )
    grouped = np.transpose(physical, restore)  # (..., Cb, block, H, W)
    blocks = grouped.shape[lead]
    flat = grouped.reshape(physical.shape[:lead] + (blocks * block, h, w))
    return np.ascontiguousarray(flat[..., :c, :, :])
