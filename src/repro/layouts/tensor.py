"""Layout-aware tensor wrapper.

``LayoutTensor`` couples a numpy array with the :class:`~repro.layouts.layout.Layout`
it is stored in, plus the logical ``(C, H, W)`` shape (needed because blocked
layouts pad the channel dimension).  All primitives in
:mod:`repro.primitives` consume and produce ``LayoutTensor`` values; the
canonical interchange format is the ``CHW`` logical view obtained with
:meth:`LayoutTensor.to_chw`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.layouts.layout import CHW, Layout


@dataclass
class LayoutTensor:
    """A feature-map tensor stored in a particular data layout.

    Attributes
    ----------
    data:
        The physical numpy array, whose shape equals
        ``layout.physical_shape(*logical_shape)``.
    layout:
        The layout the data is stored in.
    logical_shape:
        The logical ``(C, H, W)`` dimensions (excluding any block padding).
    """

    data: np.ndarray
    layout: Layout
    logical_shape: Tuple[int, int, int]

    def __post_init__(self) -> None:
        expected = self.layout.physical_shape(*self.logical_shape)
        if tuple(self.data.shape) != expected:
            raise ValueError(
                f"array shape {tuple(self.data.shape)} does not match physical "
                f"shape {expected} for layout {self.layout.name} and logical "
                f"shape {self.logical_shape}"
            )

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_chw(cls, array: np.ndarray, layout: Layout = CHW) -> "LayoutTensor":
        """Build a tensor in ``layout`` from a canonical ``(C, H, W)`` array."""
        array = np.asarray(array)
        if array.ndim != 3:
            raise ValueError(f"expected a 3D (C, H, W) array, got ndim={array.ndim}")
        c, h, w = array.shape
        physical = _chw_to_physical(array, layout)
        return cls(data=physical, layout=layout, logical_shape=(c, h, w))

    @classmethod
    def zeros(
        cls, logical_shape: Tuple[int, int, int], layout: Layout = CHW, dtype=np.float32
    ) -> "LayoutTensor":
        """A zero tensor of the given logical shape in the given layout."""
        physical = np.zeros(layout.physical_shape(*logical_shape), dtype=dtype)
        return cls(data=physical, layout=layout, logical_shape=logical_shape)

    # -- conversions --------------------------------------------------------

    def to_chw(self) -> np.ndarray:
        """Return the canonical ``(C, H, W)`` view of the logical tensor."""
        return _physical_to_chw(self.data, self.layout, self.logical_shape)

    def convert(self, layout: Layout) -> "LayoutTensor":
        """Return a copy of this tensor stored in another layout."""
        if layout == self.layout:
            return LayoutTensor(
                data=self.data.copy(), layout=self.layout, logical_shape=self.logical_shape
            )
        return LayoutTensor.from_chw(self.to_chw(), layout)

    # -- niceties ------------------------------------------------------------

    @property
    def channels(self) -> int:
        return self.logical_shape[0]

    @property
    def height(self) -> int:
        return self.logical_shape[1]

    @property
    def width(self) -> int:
        return self.logical_shape[2]

    @property
    def dtype(self):
        return self.data.dtype

    def allclose(self, other: "LayoutTensor", rtol: float = 1e-5, atol: float = 1e-6) -> bool:
        """Compare two layout tensors by their logical contents."""
        if self.logical_shape != other.logical_shape:
            return False
        return np.allclose(self.to_chw(), other.to_chw(), rtol=rtol, atol=atol)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LayoutTensor(layout={self.layout.name}, logical_shape={self.logical_shape}, "
            f"dtype={self.data.dtype})"
        )


# ---------------------------------------------------------------------------
# Physical <-> logical conversion helpers.
# ---------------------------------------------------------------------------


def _chw_to_physical(array: np.ndarray, layout: Layout) -> np.ndarray:
    """Convert a canonical (C, H, W) array into the physical array of a layout."""
    c, h, w = array.shape
    if layout.channel_block is None:
        perm = tuple("CHW".index(a) for a in layout.order)
        return np.ascontiguousarray(np.transpose(array, perm))
    block = layout.channel_block
    blocks = -(-c // block)
    padded = np.zeros((blocks * block, h, w), dtype=array.dtype)
    padded[:c] = array
    # Shape (blocks, block, H, W) then move the block to the innermost axis and
    # reorder the outer axes according to the layout permutation of (Cb, H, W).
    grouped = padded.reshape(blocks, block, h, w)
    sizes = {"C": 0, "H": 2, "W": 3}
    outer_axes = tuple(sizes[a] for a in layout.order)
    return np.ascontiguousarray(np.transpose(grouped, outer_axes + (1,)))


def _physical_to_chw(
    physical: np.ndarray, layout: Layout, logical_shape: Tuple[int, int, int]
) -> np.ndarray:
    """Convert a physical array back into the canonical (C, H, W) view."""
    c, h, w = logical_shape
    if layout.channel_block is None:
        inverse = tuple(layout.order.index(a) for a in "CHW")
        return np.ascontiguousarray(np.transpose(physical, inverse))
    block = layout.channel_block
    # Physical shape is outer-permutation of (Cb, H, W) plus trailing block.
    positions = {axis: i for i, axis in enumerate(layout.order)}
    restore = (positions["C"], len(layout.order), positions["H"], positions["W"])
    grouped = np.transpose(physical, restore)  # (Cb, block, H, W)
    blocks = grouped.shape[0]
    flat = grouped.reshape(blocks * block, h, w)
    return np.ascontiguousarray(flat[:c])
