"""Tensor data-layout descriptions.

A feature-map tensor in this reproduction is logically a 3D array with
dimensions ``C`` (channels), ``H`` (height) and ``W`` (width), matching the
paper's convolutional scenario model (section 3).  A *layout* describes how
that logical tensor is arranged in memory:

* a **permutation** of the axes, e.g. ``CHW`` (the Caffe canonical layout),
  ``HWC`` (channel-minor, favoured by GEMM-based primitives) or ``HCW``;
* optionally, **channel blocking**: the channel dimension is split into
  ``ceil(C / block)`` outer blocks with an innermost dimension of ``block``
  channels, e.g. ``CHWc8`` which is the layout used by 8-wide vectorized
  kernels (AVX2) and ``CHWc4`` used by 4-wide kernels (NEON).

Layouts are value objects: equality and hashing are by name, and the module
maintains a registry of the standard layouts used by the primitive library.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

#: The three logical axes of a feature-map tensor.
AXES = ("C", "H", "W")


@dataclass(frozen=True)
class Layout:
    """A memory layout for a logical ``C x H x W`` tensor.

    Parameters
    ----------
    name:
        Unique identifier, e.g. ``"CHW"`` or ``"CHWc8"``.
    order:
        Permutation of ``("C", "H", "W")`` giving the outer dimension order.
    channel_block:
        If not ``None``, the channel dimension is blocked with this factor and
        the block becomes the innermost physical dimension.
    """

    name: str
    order: Tuple[str, str, str]
    channel_block: Optional[int] = None

    def __post_init__(self) -> None:
        if sorted(self.order) != sorted(AXES):
            raise ValueError(
                f"layout order must be a permutation of {AXES}, got {self.order!r}"
            )
        if self.channel_block is not None and self.channel_block < 1:
            raise ValueError("channel_block must be a positive integer")

    @property
    def is_blocked(self) -> bool:
        """Whether the channel dimension is blocked (vector-friendly layout)."""
        return self.channel_block is not None

    def axis_position(self, axis: str) -> int:
        """Return the position of a logical axis in the outer dimension order."""
        return self.order.index(axis)

    def physical_shape(self, c: int, h: int, w: int) -> Tuple[int, ...]:
        """Shape of the physical array holding a logical ``(c, h, w)`` tensor.

        Blocked layouts pad the channel dimension up to a multiple of the
        block size; the padding channels hold zeros.
        """
        if c <= 0 or h <= 0 or w <= 0:
            raise ValueError("tensor dimensions must be positive")
        sizes = {"C": c, "H": h, "W": w}
        if self.channel_block is not None:
            blocks = -(-c // self.channel_block)
            sizes = {"C": blocks, "H": h, "W": w}
            outer = tuple(sizes[a] for a in self.order)
            return outer + (self.channel_block,)
        return tuple(sizes[a] for a in self.order)

    def element_count(self, c: int, h: int, w: int) -> int:
        """Number of stored elements, including block padding."""
        shape = self.physical_shape(c, h, w)
        count = 1
        for dim in shape:
            count *= dim
        return count

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name

    def __repr__(self) -> str:
        return f"Layout({self.name!r})"


def _permutation_name(order: Tuple[str, str, str]) -> str:
    return "".join(order)


def make_layout(order: Tuple[str, str, str], channel_block: Optional[int] = None) -> Layout:
    """Construct a layout with a canonical name derived from its structure."""
    name = _permutation_name(order)
    if channel_block is not None:
        name = f"{name}c{channel_block}"
    return Layout(name=name, order=order, channel_block=channel_block)


# ---------------------------------------------------------------------------
# Standard layouts used by the primitive library.
# ---------------------------------------------------------------------------

#: Caffe's canonical layout; used by the direct-loop and sum2d families.
CHW = make_layout(("C", "H", "W"))
#: Channel-minor layout favoured by im2row / kn2row GEMM-based primitives.
HWC = make_layout(("H", "W", "C"))
#: Row-major channel-interleaved layout used by some 1D Winograd variants.
HCW = make_layout(("H", "C", "W"))
#: Width-major layout; only reachable through conversion chains (stress case).
WHC = make_layout(("W", "H", "C"))
#: Channel-blocked layouts used by vectorized kernels (NEON: 4, AVX2: 8).
CHW4c = make_layout(("C", "H", "W"), channel_block=4)
CHW8c = make_layout(("C", "H", "W"), channel_block=8)
HWC4c = make_layout(("H", "W", "C"), channel_block=4)
HWC8c = make_layout(("H", "W", "C"), channel_block=8)

#: Registry of every layout known to the reproduction, keyed by name.
STANDARD_LAYOUTS: Dict[str, Layout] = {
    layout.name: layout
    for layout in (CHW, HWC, HCW, WHC, CHW4c, CHW8c, HWC4c, HWC8c)
}


def get_layout(name: str) -> Layout:
    """Look up a standard layout by name.

    Raises
    ------
    KeyError
        If the name does not correspond to a registered layout.
    """
    try:
        return STANDARD_LAYOUTS[name]
    except KeyError:
        raise KeyError(
            f"unknown layout {name!r}; known layouts: {sorted(STANDARD_LAYOUTS)}"
        ) from None
