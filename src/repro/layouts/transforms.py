"""Direct data-layout transformation routines.

Section 3.1 of the paper observes that a primitive library ships a *limited*
set of direct layout-conversion routines — there is usually not a routine for
every ordered pair of layouts, so converting between two layouts may require a
chain of direct transforms.  This module provides:

* :class:`LayoutTransform` — one direct conversion routine, executable on a
  :class:`~repro.layouts.tensor.LayoutTensor` and annotated with an element
  traffic estimate used by the analytical cost model;
* :class:`TransformChain` — a sequence of direct transforms applied in order;
* :func:`default_transform_library` — the deliberately incomplete set of
  direct transforms used throughout the reproduction (so that chains, and the
  all-pairs shortest path machinery of the DT graph, are actually exercised).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.layouts.layout import (
    CHW,
    CHW4c,
    CHW8c,
    HCW,
    HWC,
    HWC4c,
    HWC8c,
    WHC,
    Layout,
)
from repro.layouts.tensor import LayoutTensor


@dataclass(frozen=True)
class LayoutTransform:
    """A direct conversion routine from one layout to another.

    The routine itself is implemented generically (via the canonical CHW view)
    because the reproduction's primitives are numpy-backed; what matters for
    the selection problem is the *cost* of the conversion, captured by
    :meth:`element_traffic` and ultimately priced by the platform cost model.

    Attributes
    ----------
    source, target:
        The layouts converted between.
    efficiency:
        Relative efficiency of this routine compared to a plain gather/scatter
        copy.  Values above 1.0 model hand-optimized transforms (e.g. blocked
        interleave done with vector shuffles); values below 1.0 model awkward
        strided copies (e.g. transposes with poor locality).
    """

    source: Layout
    target: Layout
    efficiency: float = 1.0

    @property
    def name(self) -> str:
        return f"{self.source.name}->{self.target.name}"

    def apply(self, tensor: LayoutTensor) -> LayoutTensor:
        """Convert ``tensor`` (which must be in ``source``) into ``target``."""
        if tensor.layout != self.source:
            raise ValueError(
                f"transform {self.name} applied to tensor in layout {tensor.layout.name}"
            )
        return tensor.convert(self.target)

    def element_traffic(self, c: int, h: int, w: int) -> float:
        """Number of element reads+writes performed by this conversion.

        A layout conversion reads every source element and writes every target
        element (including any block padding), scaled by the routine's
        efficiency factor.
        """
        reads = self.source.element_count(c, h, w)
        writes = self.target.element_count(c, h, w)
        return (reads + writes) / self.efficiency

    def __repr__(self) -> str:
        return f"LayoutTransform({self.name})"


@dataclass(frozen=True)
class TransformChain:
    """A chain of direct layout transforms applied left to right."""

    transforms: Tuple[LayoutTransform, ...]

    def __post_init__(self) -> None:
        for first, second in zip(self.transforms, self.transforms[1:]):
            if first.target != second.source:
                raise ValueError(
                    f"transform chain is not connected: {first.name} then {second.name}"
                )

    @property
    def source(self) -> Layout:
        return self.transforms[0].source

    @property
    def target(self) -> Layout:
        return self.transforms[-1].target

    @property
    def name(self) -> str:
        hops = [self.transforms[0].source.name] + [t.target.name for t in self.transforms]
        return "->".join(hops)

    def __len__(self) -> int:
        return len(self.transforms)

    def apply(self, tensor: LayoutTensor) -> LayoutTensor:
        result = tensor
        for transform in self.transforms:
            result = transform.apply(result)
        return result

    def element_traffic(self, c: int, h: int, w: int) -> float:
        return sum(t.element_traffic(c, h, w) for t in self.transforms)


def identity_chain() -> TransformChain:
    """An empty chain used when source and target layouts already agree."""
    return TransformChain(transforms=())


def default_transform_library() -> List[LayoutTransform]:
    """The direct layout-conversion routines shipped with the reproduction.

    The set is intentionally incomplete, mirroring the paper's observation
    that real libraries only provide selected direct routines:

    * the three permutation layouts ``CHW``, ``HWC``, ``HCW`` are mutually
      convertible by direct routines;
    * ``WHC`` is only reachable from/to ``HWC`` — reaching it from ``CHW``
      requires a two-hop chain;
    * blocked layouts are only reachable from their base permutation
      (``CHWc8`` from ``CHW``, ``HWCc4`` from ``HWC``, ...), so converting
      e.g. ``CHWc8`` to ``HWCc8`` takes a three-hop chain.
    """
    pairs: Sequence[Tuple[Layout, Layout, float]] = [
        # Permutation transposes: moderately expensive strided copies.
        (CHW, HWC, 0.8),
        (HWC, CHW, 0.8),
        (CHW, HCW, 0.9),
        (HCW, CHW, 0.9),
        (HWC, HCW, 0.85),
        (HCW, HWC, 0.85),
        # WHC only connects to HWC.
        (HWC, WHC, 0.7),
        (WHC, HWC, 0.7),
        # Blocking / unblocking: optimized interleave routines.
        (CHW, CHW4c, 1.25),
        (CHW4c, CHW, 1.25),
        (CHW, CHW8c, 1.25),
        (CHW8c, CHW, 1.25),
        (HWC, HWC4c, 1.25),
        (HWC4c, HWC, 1.25),
        (HWC, HWC8c, 1.25),
        (HWC8c, HWC, 1.25),
    ]
    return [
        LayoutTransform(source=src, target=dst, efficiency=eff) for src, dst, eff in pairs
    ]


def transforms_by_pair(
    transforms: Iterable[LayoutTransform],
) -> dict[Tuple[str, str], LayoutTransform]:
    """Index a collection of transforms by (source name, target name)."""
    index: dict[Tuple[str, str], LayoutTransform] = {}
    for transform in transforms:
        key = (transform.source.name, transform.target.name)
        if key in index:
            raise ValueError(f"duplicate direct transform for pair {key}")
        index[key] = transform
    return index
