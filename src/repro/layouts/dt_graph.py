"""The data-layout transformation (DT) graph.

Section 3.1 of the paper: treat each supported data layout as a node and each
*direct* layout-conversion routine as a directed edge.  A conversion between
two layouts is possible iff there is a directed path between the corresponding
nodes; the cheapest conversion is the shortest path, where edge weights are
the (size-dependent) execution costs of the direct routines.  The paper
computes the all-pairs shortest paths ahead of time; pairs with no path get
infinite cost.

:class:`DTGraph` implements exactly this: reachability via transitive closure
and all-pairs shortest paths (Floyd–Warshall with path reconstruction) for a
given tensor shape and per-transform cost function.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.layouts.layout import Layout
from repro.layouts.transforms import LayoutTransform, TransformChain

#: A cost function mapping a direct transform and tensor shape to a scalar cost.
TransformCostFn = Callable[[LayoutTransform, Tuple[int, int, int]], float]


def element_traffic_cost(
    transform: LayoutTransform, shape: Tuple[int, int, int]
) -> float:
    """Default cost function: the element traffic of the direct transform."""
    return transform.element_traffic(*shape)


@dataclass(frozen=True)
class DTPath:
    """The cheapest conversion between two layouts for a given tensor shape.

    ``cost`` is ``math.inf`` and ``chain`` is ``None`` when the target layout
    is unreachable from the source layout.
    """

    source: Layout
    target: Layout
    cost: float
    chain: Optional[TransformChain]

    @property
    def reachable(self) -> bool:
        return math.isfinite(self.cost)

    @property
    def hops(self) -> int:
        return 0 if self.chain is None else len(self.chain)


class DTGraph:
    """Data-layout transformation graph over a set of layouts.

    Parameters
    ----------
    layouts:
        The layout nodes.  Layouts referenced by transforms but not listed
        here are added automatically.
    transforms:
        The direct conversion routines (directed edges).
    """

    def __init__(
        self, layouts: Iterable[Layout], transforms: Iterable[LayoutTransform]
    ) -> None:
        self._layouts: Dict[str, Layout] = {}
        for layout in layouts:
            self._layouts[layout.name] = layout
        self._transforms: List[LayoutTransform] = list(transforms)
        for transform in self._transforms:
            self._layouts.setdefault(transform.source.name, transform.source)
            self._layouts.setdefault(transform.target.name, transform.target)
        self._edges: Dict[Tuple[str, str], LayoutTransform] = {}
        for transform in self._transforms:
            key = (transform.source.name, transform.target.name)
            if key in self._edges:
                raise ValueError(f"duplicate direct transform for {key}")
            self._edges[key] = transform

    # -- basic structure -----------------------------------------------------

    @property
    def layouts(self) -> List[Layout]:
        """The layout nodes of the graph."""
        return list(self._layouts.values())

    @property
    def layout_names(self) -> List[str]:
        return list(self._layouts.keys())

    @property
    def transforms(self) -> List[LayoutTransform]:
        """The direct transform edges of the graph."""
        return list(self._transforms)

    def direct_transform(self, source: Layout, target: Layout) -> Optional[LayoutTransform]:
        """The direct routine from ``source`` to ``target``, if one exists."""
        return self._edges.get((source.name, target.name))

    def successors(self, layout: Layout) -> List[Layout]:
        """Layouts directly reachable from ``layout`` by one transform."""
        return [
            self._layouts[dst]
            for (src, dst) in self._edges
            if src == layout.name
        ]

    # -- reachability --------------------------------------------------------

    def transitive_closure(self) -> Set[Tuple[str, str]]:
        """All ordered pairs ``(a, b)`` such that layout ``b`` is reachable from ``a``.

        Every layout is trivially reachable from itself.
        """
        names = self.layout_names
        reach: Set[Tuple[str, str]] = {(n, n) for n in names}
        reach.update(self._edges.keys())
        changed = True
        while changed:
            changed = False
            for a in names:
                for b in names:
                    if (a, b) in reach:
                        continue
                    if any((a, mid) in reach and (mid, b) in reach for mid in names):
                        reach.add((a, b))
                        changed = True
        return reach

    def is_reachable(self, source: Layout, target: Layout) -> bool:
        """Whether ``target`` can be reached from ``source`` by some chain."""
        return (source.name, target.name) in self.transitive_closure()

    # -- all-pairs shortest paths ---------------------------------------------

    def all_pairs_shortest_paths(
        self,
        shape: Tuple[int, int, int],
        cost_fn: TransformCostFn = element_traffic_cost,
    ) -> Dict[Tuple[str, str], DTPath]:
        """Cheapest conversion chains between every ordered pair of layouts.

        Uses Floyd–Warshall over the direct-transform edge costs evaluated on
        the given tensor ``shape``.  The result maps ``(source name, target
        name)`` to a :class:`DTPath`; unreachable pairs get infinite cost.
        """
        names = self.layout_names
        index = {name: i for i, name in enumerate(names)}
        n = len(names)
        dist = [[math.inf] * n for _ in range(n)]
        nxt: List[List[Optional[int]]] = [[None] * n for _ in range(n)]
        for i in range(n):
            dist[i][i] = 0.0
            nxt[i][i] = i
        for (src, dst), transform in self._edges.items():
            i, j = index[src], index[dst]
            cost = float(cost_fn(transform, shape))
            if cost < 0:
                raise ValueError(f"negative transform cost for {transform.name}")
            if cost < dist[i][j]:
                dist[i][j] = cost
                nxt[i][j] = j
        for k in range(n):
            for i in range(n):
                if not math.isfinite(dist[i][k]):
                    continue
                for j in range(n):
                    through = dist[i][k] + dist[k][j]
                    if through < dist[i][j]:
                        dist[i][j] = through
                        nxt[i][j] = nxt[i][k]

        paths: Dict[Tuple[str, str], DTPath] = {}
        for a in names:
            for b in names:
                i, j = index[a], index[b]
                source = self._layouts[a]
                target = self._layouts[b]
                if not math.isfinite(dist[i][j]):
                    paths[(a, b)] = DTPath(source, target, math.inf, None)
                    continue
                chain = self._reconstruct_chain(names, index, nxt, a, b)
                paths[(a, b)] = DTPath(source, target, dist[i][j], chain)
        return paths

    def shortest_path(
        self,
        source: Layout,
        target: Layout,
        shape: Tuple[int, int, int],
        cost_fn: TransformCostFn = element_traffic_cost,
    ) -> DTPath:
        """Cheapest conversion from ``source`` to ``target`` for ``shape``."""
        return self.all_pairs_shortest_paths(shape, cost_fn)[(source.name, target.name)]

    def _reconstruct_chain(
        self,
        names: Sequence[str],
        index: Dict[str, int],
        nxt: List[List[Optional[int]]],
        source: str,
        target: str,
    ) -> TransformChain:
        if source == target:
            return TransformChain(transforms=())
        hops: List[LayoutTransform] = []
        current = index[source]
        goal = index[target]
        while current != goal:
            following = nxt[current][goal]
            if following is None:
                raise RuntimeError("path reconstruction failed on a reachable pair")
            edge = self._edges[(names[current], names[following])]
            hops.append(edge)
            current = following
        return TransformChain(transforms=tuple(hops))
