"""Command-line interface for the reproduction.

Twelve subcommands cover the workflows a downstream user needs:

* ``repro select``  — run one selection strategy for a zoo model on a modelled
  platform (default: the paper's PBQP pipeline) and print (or save) the plan;
* ``repro run``     — plan *and execute* a forward pass (or execute a plan
  saved with ``select --save``) and print the per-layer execution report;
* ``repro compare`` — evaluate every registered strategy for one
  network/platform/thread-count, ranked by total cost with speedups;
* ``repro frontier`` — build the multi-objective Pareto frontier (time, peak
  workspace, energy proxy) and print it with a workspace-budget sweep;
* ``repro cache``   — inspect, evict from, or clear a persistent cost-table
  store;
* ``repro check``   — statically verify saved plan/tables/frontier documents
  (rule codes ``RV1xx``) without executing them;
* ``repro lint``    — run the project-specific AST lint (rule codes
  ``LT2xx``: registry mutation, unseeded random, unsorted JSON, lock
  discipline);
* ``repro serve``   — run the planning daemon (``POST /v1/plan`` et al.) over
  a shared thread-safe session, optionally pre-warming the zoo grid;
* ``repro figures`` — regenerate the full set of whole-network figures;
* ``repro tables``  — regenerate the absolute-time tables (Tables 2 and 3);
* ``repro platforms`` — list every registered platform with its calibration
  factors (the registry is open: see :mod:`repro.cost.platform`);
* ``repro list``    — list the available models, platforms and registered
  selection strategies.

Every selection-driving subcommand accepts ``--cache-dir PATH``: cost tables
are then persisted in a :class:`~repro.cost.store.CostStore`, so a second
invocation (a fresh process) skips profiling entirely.  ``select``, ``run``
and ``compare`` accept the network either positionally (``repro select
alexnet``) or as ``--network alexnet``, plus ``--batch N`` to price the
selection (and execute the forward pass) for minibatches of ``N`` images.

Invoke as ``python -m repro <subcommand> ...`` (or ``repro <subcommand> ...``
once the package is installed).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.api import Session
from repro.core.strategies import STRATEGIES, registered_names
from repro.cost.platform import PLATFORMS, get_platform, list_platforms
from repro.graph.scenario import DTYPES
from repro.cost.store import CostStore
from repro.experiments.tables import format_absolute_table, run_absolute_time_table
from repro.experiments.whole_network import (
    DEFAULT_FIGURE_NETWORKS,
    FIGURE_NETWORKS,
    format_speedup_table,
    run_whole_network,
)
from repro.models import MODEL_BUILDERS
from repro.runtime.codegen import render_schedule


def _add_model_arguments(parser: argparse.ArgumentParser) -> None:
    """Positional model name plus the equivalent ``--network`` option."""
    parser.add_argument(
        "model",
        nargs="?",
        choices=sorted(MODEL_BUILDERS),
        help="model zoo network (positional form)",
    )
    parser.add_argument(
        "--network",
        choices=sorted(MODEL_BUILDERS),
        help="model zoo network (option form, equivalent to the positional)",
    )


def _resolve_model(parser: argparse.ArgumentParser, args: argparse.Namespace) -> str:
    """The network a subcommand should operate on, from either spelling."""
    if args.model and args.network and args.model != args.network:
        parser.error(
            f"conflicting networks: positional {args.model!r} vs --network {args.network!r}"
        )
    model = args.model or args.network
    if not model:
        parser.error("a network is required (positional MODEL or --network NAME)")
    return model


def _add_platform_argument(parser: argparse.ArgumentParser) -> None:
    # Deliberately not `choices=...`: the platform registry is open (user
    # code can register platforms before invoking main), so validation goes
    # through the registry at dispatch time — see _resolve_platform — and
    # the error message lists whatever is registered *then*.
    parser.add_argument(
        "--platform",
        default="intel-haswell",
        help="modelled hardware platform, as listed by 'repro platforms' "
        "(default: intel-haswell)",
    )


def _resolve_platform(args: argparse.Namespace):
    """Resolve ``--platform`` through the registry (exits 2 with the valid names)."""
    try:
        return get_platform(args.platform)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        raise SystemExit(2) from None


def _add_threads_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--threads", type=int, default=1, help="number of threads to model (default: 1)"
    )


def _add_batch_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--batch",
        type=int,
        default=1,
        help="minibatch size to price and execute (default: 1, the paper's setting)",
    )


def _add_dtype_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dtype",
        choices=DTYPES,
        default="fp32",
        help="numeric precision to price and execute (default: fp32, the "
        "paper's setting)",
    )


def _add_cache_dir_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="persist cost tables in this directory (skips profiling when warm)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Optimal DNN primitive selection with PBQP (CGO 2018) — reproduction CLI",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    select = subparsers.add_parser("select", help="run primitive selection for a model")
    _add_model_arguments(select)
    _add_platform_argument(select)
    _add_threads_argument(select)
    _add_batch_argument(select)
    _add_dtype_argument(select)
    _add_cache_dir_argument(select)
    select.add_argument(
        "--strategy",
        choices=registered_names(),
        default="pbqp",
        help="registered selection strategy to run (default: pbqp)",
    )
    select.add_argument("--schedule", action="store_true", help="print the generated schedule")
    select.add_argument(
        "--save",
        "--output",
        dest="save",
        metavar="PATH",
        help="write the selected plan to this JSON file (executable via 'run --plan')",
    )

    run = subparsers.add_parser(
        "run", help="plan and execute one forward pass, reporting per-layer times"
    )
    _add_model_arguments(run)
    _add_platform_argument(run)
    _add_threads_argument(run)
    _add_batch_argument(run)
    _add_dtype_argument(run)
    _add_cache_dir_argument(run)
    run.add_argument(
        "--strategy",
        choices=registered_names(),
        default="pbqp",
        help="registered selection strategy to run (default: pbqp)",
    )
    run.add_argument(
        "--plan",
        metavar="PATH",
        help="execute a plan saved with 'select --save' instead of selecting",
    )
    run.add_argument(
        "--seed", type=int, default=0, help="seed for weights and the generated input"
    )

    compare = subparsers.add_parser(
        "compare", help="evaluate every selection strategy for one model"
    )
    _add_model_arguments(compare)
    _add_platform_argument(compare)
    _add_threads_argument(compare)
    _add_batch_argument(compare)
    _add_dtype_argument(compare)
    _add_cache_dir_argument(compare)

    frontier = subparsers.add_parser(
        "frontier",
        help="build the multi-objective Pareto frontier of plans for one model",
    )
    _add_model_arguments(frontier)
    _add_platform_argument(frontier)
    _add_threads_argument(frontier)
    _add_batch_argument(frontier)
    _add_cache_dir_argument(frontier)
    frontier.add_argument(
        "--seed", type=int, default=0, help="tie-breaking seed (default: 0)"
    )
    frontier.add_argument(
        "--budget-steps",
        type=int,
        default=None,
        help="number of epsilon-constraint workspace caps to sweep",
    )
    frontier.add_argument(
        "--mode",
        choices=("knee", "min_time_under", "lexicographic"),
        default="knee",
        help="decision mode applied to the front (default: knee)",
    )
    frontier.add_argument(
        "--max-workspace-kib",
        type=float,
        default=None,
        help="peak-workspace budget in KiB (constrains the decision and "
        "directs an epsilon-constraint solve at exactly this budget)",
    )
    frontier.add_argument(
        "--max-energy-mj",
        type=float,
        default=None,
        help="energy-proxy budget in millijoules (constrains the decision)",
    )
    frontier.add_argument(
        "--max-time-ms",
        type=float,
        default=None,
        help="whole-network time budget in milliseconds (constrains the decision)",
    )
    frontier.add_argument(
        "--save",
        metavar="PATH",
        help="write the frontier (plans included) to this JSON file",
    )

    cache = subparsers.add_parser(
        "cache", help="inspect, evict from, or clear a persistent cost-table store"
    )
    cache.add_argument(
        "--cache-dir", required=True, help="the store directory to inspect"
    )
    cache.add_argument(
        "--clear", action="store_true", help="delete every entry in the store"
    )
    cache.add_argument(
        "--evict",
        action="store_true",
        help="remove stale-format, stale-platform-version and (with --ttl-hours) "
        "expired entries",
    )
    cache.add_argument(
        "--ttl-hours",
        type=float,
        default=None,
        help="with --evict: also remove entries older than this many hours",
    )

    check = subparsers.add_parser(
        "check",
        help="statically verify saved plan/tables/frontier documents without "
        "executing them",
    )
    check.add_argument(
        "paths", nargs="+", metavar="PATH", help="JSON documents to verify"
    )
    check.add_argument(
        "--strict",
        action="store_true",
        help="treat warnings as failures (exit 1); CI uses this so pricing "
        "regressions like a reappearing RV140 fan-out gap fail the build",
    )
    check.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="print the full analysis reports as JSON",
    )

    lint = subparsers.add_parser(
        "lint", help="run the project-specific AST lint (rules LT2xx)"
    )
    lint.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files or directories to lint (default: src/ when present, "
        "else the installed repro package)",
    )
    lint.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="print the full analysis report as JSON",
    )

    serve = subparsers.add_parser(
        "serve", help="run the HTTP planning daemon over a shared session"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)")
    serve.add_argument(
        "--port", type=int, default=8735, help="bind port (default: 8735; 0 = ephemeral)"
    )
    _add_cache_dir_argument(serve)
    serve.add_argument(
        "--warm",
        choices=("zoo",),
        default=None,
        help="pre-warm the model-zoo x platform grid in the background",
    )
    serve.add_argument(
        "--warm-models",
        nargs="+",
        metavar="MODEL",
        default=None,
        help="restrict warming to these zoo models (default: the whole zoo)",
    )
    serve.add_argument(
        "--warm-dtypes",
        nargs="+",
        choices=DTYPES,
        default=["fp32"],
        metavar="DTYPE",
        help="precisions to warm (default: fp32)",
    )
    serve.add_argument(
        "--warm-batches",
        nargs="+",
        type=int,
        metavar="N",
        default=[1],
        help="minibatch sizes to warm (default: 1)",
    )
    serve.add_argument(
        "--executor",
        choices=("serial", "thread", "process"),
        default="thread",
        help="executor draining the warming queue (default: thread)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        help="warming pool width (default: the executor's own default)",
    )

    figures = subparsers.add_parser(
        "figures", help="regenerate the whole-network figures (5/6/7a/7b)"
    )
    _add_platform_argument(figures)
    _add_threads_argument(figures)

    tables = subparsers.add_parser("tables", help="regenerate the absolute-time tables (2/3)")
    _add_platform_argument(tables)

    subparsers.add_parser(
        "platforms",
        help="list every registered platform with its calibration factors",
    )

    subparsers.add_parser(
        "list", help="list available models, platforms and registered strategies"
    )

    return parser


def _session(args: argparse.Namespace) -> Session:
    """A session honouring the subcommand's ``--cache-dir`` (when present)."""
    return Session(cache_dir=getattr(args, "cache_dir", None))


def _solver_note(plan) -> str:
    """Solver statistics suffix for the speedup line, robust to absent stats."""
    if "pbqp_optimal" not in plan.metadata:
        return ""
    solver_seconds = plan.metadata.get("solver_seconds")
    solver = "n/a" if solver_seconds is None else f"{solver_seconds * 1e3:.1f} ms"
    return f"  (solver {solver}, optimal: {plan.metadata['pbqp_optimal']})"


def _command_select(args: argparse.Namespace) -> int:
    session = _session(args)
    try:
        result = session.select(
            args.model,
            args.platform,
            strategy=args.strategy,
            threads=args.threads,
            batch=args.batch,
            dtype=args.dtype,
        )
    except ValueError as exc:  # e.g. a platform-gated strategy on the wrong platform
        print(f"error: {exc}", file=sys.stderr)
        return 2
    # The speedup denominator is the paper's common baseline: *single-threaded*
    # SUM2D, matching the figures' methodology regardless of --threads (but
    # priced at the same --batch, so the ratio compares like with like).
    baseline = session.baseline(
        args.model, args.platform, batch=args.batch, dtype=args.dtype
    )
    plan = result.plan
    print(plan.summary())
    print(
        f"  speedup over single-threaded SUM2D baseline: "
        f"{result.speedup_over(baseline):.2f}x{_solver_note(plan)}"
    )
    if args.schedule:
        network = session.context_for(
            args.model, args.platform, args.threads, args.batch, args.dtype
        ).network
        print()
        print(render_schedule(network, plan))
    if args.save:
        from repro.cost.serialize import save_plan

        save_plan(plan, args.save)
        print(f"  plan written to {args.save}")
    return 0


def _command_run(args: argparse.Namespace) -> int:
    session = _session(args)
    try:
        if args.plan:
            plan = session.plan_from_file(args.plan)
            if plan.network.name != args.model:
                print(
                    f"error: plan {args.plan} was saved for network "
                    f"{plan.network.name!r}, not {args.model!r}",
                    file=sys.stderr,
                )
                return 2
            print(f"executing saved plan {args.plan} [{plan.strategy}]")
        else:
            plan = session.plan(
                args.model,
                args.platform,
                strategy=args.strategy,
                threads=args.threads,
                batch=args.batch,
                dtype=args.dtype,
            )
    except (ValueError, KeyError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = plan.execute(seed=args.seed)
    print(report.format())
    heads = report.heads
    multi = len(heads) > 1
    for name, output in heads.items():
        label = f"head {name}" if multi else "output"
        primary = " (primary)" if multi and name == report.output_layer else ""
        if report.batch > 1:
            per_image = output.reshape(report.batch, -1)
            classes = ", ".join(str(int(row.argmax())) for row in per_image)
            print(
                f"  {label}: classes [{classes}] over the "
                f"{report.batch}-image batch{primary}"
            )
        else:
            print(
                f"  {label}: class {int(output.argmax())} "
                f"(probability {float(output.max()):.3f}){primary}"
            )
    return 0


#: Fractions of the unconstrained peak workspace swept by `repro frontier`.
_SWEEP_FRACTIONS = (1.0, 0.5, 0.25, 0.1, 0.05)


def _family_summary(plan, library) -> str:
    """Compact per-family histogram of a plan's convolution primitives."""
    from collections import Counter

    families = Counter(
        library.get(name).family.value for name in plan.conv_selections().values()
    )
    return " ".join(f"{family}x{count}" for family, count in sorted(families.items()))


def _command_frontier(args: argparse.Namespace) -> int:
    session = _session(args)
    constraints = {}
    if args.max_workspace_kib is not None:
        constraints["peak_workspace_bytes_max"] = args.max_workspace_kib * 1024.0
    if args.max_energy_mj is not None:
        constraints["energy_proxy_j_max"] = args.max_energy_mj * 1e-3
    if args.max_time_ms is not None:
        constraints["time_ms_max"] = args.max_time_ms
    kwargs = {} if args.budget_steps is None else {"budget_steps": args.budget_steps}
    frontier = session.plan_frontier(
        args.model,
        args.platform,
        threads=args.threads,
        batch=args.batch,
        constraints=constraints or None,
        seed=args.seed,
        **kwargs,
    )
    print(frontier.format())

    # Workspace-budget sweep: the fastest frontier plan under shrinking
    # fractions of the unconstrained peak, showing where families flip.
    unconstrained = frontier.min_time()
    peak = unconstrained.vector.peak_workspace_bytes
    print()
    print("workspace-budget sweep (fastest frontier plan under each budget):")
    print(f"  {'budget':>8} {'KiB':>10} {'time ms':>9} {'peak KiB':>10}  families")
    for fraction in _SWEEP_FRACTIONS:
        budget = fraction * peak
        point = frontier.min_time_under({"peak_workspace_bytes_max": budget})
        if point is None:
            print(f"  {fraction:>7.0%} {budget / 1024.0:>10.1f} {'infeasible':>9}")
            continue
        print(
            f"  {fraction:>7.0%} {budget / 1024.0:>10.1f} "
            f"{point.vector.time_ms:>9.2f} "
            f"{point.vector.peak_workspace_bytes / 1024.0:>10.1f}  "
            f"{_family_summary(point.plan, session.library)}"
        )

    decision = frontier.select(mode=args.mode, constraints=constraints or None)
    best = decision["best"]
    print()
    print(
        f"decision [{decision['decision']['mode']}]: {best.generator} — "
        f"{best.vector.time_ms:.2f} ms, "
        f"{best.vector.peak_workspace_bytes / 1024.0:.1f} KiB peak workspace, "
        f"{best.vector.energy_proxy_j * 1e3:.3f} mJ ({_family_summary(best.plan, session.library)})"
    )
    if decision["decision"].get("fallback_from"):
        print("  (no frontier point satisfies the constraints; knee shown instead)")
    if args.save:
        frontier.save(args.save)
        print(f"  frontier written to {args.save}")
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    session = _session(args)
    report = session.compare(
        args.model, args.platform, threads=args.threads, batch=args.batch, dtype=args.dtype
    )
    print(report.format())
    print(f"best strategy: {report.best.strategy}")
    return 0


def _command_cache(args: argparse.Namespace) -> int:
    store = CostStore(args.cache_dir)
    if args.clear:
        removed = store.clear()
        print(f"removed {removed} cost-table entr{'y' if removed == 1 else 'ies'}")
        return 0
    if args.evict:
        ttl = None if args.ttl_hours is None else args.ttl_hours * 3600.0
        report = store.evict(ttl_seconds=ttl)
        print(
            f"evicted {report.removed} entr{'y' if report.removed == 1 else 'ies'} "
            f"(stale format: {report.stale_format}, stale platform: "
            f"{report.stale_platform}, expired: {report.expired})"
        )
        return 0
    entries = store.entries()
    stats = store.stats()
    print(
        f"cost store at {store.cache_dir} — {len(entries)} "
        f"entr{'y' if len(entries) == 1 else 'ies'}, "
        f"{stats.bytes_on_disk / 1024:.1f} KiB on disk"
    )
    for entry in entries:
        key = entry.key
        print(
            f"  {key.fingerprint:<24} {key.platform:<18} {key.threads:>2} thread(s)  "
            f"batch {key.batch:>3}  {key.dtype:<5} {key.provider} v{key.provider_version}  "
            f"{entry.size_bytes / 1024:8.1f} KiB"
        )
    return 0


def _command_check(args: argparse.Namespace) -> int:
    """Verify documents; exit 0 clean, 1 on errors (with --strict: also
    warnings), 2 on unreadable input."""
    import json

    from repro.analysis.plan_verifier import verify_file

    reports = []
    for path in args.paths:
        try:
            reports.append(verify_file(path))
        except (OSError, json.JSONDecodeError) as exc:
            print(f"{path}: unreadable: {exc}", file=sys.stderr)
            return 2
    if args.as_json:
        print(
            json.dumps(
                [report.to_dict() for report in reports], indent=2, sort_keys=True
            )
        )
    else:
        for report in reports:
            print(report.summary())
    clean = all(
        report.ok and (not args.strict or not report.warnings) for report in reports
    )
    return 0 if clean else 1


def _command_lint(args: argparse.Namespace) -> int:
    """Lint sources; exit 0 clean, 1 on findings."""
    from pathlib import Path

    from repro.analysis.lint import run_lint

    paths = list(args.paths)
    if not paths:
        if Path("src").is_dir():
            paths = ["src"]
        else:
            import repro

            paths = [Path(repro.__file__).parent]
    report = run_lint(paths)
    if args.as_json:
        print(report.to_json())
    else:
        print(report.summary())
    return 0 if report.ok else 1


def _command_serve(args: argparse.Namespace) -> int:
    # Imported lazily: the service pulls in the HTTP stack and the endpoint
    # registry, which no other subcommand needs.
    from repro.service import PlannerApp, serve

    app = PlannerApp(
        cache_dir=args.cache_dir,
        warm_executor=args.executor,
        warm_workers=args.workers,
    )
    if args.warm == "zoo" or args.warm_models:
        enqueued = app.start_warming(
            models=args.warm_models,
            batches=tuple(args.warm_batches),
            dtypes=tuple(args.warm_dtypes),
        )
        print(f"warming {enqueued} grid combinations in the background ({args.executor})")
    return serve(app, host=args.host, port=args.port)


def _command_platforms(args: argparse.Namespace) -> int:
    header = (
        f"  {'name':<16} {'cores':>5} {'GHz':>5} {'SIMD':>5} {'LLC KiB':>8} "
        f"{'DRAM GB/s':>10} {'xform eff':>10} {'derate':>7} {'launch us':>10}  features"
    )
    print(f"registered platforms ({len(PLATFORMS)}):")
    print(header)
    for name in list_platforms():
        platform = PLATFORMS[name]
        llc = platform.last_level_cache_bytes() // 1024
        print(
            f"  {name:<16} {platform.cores:>5} {platform.frequency_ghz:>5.2f} "
            f"{platform.vector_width:>5} {llc:>8} "
            f"{platform.dram_bandwidth_gbps:>10.1f} {platform.transform_efficiency:>10.3f} "
            f"{platform.wide_vector_derating:>7.2f} {platform.launch_overhead_s * 1e6:>10.1f}  "
            f"{', '.join(sorted(platform.features)) or '-'}"
        )
    return 0


def _command_figures(args: argparse.Namespace) -> int:
    platform = get_platform(args.platform)  # validated by main() already
    networks = FIGURE_NETWORKS.get(platform.name, DEFAULT_FIGURE_NETWORKS)
    session = Session()
    results = [
        run_whole_network(name, platform, threads=args.threads, session=session)
        for name in networks
    ]
    mode = "multithreaded" if args.threads > 1 else "single-threaded"
    print(format_speedup_table(results, f"Whole-network speedups on {platform.name} ({mode})"))
    return 0


def _command_tables(args: argparse.Namespace) -> int:
    platform = get_platform(args.platform)  # validated by main() already
    rows = run_absolute_time_table(platform)
    print(format_absolute_table(rows, f"Single inference time on {platform.name} (ms)"))
    return 0


def _command_list(args: argparse.Namespace) -> int:
    print("models:")
    for name in sorted(MODEL_BUILDERS):
        print(f"  {name}")
    print("platforms:")
    for name, platform in sorted(PLATFORMS.items()):
        print(
            f"  {name:<18} {platform.cores} cores @ {platform.frequency_ghz} GHz, "
            f"{platform.vector_width}-wide SIMD"
        )
    print("strategies:")
    for strategy in STRATEGIES.values():
        tags = []
        if strategy.is_framework:
            tags.append("framework emulation")
        if strategy.figure_order is None:
            tags.append("not a figure bar")
        suffix = f"  [{', '.join(tags)}]" if tags else ""
        print(f"  {strategy.name:<18} {strategy.description}{suffix}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command in ("select", "run", "compare", "frontier"):
        args.model = _resolve_model(parser, args)
    if hasattr(args, "platform"):
        # Validate up front so every subcommand shares the registry-backed
        # error (the old per-command KeyError named no valid alternatives).
        _resolve_platform(args)
    handlers = {
        "select": _command_select,
        "run": _command_run,
        "compare": _command_compare,
        "frontier": _command_frontier,
        "cache": _command_cache,
        "check": _command_check,
        "lint": _command_lint,
        "serve": _command_serve,
        "figures": _command_figures,
        "tables": _command_tables,
        "platforms": _command_platforms,
        "list": _command_list,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
