"""Command-line interface for the reproduction.

Five subcommands cover the workflows a downstream user needs:

* ``repro select``  — run one selection strategy for a zoo model on a modelled
  platform (default: the paper's PBQP pipeline) and print (or save) the plan;
* ``repro compare`` — evaluate every registered strategy for one
  network/platform/thread-count and print the speedup row of the figure;
* ``repro figures`` — regenerate the full set of whole-network figures;
* ``repro tables``  — regenerate the absolute-time tables (Tables 2 and 3);
* ``repro list``    — list the available models, platforms and registered
  selection strategies.

Invoke as ``python -m repro <subcommand> ...`` (or ``repro <subcommand> ...``
once the package is installed).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.api import Engine
from repro.core.strategies import STRATEGIES, registered_names
from repro.cost.platform import PLATFORMS
from repro.cost.serialize import save_plan
from repro.experiments.tables import format_absolute_table, run_absolute_time_table
from repro.experiments.whole_network import (
    FIGURE_NETWORKS,
    format_speedup_table,
    run_whole_network,
)
from repro.models import MODEL_BUILDERS
from repro.runtime.codegen import render_schedule


def _add_platform_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--platform",
        choices=sorted(PLATFORMS),
        default="intel-haswell",
        help="modelled hardware platform (default: intel-haswell)",
    )


def _add_threads_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--threads", type=int, default=1, help="number of threads to model (default: 1)"
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Optimal DNN primitive selection with PBQP (CGO 2018) — reproduction CLI",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    select = subparsers.add_parser("select", help="run primitive selection for a model")
    select.add_argument("model", choices=sorted(MODEL_BUILDERS), help="model zoo network")
    _add_platform_argument(select)
    _add_threads_argument(select)
    select.add_argument(
        "--strategy",
        choices=registered_names(),
        default="pbqp",
        help="registered selection strategy to run (default: pbqp)",
    )
    select.add_argument("--schedule", action="store_true", help="print the generated schedule")
    select.add_argument("--output", help="write the selected plan to this JSON file")

    compare = subparsers.add_parser(
        "compare", help="evaluate every selection strategy for one model"
    )
    compare.add_argument("model", choices=sorted(MODEL_BUILDERS))
    _add_platform_argument(compare)
    _add_threads_argument(compare)

    figures = subparsers.add_parser(
        "figures", help="regenerate the whole-network figures (5/6/7a/7b)"
    )
    _add_platform_argument(figures)
    _add_threads_argument(figures)

    tables = subparsers.add_parser("tables", help="regenerate the absolute-time tables (2/3)")
    _add_platform_argument(tables)

    subparsers.add_parser(
        "list", help="list available models, platforms and registered strategies"
    )

    return parser


def _solver_note(plan) -> str:
    """Solver statistics suffix for the speedup line, robust to absent stats."""
    if "pbqp_optimal" not in plan.metadata:
        return ""
    solver_seconds = plan.metadata.get("solver_seconds")
    solver = "n/a" if solver_seconds is None else f"{solver_seconds * 1e3:.1f} ms"
    return f"  (solver {solver}, optimal: {plan.metadata['pbqp_optimal']})"


def _command_select(args: argparse.Namespace) -> int:
    engine = Engine()
    try:
        result = engine.select(
            args.model, args.platform, strategy=args.strategy, threads=args.threads
        )
    except ValueError as exc:  # e.g. a platform-gated strategy on the wrong platform
        print(f"error: {exc}", file=sys.stderr)
        return 2
    # The speedup denominator is the paper's common baseline: *single-threaded*
    # SUM2D, matching the figures' methodology regardless of --threads.
    baseline = engine.baseline(args.model, args.platform)
    plan = result.plan
    print(plan.summary())
    print(
        f"  speedup over single-threaded SUM2D baseline: "
        f"{result.speedup_over(baseline):.2f}x{_solver_note(plan)}"
    )
    if args.schedule:
        network = engine.context_for(args.model, args.platform, args.threads).network
        print()
        print(render_schedule(network, plan))
    if args.output:
        save_plan(plan, args.output)
        print(f"  plan written to {args.output}")
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    platform = PLATFORMS[args.platform]
    result = run_whole_network(args.model, platform, threads=args.threads)
    title = (
        f"Whole-network comparison — {args.model} on {platform.name}, "
        f"{args.threads} thread{'s' if args.threads != 1 else ''}"
    )
    print(format_speedup_table([result], title))
    print(f"best strategy: {result.best_strategy()}")
    return 0


def _command_figures(args: argparse.Namespace) -> int:
    platform = PLATFORMS[args.platform]
    networks = FIGURE_NETWORKS[platform.name]
    results = [
        run_whole_network(name, platform, threads=args.threads) for name in networks
    ]
    mode = "multithreaded" if args.threads > 1 else "single-threaded"
    print(format_speedup_table(results, f"Whole-network speedups on {platform.name} ({mode})"))
    return 0


def _command_tables(args: argparse.Namespace) -> int:
    platform = PLATFORMS[args.platform]
    rows = run_absolute_time_table(platform)
    print(format_absolute_table(rows, f"Single inference time on {platform.name} (ms)"))
    return 0


def _command_list(args: argparse.Namespace) -> int:
    print("models:")
    for name in sorted(MODEL_BUILDERS):
        print(f"  {name}")
    print("platforms:")
    for name, platform in sorted(PLATFORMS.items()):
        print(
            f"  {name:<18} {platform.cores} cores @ {platform.frequency_ghz} GHz, "
            f"{platform.vector_width}-wide SIMD"
        )
    print("strategies:")
    for strategy in STRATEGIES.values():
        tags = []
        if strategy.is_framework:
            tags.append("framework emulation")
        if strategy.figure_order is None:
            tags.append("not a figure bar")
        suffix = f"  [{', '.join(tags)}]" if tags else ""
        print(f"  {strategy.name:<18} {strategy.description}{suffix}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "select": _command_select,
        "compare": _command_compare,
        "figures": _command_figures,
        "tables": _command_tables,
        "list": _command_list,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
