"""A small stdlib HTTP client for the planning daemon.

Used by the end-to-end tests, the throughput benchmark, the CI smoke job and
the examples — anything that needs to talk to a running ``repro serve``
without growing a dependency.  One :class:`PlannerClient` wraps one
``host:port``; each call opens its own :class:`http.client.HTTPConnection`,
so a single client instance may be shared across threads (the benchmark
hammers one from a pool).

Non-2xx responses raise :class:`ServiceError` carrying the parsed structured
error envelope (``code``, ``message``, ``details``) the service emits, so a
test can assert on validation details instead of string-matching HTML.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple


class ServiceError(Exception):
    """A non-2xx response from the daemon, with its structured error body."""

    def __init__(self, status: int, payload: dict) -> None:
        self.status = status
        self.payload = payload
        error = payload.get("error", {}) if isinstance(payload, dict) else {}
        self.code = error.get("code", "unknown")
        self.details = error.get("details", [])
        message = error.get("message", "service error")
        super().__init__(f"HTTP {status} [{self.code}]: {message}")


class PlannerClient:
    """Typed entry points over the daemon's six endpoints."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8735, timeout: float = 60.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- plumbing ----------------------------------------------------------------

    def request(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> Tuple[int, dict]:
        """One raw round trip; returns ``(status, parsed payload)``."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = None if body is None else json.dumps(body)
            connection.request(
                method,
                path,
                body=payload,
                headers={"Content-Type": "application/json"} if payload else {},
            )
            response = connection.getresponse()
            raw = response.read()
            document = json.loads(raw) if raw else {}
            return response.status, document
        finally:
            connection.close()

    def _call(self, method: str, path: str, body: Optional[dict] = None) -> dict:
        status, document = self.request(method, path, body)
        if status >= 400:
            raise ServiceError(status, document)
        return document

    def wait_until_ready(self, timeout: float = 10.0, interval: float = 0.05) -> dict:
        """Poll ``/v1/healthz`` until the daemon answers (or raise TimeoutError)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.healthz()
            except (ConnectionError, socket.timeout, OSError):
                if time.monotonic() >= deadline:
                    raise TimeoutError(
                        f"planner at {self.host}:{self.port} not ready after {timeout}s"
                    ) from None
                time.sleep(interval)

    # -- endpoints ---------------------------------------------------------------

    def plan(
        self,
        model: str,
        platform: str,
        strategy: str = "pbqp",
        threads: int = 1,
        batch: int = 1,
        dtype: str = "fp32",
    ) -> dict:
        return self._call(
            "POST",
            "/v1/plan",
            {
                "model": model,
                "platform": platform,
                "strategy": strategy,
                "threads": threads,
                "batch": batch,
                "dtype": dtype,
            },
        )

    def compare(
        self,
        model: str,
        platform: str,
        threads: int = 1,
        batch: int = 1,
        dtype: str = "fp32",
        strategies: Optional[Sequence[str]] = None,
        include_frameworks: bool = True,
    ) -> dict:
        body: Dict[str, Any] = {
            "model": model,
            "platform": platform,
            "threads": threads,
            "batch": batch,
            "dtype": dtype,
            "include_frameworks": include_frameworks,
        }
        if strategies is not None:
            body["strategies"] = list(strategies)
        return self._call("POST", "/v1/compare", body)

    def frontier(
        self,
        model: str,
        platform: str,
        threads: int = 1,
        batch: int = 1,
        seed: int = 0,
        budget_steps: Optional[int] = None,
        constraints: Optional[Dict[str, float]] = None,
        dtypes: Optional[Sequence[str]] = None,
        include_plans: bool = False,
    ) -> dict:
        body: Dict[str, Any] = {
            "model": model,
            "platform": platform,
            "threads": threads,
            "batch": batch,
            "seed": seed,
            "include_plans": include_plans,
        }
        if budget_steps is not None:
            body["budget_steps"] = budget_steps
        if dtypes is not None:
            body["dtypes"] = list(dtypes)
        if constraints is not None:
            body["constraints"] = dict(constraints)
        return self._call("POST", "/v1/frontier", body)

    def platforms(self) -> List[dict]:
        return self._call("GET", "/v1/platforms")["platforms"]

    def healthz(self) -> dict:
        return self._call("GET", "/v1/healthz")

    def metrics(self) -> dict:
        return self._call("GET", "/v1/metrics")

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"PlannerClient(http://{self.host}:{self.port})"
