"""One handler per endpoint, published through a decorator registry.

Mirrors the shape of :func:`repro.core.strategies.register_strategy`: each
handler is a plain function taking ``(app, params)`` — ``params`` already
validated against the endpoint's declared :class:`~repro.service.app.Field`
specs — and returning the JSON-shaped response payload.  The
:func:`register_endpoint` decorator records it in :data:`ENDPOINTS`, which
:meth:`repro.service.app.PlannerApp.handle` routes from; adding an endpoint
is one decorated function, exactly like adding a selection strategy.

Handlers raise :class:`~repro.service.app.ApiError` for domain errors that
validation cannot catch declaratively (e.g. a platform-gated strategy on the
wrong platform), and never touch the socket: the app layer owns status codes,
error envelopes and metrics.
"""

from __future__ import annotations

import sys
from typing import Dict, Tuple

from repro.core.strategies import registered_names
from repro.cost.platform import PLATFORMS, list_platforms
from repro.graph.scenario import DTYPES
from repro.models import MODEL_BUILDERS
from repro.multiobj.vector import OBJECTIVES
from repro.pbqp.solver import solve_count
from repro.service.app import ApiError, Endpoint, Field, Params, PlannerApp

#: The endpoint registry: ``(method, path) -> Endpoint``, in registration order.
ENDPOINTS: Dict[Tuple[str, str], Endpoint] = {}


def register_endpoint(method: str, path: str, fields: Tuple[Field, ...] = (), description: str = ""):
    """Decorator publishing a handler in :data:`ENDPOINTS`."""

    def decorator(fn):
        key = (method, path)
        if key in ENDPOINTS:
            raise ValueError(f"duplicate endpoint {method} {path}")
        ENDPOINTS[key] = Endpoint(
            method=method, path=path, fn=fn, fields=tuple(fields), description=description
        )
        return fn

    return decorator


# -- shared field specs --------------------------------------------------------

_MODEL = Field(
    "model", "string", required=True, choices=lambda: MODEL_BUILDERS,
    description="model zoo network name",
)
_PLATFORM = Field(
    "platform", "string", required=True, choices=list_platforms,
    description="registered platform name",
)
_STRATEGY = Field(
    "strategy", "string", default="pbqp", choices=registered_names,
    description="registered selection strategy",
)
_THREADS = Field("threads", "integer", default=1, minimum=1)
_BATCH = Field("batch", "integer", default=1, minimum=1)
_DTYPE = Field(
    "dtype", "string", default="fp32", choices=lambda: DTYPES,
    description="numeric precision the plan is priced and executed in",
)

#: Valid ``{objective}_max`` keys of a frontier constraints object.
_CONSTRAINT_KEYS = tuple(f"{objective}_max" for objective in OBJECTIVES)


# -- planning endpoints --------------------------------------------------------


@register_endpoint(
    "POST",
    "/v1/plan",
    fields=(_MODEL, _PLATFORM, _STRATEGY, _THREADS, _BATCH, _DTYPE),
    description="select one plan (cached; warm requests perform zero solves)",
)
def handle_plan(app: PlannerApp, params: Params) -> dict:
    try:
        document, cached = app.plan_document(
            params["model"],
            params["platform"],
            strategy=params["strategy"],
            threads=params["threads"],
            batch=params["batch"],
            dtype=params["dtype"],
        )
    except ValueError as exc:
        # Strategy gating (e.g. mkldnn on a NEON platform) is a client error.
        raise ApiError(400, "strategy_not_applicable", str(exc)) from None
    return {**document, "from_cache": cached}


@register_endpoint(
    "POST",
    "/v1/compare",
    fields=(
        _MODEL,
        _PLATFORM,
        _THREADS,
        _BATCH,
        _DTYPE,
        Field("strategies", "array", description="subset of strategies to evaluate"),
        Field("include_frameworks", "boolean", default=True),
    ),
    description="evaluate every applicable strategy, ranked by total cost",
)
def handle_compare(app: PlannerApp, params: Params) -> dict:
    strategies = params["strategies"]
    if strategies is not None:
        known = set(registered_names())
        bad = [name for name in strategies if name not in known]
        if bad:
            raise ApiError(
                400,
                "unknown_strategy",
                f"unknown strategies {bad}; valid: {', '.join(sorted(known))}",
            )
    key = (
        "compare",
        params["model"],
        params["platform"],
        params["threads"],
        params["batch"],
        params["dtype"],
        tuple(strategies) if strategies is not None else None,
        params["include_frameworks"],
    )

    def build() -> dict:
        try:
            report = app.session.compare(
                params["model"],
                params["platform"],
                threads=params["threads"],
                batch=params["batch"],
                dtype=params["dtype"],
                strategies=strategies,
                include_frameworks=params["include_frameworks"],
            )
        except ValueError as exc:
            raise ApiError(400, "strategy_not_applicable", str(exc)) from None
        return {
            "format": "repro/service/v1",
            "model": report.model,
            "platform": report.platform,
            "threads": report.threads,
            "batch": report.batch,
            "dtype": report.dtype,
            "baseline": report.baseline.strategy,
            "best": report.best.strategy,
            "results": [
                {
                    "strategy": strategy,
                    "total_ms": total_ms,
                    "speedup_over_baseline": speedup,
                }
                for strategy, total_ms, speedup in report.rows()
            ],
        }

    document, cached = app.documents.get_or_build(key, build)
    return {**document, "from_cache": cached}


@register_endpoint(
    "POST",
    "/v1/frontier",
    fields=(
        _MODEL,
        _PLATFORM,
        _THREADS,
        _BATCH,
        Field("seed", "integer", default=0, minimum=0),
        Field("budget_steps", "integer", minimum=1),
        Field(
            "dtypes",
            "array",
            description="precisions spanned by the front (default: all registered)",
        ),
        Field("constraints", "object", description="{objective}_max bounds"),
        Field(
            "include_plans",
            "boolean",
            default=False,
            description="embed full serialized plans for every frontier point",
        ),
    ),
    description="build the multi-objective Pareto frontier of plans",
)
def handle_frontier(app: PlannerApp, params: Params) -> dict:
    dtypes = params["dtypes"]
    if dtypes is not None:
        bad = [name for name in dtypes if name not in DTYPES]
        if bad:
            raise ApiError(
                400,
                "unknown_dtype",
                f"unknown dtypes {bad}; valid: {', '.join(DTYPES)}",
            )
    constraints = params["constraints"]
    if constraints is not None:
        bad = sorted(set(constraints) - set(_CONSTRAINT_KEYS))
        not_numeric = sorted(
            key
            for key, value in constraints.items()
            if key in _CONSTRAINT_KEYS
            and (isinstance(value, bool) or not isinstance(value, (int, float)))
        )
        if bad or not_numeric:
            problems = [f"unknown constraint keys {bad}"] if bad else []
            if not_numeric:
                problems.append(f"non-numeric bounds for {not_numeric}")
            raise ApiError(
                400,
                "invalid_constraints",
                "; ".join(problems) + f"; valid keys: {', '.join(_CONSTRAINT_KEYS)}",
            )
    key = (
        "frontier",
        params["model"],
        params["platform"],
        params["threads"],
        params["batch"],
        params["seed"],
        params["budget_steps"],
        tuple(dtypes) if dtypes is not None else None,
        tuple(sorted(constraints.items())) if constraints else None,
        params["include_plans"],
    )

    def build() -> dict:
        from repro.multiobj.frontier import DEFAULT_BUDGET_STEPS

        with app.metrics.time("frontier_build_ms"):
            frontier = app.session.plan_frontier(
                params["model"],
                params["platform"],
                threads=params["threads"],
                batch=params["batch"],
                constraints=dict(constraints) if constraints else None,
                seed=params["seed"],
                budget_steps=params["budget_steps"] or DEFAULT_BUDGET_STEPS,
                dtypes=tuple(dtypes) if dtypes is not None else None,
            )
        points = [
            {"generator": point.generator, "vector": point.vector.to_dict()}
            for point in frontier.points
        ]
        document = {
            "format": "repro/service/v1",
            "model": frontier.network_name,
            "platform": frontier.platform_name,
            "threads": frontier.threads,
            "batch": frontier.batch,
            "seed": frontier.seed,
            "dtypes": list(dtypes) if dtypes is not None else list(DTYPES),
            "candidates_evaluated": frontier.candidates_evaluated,
            "dominated_count": frontier.dominated_count,
            "points": points,
        }
        if params["include_plans"]:
            document["frontier"] = frontier.to_dict()
        return document

    document, cached = app.documents.get_or_build(key, build)
    return {**document, "from_cache": cached}


@register_endpoint(
    "POST",
    "/v1/validate",
    fields=(
        Field(
            "document",
            "object",
            required=True,
            description="a serialized plan/tables/frontier/store-entry/result/"
            "service document to verify statically",
        ),
    ),
    description="statically verify a serialized document without executing it",
)
def handle_validate(app: PlannerApp, params: Params) -> dict:
    from repro.analysis.plan_verifier import verify_document

    # Deliberately uncached: validation is cheap (no solves, no profiling)
    # and the submitted documents are arbitrary client payloads.
    report = verify_document(params["document"], source="request.document")
    return {
        "format": "repro/service/v1",
        "ok": report.ok,
        "errors": len(report.errors),
        "warnings": len(report.warnings),
        "report": report.to_dict(),
    }


# -- introspection endpoints ---------------------------------------------------


@register_endpoint(
    "GET", "/v1/platforms", description="every registered platform with its parameters"
)
def handle_platforms(app: PlannerApp, params: Params) -> dict:
    platforms = []
    for name in list_platforms():
        platform = PLATFORMS[name]
        platforms.append(
            {
                "name": name,
                "cores": platform.cores,
                "frequency_ghz": platform.frequency_ghz,
                "vector_width": platform.vector_width,
                "last_level_cache_kib": platform.last_level_cache_bytes() // 1024,
                "dram_bandwidth_gbps": platform.dram_bandwidth_gbps,
                "launch_overhead_us": platform.launch_overhead_s * 1e6,
                "features": sorted(platform.features),
            }
        )
    return {"format": "repro/service/v1", "platforms": platforms}


@register_endpoint("GET", "/v1/healthz", description="liveness and warm-state probe")
def handle_healthz(app: PlannerApp, params: Params) -> dict:
    return {
        "status": "ok",
        "uptime_s": app.uptime_s,
        "python": sys.version.split()[0],
        "models": len(MODEL_BUILDERS),
        "platforms": len(PLATFORMS),
        "strategies": len(registered_names()),
        "cached_documents": len(app.documents),
        "warming": app.warming.state(),
    }


@register_endpoint(
    "GET", "/v1/metrics", description="counters, latency histograms, store and solver state"
)
def handle_metrics(app: PlannerApp, params: Params) -> dict:
    document = app.metrics.snapshot()
    document["uptime_s"] = app.uptime_s
    document["cached_documents"] = len(app.documents)
    # The solve counter is process-wide: a warm daemon serving only cached
    # plans holds it flat, which is exactly what the acceptance test asserts.
    document["pbqp_solves_total"] = solve_count()
    session_info = app.session.cache_info()
    document["session"] = {
        "context_hits": session_info.hits,
        "context_misses": session_info.misses,
        "contexts": session_info.contexts,
    }
    store = app.session.store
    if store is not None:
        stats = store.stats()
        document["store"] = {
            "hits": stats.hits,
            "misses": stats.misses,
            "evictions": stats.evictions,
            "entries": stats.entries,
            "bytes_on_disk": stats.bytes_on_disk,
        }
    document["warming"] = app.warming.state()
    return document
