"""Background warming workers: a job queue drained by a pluggable executor.

The shape follows cf-scripts' ``executors.py``: one :func:`executor` context
manager yields a :class:`concurrent.futures`-compatible pool for a *kind*
string — ``"serial"`` (in-line, deterministic, no threads), ``"thread"`` (the
default; warming shares the daemon's session and plan cache) or ``"process"``
(true parallelism for picklable work, e.g. warming a *disk store* from
independent worker processes via :func:`warm_store_entry`).

:class:`WarmingQueue` is the service's background profiling/warming pump:
``repro serve --warm zoo`` enqueues the whole zoo x platform x batch grid and
returns immediately — a dispatcher thread drains the queue through the pool
while foreground requests keep being served.  Every completed job lands in
the shared plan cache and the cost store, so the grid converges to a state
where any ``POST /v1/plan`` is a dictionary read.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence

#: Executor kinds accepted by :func:`executor` and :class:`WarmingQueue`.
EXECUTOR_KINDS = ("serial", "thread", "process")


class SerialExecutor:
    """A degenerate executor running each submission in the calling thread.

    Useful for deterministic tests and debugging: same interface, no
    concurrency, exceptions captured on the returned future exactly like the
    real pools.
    """

    def submit(self, fn: Callable, *args, **kwargs) -> Future:
        future: Future = Future()
        try:
            future.set_result(fn(*args, **kwargs))
        except BaseException as exc:  # noqa: BLE001 - mirror pool behaviour
            future.set_exception(exc)
        return future

    def shutdown(self, wait: bool = True) -> None:  # noqa: ARG002
        """Nothing to tear down."""


@contextmanager
def executor(kind: str = "thread", max_workers: Optional[int] = None):
    """Yield a pool for ``kind``: ``"serial"``, ``"thread"`` or ``"process"``."""
    if kind == "serial":
        yield SerialExecutor()
    elif kind == "thread":
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            yield pool
    elif kind == "process":
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            yield pool
    else:
        raise ValueError(
            f"unknown executor kind {kind!r}; expected one of {', '.join(EXECUTOR_KINDS)}"
        )


# ---------------------------------------------------------------------------
# Warm jobs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WarmJob:
    """One (model, platform, strategy, threads, batch, dtype) combination to warm."""

    model: str
    platform: str
    strategy: str = "pbqp"
    threads: int = 1
    batch: int = 1
    dtype: str = "fp32"


def grid_jobs(
    models: Optional[Sequence[str]] = None,
    platforms: Optional[Sequence[str]] = None,
    strategies: Sequence[str] = ("pbqp",),
    threads: Sequence[int] = (1,),
    batches: Sequence[int] = (1,),
    dtypes: Sequence[str] = ("fp32",),
) -> List[WarmJob]:
    """The zoo x platform x strategy x threads x batch x dtype warming grid.

    ``models`` defaults to the whole model zoo and ``platforms`` to every
    currently registered platform — the full grid the ROADMAP's serving item
    calls for.
    """
    from repro.cost.platform import list_platforms
    from repro.models import MODEL_BUILDERS

    chosen_models = list(models) if models is not None else sorted(MODEL_BUILDERS)
    chosen_platforms = (
        list(platforms) if platforms is not None else list_platforms()
    )
    return [
        WarmJob(model, platform, strategy, thread_count, batch, dtype)
        for model in chosen_models
        for platform in chosen_platforms
        for strategy in strategies
        for thread_count in threads
        for batch in batches
        for dtype in dtypes
    ]


def warm_store_entry(
    cache_dir: str,
    model: str,
    platform: str,
    threads: int = 1,
    batch: int = 1,
    dtype: str = "fp32",
) -> str:
    """Populate one cost-store entry from a *worker process*.

    Module-level (hence picklable) so a ``"process"`` executor can warm the
    shared disk tier in true parallel: each worker builds its own session
    over the same store directory, produces the tables, and exits.  Returns
    the store key digest for logging.
    """
    from repro.api import Session

    session = Session(cache_dir=cache_dir)
    context = session.context_for(model, platform, threads=threads, batch=batch, dtype=dtype)
    store = session.store
    assert store is not None  # Session(cache_dir=...) always wraps a store
    del context
    return f"{model}@{platform}/{threads}t/b{batch}/{dtype}"


def warm_plan_job(cache_dir: str, job: WarmJob) -> str:
    """Plan one warm job in a *worker process*, persisting the response document.

    Module-level (hence picklable) so a ``"process"`` warming executor can
    solve in true parallel: the worker builds its own session over the shared
    ``cache_dir``, plans (populating the cost store as a side effect), and
    writes the finished plan document into the disk document tier — which the
    daemon consults on a :class:`~repro.service.app.DocumentCache` miss, so a
    process-warmed combination is served with zero solves in the daemon
    process.  Returns the document path for logging.
    """
    from repro.api import Session
    from repro.service.app import build_plan_document, write_plan_document

    session = Session(cache_dir=cache_dir)
    document = build_plan_document(
        session,
        job.model,
        job.platform,
        strategy=job.strategy,
        threads=job.threads,
        batch=job.batch,
        dtype=job.dtype,
    )
    return write_plan_document(cache_dir, document, job)


# ---------------------------------------------------------------------------
# The warming queue
# ---------------------------------------------------------------------------


class WarmingQueue:
    """A background queue of :class:`WarmJob` drained through an executor.

    Parameters
    ----------
    run_job:
        Callback executing one job (the app passes its plan-building entry
        point, so completed jobs land in the shared caches).
    metrics:
        Optional :class:`~repro.service.metrics.Metrics`; completed/failed
        jobs are counted as ``warm_jobs_completed`` / ``warm_jobs_failed``.
    kind / max_workers:
        Executor selection, per :func:`executor`.

    The dispatcher thread starts lazily on the first :meth:`enqueue` and
    exits on :meth:`stop`.  :meth:`join` blocks until every enqueued job has
    finished — tests and ``--warm`` smoke runs use it; the daemon never does.
    """

    def __init__(
        self,
        run_job: Callable[[WarmJob], object],
        metrics=None,
        kind: str = "thread",
        max_workers: Optional[int] = None,
    ) -> None:
        if kind not in EXECUTOR_KINDS:
            raise ValueError(
                f"unknown executor kind {kind!r}; expected one of {', '.join(EXECUTOR_KINDS)}"
            )
        self.run_job = run_job
        self.metrics = metrics
        self.kind = kind
        self.max_workers = max_workers
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._jobs: List[WarmJob] = []
        self._pending = 0
        self._completed = 0
        self._failed = 0
        self._dispatcher: Optional[threading.Thread] = None
        self._wake = threading.Event()
        self._stopping = False

    # -- public API --------------------------------------------------------------

    def enqueue(self, jobs: Iterable[WarmJob]) -> int:
        """Add jobs and ensure the dispatcher is running; returns the count."""
        added = list(jobs)
        with self._lock:
            if self._stopping:
                raise RuntimeError("warming queue is stopped")
            self._jobs.extend(added)
            self._pending += len(added)
            if self._dispatcher is None and added:
                self._dispatcher = threading.Thread(
                    target=self._drain, name="repro-warmer", daemon=True
                )
                self._dispatcher.start()
        self._wake.set()
        return len(added)

    def join(self, timeout: Optional[float] = None) -> bool:
        """Block until every enqueued job has finished; True if drained."""
        with self._idle:
            return self._idle.wait_for(lambda: self._pending == 0, timeout=timeout)

    def stop(self) -> None:
        """Stop the dispatcher after in-flight jobs finish (idempotent)."""
        with self._lock:
            self._stopping = True
            dispatcher = self._dispatcher
        self._wake.set()
        if dispatcher is not None:
            dispatcher.join()
        with self._lock:
            self._dispatcher = None

    def state(self) -> dict:
        """Queue state for ``/v1/healthz``."""
        with self._lock:
            return {
                "executor": self.kind,
                "pending": self._pending,
                "completed": self._completed,
                "failed": self._failed,
                "running": self._dispatcher is not None and not self._stopping,
            }

    # -- dispatcher --------------------------------------------------------------

    def _drain(self) -> None:
        with executor(self.kind, self.max_workers) as pool:
            while True:
                with self._lock:
                    batch = self._jobs
                    self._jobs = []
                    stopping = self._stopping
                if not batch and stopping:
                    return
                if not batch:
                    self._wake.wait(timeout=0.1)
                    self._wake.clear()
                    continue
                futures = [pool.submit(self.run_job, job) for job in batch]
                for future in futures:
                    error = future.exception()
                    with self._idle:
                        self._pending -= 1
                        if error is None:
                            self._completed += 1
                        else:
                            self._failed += 1
                        self._idle.notify_all()
                    if self.metrics is not None:
                        self.metrics.inc(
                            "warm_jobs_failed" if error else "warm_jobs_completed"
                        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        state = self.state()
        return (
            f"WarmingQueue(kind={self.kind!r}, pending={state['pending']}, "
            f"completed={state['completed']}, failed={state['failed']})"
        )
