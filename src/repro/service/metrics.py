"""Thread-safe in-process service metrics: counters plus latency histograms.

The daemon answers requests from a thread pool (one thread per connection
under :class:`~http.server.ThreadingHTTPServer`), so every mutation here goes
through one lock.  Two instrument kinds cover what ``GET /v1/metrics`` needs:

* **counters** — monotonically increasing integers (requests by endpoint and
  status, plan-cache hits/misses, warm jobs completed/failed, 5xx count);
* **latency histograms** — per-endpoint request latencies with running
  count/mean/max over *every* observation and p50/p90/p99 quantiles over a
  bounded window of the most recent observations (so a long-running daemon's
  percentiles track current behaviour instead of averaging over its lifetime).

Names follow a Prometheus-flavoured convention: a bare counter name for
scalars (``"plan_cache_hits"``) and :func:`labelled` for per-endpoint series
(``requests{endpoint="POST /v1/plan",status="200"}``).  The store's hit/miss
counters and the process-wide PBQP solve counter are *merged into* the
metrics snapshot by the ``/v1/metrics`` handler rather than duplicated here —
this module owns only what the service itself observes.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Deque, Dict, List, Optional

#: How many recent observations each histogram retains for quantiles.
DEFAULT_WINDOW = 2048


def labelled(name: str, **labels: object) -> str:
    """A stable ``name{key="value",...}`` series name (labels key-sorted)."""
    if not labels:
        return name
    inner = ",".join(f'{key}="{labels[key]}"' for key in sorted(labels))
    return f"{name}{{{inner}}}"


def quantile(sorted_values: List[float], q: float) -> float:
    """Linear-interpolation quantile of an already-sorted sample."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    position = q * (len(sorted_values) - 1)
    low = int(position)
    high = min(low + 1, len(sorted_values) - 1)
    fraction = position - low
    return sorted_values[low] * (1.0 - fraction) + sorted_values[high] * fraction


class LatencyHistogram:
    """One latency series: running aggregates plus a recent-window sample."""

    def __init__(self, window: int = DEFAULT_WINDOW) -> None:
        self.count = 0
        self.total_ms = 0.0
        self.max_ms = 0.0
        self._window: Deque[float] = deque(maxlen=window)

    def observe(self, ms: float) -> None:
        self.count += 1
        self.total_ms += ms
        if ms > self.max_ms:
            self.max_ms = ms
        self._window.append(ms)

    def snapshot(self) -> Dict[str, float]:
        ordered = sorted(self._window)
        return {
            "count": self.count,
            "mean_ms": self.total_ms / self.count if self.count else 0.0,
            "max_ms": self.max_ms,
            "p50_ms": quantile(ordered, 0.50),
            "p90_ms": quantile(ordered, 0.90),
            "p99_ms": quantile(ordered, 0.99),
        }


class Metrics:
    """A registry of named counters and latency histograms behind one lock."""

    def __init__(self, window: int = DEFAULT_WINDOW) -> None:
        self._lock = threading.Lock()
        self._window = window
        self._counters: Dict[str, int] = {}
        self._histograms: Dict[str, LatencyHistogram] = {}

    # -- counters ---------------------------------------------------------------

    def inc(self, name: str, value: int = 1) -> None:
        """Increment a counter (created at zero on first use)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def counter(self, name: str) -> int:
        """Current value of a counter (0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    # -- latencies --------------------------------------------------------------

    def observe_ms(self, name: str, ms: float) -> None:
        """Record one latency observation, in milliseconds."""
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = LatencyHistogram(self._window)
            histogram.observe(ms)

    @contextmanager
    def time(self, name: str):
        """Context manager observing the block's wall time into ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe_ms(name, (time.perf_counter() - start) * 1e3)

    def latency(self, name: str) -> Optional[Dict[str, float]]:
        """Snapshot of one latency series, or ``None`` if never observed."""
        with self._lock:
            histogram = self._histograms.get(name)
            return None if histogram is None else histogram.snapshot()

    # -- reporting --------------------------------------------------------------

    def snapshot(self) -> dict:
        """Everything, JSON-shaped: counters and per-series latency summaries."""
        with self._lock:
            return {
                "counters": {name: self._counters[name] for name in sorted(self._counters)},
                "latencies_ms": {
                    name: self._histograms[name].snapshot()
                    for name in sorted(self._histograms)
                },
            }

    def __repr__(self) -> str:  # pragma: no cover - trivial
        with self._lock:
            return (
                f"Metrics(counters={len(self._counters)}, "
                f"histograms={len(self._histograms)})"
            )
