"""The planner application: routing, request validation and the HTTP server.

:class:`PlannerApp` is the service's core, deliberately separated from the
wire protocol: :meth:`PlannerApp.handle` maps ``(method, path, body)`` to
``(status, payload)`` dictionaries, which makes every endpoint testable
without a socket.  The HTTP layer is a thin
:class:`~http.server.ThreadingHTTPServer` (one thread per connection, pure
standard library) whose request handler parses JSON and delegates.

Request schemas are declarative: each endpoint registers a tuple of
:class:`Field` specs (see :mod:`repro.service.handlers`), and
:func:`validate_body` checks types, required-ness, choices and bounds in one
pass — *every* problem is reported, as structured JSON::

    {"error": {"code": "validation_error", "message": "...",
               "details": [{"field": "batch", "message": "must be >= 1"}]}}

Shared state is a single thread-safe :class:`~repro.api.Session` (its context
memoization is lock-protected, so concurrent requests for the same tables
trigger exactly one build) plus a :class:`DocumentCache` of finished response
documents keyed by the full request tuple.  A warm ``POST /v1/plan`` is
therefore a dictionary read — zero PBQP solves, which ``/v1/metrics`` proves
via the process-wide :func:`repro.pbqp.solver.solve_count`.
"""

from __future__ import annotations

import functools
import json
import os
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union
from urllib.parse import urlsplit

from repro.api import Session
from repro.service.metrics import Metrics, labelled

#: Format identifier carried by every successful response envelope.
SERVICE_FORMAT = "repro/service/v1"


# ---------------------------------------------------------------------------
# Errors and request schemas
# ---------------------------------------------------------------------------


class ValidationError(Exception):
    """A request body that fails its endpoint's schema (HTTP 400)."""

    def __init__(self, details: List[Dict[str, str]]) -> None:
        self.details = details
        summary = "; ".join(f"{d['field']}: {d['message']}" for d in details)
        super().__init__(summary or "invalid request")


class ApiError(Exception):
    """A handler-raised error with an explicit HTTP status and code."""

    def __init__(self, status: int, code: str, message: str) -> None:
        self.status = status
        self.code = code
        super().__init__(message)


#: JSON type name -> accepted Python types (bool is deliberately *not* an
#: integer here, although ``isinstance(True, int)`` holds).
_KINDS: Dict[str, Tuple[type, ...]] = {
    "string": (str,),
    "integer": (int,),
    "number": (int, float),
    "boolean": (bool,),
    "object": (dict,),
    "array": (list,),
}


@dataclass(frozen=True)
class Field:
    """One declarative request-body field.

    ``choices`` is a zero-argument callable returning the *currently* valid
    names — the model zoo, platform registry and strategy registry are open,
    so the valid set is resolved per request, not at import time.
    """

    name: str
    kind: str = "string"
    required: bool = False
    default: Any = None
    choices: Optional[Callable[[], Iterable[str]]] = None
    minimum: Optional[float] = None
    description: str = ""


def validate_body(body: Any, fields: Sequence[Field]) -> Dict[str, Any]:
    """Validate a parsed JSON body against an endpoint's field specs.

    Returns the cleaned parameter dict (defaults filled in); raises
    :class:`ValidationError` carrying *all* problems found, so a client sees
    every mistake in one round trip instead of one per retry.
    """
    details: List[Dict[str, str]] = []
    if body is None:
        body = {}
    if not isinstance(body, dict):
        raise ValidationError(
            [{"field": "<body>", "message": "request body must be a JSON object"}]
        )
    known = {spec.name for spec in fields}
    for name in sorted(set(body) - known):
        details.append({"field": name, "message": "unknown field"})
    params: Dict[str, Any] = {}
    for spec in fields:
        if spec.name not in body:
            if spec.required:
                details.append({"field": spec.name, "message": "required field is missing"})
            else:
                params[spec.name] = spec.default
            continue
        value = body[spec.name]
        expected = _KINDS[spec.kind]
        if isinstance(value, bool) and spec.kind in ("integer", "number"):
            details.append({"field": spec.name, "message": f"must be a {spec.kind}"})
            continue
        if not isinstance(value, expected):
            details.append({"field": spec.name, "message": f"must be a {spec.kind}"})
            continue
        if spec.minimum is not None and value < spec.minimum:
            details.append(
                {"field": spec.name, "message": f"must be >= {spec.minimum:g}"}
            )
            continue
        if spec.choices is not None:
            valid = sorted(spec.choices())
            if value not in valid:
                details.append(
                    {
                        "field": spec.name,
                        "message": f"unknown value {value!r}; valid: {', '.join(valid)}",
                    }
                )
                continue
        params[spec.name] = value
    if details:
        raise ValidationError(details)
    return params


def error_payload(code: str, message: str, **extra: Any) -> dict:
    """The structured JSON error envelope every non-2xx response uses."""
    error: Dict[str, Any] = {"code": code, "message": message}
    error.update(extra)
    return {"error": error}


# ---------------------------------------------------------------------------
# The response-document cache
# ---------------------------------------------------------------------------


class DocumentCache:
    """Finished response documents keyed by request tuple, built exactly once.

    Per-key build locks mean a stampede of identical cold requests performs
    one plan build while the rest wait for it — the same discipline the
    session applies to cost-table construction, one level up.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._documents: Dict[tuple, dict] = {}
        self._build_locks: Dict[tuple, threading.Lock] = {}

    def get_or_build(
        self, key: tuple, build: Callable[[], dict]
    ) -> Tuple[dict, bool]:
        """Return ``(document, was_cached)``, building at most once per key."""
        with self._lock:
            document = self._documents.get(key)
            if document is not None:
                return document, True
            build_lock = self._build_locks.setdefault(key, threading.Lock())
        with build_lock:
            with self._lock:
                document = self._documents.get(key)
                if document is not None:
                    return document, True
            document = build()
            with self._lock:
                self._documents[key] = document
            return document, False

    def __len__(self) -> int:
        with self._lock:
            return len(self._documents)

    def clear(self) -> None:
        with self._lock:
            self._documents.clear()
            self._build_locks.clear()


# ---------------------------------------------------------------------------
# The disk document tier
# ---------------------------------------------------------------------------
#
# Plan documents are persisted as JSON beside the cost store (under
# ``<cache_dir>/plans/``), one file per (model, platform, strategy, threads,
# batch, dtype) combination.  The tier closes the gap process-pool warming
# left open: a worker process can only hand results back through the disk, so
# the daemon consults this tier on a DocumentCache miss *before* solving —
# a process-warmed combination is then served with zero in-daemon solves.

#: Subdirectory of the cache dir holding persisted plan documents.
PLAN_DOCUMENT_DIR = "plans"


def build_plan_document(
    session: Session,
    model: str,
    platform: str,
    strategy: str = "pbqp",
    threads: int = 1,
    batch: int = 1,
    dtype: str = "fp32",
) -> dict:
    """The canonical ``/v1/plan`` response document (used by daemon and warmers).

    The embedded ``"plan"`` value is exactly
    :func:`repro.cost.serialize.plan_to_dict` of the session's plan, so a
    service response is byte-identical (after canonical JSON dumping) to a
    direct :meth:`Session.plan` call — whether it was built in the daemon or
    by a warming worker process.
    """
    from repro.cost.serialize import plan_to_dict

    plan = session.plan(
        model, platform, strategy=strategy, threads=threads, batch=batch, dtype=dtype
    )
    result = plan.result
    return {
        "format": SERVICE_FORMAT,
        "model": result.model,
        "platform": result.platform,
        "strategy": result.strategy,
        "threads": result.threads,
        "batch": result.batch,
        "dtype": result.dtype,
        "total_ms": result.total_ms,
        "per_image_ms": result.per_image_ms,
        "plan": plan_to_dict(plan.network_plan),
    }


def plan_document_path(cache_dir: str, job) -> str:
    """Where one warm job's plan document lives on disk (a stable, flat name)."""
    name = (
        f"{job.model}_{job.platform}_{job.strategy}"
        f"_{job.threads}t_b{job.batch}_{job.dtype}.json"
    )
    return os.path.join(cache_dir, PLAN_DOCUMENT_DIR, name)


def write_plan_document(cache_dir: str, document: dict, job) -> str:
    """Persist one plan document atomically; returns its path."""
    path = plan_document_path(cache_dir, job)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(document, handle, sort_keys=True)
    os.replace(tmp, path)
    return path


def read_plan_document(cache_dir: str, job) -> Optional[dict]:
    """Load one persisted plan document, or ``None`` when absent/unreadable.

    A corrupt or foreign-format file is treated as a miss (the daemon simply
    rebuilds and overwrites), never as an error.
    """
    path = plan_document_path(cache_dir, job)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(document, dict) or document.get("format") != SERVICE_FORMAT:
        return None
    return document


# ---------------------------------------------------------------------------
# The application
# ---------------------------------------------------------------------------


class PlannerApp:
    """Shared state and routing for the planning daemon.

    Parameters
    ----------
    session:
        The (thread-safe) session answering every request; built from
        ``cache_dir`` when omitted.
    cache_dir:
        Cost-store directory for the default session — the shared tier that
        lets a *fresh* daemon skip table building entirely.
    warm_executor / warm_workers:
        Executor kind (``"serial"`` / ``"thread"`` / ``"process"``) and pool
        width for the background warming queue (see
        :mod:`repro.service.workers`).
    """

    def __init__(
        self,
        session: Optional[Session] = None,
        cache_dir: Optional[str] = None,
        metrics: Optional[Metrics] = None,
        warm_executor: str = "thread",
        warm_workers: Optional[int] = None,
    ) -> None:
        # Deferred import: handlers imports the schema machinery from this
        # module, so the registry is pulled in at construction time instead.
        from repro.service.handlers import ENDPOINTS

        self.session = session if session is not None else Session(cache_dir=cache_dir)
        self.metrics = metrics if metrics is not None else Metrics()
        self.documents = DocumentCache()
        self.endpoints = ENDPOINTS
        self.cache_dir = cache_dir
        self.started = time.time()
        self._started_monotonic = time.monotonic()
        from repro.service.workers import WarmingQueue, warm_plan_job

        if warm_executor == "process":
            # A worker process cannot reach the daemon's in-memory caches; it
            # hands results back through the disk document tier, which needs
            # a shared directory.
            if cache_dir is None:
                raise ValueError(
                    "process warming requires cache_dir: worker processes hand "
                    "plan documents back through the disk tier"
                )
            run_job = functools.partial(warm_plan_job, cache_dir)
        else:
            run_job = self._warm_one
        self.warming = WarmingQueue(
            run_job,
            metrics=self.metrics,
            kind=warm_executor,
            max_workers=warm_workers,
        )

    # -- shared planning entry points -------------------------------------------

    def plan_document(
        self,
        model: str,
        platform: str,
        strategy: str = "pbqp",
        threads: int = 1,
        batch: int = 1,
        dtype: str = "fp32",
    ) -> Tuple[dict, bool]:
        """The response document for one plan request, cached by its key.

        On a :class:`DocumentCache` miss the disk document tier is consulted
        *before* solving: a combination warmed by a worker process (which can
        only hand results back through the disk) is served without a single
        in-daemon PBQP solve.  Freshly built documents are written through to
        the tier, so a later daemon over the same ``cache_dir`` skips the
        solve too.
        """
        from repro.service.workers import WarmJob

        key = ("plan", model, platform, strategy, threads, batch, dtype)
        job = WarmJob(model, platform, strategy, threads, batch, dtype)

        def build() -> dict:
            if self.cache_dir is not None:
                document = read_plan_document(self.cache_dir, job)
                if document is not None:
                    # Disk-tier documents come from other processes (warming
                    # workers, earlier daemons) and may be stale or corrupt;
                    # admit them only after static verification, otherwise
                    # fall through to a fresh solve that overwrites the file.
                    from repro.analysis.plan_verifier import verify_document

                    report = verify_document(
                        document, source=plan_document_path(self.cache_dir, job)
                    )
                    if report.ok:
                        self.metrics.inc("plan_disk_hits")
                        return document
                    from repro.cost.serialize import LEGACY_PLAN_FORMATS

                    embedded = document.get("plan", document)
                    if embedded.get("format") in LEGACY_PLAN_FORMATS:
                        # Pre-fan-out-fix documents carry double-priced
                        # conversion totals; re-plan rather than upgrade so
                        # the solver can also revisit selections.
                        self.metrics.inc("plan_disk_stale_format")
                    else:
                        self.metrics.inc("plan_disk_invalid")
            with self.metrics.time("plan_build_ms"):
                document = build_plan_document(
                    self.session,
                    model,
                    platform,
                    strategy=strategy,
                    threads=threads,
                    batch=batch,
                    dtype=dtype,
                )
            if self.cache_dir is not None:
                write_plan_document(self.cache_dir, document, job)
            return document

        document, cached = self.documents.get_or_build(key, build)
        self.metrics.inc("plan_cache_hits" if cached else "plan_cache_misses")
        return document, cached

    def _warm_one(self, job) -> None:
        """Warming-queue callback: build (and thereby cache) one plan."""
        self.plan_document(
            job.model,
            job.platform,
            strategy=job.strategy,
            threads=job.threads,
            batch=job.batch,
            dtype=job.dtype,
        )

    def start_warming(
        self,
        models: Optional[Sequence[str]] = None,
        platforms: Optional[Sequence[str]] = None,
        batches: Sequence[int] = (1,),
        strategies: Sequence[str] = ("pbqp",),
        threads: Sequence[int] = (1,),
        dtypes: Sequence[str] = ("fp32",),
    ) -> int:
        """Enqueue the zoo x platform x batch x dtype grid for background warming.

        Returns the number of jobs enqueued.  Foreground requests are never
        blocked: the queue drains on its own executor, and a request for a
        combination the warmer has already finished is a cache hit.
        """
        from repro.service.workers import grid_jobs

        jobs = grid_jobs(
            models=models,
            platforms=platforms,
            strategies=strategies,
            threads=threads,
            batches=batches,
            dtypes=dtypes,
        )
        return self.warming.enqueue(jobs)

    # -- bookkeeping --------------------------------------------------------------

    @property
    def uptime_s(self) -> float:
        return time.monotonic() - self._started_monotonic

    def close(self) -> None:
        """Stop the warming queue (idempotent)."""
        self.warming.stop()

    # -- routing ------------------------------------------------------------------

    def handle(
        self, method: str, path: str, body: Any = None
    ) -> Tuple[int, dict]:
        """Route one request to its handler; never raises."""
        endpoint = self.endpoints.get((method, path))
        if endpoint is None:
            allowed = sorted(m for (m, p) in self.endpoints if p == path)
            if allowed:
                status, payload = 405, error_payload(
                    "method_not_allowed",
                    f"{method} is not supported for {path}",
                    allowed=allowed,
                )
            else:
                status, payload = 404, error_payload(
                    "not_found",
                    f"unknown endpoint {path}; known: "
                    + ", ".join(sorted({p for (_, p) in self.endpoints})),
                )
            self._record(method, path, status)
            return status, payload
        start = time.perf_counter()
        try:
            params = validate_body(body, endpoint.fields)
            payload = endpoint.fn(self, params)
            status = 200
        except ValidationError as exc:
            status = 400
            payload = error_payload(
                "validation_error", "request failed validation", details=exc.details
            )
        except ApiError as exc:
            status = exc.status
            payload = error_payload(exc.code, str(exc))
        except Exception as exc:  # noqa: BLE001 - the daemon must not die
            status = 500
            payload = error_payload("internal_error", f"{type(exc).__name__}: {exc}")
        elapsed_ms = (time.perf_counter() - start) * 1e3
        self._record(method, path, status, elapsed_ms)
        return status, payload

    def invalid_json(self, method: str, path: str, message: str) -> Tuple[int, dict]:
        """The 400 response for a body that is not JSON at all (counted)."""
        self._record(method, path, 400)
        return 400, error_payload("invalid_json", message)

    def _record(
        self, method: str, path: str, status: int, elapsed_ms: Optional[float] = None
    ) -> None:
        self.metrics.inc("requests_total")
        self.metrics.inc(labelled("requests", endpoint=f"{method} {path}", status=status))
        if status >= 500:
            self.metrics.inc("responses_5xx")
        if elapsed_ms is not None:
            self.metrics.observe_ms(
                labelled("request_latency", endpoint=f"{method} {path}"), elapsed_ms
            )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"PlannerApp(session={self.session!r}, documents={len(self.documents)}, "
            f"uptime={self.uptime_s:.0f}s)"
        )


# ---------------------------------------------------------------------------
# HTTP glue
# ---------------------------------------------------------------------------


class PlannerRequestHandler(BaseHTTPRequestHandler):
    """JSON-over-HTTP adapter around :meth:`PlannerApp.handle`."""

    server_version = "repro-planner/1"
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------------

    def _dispatch(self, method: str) -> None:
        app: PlannerApp = self.server.app  # type: ignore[attr-defined]
        path = urlsplit(self.path).path
        body: Any = None
        if method == "POST":
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length > 0 else b""
            if raw:
                try:
                    body = json.loads(raw)
                except json.JSONDecodeError as exc:
                    status, payload = app.invalid_json(
                        method, path, f"request body is not valid JSON: {exc}"
                    )
                    self._respond(status, payload)
                    return
        status, payload = app.handle(method, path, body)
        self._respond(status, payload)

    def _respond(self, status: int, payload: dict) -> None:
        data = json.dumps(payload, sort_keys=True).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("POST")

    # Unsupported methods still flow through the app so the client receives
    # the structured 405 envelope instead of http.server's HTML 501 page.
    def do_PUT(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("PUT")

    def do_DELETE(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("DELETE")

    def do_PATCH(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("PATCH")

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        """Quiet by default; per-request accounting lives in the metrics."""


class PlannerHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server carrying its :class:`PlannerApp`."""

    daemon_threads = True
    # http.server's default listen backlog of 5 resets connections under a
    # concurrent barrage (the acceptance test alone opens 100); a planning
    # daemon is exactly the kind of burst target that needs a real backlog.
    request_queue_size = 128

    def __init__(self, address: Tuple[str, int], app: PlannerApp) -> None:
        super().__init__(address, PlannerRequestHandler)
        self.app = app


def make_server(
    app: PlannerApp, host: str = "127.0.0.1", port: int = 0
) -> PlannerHTTPServer:
    """Bind the daemon (``port=0`` picks an ephemeral port, for tests/CI)."""
    return PlannerHTTPServer((host, port), app)


def serve(
    app: PlannerApp,
    host: str = "127.0.0.1",
    port: int = 8735,
    announce: Callable[[str], None] = print,
) -> int:
    """Run the daemon until interrupted (the ``repro serve`` entry point)."""
    server = make_server(app, host, port)
    bound_host, bound_port = server.server_address[:2]
    announce(
        f"repro planner listening on http://{bound_host}:{bound_port} "
        f"(provider {app.session.provider.name}; endpoints: "
        + ", ".join(sorted({p for (_, p) in app.endpoints}))
        + ")"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        announce("shutting down")
    finally:
        server.shutdown()
        server.server_close()
        app.close()
    return 0


#: Re-exported for handlers' type annotations.
Handler = Callable[[PlannerApp, Dict[str, Any]], dict]


@dataclass(frozen=True)
class Endpoint:
    """One registered endpoint: method, path, handler and its field specs."""

    method: str
    path: str
    fn: Handler
    fields: Tuple[Field, ...] = field(default_factory=tuple)
    description: str = ""


# Typing helper kept here so handlers can annotate without importing typing.
Params = Dict[str, Any]
Body = Union[dict, None]
