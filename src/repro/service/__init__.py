"""Planner-as-a-service: a concurrent HTTP/JSON planning daemon over :class:`~repro.api.Session`.

The paper frames primitive selection as an offline solve; this subsystem is
the serving layer a production deployment needs on top of it — a long-running
daemon where plan requests are answered from warm state (the in-process plan
cache backed by the sharded :class:`~repro.cost.store.CostStore` tier) so
that a warm request's latency is dominated by a store/cache read, not a PBQP
solve.  Everything is standard library only: :class:`http.server.ThreadingHTTPServer`
on the wire, :mod:`json` payloads, and :mod:`concurrent.futures` executors
for background warming.

Layout (the ``api/services`` + ``api/workers`` split the ROADMAP cites):

* :mod:`repro.service.app`      — the application object, request routing and
  schema validation (errors as structured JSON), and the HTTP server glue;
* :mod:`repro.service.handlers` — one handler per endpoint, published through
  the :func:`~repro.service.handlers.register_endpoint` decorator registry;
* :mod:`repro.service.workers`  — the background warming queue drained by a
  pluggable serial/thread/process executor;
* :mod:`repro.service.metrics`  — thread-safe counters and latency
  histograms surfaced at ``GET /v1/metrics``;
* :mod:`repro.service.client`   — the stdlib HTTP client used by tests,
  examples and CI.

Endpoints: ``POST /v1/plan``, ``POST /v1/compare``, ``POST /v1/frontier``,
``GET /v1/platforms``, ``GET /v1/healthz``, ``GET /v1/metrics``.  Start a
daemon with ``repro serve`` (optionally ``--warm zoo`` to pre-populate the
whole zoo x platform x batch grid in the background), or in-process:

>>> from repro.service import PlannerApp, make_server           # doctest: +SKIP
>>> server = make_server(PlannerApp(cache_dir="repro-cache"))   # doctest: +SKIP
>>> server.serve_forever()                                      # doctest: +SKIP
"""

from repro.service.app import PlannerApp, make_server, serve
from repro.service.client import PlannerClient, ServiceError
from repro.service.handlers import ENDPOINTS, register_endpoint
from repro.service.metrics import Metrics
from repro.service.workers import WarmJob, WarmingQueue, executor, grid_jobs

__all__ = [
    "PlannerApp",
    "make_server",
    "serve",
    "PlannerClient",
    "ServiceError",
    "ENDPOINTS",
    "register_endpoint",
    "Metrics",
    "WarmJob",
    "WarmingQueue",
    "executor",
    "grid_jobs",
]
