"""PBQP solutions."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.pbqp.graph import PBQPGraph


@dataclass
class PBQPSolution:
    """An assignment of one alternative to every PBQP node.

    Attributes
    ----------
    assignment:
        Mapping from node id to the index of the selected alternative.
    cost:
        Total cost of the assignment (node costs plus edge costs).
    optimal:
        ``True`` when the solver proved the assignment optimal (only
        optimality-preserving reductions / exhaustive search were used),
        ``False`` when the RN heuristic was involved.
    """

    assignment: Dict[int, int]
    cost: float
    optimal: bool = True

    def selection(self, node_id: int) -> int:
        """Index of the alternative selected for ``node_id``."""
        return self.assignment[node_id]

    def named_selection(self, graph: PBQPGraph) -> Dict[str, str]:
        """Human-readable mapping from node name to selected alternative label."""
        result: Dict[str, str] = {}
        for node_id, index in self.assignment.items():
            node = graph.node(node_id)
            result[node.name] = node.label_of(index)
        return result

    def verify(self, graph: PBQPGraph, tolerance: float = 1e-6) -> bool:
        """Check that the recorded cost matches a fresh evaluation on ``graph``."""
        actual = graph.solution_cost(self.assignment)
        if actual == float("inf") and self.cost == float("inf"):
            return True
        return abs(actual - self.cost) <= tolerance * max(1.0, abs(actual))
