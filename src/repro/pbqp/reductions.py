"""Optimality-preserving PBQP reductions and the RN heuristic.

The solver follows the classic reduce-and-back-propagate scheme of Scholz &
Eckstein:

* **R0** removes an isolated node; its optimal alternative is simply the
  minimum of its cost vector.
* **R1** removes a degree-1 node by folding, for every alternative of its
  single neighbor, the best combined (node + edge) cost into the neighbor's
  cost vector.
* **R2** removes a degree-2 node by folding the best combined cost for every
  pair of neighbor alternatives into (or onto) the edge between the two
  neighbors.
* **RN** is the heuristic step for irreducible nodes (degree >= 3): an
  alternative is committed greedily and its edge rows are folded into the
  neighbors' cost vectors.  RN does not preserve optimality, which is why the
  solver prefers exhaustive search on small irreducible cores.

Each application returns a *record* carrying everything back-propagation
needs to recover the removed node's optimal alternative once its neighbors
have been decided.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.pbqp.graph import PBQPGraph


@dataclass
class ReductionRecord:
    """Base class for reduction records pushed onto the solver's stack."""

    node_id: int

    def back_propagate(self, assignment: Dict[int, int]) -> int:
        """Decide the removed node's alternative given its neighbors' decisions."""
        raise NotImplementedError


@dataclass
class R0Record(ReductionRecord):
    """Record of an R0 reduction (isolated node)."""

    costs: np.ndarray = None

    def back_propagate(self, assignment: Dict[int, int]) -> int:
        return int(np.argmin(self.costs))


@dataclass
class R1Record(ReductionRecord):
    """Record of an R1 reduction (degree-1 node folded into its neighbor)."""

    costs: np.ndarray = None
    neighbor: int = -1
    matrix: np.ndarray = None  # oriented node -> neighbor

    def back_propagate(self, assignment: Dict[int, int]) -> int:
        j = assignment[self.neighbor]
        combined = self.costs + self.matrix[:, j]
        return int(np.argmin(combined))


@dataclass
class R2Record(ReductionRecord):
    """Record of an R2 reduction (degree-2 node folded onto the edge between its neighbors)."""

    costs: np.ndarray = None
    neighbor_u: int = -1
    neighbor_v: int = -1
    matrix_u: np.ndarray = None  # oriented node -> neighbor_u
    matrix_v: np.ndarray = None  # oriented node -> neighbor_v

    def back_propagate(self, assignment: Dict[int, int]) -> int:
        ju = assignment[self.neighbor_u]
        jv = assignment[self.neighbor_v]
        combined = self.costs + self.matrix_u[:, ju] + self.matrix_v[:, jv]
        return int(np.argmin(combined))


@dataclass
class RNRecord(ReductionRecord):
    """Record of an RN heuristic step; the alternative was committed eagerly."""

    chosen: int = 0

    def back_propagate(self, assignment: Dict[int, int]) -> int:
        return self.chosen


# ---------------------------------------------------------------------------
# Reduction applications (they mutate the working graph).
# ---------------------------------------------------------------------------


def apply_r0(graph: PBQPGraph, node_id: int) -> R0Record:
    """Apply R0 to an isolated node and remove it from the graph."""
    if graph.degree(node_id) != 0:
        raise ValueError(f"R0 requires an isolated node, {node_id} has degree {graph.degree(node_id)}")
    node = graph.node(node_id)
    record = R0Record(node_id=node_id, costs=node.costs.copy())
    graph.remove_node(node_id)
    return record


def apply_r1(graph: PBQPGraph, node_id: int) -> R1Record:
    """Apply R1 to a degree-1 node, folding its costs into its neighbor."""
    if graph.degree(node_id) != 1:
        raise ValueError(f"R1 requires a degree-1 node, {node_id} has degree {graph.degree(node_id)}")
    (neighbor,) = graph.neighbors(node_id)
    node = graph.node(node_id)
    matrix = graph.edge_matrix(node_id, neighbor)
    record = R1Record(
        node_id=node_id, costs=node.costs.copy(), neighbor=neighbor, matrix=matrix.copy()
    )
    # For every alternative j of the neighbor, the removed node contributes the
    # best achievable cost min_i (c[i] + M[i, j]).
    folded = np.min(node.costs[:, None] + matrix, axis=0)
    graph.node(neighbor).costs += folded
    graph.remove_node(node_id)
    return record


def apply_r2(graph: PBQPGraph, node_id: int) -> R2Record:
    """Apply R2 to a degree-2 node, folding it onto the edge between its neighbors."""
    if graph.degree(node_id) != 2:
        raise ValueError(f"R2 requires a degree-2 node, {node_id} has degree {graph.degree(node_id)}")
    neighbor_u, neighbor_v = graph.neighbors(node_id)
    node = graph.node(node_id)
    matrix_u = graph.edge_matrix(node_id, neighbor_u)
    matrix_v = graph.edge_matrix(node_id, neighbor_v)
    record = R2Record(
        node_id=node_id,
        costs=node.costs.copy(),
        neighbor_u=neighbor_u,
        neighbor_v=neighbor_v,
        matrix_u=matrix_u.copy(),
        matrix_v=matrix_v.copy(),
    )
    # delta[ju, jv] = min_i (c[i] + Mu[i, ju] + Mv[i, jv])
    combined = node.costs[:, None, None] + matrix_u[:, :, None] + matrix_v[:, None, :]
    delta = np.min(combined, axis=0)
    graph.remove_node(node_id)
    graph.add_edge(neighbor_u, neighbor_v, delta)
    return record


def apply_rn(graph: PBQPGraph, node_id: int) -> RNRecord:
    """Apply the RN heuristic: commit a locally good alternative and fold it away.

    The heuristic chooses the alternative minimizing the node cost plus, for
    every incident edge, the best-case edge cost (the row minimum).  The
    chosen row of every incident edge matrix is then added to the neighbor's
    cost vector, and the node is removed.
    """
    neighbors = graph.neighbors(node_id)
    node = graph.node(node_id)
    heuristic = node.costs.copy()
    matrices = {}
    for neighbor in neighbors:
        matrix = graph.edge_matrix(node_id, neighbor)
        matrices[neighbor] = matrix
        heuristic = heuristic + np.min(matrix, axis=1)
    chosen = int(np.argmin(heuristic))
    for neighbor in neighbors:
        graph.node(neighbor).costs += matrices[neighbor][chosen, :]
    graph.remove_node(node_id)
    return RNRecord(node_id=node_id, chosen=chosen)
