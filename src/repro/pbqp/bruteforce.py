"""Exhaustive oracles used to validate the solver in tests.

:func:`brute_force_solve` enumerates every full assignment of a (small) PBQP
instance and returns the cheapest one.  :func:`brute_force_network_select`
enumerates every per-layer choice of a (small) selection context and prices
it with the executor's grouped conversion formula — a shared fan-out chain
counts once per distinct (producer, target layout), exactly what
``NetworkExecutor.run_traced`` executes — so PBQP-vs-bruteforce cross-checks
compare the objective the runtime actually pays.  Both are exponential —
only suitable for the small instances in the test suite, never for real
selection problems.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, List, Tuple

from repro.pbqp.graph import PBQPGraph
from repro.pbqp.solution import PBQPSolution


def brute_force_solve(graph: PBQPGraph, limit: int = 2_000_000) -> PBQPSolution:
    """Return the optimal solution by exhaustive enumeration.

    Parameters
    ----------
    graph:
        The instance to solve.
    limit:
        Safety cap on the number of assignments enumerated.

    Raises
    ------
    ValueError
        If the search space exceeds ``limit``.
    """
    node_ids = graph.node_ids
    sizes = [graph.node(nid).degree_of_freedom for nid in node_ids]
    total = 1
    for size in sizes:
        total *= size
    if total > limit:
        raise ValueError(
            f"brute force search space {total} exceeds limit {limit}; use the PBQP solver"
        )

    best_cost = math.inf
    best_assignment: Dict[int, int] = {nid: 0 for nid in node_ids}
    for combo in itertools.product(*(range(size) for size in sizes)):
        assignment = dict(zip(node_ids, combo))
        cost = graph.solution_cost(assignment)
        if cost < best_cost:
            best_cost = cost
            best_assignment = assignment
    return PBQPSolution(assignment=best_assignment, cost=best_cost, optimal=True)


def brute_force_network_select(context, limit: int = 2_000_000):
    """Exhaustively find the cheapest selection under the executor's objective.

    Enumerates every per-layer choice of ``context`` (a
    :class:`~repro.core.selector.SelectionContext`, duck-typed to avoid the
    import cycle): each convolution picks one applicable primitive, the input
    layer is pinned to CHW, every other layer picks one DT-graph layout.  A
    candidate's cost is the sum of the chosen primitives' costs plus, for
    every producer, the conversion chain cost of each **distinct** target
    layout its consumers demand — charged once per (producer, target), the
    grouped formula the executor pays and the fan-out-aware PBQP encoding
    prices.

    Returns ``(conv_primitives, wildcard_layouts, cost)``, ready to feed
    :func:`~repro.core.legalize.finalize_plan`.

    Raises
    ------
    ValueError
        If the search space exceeds ``limit``.
    """
    from repro.graph.layer import LayerKind
    from repro.layouts.layout import CHW

    network = context.network
    tables = context.tables
    library = context.library

    layers = list(network.topological_order())
    choices: List[List[Tuple[str, str, str]]] = []  # (choice label, in layout, out layout)
    for layer in layers:
        if layer.is_convolution:
            alternatives = []
            for name in sorted(tables.node_costs[layer.name]):
                primitive = library.get(name)
                alternatives.append(
                    (name, primitive.input_layout.name, primitive.output_layout.name)
                )
        elif layer.kind is LayerKind.INPUT:
            alternatives = [(CHW.name, CHW.name, CHW.name)]
        else:
            alternatives = [
                (layout.name, layout.name, layout.name)
                for layout in context.dt_graph.layouts
            ]
        choices.append(alternatives)

    total = 1
    for alternatives in choices:
        total *= len(alternatives)
    if total > limit:
        raise ValueError(
            f"brute force search space {total} exceeds limit {limit}; use the PBQP selector"
        )

    edges = list(network.edges())
    layout_by_name = {layout.name: layout for layout in context.dt_graph.layouts}
    layout_by_name.setdefault(CHW.name, CHW)

    best_cost = math.inf
    best_combo = None
    for combo in itertools.product(*choices):
        picked = dict(zip((layer.name for layer in layers), combo))
        cost = 0.0
        for layer in layers:
            if layer.is_convolution:
                cost += tables.node_costs[layer.name][picked[layer.name][0]]
        # Grouped conversion pricing: one chain per distinct (producer, target).
        demanded: Dict[Tuple[str, str, str], None] = {}
        for edge in edges:
            source = picked[edge.producer][2]
            target = picked[edge.consumer][1]
            if source != target:
                demanded[(edge.producer, source, target)] = None
        legal = True
        for producer, source, target in demanded:
            chain_cost = tables.dt_costs[tables.shapes[producer]][(source, target)]
            if math.isinf(chain_cost):
                legal = False
                break
            cost += chain_cost
        if legal and cost < best_cost:
            best_cost = cost
            best_combo = picked

    if best_combo is None:
        raise ValueError("no legal assignment exists for the network")

    conv_primitives = {
        layer.name: best_combo[layer.name][0] for layer in layers if layer.is_convolution
    }
    wildcard_layouts = {
        layer.name: layout_by_name[best_combo[layer.name][0]]
        for layer in layers
        if not layer.is_convolution
    }
    return conv_primitives, wildcard_layouts, best_cost
