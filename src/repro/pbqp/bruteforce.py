"""Exhaustive PBQP oracle used to validate the solver in tests.

Enumerates every full assignment of a (small) PBQP instance and returns the
cheapest one.  Exponential in the number of nodes — only suitable for the
randomized instances used by the test suite, never for real selection
problems.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict

from repro.pbqp.graph import PBQPGraph
from repro.pbqp.solution import PBQPSolution


def brute_force_solve(graph: PBQPGraph, limit: int = 2_000_000) -> PBQPSolution:
    """Return the optimal solution by exhaustive enumeration.

    Parameters
    ----------
    graph:
        The instance to solve.
    limit:
        Safety cap on the number of assignments enumerated.

    Raises
    ------
    ValueError
        If the search space exceeds ``limit``.
    """
    node_ids = graph.node_ids
    sizes = [graph.node(nid).degree_of_freedom for nid in node_ids]
    total = 1
    for size in sizes:
        total *= size
    if total > limit:
        raise ValueError(
            f"brute force search space {total} exceeds limit {limit}; use the PBQP solver"
        )

    best_cost = math.inf
    best_assignment: Dict[int, int] = {nid: 0 for nid in node_ids}
    for combo in itertools.product(*(range(size) for size in sizes)):
        assignment = dict(zip(node_ids, combo))
        cost = graph.solution_cost(assignment)
        if cost < best_cost:
            best_cost = cost
            best_assignment = assignment
    return PBQPSolution(assignment=best_assignment, cost=best_cost, optimal=True)
