"""Partitioned Boolean Quadratic Programming (PBQP).

PBQP is the assignment problem the paper reduces primitive selection to
(section 3.3): each graph node has a vector of alternative costs, each edge a
matrix of pairwise costs indexed by the alternatives chosen at its two
endpoints, and the goal is the assignment minimizing the sum of selected node
costs plus selected edge costs.

This package provides a from-scratch solver in the lineage of the solver the
paper uses (Scholz & Eckstein / Hames & Scholz):

* :class:`~repro.pbqp.graph.PBQPGraph` — the problem representation;
* reductions R0 (isolated nodes), R1 (degree-1) and R2 (degree-2), which are
  optimality preserving;
* an RN heuristic for irreducible nodes, and a branch-and-bound mode that
  restores optimality and reports whether the returned solution is provably
  optimal (the paper notes the solver proved optimality on every network);
* a brute-force oracle used by the test suite to validate the solver on
  random instances.
"""

from repro.pbqp.graph import PBQPGraph, PBQPNode, PBQPEdge
from repro.pbqp.solution import PBQPSolution
from repro.pbqp.solver import PBQPSolver, SolverStats
from repro.pbqp.bruteforce import brute_force_solve

__all__ = [
    "PBQPGraph",
    "PBQPNode",
    "PBQPEdge",
    "PBQPSolution",
    "PBQPSolver",
    "SolverStats",
    "brute_force_solve",
]
