"""PBQP problem representation.

A PBQP instance is an undirected graph.  Every node ``u`` carries a cost
vector ``c_u`` with one entry per alternative; every edge ``(u, v)`` carries a
cost matrix ``C_uv`` indexed by the pair of alternatives chosen for ``u`` and
``v``.  A solution assigns one alternative to every node; its cost is

    sum_u c_u[x_u]  +  sum_{(u,v)} C_uv[x_u, x_v].

Infinite matrix entries encode illegal pairs (the paper's incompatible
primitives whose connection would produce garbage); a finite-cost solution
never selects them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


@dataclass
class PBQPNode:
    """One decision variable of a PBQP instance.

    Attributes
    ----------
    node_id:
        Unique integer id assigned by the owning graph.
    name:
        Optional human-readable name (the DNN layer name in our encoding).
    costs:
        Cost vector, one entry per alternative.  May contain ``inf`` for
        alternatives that are individually illegal.
    labels:
        Optional human-readable names of the alternatives (primitive names in
        our encoding); if given, must have the same length as ``costs``.
    """

    node_id: int
    name: str
    costs: np.ndarray
    labels: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        self.costs = np.asarray(self.costs, dtype=float).copy()
        if self.costs.ndim != 1 or self.costs.size == 0:
            raise ValueError(f"node {self.name!r} needs a non-empty 1D cost vector")
        if self.labels is not None and len(self.labels) != self.costs.size:
            raise ValueError(
                f"node {self.name!r}: {len(self.labels)} labels for {self.costs.size} alternatives"
            )

    @property
    def degree_of_freedom(self) -> int:
        """Number of alternatives for this node."""
        return int(self.costs.size)

    def label_of(self, index: int) -> str:
        """Human-readable name of an alternative."""
        if self.labels is not None:
            return self.labels[index]
        return str(index)


@dataclass
class PBQPEdge:
    """An undirected PBQP edge with its pairwise cost matrix.

    The matrix is stored oriented from ``u`` to ``v``: ``matrix[i, j]`` is the
    cost of selecting alternative ``i`` at ``u`` and ``j`` at ``v``.
    """

    u: int
    v: int
    matrix: np.ndarray

    def __post_init__(self) -> None:
        self.matrix = np.asarray(self.matrix, dtype=float).copy()
        if self.matrix.ndim != 2:
            raise ValueError("edge cost matrix must be 2D")
        if self.u == self.v:
            raise ValueError("self edges are not allowed in PBQP")

    def oriented(self, source: int, target: int) -> np.ndarray:
        """The cost matrix oriented from ``source`` to ``target``."""
        if (source, target) == (self.u, self.v):
            return self.matrix
        if (source, target) == (self.v, self.u):
            return self.matrix.T
        raise ValueError(f"edge ({self.u}, {self.v}) does not connect {source} and {target}")


class PBQPGraph:
    """A mutable PBQP instance.

    Nodes are identified by the integer ids returned from :meth:`add_node`.
    Adding an edge between two nodes that are already connected accumulates
    (adds) the cost matrices, which is the standard PBQP convention and is
    what the selection encoder relies on when several cost contributions land
    on the same DNN edge.
    """

    def __init__(self) -> None:
        self._nodes: Dict[int, PBQPNode] = {}
        self._edges: Dict[Tuple[int, int], PBQPEdge] = {}
        self._adjacency: Dict[int, set] = {}
        self._next_id = 0

    # -- construction ---------------------------------------------------------

    def add_node(
        self,
        costs: Sequence[float],
        name: Optional[str] = None,
        labels: Optional[Sequence[str]] = None,
    ) -> int:
        """Add a node and return its id."""
        node_id = self._next_id
        self._next_id += 1
        node = PBQPNode(
            node_id=node_id,
            name=name if name is not None else f"n{node_id}",
            costs=np.asarray(costs, dtype=float),
            labels=tuple(labels) if labels is not None else None,
        )
        self._nodes[node_id] = node
        self._adjacency[node_id] = set()
        return node_id

    def add_edge(self, u: int, v: int, matrix: Sequence[Sequence[float]]) -> None:
        """Add (or accumulate onto) the edge between ``u`` and ``v``.

        ``matrix[i][j]`` must be the pairwise cost of alternative ``i`` at
        ``u`` and alternative ``j`` at ``v``.
        """
        if u not in self._nodes or v not in self._nodes:
            raise KeyError(f"both endpoints must exist before adding edge ({u}, {v})")
        if u == v:
            raise ValueError("self edges are not allowed in PBQP")
        matrix = np.asarray(matrix, dtype=float)
        expected = (self._nodes[u].degree_of_freedom, self._nodes[v].degree_of_freedom)
        if matrix.shape != expected:
            raise ValueError(
                f"edge ({u}, {v}) cost matrix has shape {matrix.shape}, expected {expected}"
            )
        key = self._edge_key(u, v)
        existing = self._edges.get(key)
        if existing is None:
            self._edges[key] = PBQPEdge(u=key[0], v=key[1], matrix=self._orient(u, v, matrix, key))
            self._adjacency[u].add(v)
            self._adjacency[v].add(u)
        else:
            existing.matrix = existing.matrix + self._orient(u, v, matrix, key)

    @staticmethod
    def _edge_key(u: int, v: int) -> Tuple[int, int]:
        return (u, v) if u < v else (v, u)

    @staticmethod
    def _orient(u: int, v: int, matrix: np.ndarray, key: Tuple[int, int]) -> np.ndarray:
        return matrix if (u, v) == key else matrix.T

    # -- removal (used by the solver's reductions) ------------------------------

    def remove_node(self, node_id: int) -> None:
        """Remove a node and all its incident edges."""
        if node_id not in self._nodes:
            raise KeyError(f"no node {node_id}")
        for neighbor in list(self._adjacency[node_id]):
            self.remove_edge(node_id, neighbor)
        del self._adjacency[node_id]
        del self._nodes[node_id]

    def remove_edge(self, u: int, v: int) -> None:
        """Remove the edge between ``u`` and ``v``."""
        key = self._edge_key(u, v)
        if key not in self._edges:
            raise KeyError(f"no edge between {u} and {v}")
        del self._edges[key]
        self._adjacency[u].discard(v)
        self._adjacency[v].discard(u)

    # -- queries ----------------------------------------------------------------

    @property
    def node_ids(self) -> List[int]:
        return list(self._nodes.keys())

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def node(self, node_id: int) -> PBQPNode:
        return self._nodes[node_id]

    def nodes(self) -> List[PBQPNode]:
        return list(self._nodes.values())

    def edges(self) -> List[PBQPEdge]:
        return list(self._edges.values())

    def has_edge(self, u: int, v: int) -> bool:
        return self._edge_key(u, v) in self._edges

    def edge(self, u: int, v: int) -> PBQPEdge:
        return self._edges[self._edge_key(u, v)]

    def edge_matrix(self, source: int, target: int) -> np.ndarray:
        """The edge cost matrix oriented from ``source`` to ``target``."""
        return self.edge(source, target).oriented(source, target)

    def neighbors(self, node_id: int) -> List[int]:
        return sorted(self._adjacency[node_id])

    def degree(self, node_id: int) -> int:
        return len(self._adjacency[node_id])

    # -- evaluation ---------------------------------------------------------------

    def solution_cost(self, assignment: Dict[int, int]) -> float:
        """Total cost of a full assignment (node costs + edge costs)."""
        missing = set(self._nodes) - set(assignment)
        if missing:
            raise ValueError(f"assignment is missing nodes {sorted(missing)}")
        total = 0.0
        for node_id, node in self._nodes.items():
            total += float(node.costs[assignment[node_id]])
        for edge in self._edges.values():
            total += float(edge.matrix[assignment[edge.u], assignment[edge.v]])
        return total

    def copy(self) -> "PBQPGraph":
        """Deep copy of the instance (node ids are preserved)."""
        clone = PBQPGraph()
        clone._next_id = self._next_id
        for node_id, node in self._nodes.items():
            clone._nodes[node_id] = PBQPNode(
                node_id=node_id, name=node.name, costs=node.costs.copy(), labels=node.labels
            )
            clone._adjacency[node_id] = set(self._adjacency[node_id])
        for key, edge in self._edges.items():
            clone._edges[key] = PBQPEdge(u=edge.u, v=edge.v, matrix=edge.matrix.copy())
        return clone

    def __repr__(self) -> str:
        return f"PBQPGraph(nodes={self.num_nodes}, edges={self.num_edges})"
