"""The PBQP solver: reductions, branch-and-bound on irreducible cores, back-propagation.

The solving strategy mirrors Hames & Scholz's "nearly optimal register
allocation with PBQP" solver, which the paper uses off the shelf:

1. apply the optimality-preserving reductions R0/R1/R2 exhaustively;
2. if the graph is empty, back-propagate to obtain a provably optimal
   solution;
3. otherwise an *irreducible core* (every remaining node has degree >= 3)
   remains.  If the core is small enough, solve it exactly by depth-first
   branch-and-bound (the solution stays provably optimal); if it is too
   large, fall back to the RN heuristic interleaved with further reductions,
   and mark the solution as not provably optimal.

The paper reports that the solver found (and proved) the optimal solution for
every network in under one second; on the networks in this reproduction the
irreducible core is empty or tiny, so the same holds here.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.pbqp.graph import PBQPGraph
from repro.pbqp.reductions import (
    ReductionRecord,
    apply_r0,
    apply_r1,
    apply_r2,
    apply_rn,
)
from repro.pbqp.solution import PBQPSolution

# Process-wide solve accounting.  The planning service's /v1/metrics surfaces
# this to prove its warm path performs *zero* solves (a warm daemon serving
# cached plans holds the counter flat); a plain module global with a lock is
# enough because solves are counted, never reset, and read rarely.
_SOLVE_COUNT_LOCK = threading.Lock()
_SOLVE_COUNT = 0


def solve_count() -> int:
    """Total number of PBQP solves performed by this process (thread-safe)."""
    with _SOLVE_COUNT_LOCK:
        return _SOLVE_COUNT


def _count_solve() -> None:
    global _SOLVE_COUNT
    with _SOLVE_COUNT_LOCK:
        _SOLVE_COUNT += 1


@dataclass
class SolverStats:
    """Counters describing one solver run (used by the overhead experiment)."""

    r0_count: int = 0
    r1_count: int = 0
    r2_count: int = 0
    rn_count: int = 0
    core_nodes: int = 0
    core_assignments_explored: int = 0
    solve_seconds: float = 0.0

    def total_reductions(self) -> int:
        return self.r0_count + self.r1_count + self.r2_count + self.rn_count


class PBQPSolver:
    """Reduction-based PBQP solver with an exact branch-and-bound core search.

    Parameters
    ----------
    exact_core_limit:
        Maximum size (number of assignment combinations) of the irreducible
        core that will be solved exactly; larger cores fall back to the RN
        heuristic.  The default comfortably covers every DNN selection
        instance in the reproduction.
    """

    def __init__(self, exact_core_limit: int = 2_000_000) -> None:
        if exact_core_limit < 1:
            raise ValueError("exact_core_limit must be positive")
        self.exact_core_limit = exact_core_limit
        self.last_stats: Optional[SolverStats] = None

    # -- public API -------------------------------------------------------------

    def solve(self, graph: PBQPGraph) -> PBQPSolution:
        """Solve a PBQP instance; the input graph is not modified."""
        _count_solve()
        stats = SolverStats()
        start = time.perf_counter()
        work = graph.copy()
        stack: List[ReductionRecord] = []
        optimal = True

        self._reduce(work, stack, stats)

        assignment: Dict[int, int] = {}
        if work.num_nodes > 0:
            stats.core_nodes = work.num_nodes
            core_size = 1
            for node in work.nodes():
                core_size *= node.degree_of_freedom
                if core_size > self.exact_core_limit:
                    break
            if core_size <= self.exact_core_limit:
                assignment = self._solve_core_exact(work, stats)
            else:
                optimal = False
                self._solve_core_heuristic(work, stack, stats)
                assignment = {}

        full_assignment = self._back_propagate(assignment, stack)
        cost = graph.solution_cost(full_assignment)
        stats.solve_seconds = time.perf_counter() - start
        self.last_stats = stats
        return PBQPSolution(assignment=full_assignment, cost=cost, optimal=optimal)

    # -- reduction loop -----------------------------------------------------------

    def _reduce(self, work: PBQPGraph, stack: List[ReductionRecord], stats: SolverStats) -> None:
        """Apply R0/R1/R2 until no node of degree <= 2 remains."""
        progress = True
        while progress:
            progress = False
            for node_id in list(work.node_ids):
                if node_id not in work.node_ids:
                    continue
                degree = work.degree(node_id)
                if degree == 0:
                    stack.append(apply_r0(work, node_id))
                    stats.r0_count += 1
                    progress = True
                elif degree == 1:
                    stack.append(apply_r1(work, node_id))
                    stats.r1_count += 1
                    progress = True
                elif degree == 2:
                    stack.append(apply_r2(work, node_id))
                    stats.r2_count += 1
                    progress = True

    def _solve_core_heuristic(
        self, work: PBQPGraph, stack: List[ReductionRecord], stats: SolverStats
    ) -> None:
        """Reduce the remaining core with RN steps interleaved with R0-R2."""
        while work.num_nodes > 0:
            node_id = max(work.node_ids, key=work.degree)
            stack.append(apply_rn(work, node_id))
            stats.rn_count += 1
            self._reduce(work, stack, stats)

    # -- exact core search ----------------------------------------------------------

    def _solve_core_exact(self, core: PBQPGraph, stats: SolverStats) -> Dict[int, int]:
        """Depth-first branch-and-bound over the irreducible core.

        Nodes are ordered by decreasing degree so that edge costs become
        concrete early and the bound is tight.  The lower bound for the
        remaining nodes is the sum of their minimum node costs plus, for every
        edge with at least one undecided endpoint, the minimum compatible
        entry of its cost matrix.
        """
        node_order = sorted(core.node_ids, key=core.degree, reverse=True)
        edges = core.edges()

        best_cost = math.inf
        best_assignment: Dict[int, int] = {}
        current: Dict[int, int] = {}

        # Precompute per-node minimum costs for bounding.
        node_min = {nid: float(np.min(core.node(nid).costs)) for nid in core.node_ids}

        def lower_bound(partial_cost: float, depth: int) -> float:
            bound = partial_cost
            undecided = node_order[depth:]
            for nid in undecided:
                bound += node_min[nid]
            for edge in edges:
                u_decided = edge.u in current
                v_decided = edge.v in current
                if u_decided and v_decided:
                    continue
                if u_decided:
                    bound += float(np.min(edge.matrix[current[edge.u], :]))
                elif v_decided:
                    bound += float(np.min(edge.matrix[:, current[edge.v]]))
                else:
                    bound += float(np.min(edge.matrix))
            return bound

        def partial_cost() -> float:
            total = 0.0
            for nid, idx in current.items():
                total += float(core.node(nid).costs[idx])
            for edge in edges:
                if edge.u in current and edge.v in current:
                    total += float(edge.matrix[current[edge.u], current[edge.v]])
            return total

        def search(depth: int) -> None:
            nonlocal best_cost, best_assignment
            if depth == len(node_order):
                cost = partial_cost()
                stats.core_assignments_explored += 1
                if cost < best_cost:
                    best_cost = cost
                    best_assignment = dict(current)
                return
            node_id = node_order[depth]
            node = core.node(node_id)
            # Order the alternatives by their node cost so good solutions are
            # found early and pruning kicks in sooner.
            order = np.argsort(node.costs)
            for index in order:
                current[node_id] = int(index)
                stats.core_assignments_explored += 1
                if lower_bound(partial_cost(), depth + 1) < best_cost:
                    search(depth + 1)
                del current[node_id]

        search(0)
        if not best_assignment and node_order:
            # Every branch was pruned against an infinite bound: the instance
            # has no finite-cost solution; return an arbitrary assignment.
            best_assignment = {nid: 0 for nid in node_order}
        return best_assignment

    # -- back-propagation --------------------------------------------------------------

    @staticmethod
    def _back_propagate(
        core_assignment: Dict[int, int], stack: List[ReductionRecord]
    ) -> Dict[int, int]:
        """Decide every reduced node in reverse reduction order."""
        assignment = dict(core_assignment)
        for record in reversed(stack):
            assignment[record.node_id] = record.back_propagate(assignment)
        return assignment
