"""Serialization of cost tables and plans.

Section 4 of the paper: "the resulting cost tables are tiny compared to the
weight data required for most DNN models, making it feasible to produce these
cost tables before deployment, and ship them with the trained model to
maximise inference performance in situ."

This module implements that deployment artifact: cost tables and selection
plans can be saved to (and loaded from) a plain JSON document, so profiling
can happen on one machine and selection/execution on another.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro.core.plan import EdgeDecision, LayerDecision, NetworkPlan
from repro.cost.platform import PLATFORMS
from repro.cost.tables import CostTables
from repro.graph.scenario import ConvScenario
from repro.layouts.dt_graph import DTGraph, DTPath
from repro.layouts.layout import get_layout
from repro.layouts.transforms import TransformChain

PathLike = Union[str, Path]

#: Format identifier embedded in every serialized document.  Cost tables are
#: at v3: the precision axis added the table-level ``dtype``, per-scenario
#: dtypes and the per-primitive accuracy-loss table (v2 added the
#: multi-objective workspace/energy tables).  Older documents are rejected
#: here (and treated as cache misses by
#: :class:`~repro.cost.store.CostStore`) rather than half-loaded: tables
#: without accuracy data would silently price every precision as free.
#: Plans are at v2: the fan-out-aware pricing fix attributes a shared
#: conversion chain's cost to exactly one edge of its (producer, target
#: layout) dedup group, so v1 documents — which price the chain on *every*
#: edge — carry totals the executor never pays.  A v1 document is upgraded
#: on load by :func:`upgrade_plan_document` (re-attributing its conversion
#: costs and recomputing the totals) rather than served verbatim.
COST_TABLE_FORMAT = "repro/cost-tables/v3"
PLAN_FORMAT = "repro/plan/v2"

#: Plan formats that predate the fan-out-aware pricing fix; loadable only
#: through :func:`upgrade_plan_document`'s re-attribution.
LEGACY_PLAN_FORMATS = ("repro/plan/v1",)

#: Context labels a session records as a plan's ``platform`` when planning
#: against a provider with no modelled platform (``Session._resolve_platform``
#: falls back to the provider's name).  Plans carrying these labels are legal
#: even though the labels never appear in the platform registry.
PROVIDER_PLATFORM_LABELS = ("analytical", "profiled")


def _shape_key(shape: Tuple[int, int, int]) -> str:
    return "x".join(str(dim) for dim in shape)


def _parse_shape(key: str) -> Tuple[int, int, int]:
    c, h, w = (int(part) for part in key.split("x"))
    return (c, h, w)


# ---------------------------------------------------------------------------
# Cost tables
# ---------------------------------------------------------------------------


def cost_tables_to_dict(tables: CostTables) -> dict:
    """Convert cost tables into a JSON-serializable dictionary.

    Conversion chains are stored as layout-name hop lists; they are
    reconstructed against a DT graph on load.
    """
    scenarios = {
        layer: {
            "c": s.c,
            "h": s.h,
            "w": s.w,
            "stride": s.stride,
            "k": s.k,
            "m": s.m,
            "padding": s.padding,
            "groups": s.groups,
            "batch": s.batch,
            "dtype": s.dtype,
        }
        for layer, s in tables.scenarios.items()
    }
    dt_costs = {
        _shape_key(shape): {f"{src}->{dst}": cost for (src, dst), cost in pairs.items()}
        for shape, pairs in tables.dt_costs.items()
    }
    dt_hops = {
        _shape_key(shape): {
            f"{src}->{dst}": (
                None
                if path.chain is None
                else []
                if len(path.chain) == 0
                else [path.chain.source.name]
                + [hop.target.name for hop in path.chain.transforms]
            )
            for (src, dst), path in pairs.items()
        }
        for shape, pairs in tables.dt_paths.items()
    }
    dt_energy = {
        _shape_key(shape): {
            f"{src}->{dst}": energy for (src, dst), energy in pairs.items()
        }
        for shape, pairs in tables.dt_energy.items()
    }
    return {
        "format": COST_TABLE_FORMAT,
        "network": tables.network_name,
        "threads": tables.threads,
        "batch": tables.batch,
        "dtype": tables.dtype,
        "scenarios": scenarios,
        "shapes": {layer: list(shape) for layer, shape in tables.shapes.items()},
        "node_costs": tables.node_costs,
        "node_workspace": tables.node_workspace,
        "node_energy": tables.node_energy,
        "node_accuracy": tables.node_accuracy,
        "dt_costs": dt_costs,
        "dt_energy": dt_energy,
        "dt_hops": dt_hops,
    }


def cost_tables_from_dict(document: dict, dt_graph: DTGraph) -> CostTables:
    """Rebuild cost tables from a dictionary produced by :func:`cost_tables_to_dict`."""
    if document.get("format") != COST_TABLE_FORMAT:
        raise ValueError(
            f"unexpected cost-table format {document.get('format')!r} "
            f"(expected {COST_TABLE_FORMAT!r}; older documents must be re-profiled)"
        )

    scenarios = {
        layer: ConvScenario(**params) for layer, params in document["scenarios"].items()
    }
    shapes = {layer: tuple(shape) for layer, shape in document["shapes"].items()}

    dt_costs: Dict[Tuple[int, int, int], Dict[Tuple[str, str], float]] = {}
    dt_paths: Dict[Tuple[int, int, int], Dict[Tuple[str, str], DTPath]] = {}
    dt_energy: Dict[Tuple[int, int, int], Dict[Tuple[str, str], float]] = {}
    for shape_key, pairs in document.get("dt_energy", {}).items():
        dt_energy[_parse_shape(shape_key)] = {
            tuple(pair_key.split("->")): float(energy)
            for pair_key, energy in pairs.items()
        }
    for shape_key, pairs in document["dt_costs"].items():
        shape = _parse_shape(shape_key)
        costs: Dict[Tuple[str, str], float] = {}
        paths: Dict[Tuple[str, str], DTPath] = {}
        hops_for_shape = document["dt_hops"][shape_key]
        for pair_key, cost in pairs.items():
            src, dst = pair_key.split("->")
            costs[(src, dst)] = float(cost)
            hop_names = hops_for_shape[pair_key]
            chain: Optional[TransformChain]
            if hop_names is None:
                chain = None
            elif not hop_names:
                chain = TransformChain(transforms=())
            else:
                transforms = []
                for source_name, target_name in zip(hop_names, hop_names[1:]):
                    transform = dt_graph.direct_transform(
                        get_layout(source_name), get_layout(target_name)
                    )
                    if transform is None:
                        raise ValueError(
                            f"serialized chain uses unknown direct transform "
                            f"{source_name}->{target_name}"
                        )
                    transforms.append(transform)
                chain = TransformChain(transforms=tuple(transforms))
            paths[(src, dst)] = DTPath(
                source=get_layout(src), target=get_layout(dst), cost=float(cost), chain=chain
            )
        dt_costs[shape] = costs
        dt_paths[shape] = paths

    node_costs = {
        layer: {name: float(cost) for name, cost in costs.items()}
        for layer, costs in document["node_costs"].items()
    }
    node_workspace = {
        layer: {name: float(value) for name, value in values.items()}
        for layer, values in document.get("node_workspace", {}).items()
    }
    node_energy = {
        layer: {name: float(value) for name, value in values.items()}
        for layer, values in document.get("node_energy", {}).items()
    }
    node_accuracy = {
        layer: {name: float(value) for name, value in values.items()}
        for layer, values in document.get("node_accuracy", {}).items()
    }
    return CostTables(
        network_name=document["network"],
        threads=int(document["threads"]),
        scenarios=scenarios,
        shapes=shapes,
        node_costs=node_costs,
        dt_paths=dt_paths,
        dt_costs=dt_costs,
        batch=int(document.get("batch", 1)),
        dtype=str(document.get("dtype", "fp32")),
        node_workspace=node_workspace,
        node_energy=node_energy,
        dt_energy=dt_energy,
        node_accuracy=node_accuracy,
    )


def save_cost_tables(tables: CostTables, path: PathLike) -> None:
    """Write cost tables to a JSON file."""
    Path(path).write_text(json.dumps(cost_tables_to_dict(tables), indent=2, sort_keys=True))


def load_cost_tables(path: PathLike, dt_graph: DTGraph) -> CostTables:
    """Read cost tables from a JSON file."""
    return cost_tables_from_dict(json.loads(Path(path).read_text()), dt_graph)


# ---------------------------------------------------------------------------
# Plans
# ---------------------------------------------------------------------------


def plan_to_dict(plan: NetworkPlan) -> dict:
    """Convert a network plan into a JSON-serializable dictionary."""
    return {
        "format": PLAN_FORMAT,
        "network": plan.network_name,
        "strategy": plan.strategy,
        "platform": plan.platform_name,
        "threads": plan.threads,
        "batch": plan.batch,
        "dtype": plan.dtype,
        "layers": [
            {
                "layer": d.layer,
                "primitive": d.primitive,
                "input_layout": d.input_layout.name,
                "output_layout": d.output_layout.name,
                "cost": d.cost,
                "note": d.note,
                "workspace_bytes": d.workspace_bytes,
                "energy_j": d.energy_j,
                "accuracy_loss": d.accuracy_loss,
            }
            for d in plan.layer_decisions.values()
        ],
        "edges": [
            {
                "producer": e.producer,
                "consumer": e.consumer,
                "source_layout": e.source_layout.name,
                "target_layout": e.target_layout.name,
                "hops": None
                if e.chain is None
                else (
                    [e.chain.source.name] + [hop.target.name for hop in e.chain.transforms]
                    if len(e.chain)
                    else []
                ),
                "cost": e.cost,
                "energy_j": e.energy_j,
            }
            for e in plan.edge_decisions
        ],
        "total_ms": plan.total_ms,
        "cost_vector": plan.cost_vector().to_dict(),
    }


def upgrade_plan_document(document: dict) -> dict:
    """Re-attribute a legacy plan document's double-priced conversion costs.

    Plans serialized before the fan-out-aware pricing fix (format
    ``repro/plan/v1``) price a shared conversion chain on every edge leaving
    the producer, so their ``total_ms``/``cost_vector`` overstate what the
    executor pays.  This rewrites such a document to the current format:
    within each (producer, target layout) dedup group the first edge keeps
    the chain's cost and energy, the rest are zeroed, and the totals are
    recomputed from the corrected decisions.  Current-format documents pass
    through unchanged; anything else is refused.
    """
    fmt = document.get("format")
    if fmt == PLAN_FORMAT:
        return document
    if fmt not in LEGACY_PLAN_FORMATS:
        raise ValueError(
            f"cannot upgrade plan format {fmt!r} "
            f"(expected one of {LEGACY_PLAN_FORMATS} or {PLAN_FORMAT!r})"
        )
    upgraded = json.loads(json.dumps(document, sort_keys=True))
    upgraded["format"] = PLAN_FORMAT
    layers = [entry for entry in upgraded.get("layers", []) if isinstance(entry, dict)]
    edges = [entry for entry in upgraded.get("edges", []) if isinstance(entry, dict)]
    seen: set = set()
    for entry in edges:
        if not entry.get("hops"):
            continue
        key = (entry.get("producer"), entry.get("target_layout"))
        if key in seen:
            entry["cost"] = 0.0
            entry["energy_j"] = 0.0
        else:
            seen.add(key)
    time_ms = 1e3 * (
        sum(float(entry.get("cost", 0.0)) for entry in layers)
        + sum(float(entry.get("cost", 0.0)) for entry in edges)
    )
    upgraded["total_ms"] = time_ms
    upgraded["cost_vector"] = {
        "time_ms": time_ms,
        "peak_workspace_bytes": max(
            (float(entry.get("workspace_bytes", 0.0)) for entry in layers), default=0.0
        ),
        "energy_proxy_j": sum(float(entry.get("energy_j", 0.0)) for entry in layers)
        + sum(float(entry.get("energy_j", 0.0)) for entry in edges),
        "accuracy_proxy": sum(
            float(entry.get("accuracy_loss", 0.0)) for entry in layers
        ),
    }
    return upgraded


def plan_from_dict(document: dict, dt_graph: DTGraph) -> NetworkPlan:
    """Rebuild a network plan from a dictionary produced by :func:`plan_to_dict`.

    Legacy (``repro/plan/v1``) documents are transparently re-attributed via
    :func:`upgrade_plan_document`, so loading an old file yields the
    corrected, executor-matching totals rather than the double-priced ones.
    """
    if document.get("format") in LEGACY_PLAN_FORMATS:
        document = upgrade_plan_document(document)
    if document.get("format") != PLAN_FORMAT:
        raise ValueError(
            f"unexpected plan format {document.get('format')!r} "
            f"(expected {PLAN_FORMAT!r})"
        )
    platform_name = document.get("platform")
    if (
        platform_name is not None
        and platform_name not in PLATFORMS
        and platform_name not in PROVIDER_PLATFORM_LABELS
    ):
        raise ValueError(
            f"plan references platform {platform_name!r} which is not registered; "
            f"registered platforms: {', '.join(sorted(PLATFORMS))}"
        )
    plan = NetworkPlan(
        network_name=document["network"],
        strategy=document["strategy"],
        platform_name=document["platform"],
        threads=int(document["threads"]),
        batch=int(document.get("batch", 1)),
        dtype=str(document.get("dtype", "fp32")),
    )
    for entry in document["layers"]:
        plan.layer_decisions[entry["layer"]] = LayerDecision(
            layer=entry["layer"],
            primitive=entry["primitive"],
            input_layout=get_layout(entry["input_layout"]),
            output_layout=get_layout(entry["output_layout"]),
            cost=float(entry["cost"]),
            note=entry.get("note", ""),
            workspace_bytes=float(entry.get("workspace_bytes", 0.0)),
            energy_j=float(entry.get("energy_j", 0.0)),
            accuracy_loss=float(entry.get("accuracy_loss", 0.0)),
        )
    for entry in document["edges"]:
        hops = entry["hops"]
        if hops is None:
            chain = None
        elif not hops:
            chain = TransformChain(transforms=())
        else:
            transforms = []
            for source_name, target_name in zip(hops, hops[1:]):
                transform = dt_graph.direct_transform(
                    get_layout(source_name), get_layout(target_name)
                )
                if transform is None:
                    raise ValueError(
                        f"serialized plan uses unknown direct transform {source_name}->{target_name}"
                    )
                transforms.append(transform)
            chain = TransformChain(transforms=tuple(transforms))
        plan.edge_decisions.append(
            EdgeDecision(
                producer=entry["producer"],
                consumer=entry["consumer"],
                source_layout=get_layout(entry["source_layout"]),
                target_layout=get_layout(entry["target_layout"]),
                chain=chain,
                cost=float(entry["cost"]),
                energy_j=float(entry.get("energy_j", 0.0)),
            )
        )
    return plan


def save_plan(plan: NetworkPlan, path: PathLike) -> None:
    """Write a plan to a JSON file."""
    Path(path).write_text(json.dumps(plan_to_dict(plan), indent=2, sort_keys=True))


def load_plan(path: PathLike, dt_graph: DTGraph) -> NetworkPlan:
    """Read a plan from a JSON file."""
    return plan_from_dict(json.loads(Path(path).read_text()), dt_graph)
