"""Cost modelling: hardware platforms, analytical costs, and wall-clock profiling.

The paper drives selection with per-layer *profiled* execution times of
hand-optimized primitives on two physical machines (Intel Core i5-4570 and
ARM Cortex-A57).  This reproduction substitutes an **analytical platform
model** (:class:`~repro.cost.analytical.AnalyticalCostModel`) calibrated to
the characteristics of those two processors, plus a **wall-clock profiler**
(:class:`~repro.cost.profiler.WallClockProfiler`) that times the numpy-backed
primitives on the host machine.  Both implement the same
:class:`~repro.cost.model.CostModel` interface, so either can feed the
selector; the analytical model is what regenerates the paper's figures (see
DESIGN.md section 2 for the substitution rationale).
"""

from repro.cost.platform import (
    PLATFORM_REGISTRY_VERSION,
    PLATFORMS,
    Platform,
    arm_cortex_a57,
    avx512_server,
    get_platform,
    gpu_sim,
    intel_haswell,
    list_platforms,
    platform_version,
    register_platform,
    unregister_platform,
)
from repro.cost.model import CostModel
from repro.cost.analytical import AnalyticalCostModel
from repro.cost.profiler import WallClockProfiler
from repro.cost.tables import CostTables, build_cost_tables
from repro.cost.provider import (
    AnalyticalCostProvider,
    CostModelProvider,
    CostProvider,
    CostQuery,
    ProfiledCostProvider,
)
from repro.cost.store import CostStore, StoreEntry, StoreKey, StoreStats

__all__ = [
    "Platform",
    "PLATFORMS",
    "PLATFORM_REGISTRY_VERSION",
    "intel_haswell",
    "arm_cortex_a57",
    "avx512_server",
    "gpu_sim",
    "register_platform",
    "unregister_platform",
    "get_platform",
    "list_platforms",
    "platform_version",
    "CostModel",
    "AnalyticalCostModel",
    "WallClockProfiler",
    "CostTables",
    "build_cost_tables",
    "CostProvider",
    "CostQuery",
    "AnalyticalCostProvider",
    "ProfiledCostProvider",
    "CostModelProvider",
    "CostStore",
    "StoreKey",
    "StoreEntry",
    "StoreStats",
]
