"""A persistent, disk-backed cost-table store.

Section 4 of the paper: cost tables are "tiny compared to the weight data
required for most DNN models, making it feasible to produce these cost tables
before deployment, and ship them with the trained model".  The in-process
caches of :class:`repro.api.Session` realize "profile once, select many"
within one process; :class:`CostStore` extends it across processes: every
produced table set is written to a cache directory as a JSON document keyed
by ``(network fingerprint, platform, threads, batch, provider name, provider
version, platform registry version)``, and any later session pointed at the
same directory loads the tables instead of re-profiling.

The store is itself a :class:`~repro.cost.provider.CostProvider` — it
decorates any other provider, so the same persistence works for analytically
priced tables and for host-profiled ones (where re-profiling is genuinely
expensive).  The provider version participates in the key, so bumping a
provider's ``version`` invalidates stale entries instead of silently serving
them.
"""

from __future__ import annotations

import hashlib
import json
import re
import tempfile
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import List, Optional, Union

from repro.cost.model import CostModel
from repro.cost.platform import PLATFORMS, Platform, platform_version
from repro.cost.provider import AnalyticalCostProvider, CostProvider, CostQuery
from repro.cost.serialize import cost_tables_from_dict, cost_tables_to_dict
from repro.cost.tables import CostTables

PathLike = Union[str, Path]

#: Format identifier embedded in every store entry.  v2 added ``batch`` to
#: the key schema (and to the filename digest); v3 added ``platform_version``
#: (the platform registry version plus the platform's parameter digest), so
#: editing a platform's modelled numbers — or registering a different
#: platform under a reused name — invalidates its persisted tables; v4 holds
#: the multi-objective cost-table payload (per-primitive workspace and energy
#: plus per-conversion energies, ``repro/cost-tables/v2``); v5 adds ``dtype``
#: to the key schema and holds the precision-aware payload (per-primitive
#: accuracy losses, ``repro/cost-tables/v3``), so fp32/fp16/int8 tables for
#: the same tuple never alias on disk.  Bumping the version makes the skew
#: explicit in both directions — older-format entries are *regenerated and
#: overwritten* by :meth:`CostStore.tables`, skipped by
#: :meth:`CostStore.entries` (and removed by :meth:`CostStore.clear`) instead
#: of being half-parsed, and older checkouts reject v5 documents outright.
STORE_ENTRY_FORMAT = "repro/cost-store-entry/v5"


@dataclass(frozen=True)
class StoreKey:
    """The identity of one persisted cost-table set."""

    fingerprint: str
    platform: str
    threads: int
    provider: str
    provider_version: str
    #: Digest of the primitive library and DT graph the tables were built
    #: against — node costs are keyed by primitive name, so tables from a
    #: different library must not be served.
    components: str = ""
    #: Minibatch size the tables were priced for.  Part of the key, so
    #: batch-1 and batch-N tables never alias each other on disk.
    batch: int = 1
    #: Registry version plus parameter digest of the modelled platform (see
    #: :func:`repro.cost.platform.platform_version`); empty for platform-less
    #: providers (the host profiler).  Part of the key, so editing a
    #: platform's numbers invalidates its stored tables.
    platform_version: str = ""
    #: Numeric precision the tables were priced for.  Part of the key, so
    #: fp32/fp16/int8 tables for the same tuple never alias each other.
    dtype: str = "fp32"

    def digest(self) -> str:
        """A short stable digest of the full key (used in the filename)."""
        text = "|".join(
            (
                self.fingerprint,
                self.platform,
                str(self.threads),
                self.provider,
                self.provider_version,
                self.components,
                str(self.batch),
                self.platform_version,
                self.dtype,
            )
        )
        return hashlib.sha256(text.encode()).hexdigest()[:16]


def components_digest(library, dt_graph) -> str:
    """A stable digest of a (primitive library, DT graph) pair.

    Covers the primitive names with their layouts and the DT graph's layouts
    and direct transforms — everything the cost-table *shape* depends on.
    """
    parts = sorted(
        f"{p.name}:{p.input_layout.name}>{p.output_layout.name}" for p in library
    )
    parts.append("/layouts:" + ",".join(sorted(dt_graph.layout_names)))
    parts.append(
        "/transforms:"
        + ",".join(
            sorted(
                f"{t.source.name}>{t.target.name}" for t in dt_graph.transforms
            )
        )
    )
    return hashlib.sha256("|".join(parts).encode()).hexdigest()[:12]


@dataclass(frozen=True)
class StoreEntry:
    """One entry currently present in the store directory."""

    key: StoreKey
    path: Path
    size_bytes: int


@dataclass(frozen=True)
class StoreStats:
    """Hit/miss/eviction counters of one store instance plus the disk state.

    ``hits``/``misses``/``evictions`` describe *this instance's* activity;
    ``entries`` and ``bytes_on_disk`` describe the directory as it stands
    (shared with any other process pointed at it).  ``repro cache`` and the
    service's ``/v1/metrics`` both render exactly these numbers.
    """

    hits: int
    misses: int
    entries: int
    evictions: int = 0
    bytes_on_disk: int = 0


@dataclass(frozen=True)
class EvictionReport:
    """What one :meth:`CostStore.evict` pass removed, by reason."""

    #: Entries whose on-disk format tag is not the current one (or that do
    #: not parse at all): version-based eviction.
    stale_format: int = 0
    #: Entries whose recorded ``platform_version`` no longer matches the
    #: currently registered platform of the same name — the platform's
    #: modelled parameters changed, so the tables can never be served again.
    stale_platform: int = 0
    #: Entries older than the TTL (by file modification time).
    expired: int = 0

    @property
    def removed(self) -> int:
        return self.stale_format + self.stale_platform + self.expired


def _slug(text: str) -> str:
    """A filesystem-safe fragment of a key component."""
    return re.sub(r"[^A-Za-z0-9._-]+", "_", text)[:48]


class CostStore:
    """Disk-backed cost tables: a persistent decorator around a provider.

    Parameters
    ----------
    cache_dir:
        Directory holding the JSON entries (created if absent).
    provider:
        The provider that produces tables on a miss (default: the analytical
        provider, matching :class:`repro.api.Session`'s default).
    """

    def __init__(
        self, cache_dir: PathLike, provider: Optional[CostProvider] = None
    ) -> None:
        self.cache_dir = Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.provider = provider if provider is not None else AnalyticalCostProvider()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # -- CostProvider interface ---------------------------------------------------

    @property
    def name(self) -> str:
        return f"store[{self.provider.name}]"

    @property
    def version(self) -> str:
        return self.provider.version

    def cost_model(self, platform: Optional[Platform]) -> CostModel:
        return self.provider.cost_model(platform)

    def tables(self, query: CostQuery) -> CostTables:
        """Load the query's tables from disk, or produce and persist them.

        An on-disk entry in an older (or corrupt) format is a *miss*, not an
        error: the entry filename encodes the key but not the entry format,
        so a format bump would otherwise turn every warm cache directory into
        a crash.  Stale entries are regenerated and overwritten in place.
        """
        key = self.key_for(query)
        path = self.path_for(key)
        if path.exists():
            try:
                document = json.loads(path.read_text())
                if document.get("format") == STORE_ENTRY_FORMAT:
                    loaded = cost_tables_from_dict(document["tables"], query.dt_graph)
                    self._hits += 1
                    return loaded
            except (OSError, json.JSONDecodeError, KeyError, ValueError):
                pass
        tables = self.provider.tables(query)
        self._misses += 1
        self._write(path, key, tables)
        return tables

    # -- keying and paths ---------------------------------------------------------

    def key_for(self, query: CostQuery) -> StoreKey:
        """The persistent identity of a query's tables."""
        return StoreKey(
            fingerprint=query.fingerprint,
            platform=query.platform_name,
            threads=query.threads,
            provider=self.provider.name,
            provider_version=self.provider.version,
            components=components_digest(query.library, query.dt_graph),
            batch=query.batch,
            platform_version=(
                "" if query.platform is None else platform_version(query.platform)
            ),
            dtype=query.dtype,
        )

    def shard_for(self, key: StoreKey) -> Path:
        """The per-platform shard subdirectory one key lives in.

        Namespacing the cache by platform keeps one platform's churn (a
        parameter edit, a registry version bump) physically contained, makes
        ``repro cache`` output scannable, and lets deployments mount or sync
        shards independently.
        """
        return self.cache_dir / (_slug(key.platform) or "default")

    def path_for(self, key: StoreKey) -> Path:
        """The JSON file one key is stored at (readable prefix + key digest)."""
        prefix = (
            f"{_slug(key.fingerprint)}_{_slug(key.platform)}"
            f"_{key.threads}t_b{key.batch}_{_slug(key.dtype)}"
        )
        return self.shard_for(key) / f"{prefix}_{key.digest()}.json"

    def contains(self, query: CostQuery) -> bool:
        """Whether the store already holds tables for a query."""
        return self.path_for(self.key_for(query)).exists()

    # -- management ---------------------------------------------------------------

    def _entry_files(self) -> List[Path]:
        """Every ``*.json`` file in the cache directory, parseable or not.

        Covers both the per-platform shard subdirectories and legacy flat
        entries written before sharding (which simply miss and are cleaned by
        :meth:`clear` / :meth:`evict` like any other stale file).
        """
        return sorted(
            list(self.cache_dir.glob("*.json")) + list(self.cache_dir.glob("*/*.json"))
        )

    def entries(self) -> List[StoreEntry]:
        """Every well-formed entry currently in the cache directory."""
        found: List[StoreEntry] = []
        for path in self._entry_files():
            try:
                document = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                continue
            if document.get("format") != STORE_ENTRY_FORMAT:
                continue
            found.append(
                StoreEntry(
                    key=StoreKey(**document["key"]),
                    path=path,
                    size_bytes=path.stat().st_size,
                )
            )
        return found

    def clear(self) -> int:
        """Delete every ``*.json`` file; returns the number of files removed.

        Deliberately *not* built on :meth:`entries`, which silently skips
        unparseable or old-format documents: after a format-version bump (or
        a crash that left junk behind) those stale files must still be
        removed, otherwise the directory stays dirty and the reported count
        is wrong.  Leftover write-temporaries (``.*.tmp``) are removed too,
        but only entry files count toward the return value.
        """
        removed = 0
        for path in self._entry_files():
            path.unlink(missing_ok=True)
            removed += 1
        for pattern in (".*.tmp", "*/.*.tmp"):
            for leftover in self.cache_dir.glob(pattern):
                leftover.unlink(missing_ok=True)
        for shard in self.cache_dir.iterdir():
            if shard.is_dir() and not any(shard.iterdir()):
                shard.rmdir()
        return removed

    def evict(
        self,
        ttl_seconds: Optional[float] = None,
        now: Optional[float] = None,
    ) -> EvictionReport:
        """Remove entries that can (or should) never be served again.

        Two mandatory criteria plus one optional:

        * *version-based*: files that do not parse, or whose format tag is
          not the current :data:`STORE_ENTRY_FORMAT` — a format bump already
          makes :meth:`tables` skip them, this reclaims the disk;
        * *stale platform*: entries whose recorded ``platform_version``
          differs from the version of the **currently registered** platform
          of the same name (its modelled parameters changed, so the key can
          never match again; entries for unregistered platforms are kept —
          the owning registration may simply not be loaded right now);
        * *TTL*: with ``ttl_seconds``, entries whose file modification time
          is older than the TTL (the shared-tier hygiene bound for a
          long-running service).

        Removed entries count into :meth:`stats`' ``evictions``.
        """
        reference = time.time() if now is None else now
        stale_format = stale_platform = expired = 0
        for path in self._entry_files():
            try:
                document = json.loads(path.read_text())
                current = document.get("format") == STORE_ENTRY_FORMAT
            except (OSError, json.JSONDecodeError):
                document, current = {}, False
            if not current:
                path.unlink(missing_ok=True)
                stale_format += 1
                continue
            key = document.get("key", {})
            platform_name = key.get("platform", "")
            recorded = key.get("platform_version", "")
            registered = PLATFORMS.get(platform_name)
            if recorded and registered is not None:
                if platform_version(registered) != recorded:
                    path.unlink(missing_ok=True)
                    stale_platform += 1
                    continue
            if ttl_seconds is not None:
                try:
                    age = reference - path.stat().st_mtime
                except OSError:
                    continue
                if age > ttl_seconds:
                    path.unlink(missing_ok=True)
                    expired += 1
        report = EvictionReport(
            stale_format=stale_format, stale_platform=stale_platform, expired=expired
        )
        self._evictions += report.removed
        return report

    def stats(self) -> StoreStats:
        """This instance's hit/miss/eviction counters and the disk state.

        Counts ``*.json`` files (and sums their sizes) directly instead of
        JSON-parsing every entry (the old behaviour, which both undercounted
        after format bumps and read the whole directory just to produce a
        number).
        """
        files = self._entry_files()
        bytes_on_disk = 0
        for path in files:
            try:
                bytes_on_disk += path.stat().st_size
            except OSError:
                pass
        return StoreStats(
            hits=self._hits,
            misses=self._misses,
            entries=len(files),
            evictions=self._evictions,
            bytes_on_disk=bytes_on_disk,
        )

    # -- plumbing -----------------------------------------------------------------

    def _write(self, path: Path, key: StoreKey, tables: CostTables) -> None:
        document = {
            "format": STORE_ENTRY_FORMAT,
            "key": asdict(key),
            "tables": cost_tables_to_dict(tables),
        }
        # Write-then-rename so a crashed process never leaves a torn entry.
        # The temp name must be unique per *call*, not per process: two
        # threads (e.g. select_many workers) writing the same key would
        # interleave on a shared pid-suffixed file and rename a torn document.
        # The temp file lives in the target's shard so the rename stays atomic
        # (same filesystem, same directory).
        path.parent.mkdir(parents=True, exist_ok=True)
        with tempfile.NamedTemporaryFile(
            "w",
            dir=path.parent,
            prefix=f".{path.stem}-",
            suffix=".tmp",
            delete=False,
        ) as handle:
            temporary = Path(handle.name)
            handle.write(json.dumps(document, sort_keys=True))
        temporary.replace(path)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"CostStore(cache_dir={str(self.cache_dir)!r}, "
            f"provider={self.provider.name!r}, hits={self._hits}, misses={self._misses})"
        )
