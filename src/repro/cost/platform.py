"""Hardware platform descriptions and the platform registry.

The paper evaluates on two machines:

* **Intel Core i5-4570** (Haswell): 4 cores at 3.2 GHz, AVX2 (8-lane FP32
  FMA), 32 KiB L1 / 256 KiB L2 per core and a 6 MiB shared L3;
* **ARM Cortex-A57** (NVIDIA Tegra X1): 4 cores at 1.9 GHz, NEON (4-lane FP32
  FMA), 32 KiB L1 / 48 KiB L1D per core, a 2 MiB shared L2 and no L3, with
  far lower memory bandwidth.

The paper's central claim — that the best primitive/layout mix is *platform
dependent* — only bites if platforms are pluggable, so this module is a
**registry**, not a hard-coded pair.  Two further modelled backends ship with
the reproduction: an AVX-512 server part (:data:`avx512_server`) and a
GPU-shaped accelerator (:data:`gpu_sim`).

A :class:`Platform` captures the parameters the analytical cost model prices:
SIMD width, per-core arithmetic throughput, the cache hierarchy and the
memory-system bandwidths, plus a handful of calibration factors describing
how efficiently layout-transformation code and vendor frameworks use the
machine.  The numbers are public figures for the modelled processors; the
model only relies on their *relative* magnitudes to reproduce the shape of
the paper's results.

Adding a platform
-----------------

Construct a :class:`Platform` and pass it through :func:`register_platform`
(usable directly or as a decorator on a zero-argument factory)::

    my_part = register_platform(Platform(
        name="my-part", cores=4, frequency_ghz=2.0, vector_width=8, ...,
        features=frozenset({"x86", "avx2"}),
    ))

The registered name is immediately accepted everywhere a platform name is:
:meth:`repro.api.Session.select`, the CLI's ``--platform`` flag (and listed
by ``repro platforms``), the experiment harnesses, and the cost store (whose
on-disk keys carry :data:`PLATFORM_REGISTRY_VERSION` plus a digest of the
platform's parameters, so editing a platform's numbers invalidates its
cached tables instead of silently serving stale ones).

``features`` is a free-form capability set consulted by
:meth:`repro.primitives.base.ConvPrimitive.supports` (per-platform primitive
gating), by :class:`repro.cost.analytical.AnalyticalCostModel` (e.g. SIMT
lane mapping, AVX-512 frequency derating, kernel-launch overhead) and by
:meth:`repro.core.strategies.Strategy.applies_to` (framework-emulation
gating).  The feature names used by the built-in platforms are:

=====================  =========================================================
feature                meaning
=====================  =========================================================
``x86``                x86 server/desktop part (MKL-DNN emulation applies)
``avx2``               256-bit SIMD ISA available
``avx512``             512-bit SIMD ISA available; GEMM-shaped kernels are
                       recompiled to the full width (and frequency-derated)
``neon``               ARM NEON part (ARM Compute Library emulation applies)
``frequency-derating`` wide-vector execution lowers the sustained clock
``deep-cache``         classic multi-level private/shared cache hierarchy
``simt``               GPU-shaped: variants are mapped across the machine
                       width by the compiler, memory latency is hidden by
                       oversubscription, and every call is a kernel launch
``high-bandwidth``     memory system an order of magnitude above desktop DDR
``vnni``               int8 dot-product ISA (AVX-512 VNNI): four 8-bit MACs
                       per fp32 lane, so int8 runs at 4x the fp32 rate
``dotprod``            8-bit dot-product instructions (ARM SDOT/UDOT,
                       dp4a-class on devices): same 4x int8 lane packing
``fp16-fast``          native half-precision arithmetic at twice the fp32
                       rate (packed fp16 math units, not just storage)
=====================  =========================================================

Precision capability gating: without ``vnni``/``dotprod`` an int8 scenario
still *runs* (the kernels exist everywhere), but its arithmetic is priced at
the fp32 lane rate — only the memory traffic shrinks.  Likewise ``fp16-fast``
is what turns fp16 from a storage format into a throughput win.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, fields
from typing import Callable, Dict, FrozenSet, List, Union


#: Version of the platform registry's modelling schema.  Participates in
#: cost-store keys (together with the per-platform parameter digest), so
#: bumping it — or editing any platform's numbers — invalidates previously
#: persisted cost tables instead of silently serving them.  History: "2"
#: opened the registry (PR 5); "3" added the precision capability features
#: (``vnni``/``dotprod``/``fp16-fast``) and dtype-aware pricing.
PLATFORM_REGISTRY_VERSION = "3"


@dataclass(frozen=True)
class Platform:
    """An execution platform priced by the analytical cost model.

    Attributes
    ----------
    name:
        Identifier used in reports (``"intel-haswell"``, ``"gpu-sim"``).
    cores:
        Number of CPU cores available for multithreaded execution (1 for
        device-shaped platforms whose whole machine serves one stream).
    frequency_ghz:
        Core clock frequency.
    vector_width:
        Native FP32 SIMD lanes (8 for AVX2, 4 for NEON, 16 for AVX-512;
        for SIMT platforms the *effective* machine-mapped width).
    fma_per_cycle:
        Fused multiply-add instructions issued per cycle per core (2 for
        Haswell's dual FMA pipes, 1 for the Cortex-A57; for device-shaped
        platforms this folds the SM/CU count into one "core").
    l1_kib, l2_kib, l3_kib:
        Cache sizes; ``l2_shared`` / ``l3_kib = 0`` describe the ARM part's
        shared L2 and missing L3.
    l2_shared:
        Whether the L2 is shared between cores (true for the Cortex-A57).
    cache_bandwidth_gbps:
        Sustainable bandwidth when the working set fits in the last-level
        cache.
    dram_bandwidth_gbps:
        Sustainable DRAM streaming bandwidth.
    transform_efficiency:
        Fraction of streaming bandwidth achieved by data-layout
        transformation routines (strided gather/scatter loops run far below
        memcpy speed, especially on the in-order-ish ARM memory system;
        coalesced SIMT gathers do much better).
    mt_bandwidth_scaling:
        Factor by which usable bandwidth grows when all cores stream
        simultaneously (memory systems do not scale with core count).
    framework_overhead_ms:
        Fixed per-layer dispatch/allocation overhead charged to the vendor
        framework comparators (Caffe-class frameworks re-allocate column
        buffers and spawn OpenBLAS threads per layer).
    wide_vector_derating:
        Multiplier on the sustained clock while executing vector code wider
        than 256 bits (AVX-512 license-based downclocking on server parts);
        1.0 everywhere else.
    launch_overhead_s:
        Fixed cost of dispatching one kernel to the device, in seconds
        (driver + queue latency).  Zero for CPUs; on GPU-shaped platforms it
        is what makes small layers launch-bound.
    features:
        Capability set consulted by primitive gating, the analytical model
        and the strategy registry (see the module docstring for the names
        the built-in platforms use).
    """

    name: str
    cores: int
    frequency_ghz: float
    vector_width: int
    fma_per_cycle: float
    l1_kib: int
    l2_kib: int
    l3_kib: int
    l2_shared: bool
    cache_bandwidth_gbps: float
    dram_bandwidth_gbps: float
    transform_efficiency: float
    mt_bandwidth_scaling: float
    framework_overhead_ms: float
    wide_vector_derating: float = 1.0
    launch_overhead_s: float = 0.0
    features: FrozenSet[str] = field(default_factory=frozenset)

    # -- capabilities ------------------------------------------------------------

    def has_feature(self, feature: str) -> bool:
        """Whether this platform declares a capability."""
        return feature in self.features

    # -- derived throughputs ----------------------------------------------------

    def peak_gflops_per_core(self, vector_lanes: int) -> float:
        """Peak GFLOP/s of one core using ``vector_lanes`` FP32 lanes per FMA."""
        lanes = max(1, min(vector_lanes, self.vector_width))
        return self.frequency_ghz * self.fma_per_cycle * 2.0 * lanes

    def last_level_cache_bytes(self) -> int:
        """Capacity of the last level of cache shared by the cores."""
        if self.l3_kib > 0:
            return self.l3_kib * 1024
        return self.l2_kib * 1024

    def per_core_cache_bytes(self) -> int:
        """Private cache capacity of a single core."""
        if self.l2_shared:
            return self.l1_kib * 1024
        return self.l2_kib * 1024

    def digest(self) -> str:
        """A short stable digest of every modelled parameter.

        Cost-store keys include it (via :func:`platform_version`), so two
        platforms that share a name but differ in any number never alias
        each other's persisted tables.
        """
        parts = []
        for spec in fields(self):
            value = getattr(self, spec.name)
            if isinstance(value, frozenset):
                value = ",".join(sorted(value))
            parts.append(f"{spec.name}={value!r}")
        return hashlib.sha256("|".join(parts).encode()).hexdigest()[:12]

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


# ---------------------------------------------------------------------------
# The registry
# ---------------------------------------------------------------------------

#: All registered platforms, keyed by name, in registration order.  This dict
#: IS the registry storage — kept under its historical name so existing
#: imports keep seeing newly registered platforms.
PLATFORMS: Dict[str, Platform] = {}


def register_platform(
    platform: Union[Platform, Callable[[], Platform]],
) -> Platform:
    """Publish a platform in the global registry.

    Accepts a :class:`Platform` directly, or — decorator style — a
    zero-argument factory that builds one.  Returns the registered platform
    either way.  Duplicate names are rejected.
    """
    if not isinstance(platform, Platform):
        platform = platform()
    if not platform.name:
        raise ValueError("platform must have a non-empty name")
    if platform.name in PLATFORMS:
        raise ValueError(f"duplicate platform name {platform.name!r}")
    PLATFORMS[platform.name] = platform
    return platform


def unregister_platform(name: str) -> Platform:
    """Remove (and return) a registered platform — for tests and embedders."""
    try:
        return PLATFORMS.pop(name)
    except KeyError:
        raise KeyError(
            f"unknown platform {name!r}; registered platforms: {sorted(PLATFORMS)}"
        ) from None


def get_platform(name: str) -> Platform:
    """Look up a registered platform, with the valid names in the error."""
    try:
        return PLATFORMS[name]
    except KeyError:
        raise KeyError(
            f"unknown platform {name!r}; registered platforms: {sorted(PLATFORMS)}"
        ) from None


def list_platforms() -> List[str]:
    """Names of all registered platforms, in registration order."""
    return list(PLATFORMS)


def platform_version(platform: Platform) -> str:
    """The registry-version-qualified parameter digest of one platform.

    This is the string cost-store keys carry: it changes when the registry's
    modelling schema is bumped *or* when the platform's own numbers change.
    """
    return f"{PLATFORM_REGISTRY_VERSION}:{platform.digest()}"


# ---------------------------------------------------------------------------
# Built-in platforms
# ---------------------------------------------------------------------------

#: Intel Core i5-4570 (Haswell) as used in the paper's desktop evaluation.
intel_haswell = register_platform(
    Platform(
        name="intel-haswell",
        cores=4,
        frequency_ghz=3.2,
        vector_width=8,
        fma_per_cycle=2.0,
        l1_kib=32,
        l2_kib=256,
        l3_kib=6144,
        l2_shared=False,
        cache_bandwidth_gbps=180.0,
        dram_bandwidth_gbps=21.0,
        transform_efficiency=0.05,
        mt_bandwidth_scaling=1.6,
        framework_overhead_ms=6.0,
        features=frozenset({"x86", "avx2", "deep-cache"}),
    )
)

#: ARM Cortex-A57 (NVIDIA Tegra X1) as used in the paper's embedded evaluation.
arm_cortex_a57 = register_platform(
    Platform(
        name="arm-cortex-a57",
        cores=4,
        frequency_ghz=1.9,
        vector_width=4,
        fma_per_cycle=1.0,
        l1_kib=32,
        l2_kib=2048,
        l3_kib=0,
        l2_shared=True,
        cache_bandwidth_gbps=35.0,
        dram_bandwidth_gbps=10.0,
        transform_efficiency=0.015,
        mt_bandwidth_scaling=1.4,
        framework_overhead_ms=25.0,
        # The Cortex-A57 itself predates SDOT, but the Tegra X1 deployment
        # target the paper models is exactly where ARM's int8 dot-product
        # path (ACL's quantized kernels) is the production configuration.
        features=frozenset({"arm", "neon", "dotprod"}),
    )
)

#: Skylake-SP-like AVX-512 server part: 16-lane FP32 FMA on dual 512-bit
#: pipes, 1 MiB private L2 per core, a big shared L3 and six-channel DDR4.
#: GEMM-shaped vf8 kernels are recompiled to the full 512-bit width by the
#: analytical model (``avx512`` feature) at the cost of the license-based
#: frequency derating (``wide_vector_derating``), which is also what derates
#: the large-tile Winograd variants relative to a non-throttling part.
avx512_server = register_platform(
    Platform(
        name="avx512-server",
        cores=8,
        frequency_ghz=2.6,
        vector_width=16,
        fma_per_cycle=2.0,
        l1_kib=32,
        l2_kib=1024,
        l3_kib=11264,
        l2_shared=False,
        cache_bandwidth_gbps=400.0,
        dram_bandwidth_gbps=85.0,
        transform_efficiency=0.06,
        mt_bandwidth_scaling=2.2,
        framework_overhead_ms=4.0,
        wide_vector_derating=0.85,
        features=frozenset(
            {"x86", "avx2", "avx512", "frequency-derating", "deep-cache", "vnni"}
        ),
    )
)

#: GPU-shaped accelerator: one "core" stands for the whole device (threads do
#: not subdivide it), ``vector_width`` is the effective machine-mapped SIMT
#: width and ``fma_per_cycle`` folds the SM count in, giving ~5.3 TFLOP/s
#: FP32 peak.  No deep cache hierarchy (a small shared L2, latency hidden by
#: oversubscription rather than by capacity), near-TB/s memory, efficient
#: coalesced layout transforms — and a fixed per-kernel-launch overhead that
#: makes small layers launch-bound (the number the paper's per-layer
#: formulation makes visible to the selector).
gpu_sim = register_platform(
    Platform(
        name="gpu-sim",
        cores=1,
        frequency_ghz=1.3,
        vector_width=64,
        fma_per_cycle=32.0,
        l1_kib=192,
        l2_kib=4096,
        l3_kib=0,
        l2_shared=True,
        cache_bandwidth_gbps=900.0,
        dram_bandwidth_gbps=450.0,
        transform_efficiency=0.30,
        mt_bandwidth_scaling=1.0,
        framework_overhead_ms=0.2,
        launch_overhead_s=5e-6,
        features=frozenset({"simt", "high-bandwidth", "fp16-fast", "dotprod"}),
    )
)
