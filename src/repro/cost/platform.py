"""Hardware platform descriptions.

The paper evaluates on two machines:

* **Intel Core i5-4570** (Haswell): 4 cores at 3.2 GHz, AVX2 (8-lane FP32 FMA),
  32 KiB L1 / 256 KiB L2 per core and a 6 MiB shared L3;
* **ARM Cortex-A57** (NVIDIA Tegra X1): 4 cores at 1.9 GHz, NEON (4-lane FP32
  FMA), 32 KiB L1 / 48 KiB L1D per core, a 2 MiB shared L2 and no L3, with
  far lower memory bandwidth.

A :class:`Platform` captures the parameters the analytical cost model prices:
SIMD width, per-core arithmetic throughput, the cache hierarchy and the
memory-system bandwidths, plus a handful of calibration factors describing
how efficiently layout-transformation code and vendor frameworks use the
machine.  The numbers are public figures for the two processors; the model
only relies on their *relative* magnitudes to reproduce the shape of the
paper's results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class Platform:
    """An execution platform priced by the analytical cost model.

    Attributes
    ----------
    name:
        Identifier used in reports (``"intel-haswell"``, ``"arm-cortex-a57"``).
    cores:
        Number of CPU cores available for multithreaded execution.
    frequency_ghz:
        Core clock frequency.
    vector_width:
        Native FP32 SIMD lanes (8 for AVX2, 4 for NEON).
    fma_per_cycle:
        Fused multiply-add instructions issued per cycle per core (2 for
        Haswell's dual FMA pipes, 1 for the Cortex-A57).
    l1_kib, l2_kib, l3_kib:
        Cache sizes; ``l2_shared`` / ``l3_kib = 0`` describe the ARM part's
        shared L2 and missing L3.
    l2_shared:
        Whether the L2 is shared between cores (true for the Cortex-A57).
    cache_bandwidth_gbps:
        Sustainable bandwidth when the working set fits in the last-level
        cache.
    dram_bandwidth_gbps:
        Sustainable DRAM streaming bandwidth.
    transform_efficiency:
        Fraction of streaming bandwidth achieved by data-layout
        transformation routines (strided gather/scatter loops run far below
        memcpy speed, especially on the in-order-ish ARM memory system).
    mt_bandwidth_scaling:
        Factor by which usable bandwidth grows when all cores stream
        simultaneously (memory systems do not scale with core count).
    framework_overhead_ms:
        Fixed per-layer dispatch/allocation overhead charged to the vendor
        framework comparators (Caffe-class frameworks re-allocate column
        buffers and spawn OpenBLAS threads per layer).
    """

    name: str
    cores: int
    frequency_ghz: float
    vector_width: int
    fma_per_cycle: float
    l1_kib: int
    l2_kib: int
    l3_kib: int
    l2_shared: bool
    cache_bandwidth_gbps: float
    dram_bandwidth_gbps: float
    transform_efficiency: float
    mt_bandwidth_scaling: float
    framework_overhead_ms: float

    # -- derived throughputs ----------------------------------------------------

    def peak_gflops_per_core(self, vector_lanes: int) -> float:
        """Peak GFLOP/s of one core using ``vector_lanes`` FP32 lanes per FMA."""
        lanes = max(1, min(vector_lanes, self.vector_width))
        return self.frequency_ghz * self.fma_per_cycle * 2.0 * lanes

    def last_level_cache_bytes(self) -> int:
        """Capacity of the last level of cache shared by the cores."""
        if self.l3_kib > 0:
            return self.l3_kib * 1024
        return self.l2_kib * 1024

    def per_core_cache_bytes(self) -> int:
        """Private cache capacity of a single core."""
        if self.l2_shared:
            return self.l1_kib * 1024
        return self.l2_kib * 1024

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


#: Intel Core i5-4570 (Haswell) as used in the paper's desktop evaluation.
intel_haswell = Platform(
    name="intel-haswell",
    cores=4,
    frequency_ghz=3.2,
    vector_width=8,
    fma_per_cycle=2.0,
    l1_kib=32,
    l2_kib=256,
    l3_kib=6144,
    l2_shared=False,
    cache_bandwidth_gbps=180.0,
    dram_bandwidth_gbps=21.0,
    transform_efficiency=0.05,
    mt_bandwidth_scaling=1.6,
    framework_overhead_ms=6.0,
)

#: ARM Cortex-A57 (NVIDIA Tegra X1) as used in the paper's embedded evaluation.
arm_cortex_a57 = Platform(
    name="arm-cortex-a57",
    cores=4,
    frequency_ghz=1.9,
    vector_width=4,
    fma_per_cycle=1.0,
    l1_kib=32,
    l2_kib=2048,
    l3_kib=0,
    l2_shared=True,
    cache_bandwidth_gbps=35.0,
    dram_bandwidth_gbps=10.0,
    transform_efficiency=0.015,
    mt_bandwidth_scaling=1.4,
    framework_overhead_ms=25.0,
)

#: All platforms known to the reproduction, keyed by name.
PLATFORMS: Dict[str, Platform] = {
    intel_haswell.name: intel_haswell,
    arm_cortex_a57.name: arm_cortex_a57,
}
