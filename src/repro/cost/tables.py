"""Cost tables: the profiled data the PBQP query is built from.

Section 4 of the paper: "layerwise profiling need only be run once per
hardware platform per DNN model.  The resulting cost tables are tiny compared
to the weight data required for most DNN models, making it feasible to
produce these cost tables before deployment, and ship them with the trained
model."

:class:`CostTables` is that artifact: for one network, platform/cost-model and
thread count it records

* the execution cost of every applicable primitive for every convolution
  layer (the PBQP node costs), and
* for every data-flow edge of the network, the cheapest layout-conversion
  chain between every ordered pair of layouts at that edge's tensor shape
  (the PBQP edge costs), taken from the all-pairs shortest paths of the DT
  graph (section 3.1).

Tables are cost-model agnostic: they can be built from the analytical
platform model or from the wall-clock profiler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.cost.model import CostModel
from repro.graph.network import Network
from repro.graph.scenario import ConvScenario
from repro.layouts.dt_graph import DTGraph, DTPath
from repro.layouts.layout import Layout
from repro.multiobj.vector import CostVector
from repro.primitives.registry import PrimitiveLibrary

Shape = Tuple[int, int, int]


@dataclass
class CostTables:
    """Profiled node and edge cost data for one (network, platform, threads, batch, dtype) tuple."""

    network_name: str
    threads: int
    #: Convolutional scenario of every convolution layer (carrying the batch
    #: and the dtype).
    scenarios: Dict[str, ConvScenario]
    #: Output tensor shape of every layer.
    shapes: Dict[str, Shape]
    #: layer name -> primitive name -> execution cost in seconds.
    node_costs: Dict[str, Dict[str, float]]
    #: tensor shape -> (source layout name, target layout name) -> cheapest DT path.
    dt_paths: Dict[Shape, Dict[Tuple[str, str], DTPath]]
    #: tensor shape -> (source layout name, target layout name) -> cost in seconds.
    dt_costs: Dict[Shape, Dict[Tuple[str, str], float]]
    #: Minibatch size the costs were produced for (1 = the paper's setting).
    batch: int = 1
    #: Numeric precision the costs were produced for ("fp32" = the paper's).
    dtype: str = "fp32"
    #: layer name -> primitive name -> peak scratch workspace in bytes.
    node_workspace: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: layer name -> primitive name -> energy proxy in joules.
    node_energy: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: tensor shape -> (source, target layout name) -> conversion energy (J).
    dt_energy: Dict[Shape, Dict[Tuple[str, str], float]] = field(default_factory=dict)
    #: layer name -> primitive name -> modelled accuracy loss (fraction).
    node_accuracy: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def primitive_cost(self, layer: str, primitive: str) -> float:
        """Cost of implementing ``layer`` with ``primitive``."""
        return self.node_costs[layer][primitive]

    def primitive_workspace(self, layer: str, primitive: str) -> float:
        """Peak scratch workspace (bytes) of one primitive on one layer.

        Tables produced before the multi-objective layer carry no workspace
        data; those report 0 rather than failing, so scalar-only callers are
        unaffected.
        """
        return self.node_workspace.get(layer, {}).get(primitive, 0.0)

    def primitive_energy(self, layer: str, primitive: str) -> float:
        """Energy proxy (joules) of one primitive on one layer (0 if absent)."""
        return self.node_energy.get(layer, {}).get(primitive, 0.0)

    def primitive_accuracy(self, layer: str, primitive: str) -> float:
        """Modelled accuracy loss of one primitive on one layer (0 if absent).

        fp32 tables (and tables produced before the precision axis) carry no
        accuracy data; those report 0, which is also the correct fp32 value.
        """
        return self.node_accuracy.get(layer, {}).get(primitive, 0.0)

    def primitive_vector(self, layer: str, primitive: str) -> CostVector:
        """The full (time, workspace, energy, accuracy) vector of one node
        alternative."""
        return CostVector(
            time_ms=1e3 * self.node_costs[layer][primitive],
            peak_workspace_bytes=self.primitive_workspace(layer, primitive),
            energy_proxy_j=self.primitive_energy(layer, primitive),
            accuracy_proxy=self.primitive_accuracy(layer, primitive),
        )

    def cheapest_primitive(self, layer: str) -> Tuple[str, float]:
        """The fastest primitive for a layer, considered in isolation."""
        costs = self.node_costs[layer]
        name = min(costs, key=costs.get)
        return name, costs[name]

    def conversion_cost(self, shape: Shape, source: Layout, target: Layout) -> float:
        """Cheapest conversion cost between two layouts at a tensor shape."""
        return self.dt_costs[shape][(source.name, target.name)]

    def conversion_path(self, shape: Shape, source: Layout, target: Layout) -> DTPath:
        """Cheapest conversion chain between two layouts at a tensor shape."""
        return self.dt_paths[shape][(source.name, target.name)]

    def conversion_energy(self, shape: Shape, source: Layout, target: Layout) -> float:
        """Energy proxy (joules) of the cheapest conversion chain (0 if absent)."""
        return self.dt_energy.get(shape, {}).get((source.name, target.name), 0.0)

    def layers(self) -> List[str]:
        """Names of the convolution layers covered by these tables."""
        return list(self.node_costs.keys())

    def table_entries(self) -> int:
        """Total number of profiled numbers held (the paper notes this is tiny)."""
        nodes = sum(len(costs) for costs in self.node_costs.values())
        edges = sum(len(costs) for costs in self.dt_costs.values())
        return nodes + edges


def build_cost_tables(
    network: Network,
    library: PrimitiveLibrary,
    dt_graph: DTGraph,
    cost_model: CostModel,
    threads: int = 1,
    batch: int = 1,
    platform=None,
    dtype: str = "fp32",
) -> CostTables:
    """Profile a network against a primitive library on a cost model.

    For every convolution layer the cost of every *applicable* primitive is
    recorded; for every distinct tensor shape appearing on a data-flow edge
    the all-pairs cheapest layout conversions are recorded.  ``batch`` prices
    the whole network for minibatches of that size: node costs are produced
    from the batched scenarios and edge costs from batched conversions
    (per-image shapes, whole-batch traffic).

    ``dtype`` prices the network at that precision: scenarios carry the
    dtype, so per-precision ``supports()`` gating (FFT declines int8) and
    precision-aware pricing (lane packing, itemsize-scaled traffic,
    quantize/dequantize boundaries) both apply, and the per-node modelled
    accuracy losses are recorded alongside time/workspace/energy.

    ``platform`` applies per-platform primitive gating: variants the platform
    does not offer are never priced (``supports()`` consistent with pricing).
    It defaults to the cost model's own platform when it has one (the
    analytical model), so callers only pass it for platform-less models.
    """
    if threads < 1:
        raise ValueError("threads must be >= 1")
    if batch < 1:
        raise ValueError("batch must be >= 1")
    if platform is None:
        platform = getattr(cost_model, "platform", None)
    scenarios = {
        name: scenario.with_batch(batch).with_dtype(dtype)
        for name, scenario in network.conv_scenarios().items()
    }
    shapes = network.infer_shapes()

    # The scalar time tables are what the paper ships; the workspace and
    # energy tables extend them into cost *vectors*.  Workspace is a property
    # of the primitive alone; energy needs model support (the analytical
    # model provides it, the wall-clock profiler does not — its tables carry
    # zero energy, which the frontier treats as "objective not modelled").
    energy_fn = getattr(cost_model, "primitive_energy", None)
    transform_energy_fn = getattr(cost_model, "transform_energy", None)
    accuracy_fn = getattr(cost_model, "primitive_accuracy_loss", None)

    node_costs: Dict[str, Dict[str, float]] = {}
    node_workspace: Dict[str, Dict[str, float]] = {}
    node_energy: Dict[str, Dict[str, float]] = {}
    node_accuracy: Dict[str, Dict[str, float]] = {}
    for layer_name, scenario in scenarios.items():
        per_primitive: Dict[str, float] = {}
        per_workspace: Dict[str, float] = {}
        per_energy: Dict[str, float] = {}
        per_accuracy: Dict[str, float] = {}
        for primitive in library.applicable(scenario, platform=platform):
            per_primitive[primitive.name] = cost_model.primitive_cost(
                primitive, scenario, threads=threads
            )
            per_workspace[primitive.name] = float(
                scenario.itemsize
            ) * primitive.workspace_elements(scenario.per_image)
            per_energy[primitive.name] = (
                energy_fn(primitive, scenario, threads=threads) if energy_fn else 0.0
            )
            per_accuracy[primitive.name] = (
                accuracy_fn(primitive, scenario) if accuracy_fn else 0.0
            )
        if not per_primitive:
            raise ValueError(
                f"no primitive in the library supports layer {layer_name!r} "
                f"[{scenario.describe()}]"
            )
        node_costs[layer_name] = per_primitive
        node_workspace[layer_name] = per_workspace
        node_energy[layer_name] = per_energy
        node_accuracy[layer_name] = per_accuracy

    # Every distinct producer-output shape needs one all-pairs DT solution.
    edge_shapes = {shapes[edge.producer] for edge in network.edges()}
    dt_paths: Dict[Shape, Dict[Tuple[str, str], DTPath]] = {}
    dt_costs: Dict[Shape, Dict[Tuple[str, str], float]] = {}
    dt_energy: Dict[Shape, Dict[Tuple[str, str], float]] = {}
    for shape in edge_shapes:
        paths = dt_graph.all_pairs_shortest_paths(
            shape,
            cost_fn=lambda transform, s: cost_model.transform_cost(
                transform, s, threads=threads, batch=batch, dtype=dtype
            ),
        )
        dt_paths[shape] = paths
        dt_costs[shape] = {pair: path.cost for pair, path in paths.items()}
        energies: Dict[Tuple[str, str], float] = {}
        for pair, path in paths.items():
            if not path.reachable:
                energies[pair] = float("inf")
            elif transform_energy_fn is None or path.chain is None:
                energies[pair] = 0.0
            else:
                energies[pair] = sum(
                    (
                        transform_energy_fn(hop, shape, batch=batch)
                        for hop in path.chain.transforms
                    ),
                    0.0,
                )
        dt_energy[shape] = energies

    return CostTables(
        network_name=network.name,
        threads=threads,
        scenarios=scenarios,
        shapes=shapes,
        node_costs=node_costs,
        dt_paths=dt_paths,
        dt_costs=dt_costs,
        batch=batch,
        dtype=dtype,
        node_workspace=node_workspace,
        node_energy=node_energy,
        dt_energy=dt_energy,
        node_accuracy=node_accuracy,
    )
