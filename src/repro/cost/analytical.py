"""Analytical (simulated-platform) cost model.

The paper profiles hand-optimized C/assembly primitives on two physical
machines.  Those kernels and machines are not available here, so this module
prices every primitive on a modelled platform instead (see DESIGN.md,
"Substitutions").  The model is a calibrated roofline:

* **Compute time** — the primitive's actual arithmetic operation count (which
  differs per algorithm: Winograd performs fewer multiplications, FFT has a
  different asymptotic count, im2/kn2/direct perform the textbook count)
  divided by the throughput the variant can realistically extract from the
  platform.  Throughput depends on the variant's vectorization factor versus
  the platform's SIMD width, on how much of the work is GEMM-shaped, on the
  loop-nest locality, on how small the layer is (fixed per-call overheads),
  and on how badly the algorithm's working set overflows the cache hierarchy
  (the "cache pressure" term — the mechanism that makes low-memory 1D
  Winograd preferable on the small-cache Cortex-A57 while the large-cache
  Haswell prefers the operation-minimal 2D form, as in Figure 4).
* **Memory time** — tensor plus workspace traffic divided by the achievable
  bandwidth (cache versus DRAM, depending on footprint).
* The layer time is the roofline maximum of the two, plus fixed per-call
  overhead, scaled for multithreaded execution by the family's parallel
  efficiency (compute) and the platform's bandwidth scaling (memory).

Layout transformations are priced as pure data movement at the platform's
transform efficiency — strided gather/scatter loops achieve a small fraction
of streaming bandwidth, which is what makes careless layout churn so
expensive (section 5.8 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.cost.platform import Platform
from repro.graph.scenario import DTYPE_ITEMSIZE, ConvScenario
from repro.layouts.transforms import LayoutTransform
from repro.multiobj.vector import CostVector
from repro.primitives.base import ConvPrimitive, PrimitiveFamily

#: Modelled per-layer top-1 accuracy loss (fraction) of running one
#: convolution below fp32.  A proxy, not a measurement: the values encode the
#: well-established ordering — fp16 is near-lossless, int8 post-training
#: quantization costs a little per layer, and int8 *Winograd* costs several
#: times more because the fractional tile transforms amplify quantization
#: noise before the element-wise product.  Losses are additive across a
#: network's layers (like the time objective), which is how the frontier gets
#: a genuine accuracy-vs-speed axis.
DTYPE_ACCURACY_LOSS = {"fp32": 0.0, "fp16": 2e-5, "int8": 1e-3}

#: Multiplier on the int8 loss for the Winograd family (transform noise).
WINOGRAD_INT8_PENALTY = 5.0


@dataclass(frozen=True)
class ModelParameters:
    """Calibration constants of the analytical model.

    The defaults were calibrated once against the qualitative structure of the
    paper's figures (see EXPERIMENTS.md); they are exposed so the ablation
    benchmarks can vary them.
    """

    #: Fraction of peak achieved by well-blocked GEMM-shaped inner kernels.
    #: Calibrated low: the paper's measured throughputs (Tables 2/3 versus the
    #: networks' operation counts) correspond to a modest fraction of AVX2/NEON
    #: peak even for the best primitives.
    gemm_efficiency: float = 0.30
    #: Baseline fraction of peak achieved by non-GEMM scalar/loop code.
    loop_efficiency_base: float = 0.10
    #: Additional fraction of peak per unit of loop-nest locality score.
    loop_efficiency_locality: float = 0.50
    #: Throughput penalty applied per unit of (working set / last-level cache).
    cache_pressure: float = 0.30
    #: Throughput multiplier when a variant's vector factor exceeds the
    #: platform's native SIMD width (the wide variant must be emulated).
    vector_emulation_penalty: float = 0.35
    #: Fraction of the extra SIMD lanes that plain (direct/sum2d) loop nests
    #: actually exploit: compilers auto-vectorize the six-deep loop nest
    #: poorly, which is why the paper finds direct loops "more often very
    #: slow" despite nominally vectorized variants existing.
    direct_vector_efficiency: float = 0.04
    #: FLOP-equivalent size below which a layer is "small" and per-call
    #: overheads dominate; used to damp efficiency on tiny layers.
    small_work_flops: float = 4.0e6
    #: Penalty per unit of inner-working-set overflow of the per-core cache
    #: (see :meth:`ConvPrimitive.inner_working_set_elements`).
    inner_cache_pressure: float = 1.0
    #: Fraction of streaming bandwidth achieved by workspace (scatter/gather)
    #: traffic relative to the platform's cache bandwidth.
    workspace_traffic_weight: float = 2.0
    #: Fraction of the machine's SIMT width a GEMM/transform-shaped variant
    #: actually occupies on a ``simt`` platform (warp scheduling and tail
    #: effects keep it below 1).
    simt_lane_efficiency: float = 0.80
    #: Multiplier on the cache-pressure penalty on ``simt`` platforms:
    #: oversubscription hides most capacity-miss latency, so overflowing the
    #: (small) last-level cache hurts far less than on a CPU.
    simt_pressure_relief: float = 0.25
    #: Fraction of an ``avx512`` platform's full vector width that recompiled
    #: 256-bit GEMM-shaped kernels achieve (the compiler re-vectorizes the
    #: inner loops; tails and port pressure eat some of the doubling).
    wide_recompile_efficiency: float = 0.85
    #: Energy proxy: picojoules per arithmetic operation.  Together with the
    #: per-byte terms below this prices an *energy ordering* of primitives
    #: that deliberately differs from the time ordering — FFT spends few
    #: operations on much traffic, the direct loops spend many operations on
    #: little traffic — so the multi-objective frontier is genuinely
    #: three-dimensional rather than time re-scaled.
    energy_per_flop_pj: float = 0.7
    #: Picojoules per byte served from the per-core cache tier.
    energy_per_cache_byte_pj: float = 0.6
    #: Picojoules per byte served from the last-level cache tier.
    energy_per_llc_byte_pj: float = 2.0
    #: Picojoules per byte served from DRAM (an order of magnitude above
    #: on-chip accesses — the classic "data movement dominates" asymmetry).
    energy_per_dram_byte_pj: float = 15.0


class AnalyticalCostModel:
    """Price primitives and layout transformations on a modelled platform."""

    def __init__(self, platform: Platform, parameters: ModelParameters | None = None) -> None:
        self.platform = platform
        self.parameters = parameters or ModelParameters()

    # -- primitives -----------------------------------------------------------------

    def primitive_cost(
        self, primitive: ConvPrimitive, scenario: ConvScenario, threads: int = 1
    ) -> float:
        """Modelled execution time (seconds) of one primitive on one scenario.

        Batched scenarios are priced with per-image working sets (a minibatch
        streams its images through the same blocked loops and scratch
        buffers) but whole-batch totals for arithmetic, traffic and footprint.
        Fixed per-call setup — dispatch, packing, kernel transforms — is
        charged once per invocation, so a batch amortizes it: this is what
        lets transform/GEMM-heavy families overtake the direct loops as the
        batch grows.
        """
        if threads < 1:
            raise ValueError("threads must be >= 1")
        platform = self.platform
        params = self.parameters
        traits = primitive.traits()
        batch = scenario.batch
        per_image = scenario.per_image

        ops = primitive.arithmetic_ops(scenario)
        # Bytes per element at the scenario's precision: fp16/int8 halve or
        # quarter every byte count below, which is the memory-side half of
        # the quantization win (the lane-packing half is priced at `peak`).
        itemsize = float(scenario.itemsize)
        # Per-image scratch footprint (buffers are reused across the batch).
        workspace_bytes = itemsize * primitive.workspace_elements(per_image)
        # Whole-batch tensor bytes; the kernel is shared across the batch.
        tensor_bytes = itemsize * (
            scenario.input_elements() + scenario.output_elements() + scenario.kernel_elements()
        )
        # Per-image tensor bytes: what the inner loops keep in flight at once.
        tensor_bytes_image = itemsize * (
            per_image.input_elements()
            + per_image.output_elements()
            + per_image.kernel_elements()
        )

        # ---- effective SIMD throughput --------------------------------------
        simt = platform.has_feature("simt")
        plain_loops = primitive.family in (PrimitiveFamily.DIRECT, PrimitiveFamily.SUM2D)
        if simt:
            # SIMT machines map any variant across the full machine width at
            # compile time, so the CPU-oriented per-variant vector factor is
            # irrelevant — but plain loop nests still occupy the lanes poorly
            # (divergent, uncoalesced inner loops), which is what pushes the
            # selector toward the GEMM/transform families even at batch 1.
            if plain_loops:
                lanes = 1.0 + (platform.vector_width - 1.0) * params.direct_vector_efficiency
            else:
                lanes = platform.vector_width * params.simt_lane_efficiency
        else:
            lanes = min(primitive.vector_factor, platform.vector_width)
            if plain_loops:
                # Plain loop nests only extract a fraction of the nominal SIMD width.
                lanes = 1.0 + (lanes - 1.0) * params.direct_vector_efficiency
            elif (
                platform.has_feature("avx512")
                and platform.vector_width > 8
                and primitive.vector_factor >= 8
            ):
                # 256-bit GEMM-shaped kernels are recompiled to the full
                # 512-bit width on AVX-512 parts (the paper's VF is a proxy
                # for "written for wide SIMD", not a hard register width).
                lanes = platform.vector_width * params.wide_recompile_efficiency
        # Wide-vector execution derates the sustained clock on
        # frequency-throttling parts (AVX-512 license-based downclocking) —
        # which also derates the big-tile Winograd variants' advantage there.
        frequency = platform.frequency_ghz
        if lanes > 8.0 and platform.wide_vector_derating != 1.0:
            frequency *= platform.wide_vector_derating
        peak = frequency * platform.fma_per_cycle * 2.0 * lanes * 1e9
        if not simt and primitive.vector_factor > platform.vector_width:
            peak *= params.vector_emulation_penalty
        # Precision lane packing: the same vector registers hold 2x fp16 or
        # 4x int8 elements, but only where the ISA has the arithmetic to
        # exploit it (``fp16-fast`` packed-half math; ``vnni``/``dotprod``
        # 8-bit dot products).  Plain loop nests gain nothing — the packed
        # instructions are GEMM-kernel tools — so reduced precision pushes
        # the selector further toward the GEMM/transform families.  Without
        # the feature the narrow operands compute at the fp32 rate and only
        # the memory traffic shrinks.
        if not plain_loops:
            peak *= self._precision_rate(scenario.dtype)

        # ---- utilization ------------------------------------------------------
        utilization = self._utilization(primitive, scenario)

        # Small layers cannot amortize call / packing overheads.
        work_scale = ops / (ops + params.small_work_flops)
        utilization *= 0.25 + 0.75 * work_scale

        # Cache pressure: working sets that overflow the last-level cache force
        # the inner kernels to run at memory speed part of the time.  The
        # pressure is per image — a batch streams image working sets through
        # the cache one after another, it does not hold them all at once.
        llc = platform.last_level_cache_bytes()
        pressure = params.cache_pressure * (workspace_bytes + 0.5 * tensor_bytes_image) / llc
        if simt:
            # Latency hiding by oversubscription: capacity misses cost far
            # less than on a CPU, where the inner loops stall on them.
            pressure *= params.simt_pressure_relief
        utilization /= 1.0 + pressure

        # Inner working-set pressure: the per-core cache must hold whatever the
        # innermost stage keeps live (e.g. 2D Winograd's per-tile transformed
        # slabs); overflowing it stalls the inner loops on every pass.  SIMT
        # machines have no such private capacity cliff — tiles are staged
        # through shared memory and misses overlap with other warps.
        inner_bytes = itemsize * primitive.inner_working_set_elements(per_image)
        per_core = platform.per_core_cache_bytes()
        if inner_bytes > per_core and not simt:
            utilization /= 1.0 + params.inner_cache_pressure * (inner_bytes / per_core - 1.0)

        compute_seconds = ops / (peak * max(utilization, 1e-3))

        # ---- memory time -------------------------------------------------------
        # Tensor traffic covers the whole batch already; the per-image
        # workspace is written and read once per image.  The bandwidth tier is
        # chosen from the *per-image* footprint, consistent with the streaming
        # assumption above: a batch passes one image's working set through the
        # cache at a time, so growing the batch scales the traffic linearly
        # without demoting the whole layer to DRAM bandwidth.
        traffic_bytes = tensor_bytes + params.workspace_traffic_weight * workspace_bytes * batch
        traffic_bytes += self._conversion_bytes(scenario)
        footprint = tensor_bytes_image + workspace_bytes
        if footprint <= platform.per_core_cache_bytes():
            bandwidth = platform.cache_bandwidth_gbps
        elif footprint <= llc:
            bandwidth = 0.6 * platform.cache_bandwidth_gbps
        else:
            bandwidth = platform.dram_bandwidth_gbps
        memory_seconds = traffic_bytes / (bandwidth * 1e9)

        # ---- threading ----------------------------------------------------------
        threads = min(threads, platform.cores)
        if threads > 1:
            speedup = 1.0 + (threads - 1) * traits.parallel_efficiency
            compute_seconds /= speedup
            memory_seconds /= platform.mt_bandwidth_scaling

        # ---- fixed overhead -------------------------------------------------------
        # Transform- and GEMM-based families dispatch once per channel group
        # (patch-matrix construction, Winograd/FFT transforms are all set up
        # per group), so grouped and depthwise scenarios multiply their
        # per-call overhead; the direct loop nests fold grouping into the
        # channel loop and are charged once.
        scalar_peak = platform.peak_gflops_per_core(1) * 1e9
        if plain_loops:
            call_count = 1
        else:
            call_count = scenario.groups
        overhead_seconds = traits.per_call_overhead_ops * call_count / scalar_peak
        # Device-shaped platforms pay a fixed driver/queue latency per kernel
        # launch (once per dispatch, regardless of batch — the batch rides in
        # the same launch), which is what makes small layers launch-bound.
        overhead_seconds += platform.launch_overhead_s * call_count

        return max(compute_seconds, memory_seconds) + overhead_seconds

    def _precision_rate(self, dtype: str) -> float:
        """Arithmetic-rate multiplier the platform's ISA grants a precision."""
        platform = self.platform
        if dtype == "fp16" and platform.has_feature("fp16-fast"):
            return 2.0
        if dtype == "int8" and (
            platform.has_feature("vnni") or platform.has_feature("dotprod")
        ):
            return 4.0
        return 1.0

    def _conversion_bytes(self, scenario: ConvScenario) -> float:
        """Byte traffic of the quantize/dequantize passes at a layer boundary.

        The graph's interchange stays fp32, so a quantized layer reads its
        fp32 activations once and writes the narrow form on entry, and writes
        fp32 back on exit (weights are pre-quantized at deployment time, like
        the pre-transformed Winograd kernels).  These are the dt-graph's
        conversion edges extended to the precision axis: sequential streaming
        passes, so they ride the same bandwidth tier as the tensor traffic
        rather than the strided-transform efficiency.
        """
        if not scenario.is_quantized:
            return 0.0
        fp32_bytes = float(DTYPE_ITEMSIZE["fp32"])
        boundary_elements = scenario.input_elements() + scenario.output_elements()
        return (fp32_bytes + float(scenario.itemsize)) * boundary_elements

    def primitive_accuracy_loss(
        self, primitive: ConvPrimitive, scenario: ConvScenario
    ) -> float:
        """Modelled accuracy loss (additive top-1 fraction) of one layer.

        Zero at fp32.  The Winograd family pays :data:`WINOGRAD_INT8_PENALTY`
        times the base int8 loss: its fractional tile transforms run over the
        quantized operands, amplifying the rounding noise (the alternative —
        declining int8 outright — would hide a real, sometimes-worth-it
        trade-off from the frontier).
        """
        loss = DTYPE_ACCURACY_LOSS[scenario.dtype]
        if scenario.dtype == "int8" and primitive.family is PrimitiveFamily.WINOGRAD:
            loss *= WINOGRAD_INT8_PENALTY
        return loss

    def _utilization(self, primitive: ConvPrimitive, scenario: ConvScenario) -> float:
        """Fraction of peak the variant achieves, before size/cache effects."""
        params = self.parameters
        traits = primitive.traits()
        locality = traits.locality
        family = primitive.family

        # Layout/scenario interactions for the direct-loop family: channel-minor
        # layouts stream well when there are few channels, blocked channel-major
        # layouts need enough channels to fill their blocks.  This is what makes
        # the per-layer-greedy "direct" strategy flip between layouts across a
        # network and pay for it in transformations (section 5.8).
        if family is PrimitiveFamily.DIRECT or family is PrimitiveFamily.SUM2D:
            order = primitive.input_layout.order
            channel_minor = order[-1] == "C"
            if channel_minor:
                locality += 0.15 if scenario.c <= 128 else -0.10
            if primitive.input_layout.is_blocked:
                block = primitive.input_layout.channel_block or 1
                locality += 0.10 if scenario.c >= 4 * block else -0.10
            locality = min(max(locality, 0.05), 0.95)

        gemm_util = params.gemm_efficiency
        # GEMM shapes are per channel group: a grouped (and especially a
        # depthwise) convolution runs one GEMM per group over C/groups input
        # channels, so the inner dimension the efficiency depends on shrinks
        # accordingly.
        group_c = scenario.c // scenario.groups
        # kn2 performs K*K skinny GEMMs whose inner dimension is the channel
        # count; few channels means poor GEMM efficiency (Table 1 "bad case").
        if family is PrimitiveFamily.KN2:
            gemm_util *= group_c / (group_c + 48.0)
        # im2's single GEMM has inner dimension (C/groups)*K*K; only
        # degenerate layers (tiny C and K) hurt it.
        if family is PrimitiveFamily.IM2:
            inner = group_c * scenario.k * scenario.k
            gemm_util *= inner / (inner + 12.0)

        loop_util = params.loop_efficiency_base + params.loop_efficiency_locality * locality
        return traits.gemm_fraction * gemm_util + (1.0 - traits.gemm_fraction) * loop_util

    # -- multi-objective costs --------------------------------------------------------

    def primitive_workspace_bytes(
        self, primitive: ConvPrimitive, scenario: ConvScenario
    ) -> float:
        """Peak per-invocation scratch footprint of one primitive, in bytes.

        Per image, matching the streaming assumption of :meth:`primitive_cost`
        (a batch reuses one image's buffers), at the scenario's precision —
        int8 scratch is a quarter of the fp32 footprint, one of quantized
        inference's classic wins on memory-constrained parts.
        """
        return float(scenario.itemsize) * primitive.workspace_elements(scenario.per_image)

    def primitive_energy(
        self, primitive: ConvPrimitive, scenario: ConvScenario, threads: int = 1
    ) -> float:
        """Energy proxy (joules) of one primitive invocation.

        Operations times a per-flop energy plus memory traffic times a
        per-byte energy whose tier follows the same footprint classification
        as the bandwidth model.  Threads do not change the energy: the same
        work is done, merely faster.
        """
        params = self.parameters
        platform = self.platform
        per_image = scenario.per_image
        itemsize = float(scenario.itemsize)
        ops = primitive.arithmetic_ops(scenario)
        workspace_bytes = itemsize * primitive.workspace_elements(per_image)
        tensor_bytes = itemsize * (
            scenario.input_elements() + scenario.output_elements() + scenario.kernel_elements()
        )
        tensor_bytes_image = itemsize * (
            per_image.input_elements()
            + per_image.output_elements()
            + per_image.kernel_elements()
        )
        traffic_bytes = (
            tensor_bytes + params.workspace_traffic_weight * workspace_bytes * scenario.batch
        )
        traffic_bytes += self._conversion_bytes(scenario)
        footprint = tensor_bytes_image + workspace_bytes
        if footprint <= platform.per_core_cache_bytes():
            per_byte_pj = params.energy_per_cache_byte_pj
        elif footprint <= platform.last_level_cache_bytes():
            per_byte_pj = params.energy_per_llc_byte_pj
        else:
            per_byte_pj = params.energy_per_dram_byte_pj
        return 1e-12 * (ops * params.energy_per_flop_pj + traffic_bytes * per_byte_pj)

    def primitive_cost_vector(
        self, primitive: ConvPrimitive, scenario: ConvScenario, threads: int = 1
    ) -> CostVector:
        """The (time, workspace, energy, accuracy) vector of one primitive."""
        return CostVector(
            time_ms=1e3 * self.primitive_cost(primitive, scenario, threads=threads),
            peak_workspace_bytes=self.primitive_workspace_bytes(primitive, scenario),
            energy_proxy_j=self.primitive_energy(primitive, scenario, threads=threads),
            accuracy_proxy=self.primitive_accuracy_loss(primitive, scenario),
        )

    def transform_energy(
        self,
        transform: LayoutTransform,
        shape: Tuple[int, int, int],
        batch: int = 1,
        dtype: str = "fp32",
    ) -> float:
        """Energy proxy (joules) of one layout transformation.

        Gather/scatter loops stream through memory, so every moved byte is
        charged at the DRAM rate; layout conversions contribute no scratch
        workspace beyond the destination tensor (already counted as traffic).
        Narrow precisions move proportionally fewer bytes.
        """
        bytes_moved = float(DTYPE_ITEMSIZE[dtype]) * batch * transform.element_traffic(*shape)
        return 1e-12 * bytes_moved * self.parameters.energy_per_dram_byte_pj

    # -- layout transformations -------------------------------------------------------

    def transform_cost(
        self,
        transform: LayoutTransform,
        shape: Tuple[int, int, int],
        threads: int = 1,
        batch: int = 1,
        dtype: str = "fp32",
    ) -> float:
        """Modelled execution time (seconds) of one direct layout transformation.

        ``shape`` is the per-image ``(C, H, W)`` shape; a batched tensor moves
        ``batch`` times the data in a single call, so the gather/scatter
        traffic scales with the batch while the dispatch cost is paid once.
        ``dtype`` scales the moved bytes: a conversion edge between two int8
        layouts gathers quarter-width elements, so quantized plans pay less
        for layout churn — a second way precision shifts the selections.
        """
        if batch < 1:
            raise ValueError("batch must be >= 1")
        platform = self.platform
        bytes_moved = float(DTYPE_ITEMSIZE[dtype]) * batch * transform.element_traffic(*shape)
        bandwidth = platform.dram_bandwidth_gbps * platform.transform_efficiency * 1e9
        seconds = bytes_moved / bandwidth
        if threads > 1:
            # Gather/scatter loops are bandwidth bound; extra cores help only a little.
            seconds /= platform.mt_bandwidth_scaling
        # Fixed dispatch cost per transformation call; on device-shaped
        # platforms every conversion is its own kernel launch, so careless
        # layout churn costs launches even when the data movement is cheap.
        return seconds + max(2e-6, platform.launch_overhead_s)
