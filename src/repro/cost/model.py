"""The cost-model interface shared by the analytical model and the profiler.

The selection machinery (:mod:`repro.core`) is agnostic about where costs come
from: the paper measures wall-clock times of hand-tuned kernels, this
reproduction can either time its numpy primitives (:class:`~repro.cost.profiler.WallClockProfiler`)
or price them on a modelled platform
(:class:`~repro.cost.analytical.AnalyticalCostModel`).  Both expose the same
two queries: the cost of running one primitive on one convolutional scenario,
and the cost of running one direct layout-transformation routine on a tensor
of a given shape.  Costs are in seconds.
"""

from __future__ import annotations

from typing import Protocol, Tuple

from repro.graph.scenario import ConvScenario
from repro.layouts.transforms import LayoutTransform
from repro.primitives.base import ConvPrimitive


class CostModel(Protocol):
    """Anything that can price primitives and layout transformations."""

    def primitive_cost(
        self, primitive: ConvPrimitive, scenario: ConvScenario, threads: int = 1
    ) -> float:
        """Execution time, in seconds, of ``primitive`` on ``scenario``."""
        ...

    def transform_cost(
        self,
        transform: LayoutTransform,
        shape: Tuple[int, int, int],
        threads: int = 1,
        batch: int = 1,
        dtype: str = "fp32",
    ) -> float:
        """Execution time, in seconds, of one direct layout transformation.

        ``shape`` is the per-image ``(C, H, W)`` tensor shape; ``batch`` is
        the number of images converted in one call (the data moved scales
        with it, per-call dispatch does not).  ``dtype`` is the element
        precision of the converted tensor — conversions are pure data
        movement, so narrower elements move proportionally fewer bytes.
        """
        ...
