"""Wall-clock profiler: measure primitives on the host machine.

Section 3.1 of the paper: "to estimate the cost of a specific assignment of a
primitive to a DNN layer, we profile the execution time of the primitive
operating on tensors of the size used in the layer ...  statically-measured
execution times on random input of the appropriate size give a very good
estimate of the actual execution time."

:class:`WallClockProfiler` does exactly that for the numpy-backed primitives
in this reproduction: it executes each primitive (and each direct layout
transformation) on random tensors of the right shape and records the best of
a few repetitions.  It implements the same interface as the analytical model,
so it can drive the selector directly — used by the examples and integration
tests on host-sized scenarios.
"""

from __future__ import annotations

import time
from typing import Dict, Tuple

import numpy as np

from repro.graph.scenario import ConvScenario
from repro.layouts.tensor import LayoutTensor
from repro.layouts.transforms import LayoutTransform
from repro.primitives.base import ConvPrimitive


class WallClockProfiler:
    """Measure primitive and transformation execution times on the host.

    Parameters
    ----------
    repetitions:
        Number of timed runs per measurement; the minimum is kept, which is
        the standard way to suppress scheduling noise for short kernels.
    warmup:
        Untimed runs executed first (to populate caches and JIT-like lazy
        initialization inside numpy).
    seed:
        Seed for the random input generator, so profiles are reproducible.
    """

    def __init__(self, repetitions: int = 3, warmup: int = 1, seed: int = 0) -> None:
        if repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        if warmup < 0:
            raise ValueError("warmup must be >= 0")
        self.repetitions = repetitions
        self.warmup = warmup
        self._rng = np.random.default_rng(seed)
        self._primitive_cache: Dict[Tuple[str, ConvScenario, int], float] = {}
        self._transform_cache: Dict[Tuple[str, Tuple[int, int, int], int, int], float] = {}

    # -- measurements ------------------------------------------------------------

    def primitive_cost(
        self, primitive: ConvPrimitive, scenario: ConvScenario, threads: int = 1
    ) -> float:
        """Measured execution time (seconds) of ``primitive`` on ``scenario``.

        ``threads`` is accepted for interface compatibility; the numpy
        primitives run with whatever threading the host BLAS provides, so the
        parameter does not change the measurement.
        """
        key = (primitive.name, scenario, threads)
        if key in self._primitive_cache:
            return self._primitive_cache[key]
        kernel = self._rng.standard_normal(scenario.kernel_shape).astype(np.float32)
        if scenario.batch > 1:
            x = self._rng.standard_normal(scenario.batched_input_shape).astype(np.float32)
            tensor = LayoutTensor.from_nchw(x, primitive.input_layout)
        else:
            x = self._rng.standard_normal(scenario.input_shape).astype(np.float32)
            tensor = LayoutTensor.from_chw(x, primitive.input_layout)
        for _ in range(self.warmup):
            primitive.execute(tensor, kernel, scenario)
        best = float("inf")
        for _ in range(self.repetitions):
            start = time.perf_counter()
            primitive.execute(tensor, kernel, scenario)
            best = min(best, time.perf_counter() - start)
        self._primitive_cache[key] = best
        return best

    def transform_cost(
        self,
        transform: LayoutTransform,
        shape: Tuple[int, int, int],
        threads: int = 1,
        batch: int = 1,
        dtype: str = "fp32",
    ) -> float:
        """Measured execution time (seconds) of one direct layout transformation.

        ``shape`` is the per-image shape; with ``batch > 1`` the conversion
        is measured on a batched tensor (one call moving the whole batch).
        ``dtype`` is accepted for interface compatibility: the numpy
        transforms are measured on fp32 tensors regardless, so the profiled
        conversion time is a conservative (upper-bound) estimate for the
        narrow precisions.
        """
        key = (transform.name, shape, threads, batch)
        if key in self._transform_cache:
            return self._transform_cache[key]
        if batch > 1:
            x = self._rng.standard_normal((batch,) + shape).astype(np.float32)
            tensor = LayoutTensor.from_nchw(x, transform.source)
        else:
            x = self._rng.standard_normal(shape).astype(np.float32)
            tensor = LayoutTensor.from_chw(x, transform.source)
        for _ in range(self.warmup):
            transform.apply(tensor)
        best = float("inf")
        for _ in range(self.repetitions):
            start = time.perf_counter()
            transform.apply(tensor)
            best = min(best, time.perf_counter() - start)
        self._transform_cache[key] = best
        return best
