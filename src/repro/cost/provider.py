"""Pluggable cost providers: where a session's cost tables come from.

The paper's workflow is "profile once, select many": the cost tables for one
(network, platform, thread-count) triple are produced ahead of time and then
drive any number of selection queries.  A :class:`CostProvider` abstracts the
*producing* side of that workflow behind one call — given a
:class:`CostQuery` describing the triple (plus the components needed to build
tables), return :class:`~repro.cost.tables.CostTables`.

Three providers ship with the reproduction:

* :class:`AnalyticalCostProvider` — prices primitives on a modelled platform
  (:class:`~repro.cost.analytical.AnalyticalCostModel`); this regenerates the
  paper's figures and is the default of :class:`repro.api.Session`;
* :class:`ProfiledCostProvider` — measures the numpy-backed primitives on the
  host machine (:class:`~repro.cost.profiler.WallClockProfiler`), the paper's
  original layerwise-profiling methodology;
* :class:`~repro.cost.store.CostStore` — a disk-backed decorator around any
  other provider that persists produced tables as JSON keyed by
  ``(network fingerprint, platform, threads, provider version)``, so warm
  selections survive process restarts.

:class:`CostModelProvider` adapts an arbitrary
:class:`~repro.cost.model.CostModel` (used by the ablation experiments to
inject scaled cost models).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Optional, Protocol, Tuple, runtime_checkable

from repro.cost.analytical import AnalyticalCostModel
from repro.cost.model import CostModel
from repro.cost.platform import Platform
from repro.cost.profiler import WallClockProfiler
from repro.cost.tables import CostTables, build_cost_tables
from repro.graph.network import Network
from repro.layouts.dt_graph import DTGraph
from repro.primitives.registry import PrimitiveLibrary


@dataclass(frozen=True, eq=False)
class CostQuery:
    """One request for cost tables.

    ``(fingerprint, platform_name, threads, batch, dtype)`` identifies the
    tuple the tables describe; the remaining fields carry the live components
    a provider needs to build (or rebuild) them.
    """

    network: Network
    fingerprint: str
    platform: Optional[Platform]
    platform_name: str
    threads: int
    library: PrimitiveLibrary
    dt_graph: DTGraph
    batch: int = 1
    dtype: str = "fp32"

    @property
    def context_key(self) -> Tuple[str, str, int, int, str]:
        """The (fingerprint, platform, threads, batch, dtype) tuple of this query."""
        return (
            self.fingerprint,
            self.platform_name,
            self.threads,
            self.batch,
            self.dtype,
        )

    def with_threads(self, threads: int) -> "CostQuery":
        """The same query at a different thread count."""
        return dataclasses.replace(self, threads=threads)

    def with_batch(self, batch: int) -> "CostQuery":
        """The same query at a different minibatch size."""
        return dataclasses.replace(self, batch=batch)

    def with_dtype(self, dtype: str) -> "CostQuery":
        """The same query at a different numeric precision."""
        return dataclasses.replace(self, dtype=dtype)


@runtime_checkable
class CostProvider(Protocol):
    """Anything that can produce cost tables for a query.

    Attributes
    ----------
    name:
        Short identifier used in reports and cache keys.
    version:
        Version tag of the provider's cost data.  A persistent
        :class:`~repro.cost.store.CostStore` includes it in the on-disk key,
        so bumping the version invalidates previously stored tables.
    """

    name: str
    version: str

    def tables(self, query: CostQuery) -> CostTables:
        """Produce the cost tables for one (network, platform, threads) query."""
        ...

    def cost_model(self, platform: Optional[Platform]) -> CostModel:
        """The underlying cost model for a platform (for ad-hoc re-pricing)."""
        ...


class AnalyticalCostProvider:
    """Price primitives on a modelled platform (the figure-generating default)."""

    name = "analytical"
    #: Bump when the analytical model's pricing changes incompatibly.
    version = "1"

    def __init__(self) -> None:
        self._models: Dict[str, AnalyticalCostModel] = {}

    def cost_model(self, platform: Optional[Platform]) -> CostModel:
        if platform is None:
            raise ValueError("the analytical cost provider requires a platform")
        if platform.name not in self._models:
            self._models[platform.name] = AnalyticalCostModel(platform)
        return self._models[platform.name]

    def tables(self, query: CostQuery) -> CostTables:
        return build_cost_tables(
            query.network,
            query.library,
            query.dt_graph,
            self.cost_model(query.platform),
            threads=query.threads,
            batch=query.batch,
            platform=query.platform,
            dtype=query.dtype,
        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"AnalyticalCostProvider(version={self.version!r})"


class ProfiledCostProvider:
    """Measure the numpy-backed primitives on the host machine.

    This is the paper's original methodology end to end: tables come from
    wall-clock timings of each primitive on tensors of each layer's size.
    The ``platform`` of a query is ignored — measurements describe the host.
    """

    name = "profiled"
    version = "1"

    def __init__(
        self,
        profiler: Optional[WallClockProfiler] = None,
        repetitions: int = 3,
        warmup: int = 1,
        seed: int = 0,
    ) -> None:
        self.profiler = (
            profiler
            if profiler is not None
            else WallClockProfiler(repetitions=repetitions, warmup=warmup, seed=seed)
        )

    def cost_model(self, platform: Optional[Platform]) -> CostModel:
        return self.profiler

    def tables(self, query: CostQuery) -> CostTables:
        # The profiler measures the host, which can run every variant, so no
        # modelled-platform gating is applied (``platform`` stays ``None``).
        return build_cost_tables(
            query.network,
            query.library,
            query.dt_graph,
            self.profiler,
            threads=query.threads,
            batch=query.batch,
            dtype=query.dtype,
        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"ProfiledCostProvider(profiler={self.profiler!r})"


class CostModelProvider:
    """Adapt an arbitrary :class:`~repro.cost.model.CostModel` as a provider.

    Used by the ablation harnesses to drive a session with modified cost
    models (e.g. scaled layout-transformation costs).
    """

    def __init__(
        self, cost_model: CostModel, name: Optional[str] = None, version: str = "0"
    ) -> None:
        self._cost_model = cost_model
        self.name = name if name is not None else type(cost_model).__name__
        self.version = version

    def cost_model(self, platform: Optional[Platform]) -> CostModel:
        return self._cost_model

    def tables(self, query: CostQuery) -> CostTables:
        return build_cost_tables(
            query.network,
            query.library,
            query.dt_graph,
            self._cost_model,
            threads=query.threads,
            batch=query.batch,
            platform=query.platform,
            dtype=query.dtype,
        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"CostModelProvider(name={self.name!r}, version={self.version!r})"
