"""Static verification of serialized plans, tables and frontier documents.

The paper frames primitive selection as a formal optimization (PBQP over
per-layer costs plus layout-transition edges), which makes a plan's legality
and its claimed cost vector *statically checkable facts*: every decision's
primitive must pass ``supports()`` for its (scenario, platform, dtype), every
conversion chain must walk real DT-graph edges, every join must operate in
exactly one layout, and the serialized :class:`~repro.multiobj.vector.
CostVector` must equal what the document's own decisions add up to.  This
module proves those facts without executing anything — hand-edited plans,
stale store entries, documents served from the service's disk tier and the
output of brand-new strategies are all checked by the same passes.

Each check is an :func:`~repro.analysis.passes.register_pass`-registered
pass producing findings with stable ``RV1xx`` rule codes:

==========  ========  =====================================================
rule        severity  meaning
==========  ========  =====================================================
``RV100``   error     unknown/mismatched document format token
``RV101``   error     platform is not in the registry (warning on store
                      entries, which legally outlive registrations)
``RV102``   error     dtype is not a registered precision
``RV103``   error     malformed scalar field (threads/batch/lists)
``RV104``   warning   network not in the zoo — structural checks skipped
``RV110``   error     unknown primitive / convolution without a primitive
``RV111``   error     primitive fails ``supports()`` for its scenario
                      (e.g. FFT carrying int8)
``RV112``   error     decision layouts contradict the primitive's layouts
``RV113``   error     layer/edge set disagrees with the network graph
``RV120``   error     a join consumes more than one layout
``RV121``   error     conversion hop is not a DT-graph edge / unknown layout
``RV122``   error     chain endpoints contradict the edge or its decisions
``RV130``   error     recomputed cost-vector component differs (conversion
                      chains count once per (producer, target layout), the
                      executor's dedup — double-priced legacy totals fail)
``RV131``   error     recomputed ``total_ms`` differs (same dedup formula)
``RV140``   warning   fan-out double pricing: a shared conversion chain the
                      executor dedups is priced on more than one edge —
                      0.0 on every canonical plan since the fan-out-aware
                      encoding; kept as the regression tripwire
``RV150``   error     store-entry key contradicts its embedded tables
``RV151``   error     table scenario contradicts the table's dtype/batch
``RV152``   warning   store-entry platform_version is stale
``RV153``   error     envelope fields contradict the embedded document
``RV190``   error     an analysis pass crashed (verifier bug — report it)
==========  ========  =====================================================

Entry points: :func:`verify_document` (any raw JSON document),
:func:`verify_file`, :func:`verify_plan` (an in-memory
:class:`~repro.core.plan.NetworkPlan`).  Hooks that refuse illegal inputs
raise :class:`PlanVerificationError` carrying the full report.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.analysis.passes import Finding, Report, passes_for, register_pass
from repro.api import RESULT_FORMAT
from repro.core.plan import NetworkPlan
from repro.cost.platform import PLATFORMS, Platform, platform_version
from repro.cost.serialize import (
    COST_TABLE_FORMAT,
    LEGACY_PLAN_FORMATS,
    PLAN_FORMAT,
    PROVIDER_PLATFORM_LABELS,
    plan_to_dict,
)
from repro.cost.store import STORE_ENTRY_FORMAT
from repro.graph.network import Network
from repro.graph.scenario import DTYPES, ConvScenario
from repro.layouts.dt_graph import DTGraph
from repro.layouts.layout import STANDARD_LAYOUTS, get_layout
from repro.layouts.transforms import default_transform_library
from repro.models import MODEL_BUILDERS, build_model
from repro.multiobj.frontier import FRONTIER_FORMAT
from repro.multiobj.vector import OBJECTIVES
from repro.primitives.registry import PrimitiveLibrary, default_primitive_library
from repro.service.app import SERVICE_FORMAT

#: Document format token -> subject kind handled by the verifier.
KNOWN_FORMATS: Dict[str, str] = {
    PLAN_FORMAT: "plan",
    COST_TABLE_FORMAT: "tables",
    FRONTIER_FORMAT: "frontier",
    STORE_ENTRY_FORMAT: "store-entry",
    RESULT_FORMAT: "result",
    SERVICE_FORMAT: "service-plan",
}

#: Tolerance of the cost recomputation: plans serialize the exact floats the
#: accumulation produced (and JSON round-trips Python floats exactly), so
#: anything beyond rounding noise is a genuine mispricing.
_REL_TOL = 1e-9
_ABS_TOL = 1e-12


def _close(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=_REL_TOL, abs_tol=_ABS_TOL)


def _is_count(value: object) -> bool:
    return isinstance(value, int) and not isinstance(value, bool) and value >= 1


class PlanVerificationError(ValueError):
    """An illegal plan/tables document was refused by a verify hook."""

    def __init__(self, report: Report) -> None:
        self.report = report
        super().__init__(report.summary())


def detect_kind(document: dict) -> Optional[str]:
    """The subject kind of a raw document, or ``None`` for foreign formats."""
    return KNOWN_FORMATS.get(document.get("format"))


def _format_finding(fmt: object, location: str) -> Finding:
    """The RV100 finding for an unrecognized format token.

    Legacy plan formats get a self-explanatory message: their totals are
    double-priced on fan-out graphs, and the fix is an upgrade (or a fresh
    plan), not a hand edit.
    """
    if fmt in LEGACY_PLAN_FORMATS:
        return Finding(
            "RV100",
            "error",
            location,
            f"stale plan format {fmt!r}: plans serialized before the "
            f"fan-out-aware pricing fix carry double-priced conversion "
            f"totals; re-plan, or load through "
            f"repro.cost.serialize.upgrade_plan_document to re-attribute "
            f"them (current format: {PLAN_FORMAT!r})",
        )
    return Finding(
        "RV100",
        "error",
        location,
        f"unknown document format {fmt!r}; known "
        f"formats: {', '.join(sorted(KNOWN_FORMATS))}",
    )


# ---------------------------------------------------------------------------
# Verification contexts
# ---------------------------------------------------------------------------


@dataclass
class VerifierEnv:
    """Shared lookup state for one verification run."""

    library: PrimitiveLibrary
    dt_graph: DTGraph
    network_override: Optional[Network] = None
    _networks: Dict[str, Network] = field(default_factory=dict)

    def resolve_network(self, name: object) -> Optional[Network]:
        """The zoo network a document names, built at most once per run."""
        if self.network_override is not None and self.network_override.name == name:
            return self.network_override
        if not isinstance(name, str):
            return None
        if name not in self._networks and name in MODEL_BUILDERS:
            self._networks[name] = build_model(name)
        return self._networks.get(name)


def _default_env() -> VerifierEnv:
    library = default_primitive_library()
    return VerifierEnv(
        library=library,
        dt_graph=DTGraph(library.layouts_used(), default_transform_library()),
    )


@dataclass
class PlanContext:
    """A plan document plus everything its passes resolve up front."""

    document: dict
    env: VerifierEnv
    prefix: str = ""
    dtype: str = "fp32"
    dtype_ok: bool = True
    batch_ok: bool = True
    platform: Optional[Platform] = None
    platform_label: str = ""
    network: Optional[Network] = None
    #: Per-convolution-layer scenarios at the plan's (batch, dtype); ``None``
    #: when the network is unknown or the dtype/batch fields are themselves
    #: invalid (those findings come from the ``plan-fields`` pass).
    scenarios: Optional[Dict[str, ConvScenario]] = None

    def __post_init__(self) -> None:
        doc = self.document
        self.dtype = doc.get("dtype", "fp32")
        self.dtype_ok = self.dtype in DTYPES
        self.batch_ok = _is_count(doc.get("batch", 1))
        self.platform_label = str(doc.get("platform"))
        name = doc.get("platform")
        if isinstance(name, str) and name in PLATFORMS:
            self.platform = PLATFORMS[name]
        self.network = self.env.resolve_network(doc.get("network"))
        if self.network is not None and self.dtype_ok and self.batch_ok:
            batch = doc.get("batch", 1)
            self.scenarios = {
                layer: scenario.with_batch(batch).with_dtype(self.dtype)
                for layer, scenario in self.network.conv_scenarios().items()
            }

    @property
    def layers(self) -> List[dict]:
        entries = self.document.get("layers")
        if not isinstance(entries, list):
            return []
        return [entry for entry in entries if isinstance(entry, dict)]

    @property
    def edges(self) -> List[dict]:
        entries = self.document.get("edges")
        if not isinstance(entries, list):
            return []
        return [entry for entry in entries if isinstance(entry, dict)]

    def decisions(self) -> Dict[str, dict]:
        return {entry["layer"]: entry for entry in self.layers if "layer" in entry}


@dataclass
class TablesContext:
    """A cost-tables document plus its reconstructed scenarios."""

    document: dict
    env: VerifierEnv
    prefix: str = ""
    scenarios: Dict[str, ConvScenario] = field(default_factory=dict)
    #: Per-layer construction errors, reported by the ``tables-fields`` pass.
    scenario_errors: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        raw = self.document.get("scenarios")
        if not isinstance(raw, dict):
            return
        for layer, params in raw.items():
            try:
                self.scenarios[layer] = ConvScenario(**params)
            except (TypeError, ValueError) as exc:
                self.scenario_errors[layer] = str(exc)


@dataclass
class EnvelopeContext:
    """A document that wraps other documents (frontier/result/service/store)."""

    document: dict
    env: VerifierEnv
    prefix: str = ""


_CONTEXT_BUILDERS = {
    "plan": PlanContext,
    "tables": TablesContext,
    "frontier": EnvelopeContext,
    "store-entry": EnvelopeContext,
    "result": EnvelopeContext,
    "service-plan": EnvelopeContext,
}


def _run_kind(document: dict, kind: str, env: VerifierEnv, prefix: str) -> List[Finding]:
    """All findings of every registered pass for one (sub)document."""
    context = _CONTEXT_BUILDERS[kind](document, env, prefix)
    findings: List[Finding] = []
    for analysis_pass in passes_for(kind):
        try:
            findings.extend(analysis_pass.run(context))
        except Exception as exc:  # noqa: BLE001 - a crashed pass is a finding
            findings.append(
                Finding(
                    "RV190",
                    "error",
                    prefix + kind,
                    f"analysis pass {analysis_pass.name!r} crashed: "
                    f"{type(exc).__name__}: {exc}",
                )
            )
    return findings


def _child_plan(
    parent: EnvelopeContext, subdocument: object, location: str
) -> List[Finding]:
    """Recursively verify an embedded plan document."""
    if not isinstance(subdocument, dict):
        return [Finding("RV100", "error", location, "embedded plan is not an object")]
    if subdocument.get("format") != PLAN_FORMAT:
        fmt = subdocument.get("format")
        if fmt in LEGACY_PLAN_FORMATS:
            return [_format_finding(fmt, location + ".format")]
        return [
            Finding(
                "RV100",
                "error",
                location + ".format",
                f"expected plan format {PLAN_FORMAT!r}, found {fmt!r}",
            )
        ]
    return _run_kind(subdocument, "plan", parent.env, location + ".")


# ---------------------------------------------------------------------------
# Plan passes
# ---------------------------------------------------------------------------


@register_pass(
    "plan-fields",
    kinds=("plan",),
    description="scalar fields: dtype, threads, batch, platform registration",
)
def check_plan_fields(ctx: PlanContext) -> Iterator[Finding]:
    doc = ctx.document
    prefix = ctx.prefix
    if not ctx.dtype_ok:
        yield Finding(
            "RV102",
            "error",
            prefix + "dtype",
            f"unknown dtype {ctx.dtype!r}; registered precisions: {', '.join(DTYPES)}",
        )
    for name in ("threads", "batch"):
        value = doc.get(name, 1)
        if not _is_count(value):
            yield Finding(
                "RV103",
                "error",
                prefix + name,
                f"{name} must be a positive integer, got {value!r}",
            )
    for name in ("layers", "edges"):
        if not isinstance(doc.get(name), list):
            yield Finding(
                "RV103", "error", prefix + name, f"{name} must be a list"
            )
    platform = doc.get("platform")
    if (
        platform is not None
        and platform not in PLATFORMS
        and platform not in PROVIDER_PLATFORM_LABELS
    ):
        yield Finding(
            "RV101",
            "error",
            prefix + "platform",
            f"platform {platform!r} is not registered; registered platforms: "
            f"{', '.join(sorted(PLATFORMS))}",
        )
    if ctx.network is None:
        yield Finding(
            "RV104",
            "warning",
            prefix + "network",
            f"network {doc.get('network')!r} is not in the model zoo and no "
            f"network was supplied; structural and scenario checks skipped",
        )


@register_pass(
    "plan-structure",
    kinds=("plan",),
    description="decision/edge sets must match the network graph exactly",
)
def check_plan_structure(ctx: PlanContext) -> Iterator[Finding]:
    if ctx.network is None:
        return
    prefix = ctx.prefix
    graph_layers = {layer.name for layer in ctx.network.topological_order()}
    doc_layers = set(ctx.decisions())
    for name in sorted(graph_layers - doc_layers):
        yield Finding(
            "RV113",
            "error",
            f"{prefix}layers[{name}]",
            f"network layer {name!r} has no decision in the plan",
        )
    for name in sorted(doc_layers - graph_layers):
        yield Finding(
            "RV113",
            "error",
            f"{prefix}layers[{name}]",
            f"plan decides layer {name!r} which the network does not contain",
        )
    graph_edges = {(edge.producer, edge.consumer) for edge in ctx.network.edges()}
    doc_edges = {
        (entry.get("producer"), entry.get("consumer")) for entry in ctx.edges
    }
    for producer, consumer in sorted(graph_edges - doc_edges):
        yield Finding(
            "RV113",
            "error",
            f"{prefix}edges[{producer}->{consumer}]",
            f"network edge {producer!r} -> {consumer!r} has no decision in the plan",
        )
    for producer, consumer in sorted(doc_edges - graph_edges):
        yield Finding(
            "RV113",
            "error",
            f"{prefix}edges[{producer}->{consumer}]",
            f"plan decides edge {producer!r} -> {consumer!r} which the network "
            f"does not contain",
        )


@register_pass(
    "plan-primitives",
    kinds=("plan",),
    description="every primitive exists, supports its scenario, and owns its layouts",
)
def check_plan_primitives(ctx: PlanContext) -> Iterator[Finding]:
    library = ctx.env.library
    for name, entry in ctx.decisions().items():
        location = f"{ctx.prefix}layers[{name}]"
        for key in ("input_layout", "output_layout"):
            layout_name = entry.get(key)
            if layout_name not in STANDARD_LAYOUTS:
                yield Finding(
                    "RV121",
                    "error",
                    location,
                    f"unknown layout {layout_name!r} in {key}; known layouts: "
                    f"{', '.join(sorted(STANDARD_LAYOUTS))}",
                )
        primitive_name = entry.get("primitive")
        if primitive_name is None:
            if ctx.scenarios is not None and name in ctx.scenarios:
                yield Finding(
                    "RV110",
                    "error",
                    location,
                    f"convolution layer {name!r} carries no primitive",
                )
            elif entry.get("input_layout") != entry.get("output_layout"):
                yield Finding(
                    "RV112",
                    "error",
                    location,
                    f"non-convolution layer {name!r} must adopt one layout, got "
                    f"{entry.get('input_layout')!r} -> {entry.get('output_layout')!r}",
                )
            continue
        if primitive_name not in library:
            yield Finding(
                "RV110",
                "error",
                location,
                f"unknown primitive {primitive_name!r} (not in the primitive library)",
            )
            continue
        primitive = library.get(primitive_name)
        if (
            entry.get("input_layout") != primitive.input_layout.name
            or entry.get("output_layout") != primitive.output_layout.name
        ):
            yield Finding(
                "RV112",
                "error",
                location,
                f"decision layouts {entry.get('input_layout')}->"
                f"{entry.get('output_layout')} contradict primitive "
                f"{primitive_name!r} ({primitive.input_layout.name}->"
                f"{primitive.output_layout.name})",
            )
        if ctx.scenarios is None:
            continue
        scenario = ctx.scenarios.get(name)
        if scenario is None:
            yield Finding(
                "RV113",
                "error",
                location,
                f"layer {name!r} carries primitive {primitive_name!r} but is not "
                f"a convolution of the network",
            )
        elif not primitive.supports(scenario, platform=ctx.platform):
            yield Finding(
                "RV111",
                "error",
                location,
                f"primitive {primitive_name!r} fails supports() for layer "
                f"{name!r} on platform {ctx.platform_label!r} at dtype "
                f"{ctx.dtype!r} (scenario {scenario.describe()})",
            )


@register_pass(
    "plan-joins",
    kinds=("plan",),
    description="one-layout-per-join: all inbound edges of a layer agree",
)
def check_plan_joins(ctx: PlanContext) -> Iterator[Finding]:
    inbound: Dict[str, List[dict]] = {}
    for entry in ctx.edges:
        consumer = entry.get("consumer")
        if isinstance(consumer, str):
            inbound.setdefault(consumer, []).append(entry)
    for consumer in sorted(inbound):
        entries = inbound[consumer]
        if len(entries) < 2:
            continue
        targets = sorted({str(entry.get("target_layout")) for entry in entries})
        if len(targets) > 1:
            yield Finding(
                "RV120",
                "error",
                f"{ctx.prefix}edges[*->{consumer}]",
                f"join {consumer!r} consumes {len(targets)} different layouts "
                f"({', '.join(targets)}); a multi-input layer operates in "
                f"exactly one layout",
            )


@register_pass(
    "plan-chains",
    kinds=("plan",),
    description="conversion chains walk real DT-graph edges with consistent endpoints",
)
def check_plan_chains(ctx: PlanContext) -> Iterator[Finding]:
    dt_graph = ctx.env.dt_graph
    decisions = ctx.decisions()
    for entry in ctx.edges:
        producer = entry.get("producer")
        consumer = entry.get("consumer")
        location = f"{ctx.prefix}edges[{producer}->{consumer}]"
        source = entry.get("source_layout")
        target = entry.get("target_layout")
        names_ok = True
        for key, layout_name in (("source_layout", source), ("target_layout", target)):
            if layout_name not in STANDARD_LAYOUTS:
                names_ok = False
                yield Finding(
                    "RV121",
                    "error",
                    location,
                    f"unknown layout {layout_name!r} in {key}; known layouts: "
                    f"{', '.join(sorted(STANDARD_LAYOUTS))}",
                )
        hops = entry.get("hops")
        if hops:
            unknown = [name for name in hops if name not in STANDARD_LAYOUTS]
            for name in unknown:
                yield Finding(
                    "RV121",
                    "error",
                    location,
                    f"conversion hop through unknown layout {name!r}",
                )
            if not unknown:
                for src, dst in zip(hops, hops[1:]):
                    if dt_graph.direct_transform(get_layout(src), get_layout(dst)) is None:
                        yield Finding(
                            "RV121",
                            "error",
                            location,
                            f"hop {src}->{dst} is not a direct transform of the "
                            f"DT graph",
                        )
                if names_ok and (hops[0] != source or hops[-1] != target):
                    yield Finding(
                        "RV122",
                        "error",
                        location,
                        f"chain endpoints {hops[0]}->{hops[-1]} contradict the "
                        f"edge's layouts {source}->{target}",
                    )
        elif names_ok and source != target:
            yield Finding(
                "RV122",
                "error",
                location,
                f"edge claims no conversion between different layouts "
                f"{source}->{target}",
            )
        producer_decision = decisions.get(producer)
        if producer_decision is not None and names_ok:
            expected = producer_decision.get("output_layout")
            if source != expected:
                yield Finding(
                    "RV122",
                    "error",
                    location,
                    f"edge source layout {source!r} contradicts producer "
                    f"{producer!r}'s output layout {expected!r}",
                )
        consumer_decision = decisions.get(consumer)
        if consumer_decision is not None and names_ok:
            expected = consumer_decision.get("input_layout")
            if target != expected:
                yield Finding(
                    "RV122",
                    "error",
                    location,
                    f"edge target layout {target!r} contradicts consumer "
                    f"{consumer!r}'s input layout {expected!r}",
                )


def _deduped_edge_total(edges: List[dict], key: str) -> float:
    """Accumulate a per-edge quantity with the executor's conversion dedup.

    Edges carrying a conversion chain are grouped by (producer, target
    layout) — the key ``NetworkExecutor.run_traced`` caches converted
    tensors under — and each group contributes the chain's cost *once* (its
    largest entry: plans attribute the full cost to one edge of the group
    and zero to the rest, so the maximum is the chain cost however the
    document distributes it).  Chainless edges contribute their own value.
    A document that prices a shared chain on every edge therefore recomputes
    *lower* than its serialized totals and fails RV130/RV131.
    """
    total = 0.0
    group_max: Dict[Tuple[str, str], float] = {}
    for entry in edges:
        value = float(entry.get(key, 0.0))
        producer = entry.get("producer")
        target = entry.get("target_layout")
        if entry.get("hops") and isinstance(producer, str) and isinstance(target, str):
            group = (producer, target)
            group_max[group] = max(group_max.get(group, value), value)
        else:
            total += value
    return total + sum(group_max.values())


@register_pass(
    "plan-costs",
    kinds=("plan",),
    description="the serialized cost vector equals what the decisions add up to",
)
def check_plan_costs(ctx: PlanContext) -> Iterator[Finding]:
    doc = ctx.document
    prefix = ctx.prefix
    layers = ctx.layers
    edges = ctx.edges
    # Recompute with the executor's accounting: per-layer costs add up, and
    # conversion chains count once per (producer, target layout) — the
    # shared-chain formula finalize_plan attributes by.  A canonical plan
    # carries each chain's cost on exactly one edge of its dedup group, so
    # the plain sum and the grouped sum coincide up to rounding noise.
    time_ms = 1e3 * (
        sum(float(entry.get("cost", 0.0)) for entry in layers)
        + _deduped_edge_total(edges, "cost")
    )
    workspace = max(
        (float(entry.get("workspace_bytes", 0.0)) for entry in layers), default=0.0
    )
    energy = sum(
        float(entry.get("energy_j", 0.0)) for entry in layers
    ) + _deduped_edge_total(edges, "energy_j")
    accuracy = sum(float(entry.get("accuracy_loss", 0.0)) for entry in layers)
    recomputed = {
        "time_ms": time_ms,
        "peak_workspace_bytes": workspace,
        "energy_proxy_j": energy,
        "accuracy_proxy": accuracy,
    }
    vector = doc.get("cost_vector")
    if not isinstance(vector, dict):
        yield Finding(
            "RV130", "error", prefix + "cost_vector", "cost_vector missing or not an object"
        )
    else:
        for objective in OBJECTIVES:
            serialized = vector.get(objective)
            if not isinstance(serialized, (int, float)) or isinstance(serialized, bool):
                yield Finding(
                    "RV130",
                    "error",
                    f"{prefix}cost_vector.{objective}",
                    f"{objective} missing or not numeric: {serialized!r}",
                )
            elif not _close(float(serialized), recomputed[objective]):
                yield Finding(
                    "RV130",
                    "error",
                    f"{prefix}cost_vector.{objective}",
                    f"serialized {objective} {serialized!r} != {recomputed[objective]!r} "
                    f"recomputed from the document's decisions",
                )
    total_ms = doc.get("total_ms")
    if not isinstance(total_ms, (int, float)) or isinstance(total_ms, bool):
        yield Finding(
            "RV131", "error", prefix + "total_ms", f"total_ms missing or not numeric: {total_ms!r}"
        )
    elif not _close(float(total_ms), time_ms):
        yield Finding(
            "RV131",
            "error",
            prefix + "total_ms",
            f"serialized total_ms {total_ms!r} != {time_ms!r} recomputed from the "
            f"document's decisions",
        )


@register_pass(
    "plan-fanout",
    kinds=("plan",),
    description="fan-out double pricing: shared conversion chains priced per edge",
)
def check_plan_fanout(ctx: PlanContext) -> Iterator[Finding]:
    # The executor dedups conversions by (producer, target layout) — see
    # NetworkExecutor.run_traced — and since the fan-out-aware encoding both
    # the PBQP objective and finalize_plan attribute each shared chain to
    # exactly one edge, so every canonical plan reports a delta of 0.0 here.
    # The pass stays as the regression tripwire that keeps double pricing
    # from silently returning (CI runs `repro check --strict`, which
    # promotes this warning to a failure on freshly planned documents).
    groups: Dict[Tuple[str, str], List[dict]] = {}
    for entry in ctx.edges:
        if not entry.get("hops"):
            continue
        producer = entry.get("producer")
        target = entry.get("target_layout")
        if isinstance(producer, str) and isinstance(target, str):
            groups.setdefault((producer, target), []).append(entry)
    total_ms = ctx.document.get("total_ms")
    for producer, target in sorted(groups):
        entries = groups[(producer, target)]
        if len(entries) < 2:
            continue
        costs = [float(entry.get("cost", 0.0)) for entry in entries]
        delta_ms = 1e3 * (sum(costs) - max(costs))
        if delta_ms <= 0.0:
            continue
        consumers = ", ".join(sorted(str(entry.get("consumer")) for entry in entries))
        share = (
            f" ({100.0 * delta_ms / float(total_ms):.2f}% of total_ms)"
            if isinstance(total_ms, (int, float)) and total_ms
            else ""
        )
        yield Finding(
            "RV140",
            "warning",
            f"{ctx.prefix}edges[{producer}->*]",
            f"conversion {entries[0].get('source_layout')}->{target} out of "
            f"{producer!r} is priced on {len(entries)} edges (to {consumers}) "
            f"but executed once: double-priced by {delta_ms:.6f} ms{share}",
        )


# ---------------------------------------------------------------------------
# Cost-table passes
# ---------------------------------------------------------------------------


@register_pass(
    "tables-fields",
    kinds=("tables",),
    description="table scalars and per-layer scenarios are mutually consistent",
)
def check_tables_fields(ctx: TablesContext) -> Iterator[Finding]:
    doc = ctx.document
    prefix = ctx.prefix
    dtype = doc.get("dtype", "fp32")
    if dtype not in DTYPES:
        yield Finding(
            "RV102",
            "error",
            prefix + "dtype",
            f"unknown dtype {dtype!r}; registered precisions: {', '.join(DTYPES)}",
        )
    for name in ("threads", "batch"):
        value = doc.get(name, 1)
        if not _is_count(value):
            yield Finding(
                "RV103",
                "error",
                prefix + name,
                f"{name} must be a positive integer, got {value!r}",
            )
    for layer in sorted(ctx.scenario_errors):
        yield Finding(
            "RV151",
            "error",
            f"{prefix}scenarios[{layer}]",
            f"invalid scenario: {ctx.scenario_errors[layer]}",
        )
    batch = doc.get("batch", 1)
    for layer in sorted(ctx.scenarios):
        scenario = ctx.scenarios[layer]
        location = f"{prefix}scenarios[{layer}]"
        if dtype in DTYPES and scenario.dtype != dtype:
            yield Finding(
                "RV151",
                "error",
                location,
                f"scenario dtype {scenario.dtype!r} contradicts the table's "
                f"dtype {dtype!r}",
            )
        if _is_count(batch) and scenario.batch != batch:
            yield Finding(
                "RV151",
                "error",
                location,
                f"scenario batch {scenario.batch} contradicts the table's "
                f"batch {batch}",
            )


@register_pass(
    "tables-primitives",
    kinds=("tables",),
    description="every priced primitive exists and supports its scenario",
)
def check_tables_primitives(ctx: TablesContext) -> Iterator[Finding]:
    library = ctx.env.library
    node_costs = ctx.document.get("node_costs")
    if not isinstance(node_costs, dict):
        yield Finding(
            "RV103", "error", ctx.prefix + "node_costs", "node_costs must be an object"
        )
        return
    for layer in sorted(node_costs):
        location = f"{ctx.prefix}node_costs[{layer}]"
        scenario = ctx.scenarios.get(layer)
        if scenario is None and layer not in ctx.scenario_errors:
            yield Finding(
                "RV113",
                "error",
                location,
                f"costs priced for layer {layer!r} which has no scenario",
            )
        for primitive_name in sorted(node_costs[layer]):
            if primitive_name not in library:
                yield Finding(
                    "RV110",
                    "error",
                    location,
                    f"unknown primitive {primitive_name!r} (not in the primitive "
                    f"library)",
                )
            elif scenario is not None and not library.get(primitive_name).supports(
                scenario, platform=None
            ):
                yield Finding(
                    "RV111",
                    "error",
                    location,
                    f"primitive {primitive_name!r} is priced but fails supports() "
                    f"for layer {layer!r} at dtype {scenario.dtype!r}",
                )


@register_pass(
    "tables-chains",
    kinds=("tables",),
    description="serialized conversion chains walk real DT-graph edges",
)
def check_tables_chains(ctx: TablesContext) -> Iterator[Finding]:
    dt_graph = ctx.env.dt_graph
    dt_hops = ctx.document.get("dt_hops")
    if not isinstance(dt_hops, dict):
        yield Finding(
            "RV103", "error", ctx.prefix + "dt_hops", "dt_hops must be an object"
        )
        return
    for shape_key in sorted(dt_hops):
        pairs = dt_hops[shape_key]
        for pair_key in sorted(pairs):
            hops = pairs[pair_key]
            if hops is None or hops == []:
                continue
            location = f"{ctx.prefix}dt_hops[{shape_key}][{pair_key}]"
            unknown = [name for name in hops if name not in STANDARD_LAYOUTS]
            for name in unknown:
                yield Finding(
                    "RV121",
                    "error",
                    location,
                    f"conversion hop through unknown layout {name!r}",
                )
            if unknown:
                continue
            for src, dst in zip(hops, hops[1:]):
                if dt_graph.direct_transform(get_layout(src), get_layout(dst)) is None:
                    yield Finding(
                        "RV121",
                        "error",
                        location,
                        f"hop {src}->{dst} is not a direct transform of the DT graph",
                    )
            source, _, target = pair_key.partition("->")
            if hops[0] != source or hops[-1] != target:
                yield Finding(
                    "RV122",
                    "error",
                    location,
                    f"chain endpoints {hops[0]}->{hops[-1]} contradict the pair "
                    f"key {pair_key!r}",
                )


# ---------------------------------------------------------------------------
# Envelope passes (frontier / store entry / result / service plan)
# ---------------------------------------------------------------------------


@register_pass(
    "frontier-envelope",
    kinds=("frontier",),
    description="frontier points carry consistent vectors (and legal plans)",
)
def check_frontier_envelope(ctx: EnvelopeContext) -> Iterator[Finding]:
    doc = ctx.document
    prefix = ctx.prefix
    points = doc.get("points")
    if not isinstance(points, list):
        yield Finding("RV103", "error", prefix + "points", "points must be a list")
        return
    for index, point in enumerate(points):
        location = f"{prefix}points[{index}]"
        if not isinstance(point, dict):
            yield Finding("RV103", "error", location, "point must be an object")
            continue
        vector = point.get("vector")
        if not isinstance(vector, dict) or not all(
            isinstance(vector.get(objective), (int, float))
            and not isinstance(vector.get(objective), bool)
            for objective in OBJECTIVES
        ):
            yield Finding(
                "RV130",
                "error",
                location + ".vector",
                f"vector must carry numeric {', '.join(OBJECTIVES)}",
            )
            vector = None
        plan_doc = point.get("plan")
        if plan_doc is None:
            continue
        yield from _child_plan(ctx, plan_doc, location + ".plan")
        if isinstance(plan_doc, dict) and vector is not None:
            serialized = plan_doc.get("cost_vector")
            if isinstance(serialized, dict):
                for objective in OBJECTIVES:
                    inner = serialized.get(objective)
                    if isinstance(inner, (int, float)) and not _close(
                        float(vector[objective]), float(inner)
                    ):
                        yield Finding(
                            "RV153",
                            "error",
                            f"{location}.vector.{objective}",
                            f"point vector {objective} {vector[objective]!r} "
                            f"contradicts the embedded plan's {inner!r}",
                        )


@register_pass(
    "store-entry-envelope",
    kinds=("store-entry",),
    description="store key agrees with the embedded tables; version freshness",
)
def check_store_entry(ctx: EnvelopeContext) -> Iterator[Finding]:
    doc = ctx.document
    prefix = ctx.prefix
    key = doc.get("key")
    tables = doc.get("tables")
    if not isinstance(key, dict):
        yield Finding("RV103", "error", prefix + "key", "key must be an object")
        key = {}
    if not isinstance(tables, dict):
        yield Finding("RV103", "error", prefix + "tables", "tables must be an object")
        return
    if tables.get("format") != COST_TABLE_FORMAT:
        yield Finding(
            "RV100",
            "error",
            prefix + "tables.format",
            f"expected cost-table format {COST_TABLE_FORMAT!r}, "
            f"found {tables.get('format')!r}",
        )
        return
    for field_name, table_field in (
        ("threads", "threads"),
        ("batch", "batch"),
        ("dtype", "dtype"),
    ):
        if field_name in key and key[field_name] != tables.get(table_field):
            yield Finding(
                "RV150",
                "error",
                f"{prefix}key.{field_name}",
                f"key {field_name} {key[field_name]!r} contradicts the embedded "
                f"tables' {tables.get(table_field)!r}",
            )
    fingerprint = key.get("fingerprint")
    if fingerprint in MODEL_BUILDERS and fingerprint != tables.get("network"):
        yield Finding(
            "RV150",
            "error",
            prefix + "key.fingerprint",
            f"key fingerprint {fingerprint!r} contradicts the embedded tables' "
            f"network {tables.get('network')!r}",
        )
    platform_name = key.get("platform")
    # Unregistered platforms are only a warning here: the store deliberately
    # keeps such entries (the owning registration may not be loaded), see
    # CostStore.evict.
    if platform_name and platform_name not in PLATFORMS:
        if platform_name not in PROVIDER_PLATFORM_LABELS:
            yield Finding(
                "RV101",
                "warning",
                prefix + "key.platform",
                f"platform {platform_name!r} is not registered; registered "
                f"platforms: {', '.join(sorted(PLATFORMS))}",
            )
    elif platform_name in PLATFORMS and key.get("platform_version"):
        current = platform_version(PLATFORMS[platform_name])
        if key["platform_version"] != current:
            yield Finding(
                "RV152",
                "warning",
                prefix + "key.platform_version",
                f"entry was priced at platform version {key['platform_version']!r} "
                f"but {platform_name!r} is now {current!r} (the store treats "
                f"this entry as evictable)",
            )
    yield from _run_kind(tables, "tables", ctx.env, prefix + "tables.")


@register_pass(
    "result-envelope",
    kinds=("result",),
    description="selection-result envelope agrees with its embedded plan",
)
def check_result_envelope(ctx: EnvelopeContext) -> Iterator[Finding]:
    doc = ctx.document
    prefix = ctx.prefix
    plan_doc = doc.get("plan")
    yield from _child_plan(ctx, plan_doc, prefix + "plan")
    if not isinstance(plan_doc, dict):
        return
    for field_name, plan_field in (
        ("platform", "platform"),
        ("threads", "threads"),
        ("batch", "batch"),
        ("dtype", "dtype"),
        ("strategy", "strategy"),
    ):
        if field_name in doc and doc[field_name] != plan_doc.get(plan_field):
            yield Finding(
                "RV153",
                "error",
                prefix + field_name,
                f"envelope {field_name} {doc[field_name]!r} contradicts the "
                f"embedded plan's {plan_doc.get(plan_field)!r}",
            )
    model = doc.get("model")
    if model in MODEL_BUILDERS and model != plan_doc.get("network"):
        yield Finding(
            "RV153",
            "error",
            prefix + "model",
            f"envelope model {model!r} contradicts the embedded plan's network "
            f"{plan_doc.get('network')!r}",
        )


@register_pass(
    "service-plan-envelope",
    kinds=("service-plan",),
    description="service plan document agrees with its embedded plan",
)
def check_service_plan_envelope(ctx: EnvelopeContext) -> Iterator[Finding]:
    doc = ctx.document
    prefix = ctx.prefix
    plan_doc = doc.get("plan")
    yield from _child_plan(ctx, plan_doc, prefix + "plan")
    if not isinstance(plan_doc, dict):
        return
    for field_name, plan_field in (
        ("model", "network"),
        ("platform", "platform"),
        ("strategy", "strategy"),
        ("threads", "threads"),
        ("batch", "batch"),
        ("dtype", "dtype"),
    ):
        if field_name in doc and doc[field_name] != plan_doc.get(plan_field):
            yield Finding(
                "RV153",
                "error",
                prefix + field_name,
                f"envelope {field_name} {doc[field_name]!r} contradicts the "
                f"embedded plan's {plan_doc.get(plan_field)!r}",
            )
    total_ms = doc.get("total_ms")
    plan_total = plan_doc.get("total_ms")
    if (
        isinstance(total_ms, (int, float))
        and isinstance(plan_total, (int, float))
        and not _close(float(total_ms), float(plan_total))
    ):
        yield Finding(
            "RV153",
            "error",
            prefix + "total_ms",
            f"envelope total_ms {total_ms!r} contradicts the embedded plan's "
            f"{plan_total!r}",
        )


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def verify_document(
    document: object,
    *,
    source: str = "<document>",
    network: Optional[Network] = None,
    library: Optional[PrimitiveLibrary] = None,
    dt_graph: Optional[DTGraph] = None,
) -> Report:
    """Run every applicable registered pass over one raw JSON document.

    The document kind is detected from its ``format`` token; unknown formats
    produce a single ``RV100`` error.  Pass an explicit ``network`` to check
    plans for graphs outside the model zoo (zoo networks are rebuilt by
    name).  ``library``/``dt_graph`` default to the standard primitive
    library and its DT graph.
    """
    report = Report(subject=source)
    if not isinstance(document, dict):
        report.findings.append(
            Finding(
                "RV100",
                "error",
                "",
                f"document must be a JSON object, got {type(document).__name__}",
            )
        )
        return report
    kind = detect_kind(document)
    if kind is None:
        report.findings.append(_format_finding(document.get("format"), "format"))
        return report
    if library is None:
        env = _default_env()
        env.network_override = network
    else:
        env = VerifierEnv(
            library=library,
            dt_graph=dt_graph
            if dt_graph is not None
            else DTGraph(library.layouts_used(), default_transform_library()),
            network_override=network,
        )
    report.extend(_run_kind(document, kind, env, ""))
    return report


def verify_file(
    path: Union[str, Path],
    *,
    network: Optional[Network] = None,
    library: Optional[PrimitiveLibrary] = None,
    dt_graph: Optional[DTGraph] = None,
) -> Report:
    """Load a JSON file and verify it; unreadable files raise ``OSError``/
    ``json.JSONDecodeError`` (the CLI maps those to exit code 2)."""
    document = json.loads(Path(path).read_text())
    return verify_document(
        document, source=str(path), network=network, library=library, dt_graph=dt_graph
    )


def verify_plan(
    plan: NetworkPlan,
    *,
    network: Optional[Network] = None,
    library: Optional[PrimitiveLibrary] = None,
    dt_graph: Optional[DTGraph] = None,
    source: str = "<plan>",
) -> Report:
    """Verify an in-memory plan by serializing it through ``plan_to_dict``.

    This is the hook :meth:`repro.api.Session.plan` runs (opt out with
    ``verify=False``): the document the verifier sees is byte-identical to
    what ``save_plan`` would write.
    """
    return verify_document(
        plan_to_dict(plan),
        source=source,
        network=network,
        library=library,
        dt_graph=dt_graph,
    )


def raise_for_report(report: Report) -> Report:
    """Raise :class:`PlanVerificationError` when a report carries errors."""
    if not report.ok:
        raise PlanVerificationError(report)
    return report
