"""Structured findings, reports, and the analysis-pass registry.

The static-analysis layer mirrors the project's other open registries
(:func:`repro.core.strategies.register_strategy`,
:func:`repro.service.handlers.register_endpoint`): every verifier or lint
check is a plain function published through :func:`register_pass`, and the
drivers (:mod:`repro.analysis.plan_verifier`, :mod:`repro.analysis.lint`,
``repro check`` / ``repro lint``) iterate the registry rather than a
hard-coded list — adding a rule is one decorated function.

A pass produces :class:`Finding`\\ s — (rule code, severity, location,
message) — which the drivers collect into a :class:`Report`.  Reports
serialize deterministically: findings are sorted, keys are sorted, and
:meth:`Report.to_json` is byte-identical for identical inputs, so reports
can be diffed across runs and pinned in tests.

Rule codes are stable identifiers (``RV1xx`` for document verification,
``LT2xx`` for project lint) documented in the README's "Static analysis"
section; a lint rule can be silenced per line with ``# noqa: <CODE>``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Tuple

#: Format identifier embedded in every serialized analysis report.
REPORT_FORMAT = "repro/analysis-report/v1"

#: Allowed finding severities.  ``error`` means the subject is illegal (a
#: verify hook refuses it); ``warning`` flags a real but non-fatal issue —
#: e.g. the fan-out double-pricing gap, which mis-prices a legal plan.
SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by an analysis pass."""

    #: Stable rule code (``"RV111"``, ``"LT203"``, ...).
    rule: str
    #: ``"error"`` or ``"warning"``.
    severity: str
    #: Where the problem is: a document path (``"layers[conv1]"``) or a
    #: ``file:line`` source location.
    location: str
    #: Human-readable description, self-contained (names the expected and
    #: the found value where applicable).
    message: str

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"severity must be one of {SEVERITIES}, got {self.severity!r}"
            )

    def to_dict(self) -> Dict[str, str]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "location": self.location,
            "message": self.message,
        }

    def render(self) -> str:
        """One-line human rendering (``location: severity CODE message``)."""
        return f"{self.location}: {self.severity} {self.rule} {self.message}"


def _finding_key(finding: Finding) -> Tuple[str, str, str, str]:
    return (finding.location, finding.rule, finding.severity, finding.message)


@dataclass
class Report:
    """Findings collected over one subject (a document, a source tree)."""

    #: What was analysed (a file path, ``"<memory>"``, a directory).
    subject: str
    findings: List[Finding] = field(default_factory=list)

    def extend(self, findings: Iterable[Finding]) -> None:
        self.findings.extend(findings)

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "warning"]

    @property
    def ok(self) -> bool:
        """Whether the subject is legal: no error-severity findings.

        Warnings (e.g. the fan-out double-pricing gap) do not make a
        document invalid — verify hooks and the service disk tier accept a
        report with ``ok`` true.
        """
        return not self.errors

    def by_rule(self, rule: str) -> List[Finding]:
        return [f for f in self.findings if f.rule == rule]

    def to_dict(self) -> dict:
        """JSON-shaped report; findings in canonical sorted order."""
        ordered = sorted(self.findings, key=_finding_key)
        return {
            "format": REPORT_FORMAT,
            "subject": self.subject,
            "ok": self.ok,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "findings": [finding.to_dict() for finding in ordered],
        }

    def to_json(self) -> str:
        """Deterministic serialization — byte-identical for equal reports."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def summary(self) -> str:
        """Human-readable rendering: one line per finding plus a verdict."""
        lines = [finding.render() for finding in sorted(self.findings, key=_finding_key)]
        verdict = "ok" if self.ok else "INVALID"
        lines.append(
            f"{self.subject}: {verdict} "
            f"({len(self.errors)} errors, {len(self.warnings)} warnings)"
        )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# The pass registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AnalysisPass:
    """One registered analysis pass.

    ``kinds`` names the subject kinds the pass applies to: document kinds
    (``"plan"``, ``"tables"``, ``"frontier"``, ``"store-entry"``,
    ``"result"``, ``"service-plan"``) for the verifier, or ``"source"`` for
    lint rules.  The driver hands the pass a kind-specific context object
    and collects the findings it yields.
    """

    name: str
    kinds: Tuple[str, ...]
    description: str
    fn: Callable[..., Iterable[Finding]]

    def run(self, context) -> List[Finding]:
        return list(self.fn(context))


#: Signature of a pass body: one context object in, findings out.
PassFn = Callable[..., Iterable[Finding]]

#: The pass registry, in registration order (like ``STRATEGIES``/``ENDPOINTS``).
PASSES: Dict[str, AnalysisPass] = {}


def register_pass(
    name: str, kinds: Iterable[str], description: str = ""
) -> Callable[[PassFn], PassFn]:
    """Decorator publishing an analysis pass in :data:`PASSES`."""

    def decorator(fn: PassFn) -> PassFn:
        if name in PASSES:
            raise ValueError(f"duplicate analysis pass {name!r}")
        PASSES[name] = AnalysisPass(
            name=name, kinds=tuple(kinds), description=description, fn=fn
        )
        return fn

    return decorator


def passes_for(kind: str) -> List[AnalysisPass]:
    """Registered passes applying to one subject kind, in registration order."""
    return [p for p in PASSES.values() if kind in p.kinds]


def registered_passes() -> List[str]:
    """Names of all registered passes, in registration order."""
    return list(PASSES)
