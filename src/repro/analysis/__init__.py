"""Static analysis: document verification and project lint.

The analysis layer proves facts about the system without running it:

* :mod:`repro.analysis.plan_verifier` — semantic verification of serialized
  plans, cost tables, frontiers, store entries and service documents
  (``repro check``, the ``Session.plan`` verify hook, the service's
  ``/v1/validate`` endpoint and disk-tier admission check);
* :mod:`repro.analysis.lint` — project-specific AST lint over the source
  tree (``repro lint``, the CI ``static-analysis`` job);
* :mod:`repro.analysis.passes` — the shared :class:`Finding`/:class:`Report`
  model and the ``@register_pass`` registry both are built on.
"""

from repro.analysis.passes import (
    PASSES,
    AnalysisPass,
    Finding,
    Report,
    register_pass,
    registered_passes,
)
from repro.analysis.plan_verifier import (
    KNOWN_FORMATS,
    PlanVerificationError,
    detect_kind,
    raise_for_report,
    verify_document,
    verify_file,
    verify_plan,
)
from repro.analysis.lint import lint_file, lint_source, run_lint

__all__ = [
    "PASSES",
    "AnalysisPass",
    "Finding",
    "Report",
    "register_pass",
    "registered_passes",
    "KNOWN_FORMATS",
    "PlanVerificationError",
    "detect_kind",
    "raise_for_report",
    "verify_document",
    "verify_file",
    "verify_plan",
    "lint_file",
    "lint_source",
    "run_lint",
]
