"""Project-specific AST lint (``repro lint``).

Generic linters cannot know this project's invariants, so these rules are
written against them directly:

==========  =================================================================
rule        meaning
==========  =================================================================
``LT200``   file does not parse (syntax error)
``LT201``   a registry dict (``PLATFORMS``, ``STRATEGIES``, ``ENDPOINTS``,
            ``MODEL_BUILDERS``, ``PASSES``, ``STANDARD_LAYOUTS``) is mutated
            outside a ``register_*`` function — the registries are open, but
            only through their published decorators
``LT202``   unseeded ``random`` in ``multiobj/`` — frontier construction and
            tie-breaking must be deterministic per seed (use
            ``random.Random(seed)``)
``LT203``   ``json.dumps``/``json.dump`` without ``sort_keys=True`` on a
            serialization path — documents must serialize byte-identically
``LT204``   lock discipline: an attribute mutated under a ``with <lock>:``
            block somewhere in its class is read or written outside one —
            a data race in the concurrent service/session layer
==========  =================================================================

Every rule can be silenced per line with ``# noqa: <CODE>`` (a bare
``# noqa`` silences all rules on that line).  Rules are registered through
the same :func:`~repro.analysis.passes.register_pass` registry as the
document verifier, under the ``"source"`` kind.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, List, Sequence, Set, Tuple, Union

from repro.analysis.passes import Finding, Report, passes_for, register_pass

#: Open registries that must only be mutated through their ``register_*``
#: publishers.
REGISTRY_NAMES = frozenset(
    {"PLATFORMS", "STRATEGIES", "ENDPOINTS", "MODEL_BUILDERS", "PASSES", "STANDARD_LAYOUTS"}
)

#: Methods that mutate a dict/list receiver in place.
_MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "add",
        "insert",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "clear",
        "remove",
        "discard",
    }
)

#: Module suffixes whose ``json.dumps``/``json.dump`` calls are serialization
#: paths (documents that must be byte-stable across runs and processes).
SERIALIZATION_MODULE_SUFFIXES = (
    "cost/serialize.py",
    "cost/store.py",
    "multiobj/frontier.py",
    "service/app.py",
    "analysis/passes.py",
)

_NOQA = re.compile(r"#\s*noqa(?::\s*(?P<codes>[A-Z0-9_, ]+))?", re.IGNORECASE)


@dataclass
class SourceContext:
    """One parsed source file handed to every ``"source"``-kind pass."""

    path: str  # posix-style path label used for rule applicability
    tree: ast.AST
    lines: List[str]


def _suppressed(lines: List[str], lineno: int, rule: str) -> bool:
    """Whether the physical line carries a ``# noqa`` matching ``rule``."""
    if not 1 <= lineno <= len(lines):
        return False
    match = _NOQA.search(lines[lineno - 1])
    if match is None:
        return False
    codes = match.group("codes")
    if codes is None:
        return True
    return rule.upper() in {code.strip().upper() for code in codes.split(",")}


def _enclosing_register(func_stack: Sequence[str]) -> bool:
    return any(name.startswith(("register", "unregister")) for name in func_stack)


# ---------------------------------------------------------------------------
# LT201 — registry mutation outside register_* functions
# ---------------------------------------------------------------------------


class _RegistryMutationVisitor(ast.NodeVisitor):
    def __init__(self) -> None:
        self.func_stack: List[str] = []
        self.hits: List[Tuple[int, str]] = []

    def _registry_of(self, node: ast.AST) -> str:
        """The registry name a subscript/attribute expression is rooted in."""
        while isinstance(node, ast.Subscript):
            node = node.value
        if isinstance(node, ast.Name) and node.id in REGISTRY_NAMES:
            return node.id
        return ""

    def _flag(self, lineno: int, registry: str, action: str) -> None:
        if not _enclosing_register(self.func_stack):
            self.hits.append(
                (
                    lineno,
                    f"registry {registry} is {action} outside a register_* "
                    f"function; publish through the registry's decorator instead",
                )
            )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.func_stack.append(node.name)
        self.generic_visit(node)
        self.func_stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, ast.Subscript):
                registry = self._registry_of(target)
                if registry:
                    self._flag(node.lineno, registry, "assigned into")
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.target, ast.Subscript):
            registry = self._registry_of(node.target)
            if registry:
                self._flag(node.lineno, registry, "assigned into")
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            if isinstance(target, ast.Subscript):
                registry = self._registry_of(target)
                if registry:
                    self._flag(node.lineno, registry, "deleted from")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATOR_METHODS
            and isinstance(func.value, ast.Name)
            and func.value.id in REGISTRY_NAMES
        ):
            self._flag(node.lineno, func.value.id, f"mutated via .{func.attr}()")
        self.generic_visit(node)


@register_pass(
    "lint-registry-mutation",
    kinds=("source",),
    description="LT201: registries mutated only through register_* functions",
)
def lint_registry_mutation(ctx: SourceContext) -> Iterator[Finding]:
    visitor = _RegistryMutationVisitor()
    visitor.visit(ctx.tree)
    for lineno, message in visitor.hits:
        yield Finding("LT201", "error", f"{ctx.path}:{lineno}", message)


# ---------------------------------------------------------------------------
# LT202 — unseeded random in multiobj/
# ---------------------------------------------------------------------------


@register_pass(
    "lint-unseeded-random",
    kinds=("source",),
    description="LT202: multiobj/ must use seeded random.Random instances",
)
def lint_unseeded_random(ctx: SourceContext) -> Iterator[Finding]:
    if "/multiobj/" not in f"/{ctx.path}":
        return
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ImportFrom) and node.module == "random":
            bad = [
                alias.name
                for alias in node.names
                if alias.name not in ("Random", "SystemRandom")
            ]
            if bad:
                yield Finding(
                    "LT202",
                    "error",
                    f"{ctx.path}:{node.lineno}",
                    f"module-level random functions ({', '.join(bad)}) share "
                    f"unseeded global state; import Random and seed an instance",
                )
        elif isinstance(node, ast.Call):
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "random"
            ):
                continue
            if func.attr == "Random":
                if not node.args and not node.keywords:
                    yield Finding(
                        "LT202",
                        "error",
                        f"{ctx.path}:{node.lineno}",
                        "random.Random() without a seed is not reproducible; "
                        "pass an explicit seed",
                    )
            elif func.attr not in ("SystemRandom",):
                yield Finding(
                    "LT202",
                    "error",
                    f"{ctx.path}:{node.lineno}",
                    f"random.{func.attr}() draws from unseeded global state; "
                    f"use a seeded random.Random instance",
                )


# ---------------------------------------------------------------------------
# LT203 — json.dumps without sort_keys=True on serialization paths
# ---------------------------------------------------------------------------


@register_pass(
    "lint-unsorted-json",
    kinds=("source",),
    description="LT203: serialization paths dump JSON with sort_keys=True",
)
def lint_unsorted_json(ctx: SourceContext) -> Iterator[Finding]:
    if not ctx.path.endswith(SERIALIZATION_MODULE_SUFFIXES):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr in ("dump", "dumps")
            and isinstance(func.value, ast.Name)
            and func.value.id == "json"
        ):
            continue
        sorted_keys = any(
            keyword.arg == "sort_keys"
            and isinstance(keyword.value, ast.Constant)
            and keyword.value.value is True
            for keyword in node.keywords
        )
        if not sorted_keys:
            yield Finding(
                "LT203",
                "error",
                f"{ctx.path}:{node.lineno}",
                f"json.{func.attr} on a serialization path must pass "
                f"sort_keys=True so documents serialize byte-identically",
            )


# ---------------------------------------------------------------------------
# LT204 — lock discipline in api.py / service/
# ---------------------------------------------------------------------------

_LOCK_FACTORIES = frozenset({"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"})


def _is_lock_name(name: str) -> bool:
    return "lock" in name.lower()


class _LockDisciplineVisitor(ast.NodeVisitor):
    """Collect every ``self.<attr>`` access of one class with its context."""

    def __init__(self, lock_attrs: Set[str]) -> None:
        self.lock_attrs = lock_attrs
        self.func_stack: List[str] = []
        self.with_depth = 0
        #: (attr, lineno, under_lock, mutation, in_init)
        self.accesses: List[Tuple[str, int, bool, bool, bool]] = []

    # -- helpers -----------------------------------------------------------------

    def _in_init(self) -> bool:
        return any(name in ("__init__", "__post_init__") for name in self.func_stack)

    def _is_lock_expr(self, expr: ast.AST) -> bool:
        for node in ast.walk(expr):
            if isinstance(node, ast.Attribute) and (
                node.attr in self.lock_attrs or _is_lock_name(node.attr)
            ):
                return True
            if isinstance(node, ast.Name) and _is_lock_name(node.id):
                return True
        return False

    def _record(self, attr: str, lineno: int, mutation: bool) -> None:
        if attr in self.lock_attrs or _is_lock_name(attr):
            return
        self.accesses.append(
            (attr, lineno, self.with_depth > 0, mutation, self._in_init())
        )

    def _base_self_attr(self, node: ast.AST) -> Tuple[str, int]:
        """Unwrap subscripts to the ``self.<attr>`` base of a target, if any."""
        while isinstance(node, ast.Subscript):
            node = node.value
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr, node.lineno
        return "", 0

    # -- structure ---------------------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.func_stack.append(node.name)
        self.generic_visit(node)
        self.func_stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_With(self, node: ast.With) -> None:
        takes_lock = any(self._is_lock_expr(item.context_expr) for item in node.items)
        for item in node.items:
            self.visit(item.context_expr)
            if item.optional_vars is not None:
                self.visit(item.optional_vars)
        if takes_lock:
            self.with_depth += 1
        for statement in node.body:
            self.visit(statement)
        if takes_lock:
            self.with_depth -= 1

    # -- accesses ----------------------------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            attr, lineno = self._base_self_attr(target)
            if attr:
                self._record(attr, lineno, mutation=True)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        attr, lineno = self._base_self_attr(node.target)
        if attr:
            self._record(attr, lineno, mutation=True)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            attr, lineno = self._base_self_attr(target)
            if attr:
                self._record(attr, lineno, mutation=True)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _MUTATOR_METHODS:
            attr, lineno = self._base_self_attr(func.value)
            if attr:
                self._record(attr, lineno, mutation=True)
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.value, ast.Name) and node.value.id == "self":
            self._record(
                node.attr, node.lineno, mutation=isinstance(node.ctx, (ast.Store, ast.Del))
            )
        self.generic_visit(node)


def _class_lock_attrs(node: ast.ClassDef) -> Set[str]:
    """Attributes of one class holding locks/conditions (by factory or name)."""
    lock_attrs: Set[str] = set()
    for child in ast.walk(node):
        if not isinstance(child, ast.Assign):
            continue
        value = child.value
        is_lock_value = (
            isinstance(value, ast.Call)
            and (
                (isinstance(value.func, ast.Attribute) and value.func.attr in _LOCK_FACTORIES)
                or (isinstance(value.func, ast.Name) and value.func.id in _LOCK_FACTORIES)
            )
        )
        for target in child.targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and (is_lock_value or _is_lock_name(target.attr))
            ):
                lock_attrs.add(target.attr)
    return lock_attrs


@register_pass(
    "lint-lock-discipline",
    kinds=("source",),
    description="LT204: lock-guarded attributes never touched outside the lock",
)
def lint_lock_discipline(ctx: SourceContext) -> Iterator[Finding]:
    path = f"/{ctx.path}"
    if not (path.endswith("/api.py") or "/service/" in path):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        lock_attrs = _class_lock_attrs(node)
        if not lock_attrs:
            continue
        visitor = _LockDisciplineVisitor(lock_attrs)
        for statement in node.body:
            visitor.visit(statement)
        guarded = {
            attr
            for attr, _, under_lock, mutation, in_init in visitor.accesses
            if under_lock and mutation and not in_init
        }
        if not guarded:
            continue
        seen: Set[Tuple[str, int]] = set()
        for attr, lineno, under_lock, _, in_init in visitor.accesses:
            if attr not in guarded or under_lock or in_init:
                continue
            if (attr, lineno) in seen:
                continue
            seen.add((attr, lineno))
            yield Finding(
                "LT204",
                "error",
                f"{ctx.path}:{lineno}",
                f"self.{attr} is mutated under a lock elsewhere in class "
                f"{node.name} but accessed here outside any 'with <lock>:' "
                f"block (data race)",
            )


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def lint_source(source: str, path: Union[str, Path]) -> List[Finding]:
    """All lint findings of one source string (``# noqa`` already applied)."""
    label = Path(path).as_posix()
    lines = source.splitlines()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            Finding(
                "LT200",
                "error",
                f"{label}:{exc.lineno or 0}",
                f"file does not parse: {exc.msg}",
            )
        ]
    context = SourceContext(path=label, tree=tree, lines=lines)
    findings: List[Finding] = []
    for analysis_pass in passes_for("source"):
        for finding in analysis_pass.run(context):
            _, _, lineno_text = finding.location.rpartition(":")
            lineno = int(lineno_text) if lineno_text.isdigit() else 0
            if not _suppressed(lines, lineno, finding.rule):
                findings.append(finding)
    return findings


def lint_file(path: Union[str, Path]) -> List[Finding]:
    return lint_source(Path(path).read_text(), path)


def iter_python_files(paths: Sequence[Union[str, Path]]) -> List[Path]:
    """Expand files/directories into a sorted list of python files."""
    collected: List[Path] = []
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            collected.extend(sorted(entry.rglob("*.py")))
        else:
            collected.append(entry)
    return collected


def run_lint(paths: Sequence[Union[str, Path]]) -> Report:
    """Lint files/directories into one report (the ``repro lint`` backend)."""
    report = Report(subject=", ".join(Path(p).as_posix() for p in paths))
    for path in iter_python_files(paths):
        report.extend(lint_file(path))
    return report
