"""The DNN graph: a DAG of layers with shape inference.

The :class:`Network` class is the central IR consumed by the primitive
selector (:mod:`repro.core`), the cost models (:mod:`repro.cost`) and the
functional runtime (:mod:`repro.runtime`).  It stores layers as named nodes
and data-flow edges between them, provides topological iteration (the paper's
execution order), validation, and static shape inference — possible because
"the dimensions of all inputs to DNN layers are known statically" (section
3.1 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.graph.layer import ConvLayer, InputLayer, Layer
from repro.graph.scenario import ConvScenario

Shape = Tuple[int, int, int]


class NetworkValidationError(ValueError):
    """Raised when a network graph is structurally invalid."""


@dataclass(frozen=True)
class Edge:
    """A directed data-flow edge from one layer's output to another's input."""

    producer: str
    consumer: str


class Network:
    """A directed acyclic graph of DNN layers.

    Parameters
    ----------
    name:
        Human-readable model name (``"alexnet"``, ``"vgg-e"``, ...).
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._layers: Dict[str, Layer] = {}
        self._inputs: Dict[str, List[str]] = {}
        self._consumers: Dict[str, List[str]] = {}

    # -- construction ---------------------------------------------------------

    def add_layer(self, layer: Layer, inputs: Optional[Sequence[str]] = None) -> Layer:
        """Add a layer fed by the named producer layers.

        Returns the layer to allow fluent model-building code.
        """
        if layer.name in self._layers:
            raise NetworkValidationError(f"duplicate layer name {layer.name!r}")
        inputs = list(inputs or [])
        for producer in inputs:
            if producer not in self._layers:
                raise NetworkValidationError(
                    f"layer {layer.name!r} consumes unknown layer {producer!r}"
                )
        minimum, maximum = layer.arity()
        if len(inputs) < minimum or (maximum >= 0 and len(inputs) > maximum):
            raise NetworkValidationError(
                f"layer {layer.name!r} ({type(layer).__name__}) takes between {minimum} and "
                f"{maximum if maximum >= 0 else 'unbounded'} inputs, got {len(inputs)}"
            )
        self._layers[layer.name] = layer
        self._inputs[layer.name] = inputs
        self._consumers.setdefault(layer.name, [])
        for producer in inputs:
            self._consumers[producer].append(layer.name)
        return layer

    # -- structure queries ----------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._layers

    def __len__(self) -> int:
        return len(self._layers)

    def layer(self, name: str) -> Layer:
        """Look up a layer by name."""
        try:
            return self._layers[name]
        except KeyError:
            raise KeyError(f"no layer named {name!r} in network {self.name!r}") from None

    def layers(self) -> List[Layer]:
        """All layers, in insertion order."""
        return list(self._layers.values())

    def layer_names(self) -> List[str]:
        return list(self._layers.keys())

    def inputs_of(self, name: str) -> List[str]:
        """Names of the layers feeding ``name``."""
        return list(self._inputs[name])

    def consumers_of(self, name: str) -> List[str]:
        """Names of the layers consuming the output of ``name``."""
        return list(self._consumers[name])

    def edges(self) -> List[Edge]:
        """All data-flow edges."""
        return [
            Edge(producer=producer, consumer=consumer)
            for consumer, producers in self._inputs.items()
            for producer in producers
        ]

    def input_layers(self) -> List[InputLayer]:
        """The graph's entry points."""
        return [layer for layer in self._layers.values() if isinstance(layer, InputLayer)]

    def output_layers(self) -> List[Layer]:
        """Layers whose output is not consumed by any other layer."""
        return [
            self._layers[name]
            for name, consumers in self._consumers.items()
            if not consumers
        ]

    def conv_layers(self) -> List[ConvLayer]:
        """The convolution layers, in topological order."""
        return [
            layer
            for layer in self.topological_order()
            if isinstance(layer, ConvLayer)
        ]

    # -- topological order & validation ---------------------------------------

    def topological_order(self) -> List[Layer]:
        """Layers in an execution order respecting all data dependences.

        Kahn's algorithm with insertion-order tie breaking, so the order is
        deterministic across runs.

        Raises
        ------
        NetworkValidationError
            If the graph contains a cycle.
        """
        indegree = {name: len(producers) for name, producers in self._inputs.items()}
        ready = [name for name in self._layers if indegree[name] == 0]
        order: List[Layer] = []
        while ready:
            name = ready.pop(0)
            order.append(self._layers[name])
            for consumer in self._consumers[name]:
                indegree[consumer] -= 1
                if indegree[consumer] == 0:
                    ready.append(consumer)
        if len(order) != len(self._layers):
            stuck = sorted(set(self._layers) - {layer.name for layer in order})
            raise NetworkValidationError(f"network contains a cycle involving {stuck}")
        return order

    def validate(self) -> None:
        """Check structural invariants: acyclic, one+ input layer, shapes consistent."""
        if not self._layers:
            raise NetworkValidationError("network has no layers")
        if not self.input_layers():
            raise NetworkValidationError("network has no input layer")
        self.topological_order()
        self.infer_shapes()

    # -- shape inference -------------------------------------------------------

    def infer_shapes(self) -> Dict[str, Shape]:
        """Statically infer the output shape of every layer.

        Returns a mapping from layer name to its logical (C, H, W) output
        shape.  Shapes are fully determined by the input layers' declared
        shapes, mirroring the paper's observation that all layer input sizes
        are known statically.
        """
        shapes: Dict[str, Shape] = {}
        for layer in self.topological_order():
            input_shapes = [shapes[p] for p in self._inputs[layer.name]]
            try:
                shapes[layer.name] = layer.output_shape(input_shapes)
            except ValueError as exc:
                raise NetworkValidationError(
                    f"shape inference failed at layer {layer.name!r}: {exc}"
                ) from exc
        return shapes

    def conv_scenarios(self) -> Dict[str, ConvScenario]:
        """The convolutional scenario of every convolution layer.

        This is the "extract all convolutional scenarios in the graph" step of
        the paper's methodology (section 5.2).
        """
        shapes = self.infer_shapes()
        scenarios: Dict[str, ConvScenario] = {}
        for layer in self.conv_layers():
            (producer,) = self._inputs[layer.name]
            scenarios[layer.name] = layer.scenario(shapes[producer])
        return scenarios

    # -- reporting -------------------------------------------------------------

    def total_conv_macs(self) -> int:
        """Total multiply-accumulate work of all convolution layers."""
        return sum(s.macs() for s in self.conv_scenarios().values())

    def summary(self) -> str:
        """A human-readable multi-line summary of the network."""
        shapes = self.infer_shapes()
        lines = [f"Network {self.name!r}: {len(self._layers)} layers"]
        for layer in self.topological_order():
            inputs = ", ".join(self._inputs[layer.name]) or "-"
            shape = "x".join(str(d) for d in shapes[layer.name])
            lines.append(
                f"  {layer.name:<24} {type(layer).__name__:<20} <- {inputs:<40} out {shape}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Network({self.name!r}, layers={len(self._layers)})"
