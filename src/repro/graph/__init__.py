"""DNN graph intermediate representation.

A DNN is modelled, as in section 2 of the paper, as a directed acyclic graph
of layers executed in topological order.  The IR deliberately captures only
what the primitive-selection formulation consumes:

* :class:`~repro.graph.scenario.ConvScenario` — the 6-tuple
  ``{C, H, W, stride, K, M}`` describing a convolutional layer instance
  (section 3), plus padding and groups needed to describe the public models;
* the :class:`~repro.graph.layer.Layer` hierarchy — convolution layers carry a
  scenario, every other layer type (pooling, activation, LRN, concat, fully
  connected, ...) is a shape-transforming node that the selection pass treats
  as a zero-cost wildcard (section 5.2);
* :class:`~repro.graph.network.Network` — the DAG itself with shape inference,
  validation and topological iteration.
"""

from repro.graph.scenario import ConvScenario
from repro.graph.layer import (
    Layer,
    InputLayer,
    ConvLayer,
    PoolLayer,
    PoolMode,
    ReLULayer,
    LRNLayer,
    FullyConnectedLayer,
    ConcatLayer,
    DropoutLayer,
    SoftmaxLayer,
    FlattenLayer,
)
from repro.graph.network import Network, NetworkValidationError

__all__ = [
    "ConvScenario",
    "Layer",
    "InputLayer",
    "ConvLayer",
    "PoolLayer",
    "PoolMode",
    "ReLULayer",
    "LRNLayer",
    "FullyConnectedLayer",
    "ConcatLayer",
    "DropoutLayer",
    "SoftmaxLayer",
    "FlattenLayer",
    "Network",
    "NetworkValidationError",
]
