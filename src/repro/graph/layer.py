"""Layer types of the DNN graph IR.

Every layer is a node in the :class:`~repro.graph.network.Network` DAG.  The
primitive-selection formulation only models convolution layers; all other
layer types are represented as "dummy" nodes accepting any input and output
layout with zero selection cost (paper section 5.2).  They still carry enough
semantics for shape inference and for the functional runtime in
:mod:`repro.runtime` to execute whole networks on real tensors.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.graph.scenario import ConvScenario

Shape = Tuple[int, int, int]


class LayerKind(str, enum.Enum):
    """Discriminator for layer types (used by the selector and the runtime)."""

    INPUT = "input"
    CONVOLUTION = "convolution"
    POOLING = "pooling"
    RELU = "relu"
    LRN = "lrn"
    FULLY_CONNECTED = "fully_connected"
    CONCAT = "concat"
    ELTWISE_ADD = "eltwise_add"
    DROPOUT = "dropout"
    SOFTMAX = "softmax"
    FLATTEN = "flatten"


@dataclass
class Layer:
    """Base class for all layers.

    Attributes
    ----------
    name:
        Unique name within the network (e.g. ``"conv2"``).
    """

    name: str

    @property
    def kind(self) -> LayerKind:
        raise NotImplementedError

    @property
    def is_convolution(self) -> bool:
        """Whether this layer is modelled by the PBQP formulation."""
        return self.kind is LayerKind.CONVOLUTION

    def arity(self) -> Tuple[int, int]:
        """(min, max) number of inputs this layer accepts; max=-1 means unbounded."""
        return (1, 1)

    def output_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        """Infer the logical (C, H, W) output shape from the input shapes."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


@dataclass
class InputLayer(Layer):
    """Network input; produces a tensor of fixed shape."""

    shape: Shape = (3, 224, 224)

    @property
    def kind(self) -> LayerKind:
        return LayerKind.INPUT

    def arity(self) -> Tuple[int, int]:
        return (0, 0)

    def output_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        if input_shapes:
            raise ValueError(f"input layer {self.name!r} takes no inputs")
        return self.shape


@dataclass
class ConvLayer(Layer):
    """2D multichannel convolution layer.

    The scenario parameters other than ``C``, ``H`` and ``W`` are stored on
    the layer; the full :class:`ConvScenario` is derived once the input shape
    is known (see :meth:`scenario`).
    """

    out_channels: int = 1
    kernel: int = 3
    stride: int = 1
    padding: int = 0
    groups: int = 1

    @property
    def kind(self) -> LayerKind:
        return LayerKind.CONVOLUTION

    def scenario(self, input_shape: Shape) -> ConvScenario:
        """The convolutional scenario induced by an input of ``input_shape``."""
        c, h, w = input_shape
        return ConvScenario(
            c=c,
            h=h,
            w=w,
            stride=self.stride,
            k=self.kernel,
            m=self.out_channels,
            padding=self.padding,
            groups=self.groups,
        )

    def output_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        (input_shape,) = input_shapes
        return self.scenario(input_shape).output_shape


class PoolMode(str, enum.Enum):
    MAX = "max"
    AVERAGE = "average"


@dataclass
class PoolLayer(Layer):
    """Spatial pooling layer (max or average)."""

    kernel: int = 2
    stride: int = 2
    padding: int = 0
    mode: PoolMode = PoolMode.MAX
    #: Caffe-style ceil rounding of output dimensions (used by GoogLeNet/AlexNet).
    ceil_mode: bool = True

    @property
    def kind(self) -> LayerKind:
        return LayerKind.POOLING

    def _pooled(self, size: int) -> int:
        padded = size + 2 * self.padding - self.kernel
        if self.ceil_mode:
            out = -(-padded // self.stride) + 1
        else:
            out = padded // self.stride + 1
        # Caffe clips the last window so it starts inside the (padded) input.
        if self.padding and (out - 1) * self.stride >= size + self.padding:
            out -= 1
        return max(out, 1)

    def output_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        (input_shape,) = input_shapes
        c, h, w = input_shape
        return (c, self._pooled(h), self._pooled(w))


@dataclass
class ReLULayer(Layer):
    """Rectified linear activation; shape preserving."""

    @property
    def kind(self) -> LayerKind:
        return LayerKind.RELU

    def output_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        (input_shape,) = input_shapes
        return input_shape


@dataclass
class LRNLayer(Layer):
    """Local response normalization (AlexNet, GoogLeNet); shape preserving."""

    local_size: int = 5
    alpha: float = 1e-4
    beta: float = 0.75

    @property
    def kind(self) -> LayerKind:
        return LayerKind.LRN

    def output_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        (input_shape,) = input_shapes
        return input_shape


@dataclass
class FullyConnectedLayer(Layer):
    """Fully-connected (inner product) layer.

    Output is modelled as a ``(features, 1, 1)`` tensor so the whole network
    keeps a uniform 3D logical shape.
    """

    out_features: int = 1000

    @property
    def kind(self) -> LayerKind:
        return LayerKind.FULLY_CONNECTED

    def output_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        (input_shape,) = input_shapes
        return (self.out_features, 1, 1)

    def macs(self, input_shape: Shape) -> int:
        c, h, w = input_shape
        return c * h * w * self.out_features


@dataclass
class ConcatLayer(Layer):
    """Channel-wise concatenation (the join of GoogLeNet inception modules)."""

    @property
    def kind(self) -> LayerKind:
        return LayerKind.CONCAT

    def arity(self) -> Tuple[int, int]:
        return (1, -1)

    def output_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        if not input_shapes:
            raise ValueError(f"concat layer {self.name!r} needs at least one input")
        heights = {s[1] for s in input_shapes}
        widths = {s[2] for s in input_shapes}
        if len(heights) != 1 or len(widths) != 1:
            raise ValueError(
                f"concat layer {self.name!r} inputs disagree on spatial shape: {input_shapes}"
            )
        channels = sum(s[0] for s in input_shapes)
        return (channels, heights.pop(), widths.pop())


@dataclass
class EltwiseAddLayer(Layer):
    """Elementwise tensor addition (the join of ResNet residual blocks).

    Unlike :class:`ConcatLayer`, every input must have the *same* shape — the
    inputs are summed, not stacked.  Like concat it is a multi-input dummy
    node for the selection formulation, but it is the structure that makes
    residual networks DAG-shaped: the block input fans out to the convolution
    path and the identity/shortcut path, and both must agree on a layout (or
    pay a conversion) where they rejoin.
    """

    @property
    def kind(self) -> LayerKind:
        return LayerKind.ELTWISE_ADD

    def arity(self) -> Tuple[int, int]:
        return (2, -1)

    def output_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        distinct = set(input_shapes)
        if len(distinct) != 1:
            raise ValueError(
                f"eltwise-add layer {self.name!r} inputs disagree on shape: {input_shapes}"
            )
        return distinct.pop()


@dataclass
class DropoutLayer(Layer):
    """Dropout; identity at inference time."""

    ratio: float = 0.5

    @property
    def kind(self) -> LayerKind:
        return LayerKind.DROPOUT

    def output_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        (input_shape,) = input_shapes
        return input_shape


@dataclass
class SoftmaxLayer(Layer):
    """Softmax over the channel dimension; shape preserving."""

    @property
    def kind(self) -> LayerKind:
        return LayerKind.SOFTMAX

    def output_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        (input_shape,) = input_shapes
        return input_shape


@dataclass
class FlattenLayer(Layer):
    """Flatten a (C, H, W) tensor into (C*H*W, 1, 1) ahead of FC layers."""

    @property
    def kind(self) -> LayerKind:
        return LayerKind.FLATTEN

    def output_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        (input_shape,) = input_shapes
        c, h, w = input_shape
        return (c * h * w, 1, 1)
