"""Convolutional scenarios.

Section 3 of the paper models a convolutional layer instance formally as the
6-tuple ``{C, H, W, delta, K, M}``: the number of input feature maps, the
input height and width, the stride, the kernel radix and the number of output
feature maps.  The paper's evaluation is latency sensitive (batch size 1) but
notes that minibatching is just one more integer parameter; this reproduction
threads that parameter — ``batch`` — through the whole system, so selections
can be studied as a function of batch size.

:class:`ConvScenario` is that tuple, extended with the three extra attributes
needed to describe the public models exactly and to open the batching axis —
``padding``, ``groups`` and ``batch``.  ``padding`` and ``groups`` do not
change the structure of the selection problem (they only scale the amount of
work); ``batch`` multiplies the per-image work exactly: all geometry
(``out_h``/``out_w``, shapes) stays per-image, so a batch of ``n`` images
costs precisely ``n`` times one image — no convolution windows, padding or
Winograd tiles ever bleed across image boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

#: The numeric precisions a scenario can request, in decreasing width.
DTYPES: Tuple[str, ...] = ("fp32", "fp16", "int8")

#: Bytes per element of each precision (what the memory system moves).
DTYPE_ITEMSIZE = {"fp32": 4, "fp16": 2, "int8": 1}


@dataclass(frozen=True)
class ConvScenario:
    """The parameters of one DNN convolution instance.

    Attributes
    ----------
    c:
        Number of input feature maps (channels).
    h, w:
        Height and width of each input feature map.
    stride:
        Convolution stride (``delta`` in the paper), applied in both spatial
        dimensions.
    k:
        Kernel radix; kernels are ``k x k``.
    m:
        Number of output feature maps (number of multichannel filters).
    padding:
        Symmetric zero padding applied to both spatial dimensions.
    groups:
        Grouped convolution factor (AlexNet's conv2/4/5 use ``groups=2``).
        ``c`` and ``m`` must both be divisible by ``groups``.
    batch:
        Number of images processed per invocation (minibatch size).  Geometry
        stays per-image; work totals (:meth:`macs`, :meth:`input_elements`,
        :meth:`output_elements`) scale exactly linearly in ``batch`` while the
        kernel is shared across the whole batch.
    dtype:
        Numeric precision of the activations and weights: ``"fp32"`` (the
        paper's setting), ``"fp16"`` or ``"int8"``.  Like ``batch`` it does
        not change geometry — element counts are identical — but it changes
        the bytes the memory system moves, the SIMD lanes a vector unit
        packs, which primitives apply (FFT stays in the float spectral
        domain) and the modelled accuracy of the result.
    """

    c: int
    h: int
    w: int
    stride: int = 1
    k: int = 3
    m: int = 1
    padding: int = 0
    groups: int = 1
    batch: int = 1
    dtype: str = "fp32"

    def __post_init__(self) -> None:
        for field_name in ("c", "h", "w", "stride", "k", "m", "groups", "batch"):
            value = getattr(self, field_name)
            if value < 1:
                raise ValueError(f"{field_name} must be >= 1, got {value}")
        if self.padding < 0:
            raise ValueError(f"padding must be >= 0, got {self.padding}")
        if self.c % self.groups or self.m % self.groups:
            raise ValueError(
                f"c ({self.c}) and m ({self.m}) must be divisible by groups ({self.groups})"
            )
        if self.k > self.h + 2 * self.padding or self.k > self.w + 2 * self.padding:
            raise ValueError(
                "kernel does not fit in the padded input: "
                f"k={self.k}, padded input {self.h + 2 * self.padding}x{self.w + 2 * self.padding}"
            )
        if self.dtype not in DTYPES:
            raise ValueError(
                f"dtype must be one of {DTYPES}, got {self.dtype!r}"
            )

    # -- derived geometry ----------------------------------------------------

    @property
    def out_h(self) -> int:
        """Output feature-map height (per image)."""
        return (self.h + 2 * self.padding - self.k) // self.stride + 1

    @property
    def out_w(self) -> int:
        """Output feature-map width (per image)."""
        return (self.w + 2 * self.padding - self.k) // self.stride + 1

    @property
    def input_shape(self) -> Tuple[int, int, int]:
        """Logical per-image input tensor shape ``(C, H, W)``."""
        return (self.c, self.h, self.w)

    @property
    def output_shape(self) -> Tuple[int, int, int]:
        """Logical per-image output tensor shape ``(M, out_H, out_W)``."""
        return (self.m, self.out_h, self.out_w)

    @property
    def batched_input_shape(self) -> Tuple[int, int, int, int]:
        """Logical batched input tensor shape ``(N, C, H, W)``."""
        return (self.batch,) + self.input_shape

    @property
    def batched_output_shape(self) -> Tuple[int, int, int, int]:
        """Logical batched output tensor shape ``(N, M, out_H, out_W)``."""
        return (self.batch,) + self.output_shape

    @property
    def kernel_shape(self) -> Tuple[int, int, int, int]:
        """Kernel tensor shape ``(M, C/groups, K, K)`` (shared by the batch)."""
        return (self.m, self.c // self.groups, self.k, self.k)

    @property
    def is_strided(self) -> bool:
        """Whether the convolution has stride greater than one."""
        return self.stride > 1

    @property
    def is_pointwise(self) -> bool:
        """Whether this is a 1x1 convolution."""
        return self.k == 1

    @property
    def is_grouped(self) -> bool:
        """Whether the channels are partitioned into more than one group."""
        return self.groups > 1

    @property
    def is_batched(self) -> bool:
        """Whether more than one image is processed per invocation."""
        return self.batch > 1

    @property
    def is_depthwise(self) -> bool:
        """Whether this is a depthwise convolution (one input channel per group).

        MobileNet-style depthwise-separable blocks use ``groups == C`` so each
        filter sees a single input feature map.  Several primitive families
        degenerate on this shape (their channel-reduction GEMM collapses to
        scalar work) and must *decline* such scenarios rather than miscost
        them.
        """
        return self.groups > 1 and self.groups == self.c

    # -- work estimates -------------------------------------------------------

    def macs(self) -> int:
        """Multiply-accumulate count of the textbook direct convolution.

        ``batch * O(outH * outW * (C/groups) * K^2 * M)`` per the paper's
        complexity statement (section 2.1), accounting for stride, grouping
        and minibatching.  A batch of ``n`` images costs exactly ``n`` times
        one image.
        """
        per_group_c = self.c // self.groups
        per_image = self.out_h * self.out_w * per_group_c * self.k * self.k * self.m
        return self.batch * per_image

    def flops(self) -> int:
        """Floating point operations (2 per MAC)."""
        return 2 * self.macs()

    def input_elements(self) -> int:
        """Input elements of the whole batch."""
        return self.batch * self.c * self.h * self.w

    def output_elements(self) -> int:
        """Output elements of the whole batch."""
        return self.batch * self.m * self.out_h * self.out_w

    def kernel_elements(self) -> int:
        """Kernel elements (independent of batch: weights are shared)."""
        return self.m * (self.c // self.groups) * self.k * self.k

    @property
    def itemsize(self) -> int:
        """Bytes per tensor element at this scenario's precision."""
        return DTYPE_ITEMSIZE[self.dtype]

    @property
    def is_quantized(self) -> bool:
        """Whether the scenario runs below the fp32 reference precision."""
        return self.dtype != "fp32"

    # -- convenience ----------------------------------------------------------

    @property
    def per_image(self) -> "ConvScenario":
        """The equivalent single-image (batch-1) scenario."""
        if self.batch == 1:
            return self
        return replace(self, batch=1)

    def with_batch(self, batch: int) -> "ConvScenario":
        """The same scenario processing a minibatch of ``batch`` images.

        The batch is an explicit axis, so per-image semantics are exact:
        ``s.with_batch(n).macs() == n * s.per_image.macs()`` for every
        scenario, including strided and padded ones.  (An earlier stub folded
        the batch into the image height, which overcounts whenever stride,
        padding or tiling interact with the image boundary — e.g. a stride-2
        7x7/k3 scenario costs 7776 MACs for 4 images but 8424 when the four
        images are stacked into one 28-row image.)
        """
        if batch < 1:
            raise ValueError("batch must be >= 1")
        return replace(self, batch=batch)

    def with_dtype(self, dtype: str) -> "ConvScenario":
        """The same scenario computed at another numeric precision.

        Precision is an explicit axis exactly like the batch: geometry and
        element counts are untouched (``s.with_dtype(d).macs() == s.macs()``),
        so per-image exactness is preserved; only byte traffic, lane packing,
        primitive applicability and the modelled accuracy change.
        """
        if dtype not in DTYPES:
            raise ValueError(f"dtype must be one of {DTYPES}, got {dtype!r}")
        if dtype == self.dtype:
            return self
        return replace(self, dtype=dtype)

    def describe(self) -> str:
        """Human-readable one-line description used in reports and figures."""
        parts = [
            f"C={self.c}",
            f"H={self.h}",
            f"W={self.w}",
            f"stride={self.stride}",
            f"K={self.k}",
            f"M={self.m}",
        ]
        if self.padding:
            parts.append(f"pad={self.padding}")
        if self.groups != 1:
            parts.append(f"groups={self.groups}")
        if self.batch != 1:
            parts.append(f"N={self.batch}")
        if self.dtype != "fp32":
            parts.append(f"dtype={self.dtype}")
        return " ".join(parts)
