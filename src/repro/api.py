"""High-level API: the :class:`Session` facade over the full pipeline.

The paper's workflow is "profile once, select many": the cost tables for one
(network, platform, thread-count) are produced ahead of time and then drive
any number of selection queries.  :class:`Session` owns that whole pipeline —
cost production (through a pluggable :class:`~repro.cost.provider.CostProvider`),
selection (through the :data:`~repro.core.strategies.STRATEGIES` registry),
and execution (through :class:`~repro.runtime.executor.NetworkExecutor`):

>>> from repro.api import Session
>>> session = Session(cache_dir="~/.cache/repro")                 # doctest: +SKIP
>>> plan = session.plan("alexnet", "intel-haswell")               # doctest: +SKIP
>>> report = plan.execute()                                       # doctest: +SKIP
>>> report = session.run("alexnet", "intel-haswell")              # doctest: +SKIP
>>> comparison = session.compare("alexnet", "intel-haswell")      # doctest: +SKIP

The session memoizes profiled :class:`~repro.core.selector.SelectionContext`
objects (and therefore the cost tables) keyed by ``(network fingerprint,
platform, threads)``; with a ``cache_dir`` the tables additionally persist to
a :class:`~repro.cost.store.CostStore`, so a *fresh process* pointed at the
same directory performs zero profiling.

:class:`Engine` is the PR-1 facade, kept as a thin shim over :class:`Session`
(see its docstring for the exact compatibility surface).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.plan import NetworkPlan
from repro.core.selector import SelectionContext
from repro.core.strategies import (
    BASELINE_STRATEGY,
    Strategy,
    applicable_strategies,
    get_strategy,
)
from repro.cost.platform import Platform, get_platform
from repro.cost.provider import AnalyticalCostProvider, CostProvider, CostQuery
from repro.cost.serialize import plan_from_dict, plan_to_dict, save_plan
from repro.cost.store import CostStore
from repro.graph.layer import InputLayer
from repro.graph.network import Network
from repro.graph.scenario import DTYPES
from repro.layouts.dt_graph import DTGraph
from repro.layouts.transforms import default_transform_library
from repro.models import build_model
from repro.multiobj.frontier import DEFAULT_BUDGET_STEPS, Frontier, build_frontier
from repro.primitives.registry import PrimitiveLibrary, default_primitive_library
from repro.runtime.executor import ExecutionTrace, NetworkExecutor

#: Serialization format identifier for selection results.
RESULT_FORMAT = "repro/selection-result/v1"

ModelLike = Union[str, Network]
PlatformLike = Union[str, Platform, None]


def network_fingerprint(network: Network) -> str:
    """A stable structural fingerprint of a network.

    Two networks with the same layers (names, kinds and parameters) and the
    same data-flow edges share a fingerprint, so structurally identical
    builds hit the same session cache entry regardless of object identity.
    """
    parts: List[str] = [network.name]
    for layer in network.topological_order():
        fields = dataclasses.asdict(layer)
        described = ",".join(f"{key}={fields[key]!r}" for key in sorted(fields))
        inputs = ",".join(network.inputs_of(layer.name))
        parts.append(f"{type(layer).__name__}({described})<-[{inputs}]")
    digest = hashlib.sha256("|".join(parts).encode()).hexdigest()
    return f"{network.name}:{digest[:16]}"


@dataclass(frozen=True)
class SelectionRequest:
    """One (model, platform, strategy, threads, batch, dtype) combination for :meth:`Session.select_many`."""

    model: ModelLike
    platform: PlatformLike
    strategy: str = "pbqp"
    threads: int = 1
    batch: int = 1
    dtype: str = "fp32"


@dataclass
class SelectionResult:
    """The outcome of one session selection: the plan plus its provenance."""

    model: str
    platform: str
    threads: int
    strategy: str
    plan: NetworkPlan
    #: Whether the profiled context (cost tables) was reused from the cache.
    from_cache: bool = False
    #: Minibatch size the selection was priced for.
    batch: int = 1
    #: Numeric precision the selection was priced for.
    dtype: str = "fp32"

    @property
    def total_ms(self) -> float:
        """Whole-network time of the selected plan in milliseconds."""
        return self.plan.total_ms

    @property
    def per_image_ms(self) -> float:
        """Whole-network time per image, in milliseconds."""
        return self.plan.per_image_ms

    def speedup_over(self, baseline: "SelectionResult") -> float:
        """Speedup of this result's plan over another result's plan."""
        return self.plan.speedup_over(baseline.plan)

    def to_dict(self) -> dict:
        """Convert to a JSON-serializable document (plan via :mod:`repro.cost.serialize`)."""
        return {
            "format": RESULT_FORMAT,
            "model": self.model,
            "platform": self.platform,
            "threads": self.threads,
            "batch": self.batch,
            "dtype": self.dtype,
            "strategy": self.strategy,
            "plan": plan_to_dict(self.plan),
        }

    @classmethod
    def from_dict(cls, document: dict, dt_graph: DTGraph) -> "SelectionResult":
        """Rebuild a result from :meth:`to_dict` output (chains resolved via ``dt_graph``)."""
        if document.get("format") != RESULT_FORMAT:
            raise ValueError(
                f"unexpected selection-result format {document.get('format')!r} "
                f"(expected {RESULT_FORMAT!r})"
            )
        return cls(
            model=document["model"],
            platform=document["platform"],
            threads=int(document["threads"]),
            strategy=document["strategy"],
            plan=plan_from_dict(document["plan"], dt_graph),
            from_cache=False,
            batch=int(document.get("batch", 1)),
            dtype=str(document.get("dtype", "fp32")),
        )


@dataclass(frozen=True)
class CacheInfo:
    """Statistics of the session's context cache."""

    hits: int
    misses: int
    contexts: int


@dataclass
class _CacheState:
    hits: int = 0
    misses: int = 0


# ---------------------------------------------------------------------------
# Execution reports
# ---------------------------------------------------------------------------


@dataclass
class LayerExecution:
    """Predicted-versus-measured timing of one layer in one forward pass."""

    layer: str
    #: Selected primitive name for convolution layers, ``None`` otherwise.
    primitive: Optional[str]
    #: Cost-model prediction for the layer, in ms (0 for non-conv layers).
    predicted_ms: float
    #: Measured compute time of the layer on this host, in ms.
    measured_ms: float

    @property
    def delta_ms(self) -> float:
        """Measured minus predicted time (positive: slower than predicted)."""
        return self.measured_ms - self.predicted_ms


@dataclass
class ConversionExecution:
    """Predicted-versus-measured timing of one planned conversion chain.

    The executor converts once per (producer, target layout) and reuses the
    result for every other consumer — and plan pricing attributes the chain's
    cost the same way — so within a fan-out dedup group exactly one entry
    carries the prediction and the measurement; the reusing edges appear
    with ``deduplicated`` set and both numbers at zero.
    """

    producer: str
    consumer: str
    source_layout: str
    target_layout: str
    #: Plan-attributed cost of the chain, in ms (0 on deduplicated edges).
    predicted_ms: float
    #: Measured chain time on this host, in ms (0 on deduplicated edges,
    #: whose conversion never ran).
    measured_ms: float
    #: True when this edge reuses a chain executed (and priced) for an
    #: earlier consumer of the same producer.
    deduplicated: bool = False


@dataclass
class ExecutionReport:
    """What one executed forward pass did, against what the plan predicted.

    The predicted numbers come from the plan's cost model (for the default
    analytical provider they describe the *modelled* platform, not this
    host, so their absolute scale differs from the measured numbers; the
    per-layer *proportions* are the comparable quantity).
    """

    model: str
    platform: str
    threads: int
    strategy: str
    #: Output of the network's output layer in canonical CHW order — or, for
    #: a multi-output network, a dict mapping each output layer's name to its
    #: CHW array (mirroring :meth:`NetworkExecutor.run_traced`).
    output: Union[np.ndarray, Dict[str, np.ndarray]]
    #: Per-layer predicted/measured timings, in execution order.
    layers: List[LayerExecution]
    #: Number of layout-conversion chains actually executed.
    conversions_executed: int
    #: Number of distinct conversion chains the plan calls for — one per
    #: (producer, target layout) dedup group, matching what the executor
    #: runs, so this equals ``conversions_executed`` on a faithful pass.
    conversions_planned: int
    #: Predicted total layout-conversion cost, in ms.
    predicted_conversion_ms: float
    #: Measured total layout-conversion time, in ms.
    measured_conversion_ms: float
    #: Wall-clock time of the whole forward pass, in ms.
    wall_ms: float
    #: Number of images in the forward pass (1 for a single-image run).
    batch: int = 1
    #: Name of the network's primary (last) output layer.
    output_layer: str = ""
    #: Per-edge conversion accounting, in plan order; fan-out edges that
    #: reuse another edge's chain are flagged ``deduplicated``.
    conversions: List[ConversionExecution] = field(default_factory=list)

    @property
    def heads(self) -> Dict[str, np.ndarray]:
        """Every output head by layer name, single-output networks included.

        A single-output network reports one entry under its output layer's
        name; a multi-output network (e.g. ``googlenet-aux``) reports every
        head, so auxiliary classifiers are first-class rather than hidden
        inside the :attr:`output` union.
        """
        if isinstance(self.output, dict):
            return dict(self.output)
        return {self.output_layer: self.output}

    @property
    def primary_output(self) -> np.ndarray:
        """The primary head's tensor (the network's last output layer)."""
        if isinstance(self.output, dict):
            return self.output[self.output_layer]
        return self.output

    @property
    def predicted_total_ms(self) -> float:
        """The plan's predicted whole-network time, in ms."""
        return sum(entry.predicted_ms for entry in self.layers) + self.predicted_conversion_ms

    @property
    def measured_total_ms(self) -> float:
        """Measured compute plus conversion time, in ms."""
        return sum(entry.measured_ms for entry in self.layers) + self.measured_conversion_ms

    @property
    def measured_per_image_ms(self) -> float:
        """Measured total time per image, in ms."""
        return self.measured_total_ms / self.batch

    @property
    def prediction_ratio(self) -> float:
        """Measured over predicted total time (host-vs-model scale factor)."""
        predicted = self.predicted_total_ms
        return float("inf") if predicted <= 0 else self.measured_total_ms / predicted

    def layer(self, name: str) -> LayerExecution:
        """The timing entry of one layer."""
        for entry in self.layers:
            if entry.layer == name:
                return entry
        raise KeyError(f"no layer {name!r} in this report")

    def format(self) -> str:
        """Human-readable per-layer report."""
        plural = "s" if self.threads != 1 else ""
        batch = f", batch {self.batch}" if self.batch != 1 else ""
        lines = [
            f"Execution report — {self.model} [{self.strategy}] on {self.platform} "
            f"({self.threads} thread{plural}{batch})",
            f"  measured {self.measured_total_ms:.2f} ms on this host "
            f"({self.conversions_executed}/{self.conversions_planned} planned layout "
            f"conversions executed, costing {self.measured_conversion_ms:.2f} ms)",
            f"  predicted {self.predicted_total_ms:.2f} ms on {self.platform} "
            f"(measured/predicted ratio {self.prediction_ratio:.1f}x)",
            f"  {'layer':<24} {'primitive':<28} {'predicted ms':>13} {'measured ms':>12}",
        ]
        for entry in self.layers:
            primitive = entry.primitive if entry.primitive is not None else "-"
            lines.append(
                f"  {entry.layer:<24} {primitive:<28} "
                f"{entry.predicted_ms:>13.3f} {entry.measured_ms:>12.3f}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"ExecutionReport({self.model!r}, strategy={self.strategy!r}, "
            f"measured={self.measured_total_ms:.2f} ms)"
        )


@dataclass
class Plan:
    """A selection bound to its network and library: the executable handle.

    Produced by :meth:`Session.plan`; :meth:`execute` runs the selected
    instantiation on a real input and reports per-layer measured times,
    layout-conversion accounting and predicted-versus-measured deltas.
    """

    result: SelectionResult
    network: Network
    library: PrimitiveLibrary
    dt_graph: DTGraph

    # -- passthroughs -------------------------------------------------------------

    @property
    def network_plan(self) -> NetworkPlan:
        """The underlying :class:`~repro.core.plan.NetworkPlan`."""
        return self.result.plan

    @property
    def strategy(self) -> str:
        return self.result.strategy

    @property
    def total_ms(self) -> float:
        """Predicted whole-network time in milliseconds."""
        return self.result.total_ms

    def summary(self) -> str:
        """The plan's selection table (see :meth:`NetworkPlan.summary`)."""
        return self.network_plan.summary()

    # -- execution ----------------------------------------------------------------

    def input_shape(self) -> Tuple[int, int, int]:
        """The CHW shape the network's input layer expects."""
        for layer in self.network.topological_order():
            if isinstance(layer, InputLayer):
                return layer.shape
        raise ValueError(f"network {self.network.name!r} has no input layer")

    def executor(self, seed: int = 0) -> NetworkExecutor:
        """A fresh executor for this plan (weights seeded deterministically)."""
        return NetworkExecutor(
            self.network, self.network_plan, self.library, seed=seed
        )

    def execute(
        self,
        input: Optional[np.ndarray] = None,
        seed: int = 0,
        keep_outputs: bool = False,
    ) -> ExecutionReport:
        """Run one forward pass and report measured against predicted costs.

        Parameters
        ----------
        input:
            CHW input tensor (or an ``(N, C, H, W)`` minibatch); a
            deterministic random input (from ``seed``) of the right shape is
            generated when omitted — batched when the plan was selected for a
            batch larger than one.
        seed:
            Seed for the weight store and the generated input, so two plans
            executed with the same seed compute over identical weights.
        keep_outputs:
            Keep every layer's output tensor on the returned trace.
        """
        if input is None:
            shape = self.input_shape()
            if self.result.batch > 1:
                shape = (self.result.batch,) + shape
            input = (
                np.random.default_rng(seed)
                .standard_normal(shape)
                .astype(np.float32)
            )
        else:
            # The report compares measured times against the plan's predicted
            # costs, which were priced for result.batch images — a mismatched
            # input would silently skew every predicted-vs-measured number.
            input = np.asarray(input)
            input_batch = input.shape[0] if input.ndim == 4 else 1
            if input_batch != self.result.batch:
                raise ValueError(
                    f"input carries {input_batch} image(s) but this plan was "
                    f"priced for batch {self.result.batch}; select with "
                    f"batch={input_batch} (or reshape the input) to compare "
                    "like with like"
                )
        output, trace = self.executor(seed=seed).run_traced(
            input, keep_outputs=keep_outputs
        )
        return self._report(output, trace)

    def _report(
        self,
        output: Union[np.ndarray, Dict[str, np.ndarray]],
        trace: ExecutionTrace,
    ) -> ExecutionReport:
        plan = self.network_plan
        layers = [
            LayerExecution(
                layer=name,
                primitive=plan.decision(name).primitive,
                predicted_ms=1e3 * plan.decision(name).cost,
                measured_ms=1e3 * trace.layer_seconds[name],
            )
            for name in trace.layer_order
        ]
        # The primary head is the last output layer in topological order
        # (auxiliary heads branch off earlier in the network).
        output_names = {layer.name for layer in self.network.output_layers()}
        output_layer = ""
        for layer in self.network.topological_order():
            if layer.name in output_names:
                output_layer = layer.name
        # Per-edge conversion accounting.  The carrier of each (producer,
        # target layout) dedup group is the edge finalize_plan attributed the
        # chain's cost to; the executor charges its measured time to the same
        # edge, so predicted and measured land on one consumer.
        planned = plan.conversions()
        chain_groups: Dict[Tuple[str, str], List[int]] = {}
        for index, edge in enumerate(planned):
            chain_groups.setdefault(
                (edge.producer, edge.target_layout.name), []
            ).append(index)
        carriers = {
            max(members, key=lambda i: planned[i].cost) for members in chain_groups.values()
        }
        conversions = [
            ConversionExecution(
                producer=edge.producer,
                consumer=edge.consumer,
                source_layout=edge.source_layout.name,
                target_layout=edge.target_layout.name,
                predicted_ms=1e3 * edge.cost,
                measured_ms=1e3
                * trace.conversion_seconds.get((edge.producer, edge.consumer), 0.0),
                deduplicated=index not in carriers,
            )
            for index, edge in enumerate(planned)
        ]
        return ExecutionReport(
            model=self.result.model,
            platform=self.result.platform,
            threads=self.result.threads,
            strategy=self.result.strategy,
            output=output,
            layers=layers,
            conversions_executed=trace.conversions_executed,
            conversions_planned=len(chain_groups),
            predicted_conversion_ms=1e3 * plan.dt_cost,
            measured_conversion_ms=1e3 * trace.total_conversion_seconds,
            wall_ms=1e3 * trace.wall_seconds,
            batch=trace.batch,
            output_layer=output_layer,
            conversions=conversions,
        )

    # -- persistence --------------------------------------------------------------

    def save(self, path: Union[str, Path]) -> None:
        """Write the underlying plan as JSON (see :mod:`repro.cost.serialize`)."""
        save_plan(self.network_plan, path)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"Plan({self.result.model!r}, strategy={self.strategy!r}, "
            f"predicted={self.total_ms:.2f} ms)"
        )


# ---------------------------------------------------------------------------
# Strategy comparisons
# ---------------------------------------------------------------------------


@dataclass
class ComparisonReport:
    """Every evaluated strategy for one (model, platform, threads), ranked.

    ``results`` is sorted by total predicted cost, fastest first; speedups
    are against the paper's common baseline (single-threaded SUM2D).
    """

    model: str
    platform: str
    threads: int
    baseline: SelectionResult
    results: List[SelectionResult]
    #: Minibatch size every compared selection was priced for.
    batch: int = 1
    #: Numeric precision every compared selection was priced for.
    dtype: str = "fp32"

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    @property
    def best(self) -> SelectionResult:
        """The fastest strategy's result."""
        return self.results[0]

    def speedup(self, result: SelectionResult) -> float:
        """Speedup of one result over the common baseline."""
        return result.speedup_over(self.baseline)

    def rows(self) -> List[Tuple[str, float, float]]:
        """(strategy, total ms, speedup-vs-baseline) rows, fastest first."""
        return [(r.strategy, r.total_ms, self.speedup(r)) for r in self.results]

    def format(self, title: Optional[str] = None) -> str:
        """Render the ranked comparison table."""
        plural = "s" if self.threads != 1 else ""
        batch = f", batch {self.batch}" if self.batch != 1 else ""
        dtype = f", {self.dtype}" if self.dtype != "fp32" else ""
        title = title or (
            f"Strategy comparison — {self.model} on {self.platform}, "
            f"{self.threads} thread{plural}{batch}{dtype}"
        )
        header = f"{'strategy':<20}{'total ms':>12}{'speedup':>10}"
        lines = [title, header, "-" * len(header)]
        for strategy, total_ms, speedup in self.rows():
            lines.append(f"{strategy:<20}{total_ms:>12.2f}{speedup:>9.2f}x")
        lines.append(
            "(sorted by total cost; speedup over the single-threaded "
            f"{self.baseline.strategy} baseline)"
        )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# The session
# ---------------------------------------------------------------------------


class Session:
    """Facade over the full pipeline: costs -> selection -> execution.

    The session owns one primitive library and one DT graph (shared by every
    query), resolves strategies through the registry, and produces cost
    tables through a pluggable :class:`~repro.cost.provider.CostProvider`.
    Profiled contexts are memoized in-process keyed by ``(network
    fingerprint, platform, threads)``; passing ``cache_dir`` wraps the
    provider in a persistent :class:`~repro.cost.store.CostStore`, so warm
    selections also survive process restarts.

    Parameters
    ----------
    library:
        The primitive library (default: the full >80-variant library).
    dt_graph:
        The layout-transformation graph (default: built from the library).
    provider:
        Where cost tables come from (default:
        :class:`~repro.cost.provider.AnalyticalCostProvider`).
    cache_dir:
        If given, persist produced cost tables in this directory (the
        provider is wrapped in a :class:`~repro.cost.store.CostStore` unless
        it already is one).
    """

    def __init__(
        self,
        library: Optional[PrimitiveLibrary] = None,
        dt_graph: Optional[DTGraph] = None,
        provider: Optional[CostProvider] = None,
        cache_dir: Optional[Union[str, Path]] = None,
    ) -> None:
        self.library = library if library is not None else default_primitive_library()
        self.dt_graph = (
            dt_graph
            if dt_graph is not None
            else DTGraph(self.library.layouts_used(), default_transform_library())
        )
        resolved = provider if provider is not None else AnalyticalCostProvider()
        if cache_dir is not None and not isinstance(resolved, CostStore):
            resolved = CostStore(cache_dir, resolved)
        self.provider: CostProvider = resolved
        self._contexts: Dict[Tuple[str, str, int, int, str], SelectionContext] = {}
        self._networks: Dict[str, Network] = {}
        self._stats = _CacheState()
        # The session is shared by every thread of the planning service, so
        # the memoization dictionaries live behind one lock, with a per-key
        # build lock so concurrent misses on the *same* key perform exactly
        # one table build (other keys keep building in parallel).
        self._lock = threading.Lock()
        self._build_locks: Dict[Tuple[str, str, int, int, str], threading.Lock] = {}

    # -- cache plumbing ---------------------------------------------------------

    @property
    def store(self) -> Optional[CostStore]:
        """The persistent cost store, if this session has one."""
        return self.provider if isinstance(self.provider, CostStore) else None

    def _resolve_platform(
        self, platform: PlatformLike
    ) -> Tuple[Optional[Platform], str]:
        """Resolve a platform argument into (Platform or None, platform name).

        ``None`` is allowed for providers that do not price a modelled
        platform (e.g. the host profiler); the provider's name then labels
        the context.
        """
        if platform is None:
            return None, self.provider.name
        if isinstance(platform, Platform):
            return platform, platform.name
        resolved = get_platform(platform)
        return resolved, resolved.name

    def _resolve_network(self, model: ModelLike) -> Tuple[str, Network]:
        """Resolve a model name or network into (fingerprint, network)."""
        if isinstance(model, Network):
            fingerprint = network_fingerprint(model)
            with self._lock:
                return fingerprint, self._networks.setdefault(fingerprint, model)
        # Zoo builders are deterministic, so the name is the fingerprint and
        # the built graph can be shared across thread counts and platforms.
        # Two threads racing here may both build; setdefault keeps exactly
        # one, so every caller shares the same Network object.
        with self._lock:
            network = self._networks.get(model)
        if network is None:
            built = build_model(model)
            with self._lock:
                network = self._networks.setdefault(model, built)
        return model, network

    def _query(
        self,
        fingerprint: str,
        network: Network,
        platform: Optional[Platform],
        platform_name: str,
        threads: int,
        batch: int = 1,
        dtype: str = "fp32",
    ) -> CostQuery:
        return CostQuery(
            network=network,
            fingerprint=fingerprint,
            platform=platform,
            platform_name=platform_name,
            threads=threads,
            library=self.library,
            dt_graph=self.dt_graph,
            batch=batch,
            dtype=dtype,
        )

    def _build_context(
        self,
        fingerprint: str,
        network: Network,
        platform: Optional[Platform],
        platform_name: str,
        threads: int,
        batch: int = 1,
        dtype: str = "fp32",
    ) -> SelectionContext:
        """Build a selection context with tables from the cost provider."""
        query = self._query(
            fingerprint, network, platform, platform_name, threads, batch, dtype
        )
        tables = self.provider.tables(query)
        context = SelectionContext(
            network=network,
            library=self.library,
            dt_graph=self.dt_graph,
            cost_model=self.provider.cost_model(platform),
            platform_name=platform_name,
            threads=threads,
            tables=tables,
            platform=platform,
            batch=batch,
            dtype=dtype,
        )
        if threads != 1:
            # Framework emulations lazily need single-threaded tables; route
            # that rebuild through the provider so a persistent store serves
            # (and captures) it too.
            single = query.with_threads(1)
            context.single_thread_tables_factory = lambda: self.provider.tables(single)
        return context

    def _ensure_context(
        self, key: Tuple[str, str, int, int, str], builder_args: Tuple
    ) -> Tuple[SelectionContext, bool]:
        """Memoized-or-built context for ``key``, built at most once.

        Double-checked: the global lock guards the dictionaries, a per-key
        lock serializes builders of the same key (a thread that waited on the
        build lock finds the context and counts a hit — one table build per
        key no matter how many threads raced for it).
        """
        with self._lock:
            context = self._contexts.get(key)
            if context is not None:
                self._stats.hits += 1
                return context, True
            build_lock = self._build_locks.setdefault(key, threading.Lock())
        with build_lock:
            with self._lock:
                context = self._contexts.get(key)
                if context is not None:
                    self._stats.hits += 1
                    return context, True
            context = self._build_context(*builder_args)
            with self._lock:
                self._stats.misses += 1
                self._contexts[key] = context
            return context, False

    def _lookup(
        self,
        model: ModelLike,
        platform: PlatformLike,
        threads: int,
        batch: int = 1,
        dtype: str = "fp32",
    ) -> Tuple[str, SelectionContext, bool]:
        """Resolve a query to (fingerprint, memoized context, was-cache-hit)."""
        if batch < 1:
            raise ValueError("batch must be >= 1")
        if dtype not in DTYPES:
            raise ValueError(f"unknown dtype {dtype!r}; expected one of {DTYPES}")
        resolved, platform_name = self._resolve_platform(platform)
        fingerprint, network = self._resolve_network(model)
        key = (fingerprint, platform_name, threads, batch, dtype)
        context, hit = self._ensure_context(
            key, (fingerprint, network, resolved, platform_name, threads, batch, dtype)
        )
        return fingerprint, context, hit

    def context_for(
        self,
        model: ModelLike,
        platform: PlatformLike,
        threads: int = 1,
        batch: int = 1,
        dtype: str = "fp32",
    ) -> SelectionContext:
        """The memoized profiled context for one (model, platform, threads, batch, dtype)."""
        return self._lookup(model, platform, threads, batch, dtype)[1]

    def cache_info(self) -> CacheInfo:
        """Hit/miss counters and the number of cached contexts."""
        with self._lock:
            return CacheInfo(
                hits=self._stats.hits,
                misses=self._stats.misses,
                contexts=len(self._contexts),
            )

    def clear_cache(self) -> None:
        """Drop every cached context and reset the statistics.

        The persistent store (if any) is untouched; use
        :meth:`CostStore.clear` to delete on-disk entries.
        """
        with self._lock:
            self._contexts.clear()
            self._networks.clear()
            self._build_locks.clear()
            self._stats = _CacheState()

    # -- selection API ----------------------------------------------------------

    def select(
        self,
        model: ModelLike,
        platform: PlatformLike,
        strategy: str = "pbqp",
        threads: int = 1,
        batch: int = 1,
        dtype: str = "fp32",
    ) -> SelectionResult:
        """Run one strategy for one (model, platform, threads, batch, dtype) combination.

        Raises
        ------
        ValueError
            If the strategy's :meth:`~repro.core.strategies.Strategy.applies_to`
            gate rejects the context's platform (e.g. ``mkldnn`` on ARM).
        """
        chosen = get_strategy(strategy)
        fingerprint, context, from_cache = self._lookup(
            model, platform, threads, batch, dtype
        )
        if not chosen.applies_to(context):
            raise ValueError(
                f"strategy {chosen.name!r} does not apply to platform "
                f"{context.platform_name!r}"
            )
        return SelectionResult(
            model=fingerprint,
            platform=context.platform_name,
            threads=threads,
            strategy=chosen.name,
            plan=chosen.build_plan(context),
            from_cache=from_cache,
            batch=batch,
            dtype=dtype,
        )

    def plan(
        self,
        model: ModelLike,
        platform: PlatformLike,
        strategy: str = "pbqp",
        threads: int = 1,
        batch: int = 1,
        dtype: str = "fp32",
        verify: bool = True,
    ) -> Plan:
        """Select and return an executable :class:`Plan` handle.

        ``verify`` runs the static plan verifier
        (:mod:`repro.analysis.plan_verifier`) over the selected plan and
        raises :class:`~repro.analysis.plan_verifier.PlanVerificationError`
        if any error-severity finding survives — a buggy strategy or cost
        provider is caught here, before anything executes.  Pass
        ``verify=False`` to opt out (e.g. in tight benchmarking loops).
        """
        result = self.select(
            model, platform, strategy=strategy, threads=threads, batch=batch, dtype=dtype
        )
        _, network = self._resolve_network(model)
        if verify:
            from repro.analysis.plan_verifier import raise_for_report, verify_plan

            raise_for_report(
                verify_plan(
                    result.plan,
                    network=network,
                    library=self.library,
                    dt_graph=self.dt_graph,
                    source=f"plan({result.model!r}, {result.platform!r}, {strategy!r})",
                )
            )
        return Plan(
            result=result,
            network=network,
            library=self.library,
            dt_graph=self.dt_graph,
        )

    def run(
        self,
        model: ModelLike,
        platform: PlatformLike,
        strategy: str = "pbqp",
        threads: int = 1,
        batch: int = 1,
        dtype: str = "fp32",
        input: Optional[np.ndarray] = None,
        seed: int = 0,
    ) -> ExecutionReport:
        """One-shot plan-and-execute: select, run a forward pass, and report.

        With ``batch > 1`` the selection is priced for that minibatch size
        and the forward pass runs on an ``(N, C, H, W)`` input.  With a
        quantized ``dtype`` the selection is priced (and gated) at that
        precision and the executor runs the primitives through their
        quantized compute paths.
        """
        return self.plan(
            model, platform, strategy=strategy, threads=threads, batch=batch, dtype=dtype
        ).execute(input=input, seed=seed)

    def plan_frontier(
        self,
        model: ModelLike,
        platform: PlatformLike,
        threads: int = 1,
        batch: int = 1,
        constraints: Optional[Dict[str, float]] = None,
        seed: int = 0,
        budget_steps: int = DEFAULT_BUDGET_STEPS,
        dtypes: Optional[Sequence[str]] = None,
    ) -> Frontier:
        """Build the multi-objective Pareto frontier of whole-network plans.

        Reuses the memoized profiled context (the frontier's many PBQP
        solves share one set of cost tables), so a warm session pays no
        re-profiling.  ``constraints`` takes ``{objective}_max`` keys over
        ``time_ms`` / ``peak_workspace_bytes`` / ``energy_proxy_j`` /
        ``accuracy_proxy``; a workspace bound additionally directs an
        epsilon-constraint solve at exactly that budget.

        ``dtypes`` names the precisions competing on the front (default: all
        of :data:`~repro.graph.scenario.DTYPES`).  The first entry is the
        base context; every other precision contributes its own PBQP plan,
        so accuracy-vs-speed becomes a genuine front axis — pass
        ``("fp32",)`` for the pre-precision single-dtype behaviour.  The
        result is deterministic — byte-identical serialization for a fixed
        ``seed``.
        """
        chosen = tuple(dtypes) if dtypes is not None else DTYPES
        if not chosen:
            raise ValueError("dtypes must name at least one precision")
        context = self.context_for(model, platform, threads, batch, chosen[0])
        dtype_contexts = {
            dtype: self.context_for(model, platform, threads, batch, dtype)
            for dtype in chosen[1:]
        }
        return build_frontier(
            context,
            constraints=constraints,
            seed=seed,
            budget_steps=budget_steps,
            dtype_contexts=dtype_contexts or None,
        )

    def plan_from_file(
        self,
        path: Union[str, Path],
        network: Optional[Network] = None,
        verify: bool = True,
    ) -> Plan:
        """Rebuild an executable :class:`Plan` from a saved plan document.

        The network is rebuilt from the model zoo by the plan's recorded
        network name unless an explicit ``network`` is passed.  ``verify``
        statically checks the raw document first (hand-edited or corrupt
        files are refused with a structured
        :class:`~repro.analysis.plan_verifier.PlanVerificationError` listing
        every problem at once); pass ``verify=False`` to load it anyway.

        A stale-format document (``repro/plan/v1``, which double-prices
        shared fan-out conversion chains) is re-finalized through
        :func:`~repro.cost.serialize.upgrade_plan_document` before
        verification, so old files load with corrected, executor-matching
        totals instead of being served (or refused) verbatim.
        """
        from repro.cost.serialize import LEGACY_PLAN_FORMATS, upgrade_plan_document

        document = json.loads(Path(path).read_text())
        if isinstance(document, dict) and document.get("format") in LEGACY_PLAN_FORMATS:
            document = upgrade_plan_document(document)
        if verify:
            from repro.analysis.plan_verifier import raise_for_report, verify_document

            raise_for_report(
                verify_document(
                    document,
                    source=str(path),
                    network=network,
                    library=self.library,
                    dt_graph=self.dt_graph,
                )
            )
        if not isinstance(document, dict):
            raise ValueError(f"plan document {path} is not a JSON object")
        network_plan = plan_from_dict(document, self.dt_graph)
        if network is None:
            _, network = self._resolve_network(network_plan.network_name)
        elif network.name != network_plan.network_name:
            raise ValueError(
                f"plan was saved for network {network_plan.network_name!r}, "
                f"got {network.name!r}"
            )
        result = SelectionResult(
            model=network_plan.network_name,
            platform=network_plan.platform_name,
            threads=network_plan.threads,
            strategy=network_plan.strategy,
            plan=network_plan,
            from_cache=False,
            batch=network_plan.batch,
            dtype=network_plan.dtype,
        )
        return Plan(
            result=result,
            network=network,
            library=self.library,
            dt_graph=self.dt_graph,
        )

    def _select_all(
        self,
        model: ModelLike,
        platform: PlatformLike,
        threads: int,
        strategies: Optional[Sequence[str]],
        include_frameworks: bool,
        batch: int = 1,
        dtype: str = "fp32",
    ) -> List[SelectionResult]:
        """Select with every applicable strategy (or a named subset), in
        registration order, against one shared profiled context."""
        context = self.context_for(model, platform, threads, batch, dtype)
        if strategies is None:
            chosen: List[Strategy] = applicable_strategies(
                context, include_frameworks=include_frameworks
            )
        else:
            chosen = [get_strategy(name) for name in strategies]
        return [
            self.select(
                model,
                platform,
                strategy=strategy.name,
                threads=threads,
                batch=batch,
                dtype=dtype,
            )
            for strategy in chosen
        ]

    def compare(
        self,
        model: ModelLike,
        platform: PlatformLike,
        threads: int = 1,
        strategies: Optional[Sequence[str]] = None,
        include_frameworks: bool = True,
        batch: int = 1,
        dtype: str = "fp32",
    ) -> ComparisonReport:
        """Evaluate every applicable strategy (or a named subset), ranked.

        All strategies share one profiled context, so the whole sweep pays
        for profiling exactly once; the returned report is sorted by total
        cost and carries speedups over the common single-threaded SUM2D
        baseline (priced at the same batch and dtype, so speedups compare
        like with like).
        """
        results = self._select_all(
            model, platform, threads, strategies, include_frameworks, batch, dtype
        )
        baseline = self.baseline(model, platform, batch=batch, dtype=dtype)
        return ComparisonReport(
            model=baseline.model,
            platform=self.context_for(model, platform, threads, batch, dtype).platform_name,
            threads=threads,
            baseline=baseline,
            results=sorted(results, key=lambda result: result.total_ms),
            batch=batch,
            dtype=dtype,
        )

    def select_many(
        self,
        requests: Iterable[Union[SelectionRequest, Tuple]],
        max_workers: Optional[int] = None,
    ) -> List[SelectionResult]:
        """Batch entry point over (model, platform, strategy, threads) combos.

        Accepts :class:`SelectionRequest` objects or plain tuples in the same
        field order.  Requests are grouped by their ``(network fingerprint,
        platform, threads)`` context key; each *distinct* cold context is
        profiled once, on a thread pool when there is more than one, and the
        per-request selections then run against the warm cache.  Results are
        returned in request order.
        """
        normalized = [
            request if isinstance(request, SelectionRequest) else SelectionRequest(*request)
            for request in requests
        ]
        pending: Dict[Tuple[str, str, int, int, str], Tuple] = {}
        for request in normalized:
            resolved, platform_name = self._resolve_platform(request.platform)
            fingerprint, network = self._resolve_network(request.model)
            key = (
                fingerprint,
                platform_name,
                request.threads,
                request.batch,
                request.dtype,
            )
            with self._lock:
                cached = key in self._contexts
            if not cached and key not in pending:
                pending[key] = (
                    fingerprint,
                    network,
                    resolved,
                    platform_name,
                    request.threads,
                    request.batch,
                    request.dtype,
                )
        # _ensure_context dedups per key, so a request mix that races with
        # other session users still performs one build per distinct context.
        if len(pending) == 1 or max_workers == 1:
            for key, args in pending.items():
                self._ensure_context(key, args)
        elif pending:
            with ThreadPoolExecutor(max_workers=max_workers) as pool:
                futures = [
                    pool.submit(self._ensure_context, key, args)
                    for key, args in pending.items()
                ]
            for future in futures:
                future.result()
        return [
            self.select(
                request.model,
                request.platform,
                strategy=request.strategy,
                threads=request.threads,
                batch=request.batch,
                dtype=request.dtype,
            )
            for request in normalized
        ]

    def baseline(
        self,
        model: ModelLike,
        platform: PlatformLike,
        batch: int = 1,
        dtype: str = "fp32",
    ) -> SelectionResult:
        """The common speedup baseline: single-threaded SUM2D (at ``batch``/``dtype``)."""
        return self.select(
            model, platform, strategy=BASELINE_STRATEGY, threads=1, batch=batch, dtype=dtype
        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        info = self.cache_info()
        return (
            f"{type(self).__name__}(provider={self.provider.name!r}, "
            f"contexts={info.contexts}, hits={info.hits}, misses={info.misses})"
        )


class Engine(Session):
    """The PR-1 facade, kept as a thin shim over :class:`Session`.

    .. deprecated::
        New code should use :class:`Session`, which additionally exposes
        :meth:`~Session.plan` / :meth:`~Session.run` (execution) and
        persistent cost tables via ``cache_dir``.  ``Engine`` preserves two
        PR-1 behaviours exactly: :meth:`compare` returns a plain list in
        strategy-registration order (a :class:`Session` returns a
        :class:`ComparisonReport` ranked by total cost), and
        :meth:`select_many` profiles sequentially.
    """

    def compare(
        self,
        model: ModelLike,
        platform: PlatformLike,
        threads: int = 1,
        strategies: Optional[Sequence[str]] = None,
        include_frameworks: bool = True,
    ) -> List[SelectionResult]:
        """Run every applicable strategy; results in registration order."""
        return self._select_all(
            model, platform, threads, strategies, include_frameworks
        )

    def select_many(
        self, requests: Iterable[Union[SelectionRequest, Tuple]]
    ) -> List[SelectionResult]:
        """Sequential batch selection (PR-1 semantics)."""
        results: List[SelectionResult] = []
        for request in requests:
            if not isinstance(request, SelectionRequest):
                request = SelectionRequest(*request)
            results.append(
                self.select(
                    request.model,
                    request.platform,
                    strategy=request.strategy,
                    threads=request.threads,
                    batch=request.batch,
                )
            )
        return results
