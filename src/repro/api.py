"""High-level selection API: the :class:`Engine` facade.

The paper's workflow is "profile once, select many": the cost tables for one
(network, platform, thread-count) are profiled ahead of time and then drive
any number of selection queries.  :class:`Engine` packages that workflow
behind two calls:

>>> from repro.api import Engine
>>> engine = Engine()
>>> result = engine.select("alexnet", "intel-haswell")          # doctest: +SKIP
>>> rows = engine.compare("alexnet", "intel-haswell", threads=4)  # doctest: +SKIP

The engine memoizes the profiled :class:`~repro.core.selector.SelectionContext`
(and therefore the cost tables) keyed by ``(network fingerprint, platform,
threads)``, so repeated selections — a second strategy, a re-run, a whole
``compare`` sweep — skip re-profiling entirely.  Strategies are resolved
through the :data:`~repro.core.strategies.STRATEGIES` registry, so a newly
registered strategy is immediately selectable by name.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.plan import NetworkPlan
from repro.core.selector import SelectionContext
from repro.core.strategies import (
    BASELINE_STRATEGY,
    Strategy,
    applicable_strategies,
    get_strategy,
)
from repro.cost.platform import PLATFORMS, Platform
from repro.cost.serialize import plan_from_dict, plan_to_dict
from repro.graph.network import Network
from repro.layouts.dt_graph import DTGraph
from repro.layouts.transforms import default_transform_library
from repro.models import build_model
from repro.primitives.registry import PrimitiveLibrary, default_primitive_library

#: Serialization format identifier for selection results.
RESULT_FORMAT = "repro/selection-result/v1"

ModelLike = Union[str, Network]
PlatformLike = Union[str, Platform]


def network_fingerprint(network: Network) -> str:
    """A stable structural fingerprint of a network.

    Two networks with the same layers (names, kinds and parameters) and the
    same data-flow edges share a fingerprint, so structurally identical
    builds hit the same engine cache entry regardless of object identity.
    """
    parts: List[str] = [network.name]
    for layer in network.topological_order():
        fields = dataclasses.asdict(layer)
        described = ",".join(f"{key}={fields[key]!r}" for key in sorted(fields))
        inputs = ",".join(network.inputs_of(layer.name))
        parts.append(f"{type(layer).__name__}({described})<-[{inputs}]")
    digest = hashlib.sha256("|".join(parts).encode()).hexdigest()
    return f"{network.name}:{digest[:16]}"


@dataclass(frozen=True)
class SelectionRequest:
    """One (model, platform, strategy, threads) combination for :meth:`Engine.select_many`."""

    model: ModelLike
    platform: PlatformLike
    strategy: str = "pbqp"
    threads: int = 1


@dataclass
class SelectionResult:
    """The outcome of one engine selection: the plan plus its provenance."""

    model: str
    platform: str
    threads: int
    strategy: str
    plan: NetworkPlan
    #: Whether the profiled context (cost tables) was reused from the cache.
    from_cache: bool = False

    @property
    def total_ms(self) -> float:
        """Whole-network time of the selected plan in milliseconds."""
        return self.plan.total_ms

    def speedup_over(self, baseline: "SelectionResult") -> float:
        """Speedup of this result's plan over another result's plan."""
        return self.plan.speedup_over(baseline.plan)

    def to_dict(self) -> dict:
        """Convert to a JSON-serializable document (plan via :mod:`repro.cost.serialize`)."""
        return {
            "format": RESULT_FORMAT,
            "model": self.model,
            "platform": self.platform,
            "threads": self.threads,
            "strategy": self.strategy,
            "plan": plan_to_dict(self.plan),
        }

    @classmethod
    def from_dict(cls, document: dict, dt_graph: DTGraph) -> "SelectionResult":
        """Rebuild a result from :meth:`to_dict` output (chains resolved via ``dt_graph``)."""
        if document.get("format") != RESULT_FORMAT:
            raise ValueError(f"unexpected selection-result format {document.get('format')!r}")
        return cls(
            model=document["model"],
            platform=document["platform"],
            threads=int(document["threads"]),
            strategy=document["strategy"],
            plan=plan_from_dict(document["plan"], dt_graph),
            from_cache=False,
        )


@dataclass(frozen=True)
class CacheInfo:
    """Statistics of the engine's context cache."""

    hits: int
    misses: int
    contexts: int


@dataclass
class _CacheState:
    hits: int = 0
    misses: int = 0


class Engine:
    """Facade over the registry: profile-once, select-many primitive selection.

    The engine owns one primitive library and one DT graph (shared by every
    selection, like the test suite's session fixtures) and memoizes profiled
    selection contexts keyed by ``(network fingerprint, platform, threads)``.
    Building the cost tables is by far the most expensive step of a query, so
    a warm engine answers repeated selections orders of magnitude faster than
    the one-shot :func:`repro.core.selector.select_primitives` path.
    """

    def __init__(
        self,
        library: Optional[PrimitiveLibrary] = None,
        dt_graph: Optional[DTGraph] = None,
    ) -> None:
        self.library = library if library is not None else default_primitive_library()
        self.dt_graph = (
            dt_graph
            if dt_graph is not None
            else DTGraph(self.library.layouts_used(), default_transform_library())
        )
        self._contexts: Dict[Tuple[str, str, int], SelectionContext] = {}
        self._networks: Dict[str, Network] = {}
        self._stats = _CacheState()

    # -- cache plumbing ---------------------------------------------------------

    def _resolve_platform(self, platform: PlatformLike) -> Platform:
        if isinstance(platform, Platform):
            return platform
        try:
            return PLATFORMS[platform]
        except KeyError:
            raise KeyError(
                f"unknown platform {platform!r}; available platforms: {sorted(PLATFORMS)}"
            ) from None

    def _resolve_network(self, model: ModelLike) -> Tuple[str, Network]:
        """Resolve a model name or network into (fingerprint, network)."""
        if isinstance(model, Network):
            fingerprint = network_fingerprint(model)
            self._networks.setdefault(fingerprint, model)
            return fingerprint, self._networks[fingerprint]
        # Zoo builders are deterministic, so the name is the fingerprint and
        # the built graph can be shared across thread counts and platforms.
        if model not in self._networks:
            self._networks[model] = build_model(model)
        return model, self._networks[model]

    def _lookup(
        self, model: ModelLike, platform: PlatformLike, threads: int
    ) -> Tuple[str, SelectionContext, bool]:
        """Resolve a query to (fingerprint, memoized context, was-cache-hit)."""
        resolved = self._resolve_platform(platform)
        fingerprint, network = self._resolve_network(model)
        key = (fingerprint, resolved.name, threads)
        context = self._contexts.get(key)
        if context is None:
            self._stats.misses += 1
            context = SelectionContext.create(
                network,
                platform=resolved,
                library=self.library,
                dt_graph=self.dt_graph,
                threads=threads,
            )
            self._contexts[key] = context
            return fingerprint, context, False
        self._stats.hits += 1
        return fingerprint, context, True

    def context_for(
        self, model: ModelLike, platform: PlatformLike, threads: int = 1
    ) -> SelectionContext:
        """The memoized profiled context for one (model, platform, threads)."""
        return self._lookup(model, platform, threads)[1]

    def cache_info(self) -> CacheInfo:
        """Hit/miss counters and the number of cached contexts."""
        return CacheInfo(
            hits=self._stats.hits,
            misses=self._stats.misses,
            contexts=len(self._contexts),
        )

    def clear_cache(self) -> None:
        """Drop every cached context and reset the statistics."""
        self._contexts.clear()
        self._networks.clear()
        self._stats = _CacheState()

    # -- selection API ----------------------------------------------------------

    def select(
        self,
        model: ModelLike,
        platform: PlatformLike,
        strategy: str = "pbqp",
        threads: int = 1,
    ) -> SelectionResult:
        """Run one strategy for one (model, platform, threads) combination.

        Raises
        ------
        ValueError
            If the strategy's :meth:`~repro.core.strategies.Strategy.applies_to`
            gate rejects the context's platform (e.g. ``mkldnn`` on ARM).
        """
        chosen = get_strategy(strategy)
        fingerprint, context, from_cache = self._lookup(model, platform, threads)
        if not chosen.applies_to(context):
            raise ValueError(
                f"strategy {chosen.name!r} does not apply to platform "
                f"{context.platform_name!r}"
            )
        return SelectionResult(
            model=fingerprint,
            platform=context.platform_name,
            threads=threads,
            strategy=chosen.name,
            plan=chosen.build_plan(context),
            from_cache=from_cache,
        )

    def compare(
        self,
        model: ModelLike,
        platform: PlatformLike,
        threads: int = 1,
        strategies: Optional[Sequence[str]] = None,
        include_frameworks: bool = True,
    ) -> List[SelectionResult]:
        """Run every applicable registered strategy (or a named subset).

        All strategies share one profiled context, so the whole sweep pays
        for profiling exactly once.
        """
        context = self.context_for(model, platform, threads)
        if strategies is None:
            chosen: List[Strategy] = applicable_strategies(
                context, include_frameworks=include_frameworks
            )
        else:
            chosen = [get_strategy(name) for name in strategies]
        return [
            self.select(model, platform, strategy=strategy.name, threads=threads)
            for strategy in chosen
        ]

    def select_many(
        self, requests: Iterable[Union[SelectionRequest, Tuple]]
    ) -> List[SelectionResult]:
        """Batch entry point over (model, platform, strategy, threads) combos.

        Accepts :class:`SelectionRequest` objects or plain tuples in the same
        field order.  Requests sharing a (model, platform, threads) key reuse
        one profiled context via the cache.
        """
        results: List[SelectionResult] = []
        for request in requests:
            if not isinstance(request, SelectionRequest):
                request = SelectionRequest(*request)
            results.append(
                self.select(
                    request.model,
                    request.platform,
                    strategy=request.strategy,
                    threads=request.threads,
                )
            )
        return results

    def baseline(
        self, model: ModelLike, platform: PlatformLike
    ) -> SelectionResult:
        """The common speedup baseline: single-threaded SUM2D."""
        return self.select(model, platform, strategy=BASELINE_STRATEGY, threads=1)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        info = self.cache_info()
        return (
            f"Engine(contexts={info.contexts}, hits={info.hits}, misses={info.misses})"
        )
