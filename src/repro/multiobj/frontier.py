"""Pareto frontiers over whole-network plans.

The scalar PBQP selector answers "what is the fastest instantiation of this
network?".  The frontier answers the deployment question behind it: *what are
the best achievable trade-offs between time, peak scratch memory and energy,
and which plan should I ship under my budgets?*

Candidate whole-network plans come from three generators, in priority order:

1. **Seed strategies** — the scalar PBQP plan first (so the frontier's
   min-time point is exactly the paper's plan), then every applicable
   non-framework baseline (per-family greedy, local-optimal, ...).
2. **Epsilon-constraint solves** — peak workspace is a *max* over layers, so
   pruning every primitive whose workspace exceeds a cap and re-running PBQP
   encodes a peak-workspace budget *exactly*; sweeping the cap over the
   distinct per-primitive workspace levels walks the time/memory trade-off.
3. **Weighted scalarization solves** — PBQP over normalized weighted sums of
   the three objectives.  Approximate for the max-type memory objective (a
   sum of per-layer workspaces is not the peak), so these are candidate
   *generators* only: every candidate is re-evaluated with its exact
   :meth:`~repro.core.plan.NetworkPlan.cost_vector` before the nondominated
   sort.

Duplicates (same per-layer decisions) are removed, candidates are evaluated
exactly, and :func:`~repro.multiobj.pareto._pareto_front` keeps the
nondominated set.  Decisions over the front (``knee``, ``min_time_under``,
``lexicographic``) use seeded deterministic tie-breaking, and the serialized
frontier is byte-identical across runs for a fixed seed.
"""

from __future__ import annotations

import dataclasses
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.legalize import finalize_plan
from repro.core.plan import NetworkPlan
from repro.core.selector import PBQPSelector, SelectionContext
from repro.core.strategies import applicable_strategies
from repro.cost.serialize import plan_from_dict, plan_to_dict
from repro.layouts.dt_graph import DTGraph
from repro.layouts.layout import CHW, Layout
from repro.multiobj.pareto import (
    _pareto_front,
    knee_index,
    lexicographic_index,
    min_time_under_index,
)
from repro.multiobj.vector import OBJECTIVES, CostVector

FRONTIER_FORMAT = "repro/frontier/v1"

#: (time, workspace, energy) weight triples of the scalarization generator.
#: Time keeps a non-zero weight except where energy is non-zero: an edge with
#: no reachable conversion must stay infinitely expensive under every triple,
#: and edges carry only time and energy.
SCALARIZATION_WEIGHTS: Tuple[Tuple[float, float, float], ...] = (
    (1.0, 0.0, 0.0),
    (0.7, 0.3, 0.0),
    (0.7, 0.0, 0.3),
    (0.5, 0.25, 0.25),
    (0.34, 0.33, 0.33),
    (0.2, 0.4, 0.4),
    (0.1, 0.0, 0.9),
)

#: Default number of epsilon-constraint workspace caps swept per build.
DEFAULT_BUDGET_STEPS = 8


@dataclass
class FrontierPoint:
    """One nondominated plan with its exact objective vector."""

    plan: NetworkPlan
    vector: CostVector
    #: Which generator produced the plan (``"strategy:pbqp"``,
    #: ``"cap:<bytes>"``, ``"weights:t/m/e"``).
    generator: str

    def to_dict(self) -> dict:
        return {
            "generator": self.generator,
            "vector": self.vector.to_dict(),
            "plan": plan_to_dict(self.plan),
        }

    @classmethod
    def from_dict(cls, document: dict, dt_graph: DTGraph) -> "FrontierPoint":
        return cls(
            plan=plan_from_dict(document["plan"], dt_graph),
            vector=CostVector.from_dict(document["vector"]),
            generator=document["generator"],
        )


@dataclass
class Frontier:
    """The Pareto front of whole-network plans for one selection context."""

    network_name: str
    platform_name: str
    threads: int
    batch: int
    seed: int
    #: Nondominated points, sorted by ascending time (stable, so among
    #: equal-time points the higher-priority generator comes first).
    points: List[FrontierPoint] = field(default_factory=list)
    #: ``{objective}_max`` bounds the frontier was built under (advisory:
    #: candidates violating them are still kept on the front so the budget
    #: sweep can show what the budget costs; decisions apply them strictly).
    constraints: Dict[str, float] = field(default_factory=dict)
    #: How many distinct candidate plans were evaluated.
    candidates_evaluated: int = 0
    #: How many evaluated candidates were dominated (or duplicates).
    dominated_count: int = 0
    #: Wall-clock seconds spent building the frontier (all PBQP solves).
    solve_seconds: float = 0.0

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    # -- decisions --------------------------------------------------------------

    def min_time(self) -> FrontierPoint:
        """The unconstrained fastest point (the scalar PBQP plan)."""
        if not self.points:
            raise ValueError("frontier is empty")
        return self.points[0]

    def knee(self) -> FrontierPoint:
        """The knee point: closest to the per-objective ideal (seeded ties)."""
        vectors = [point.vector for point in self.points]
        return self.points[knee_index(vectors, seed=self.seed)]

    def min_time_under(
        self, constraints: Optional[Dict[str, float]] = None
    ) -> Optional[FrontierPoint]:
        """Fastest point satisfying ``{objective}_max`` bounds (or ``None``).

        Defaults to the constraints the frontier was built with.
        """
        bounds = constraints if constraints is not None else self.constraints
        vectors = [point.vector for point in self.points]
        index = min_time_under_index(vectors, bounds, seed=self.seed)
        return None if index is None else self.points[index]

    def lexicographic(self, order: Sequence[str] = OBJECTIVES) -> FrontierPoint:
        """Minimum under a most-important-first objective ordering."""
        vectors = [point.vector for point in self.points]
        return self.points[lexicographic_index(vectors, order=order, seed=self.seed)]

    def select(
        self,
        mode: str = "knee",
        constraints: Optional[Dict[str, float]] = None,
        order: Sequence[str] = OBJECTIVES,
    ) -> dict:
        """ECC-selector shaped decision: pareto set, best point, decision record.

        ``mode`` is ``"knee"``, ``"min_time_under"`` or ``"lexicographic"``.
        ``min_time_under`` falls back to the knee (recorded in the decision)
        when no point satisfies the constraints.
        """
        if mode == "knee":
            best: Optional[FrontierPoint] = self.knee()
            decision = {"mode": "knee", "seed": self.seed}
        elif mode == "min_time_under":
            best = self.min_time_under(constraints)
            if best is None:
                best = self.knee()
                decision = {
                    "mode": "knee",
                    "seed": self.seed,
                    "fallback_from": "min_time_under",
                }
            else:
                decision = {"mode": "min_time_under", "seed": self.seed}
        elif mode == "lexicographic":
            best = self.lexicographic(order)
            decision = {"mode": "lexicographic", "seed": self.seed, "order": list(order)}
        else:
            raise ValueError(
                f"unknown decision mode {mode!r}; expected 'knee', "
                "'min_time_under' or 'lexicographic'"
            )
        return {"pareto": list(self.points), "best": best, "decision": decision}

    # -- reporting --------------------------------------------------------------

    def format(self) -> str:
        """Human-readable frontier table."""
        plural = "s" if self.threads != 1 else ""
        batch = f", batch {self.batch}" if self.batch != 1 else ""
        lines = [
            f"Pareto frontier — {self.network_name} on {self.platform_name} "
            f"({self.threads} thread{plural}{batch}, seed {self.seed})",
            f"  {len(self.points)} nondominated of {self.candidates_evaluated} "
            f"candidate plans ({self.solve_seconds * 1e3:.0f} ms to build)",
            f"  {'time ms':>10} {'workspace KiB':>14} {'energy mJ':>10} "
            f"{'acc loss':>9} {'dtype':>5}  generator",
        ]
        for point in self.points:
            vector = point.vector
            lines.append(
                f"  {vector.time_ms:>10.2f} "
                f"{vector.peak_workspace_bytes / 1024.0:>14.1f} "
                f"{vector.energy_proxy_j * 1e3:>10.3f} "
                f"{vector.accuracy_proxy:>9.5f} "
                f"{point.plan.dtype:>5}  {point.generator}"
            )
        return "\n".join(lines)

    # -- serialization ----------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "format": FRONTIER_FORMAT,
            "network": self.network_name,
            "platform": self.platform_name,
            "threads": self.threads,
            "batch": self.batch,
            "seed": self.seed,
            "constraints": dict(self.constraints),
            "candidates_evaluated": self.candidates_evaluated,
            "dominated_count": self.dominated_count,
            "points": [point.to_dict() for point in self.points],
        }

    def to_json(self) -> str:
        """Canonical JSON: key-sorted and without volatile fields.

        ``solve_seconds`` is deliberately excluded so the output is
        byte-identical across runs under a fixed seed.
        """
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(self.to_json())

    @classmethod
    def from_dict(cls, document: dict, dt_graph: DTGraph) -> "Frontier":
        if document.get("format") != FRONTIER_FORMAT:
            raise ValueError(
                f"unexpected frontier format {document.get('format')!r} "
                f"(expected {FRONTIER_FORMAT!r})"
            )
        return cls(
            network_name=document["network"],
            platform_name=document["platform"],
            threads=int(document["threads"]),
            batch=int(document.get("batch", 1)),
            seed=int(document.get("seed", 0)),
            points=[
                FrontierPoint.from_dict(entry, dt_graph)
                for entry in document["points"]
            ],
            constraints={
                key: float(value)
                for key, value in document.get("constraints", {}).items()
            },
            candidates_evaluated=int(document.get("candidates_evaluated", 0)),
            dominated_count=int(document.get("dominated_count", 0)),
        )

    @classmethod
    def load(cls, path: Union[str, Path], dt_graph: DTGraph) -> "Frontier":
        return cls.from_dict(json.loads(Path(path).read_text()), dt_graph)


# ---------------------------------------------------------------------------
# Candidate generation
# ---------------------------------------------------------------------------


def _solve_with_tables(
    context: SelectionContext, modified: SelectionContext, label: str
) -> Optional[NetworkPlan]:
    """Solve PBQP on ``modified`` tables, finalize against the *original* ones.

    The modified tables steer the search (gated or scalarized costs); the
    returned plan's decisions are re-priced from the true tables so its cost
    vector is exact.  Returns ``None`` when the gated instance is infeasible.
    """
    selector = PBQPSelector()
    graph, id_to_layer = selector.build_pbqp(modified)
    solution = selector.solver.solve(graph)

    conv_primitives: Dict[str, str] = {}
    wildcard_layouts: Dict[str, Layout] = {}
    layout_by_name = {layout.name: layout for layout in context.dt_graph.layouts}
    layout_by_name.setdefault(CHW.name, CHW)
    for node_id, index in solution.assignment.items():
        layer_name = id_to_layer.get(node_id)
        if layer_name is None:
            continue  # auxiliary fan-out conversion node, not a layer decision
        layer = context.network.layer(layer_name)
        candidate_label = graph.node(node_id).label_of(index)
        if layer.is_convolution:
            conv_primitives[layer_name] = candidate_label
        else:
            wildcard_layouts[layer_name] = layout_by_name[candidate_label]
    plan = finalize_plan(context, "frontier", conv_primitives, wildcard_layouts)
    plan.metadata["generator"] = label
    return plan


def _workspace_gated_tables(context: SelectionContext, cap_bytes: float):
    """Tables with every primitive above the per-layer workspace cap pruned.

    Returns ``None`` when some layer would lose all of its primitives — the
    cap is below that layer's lowest-workspace alternative, so the PBQP
    instance is infeasible.
    """
    tables = context.tables
    gated: Dict[str, Dict[str, float]] = {}
    for layer, costs in tables.node_costs.items():
        keep = {
            name: cost
            for name, cost in costs.items()
            if tables.primitive_workspace(layer, name) <= cap_bytes
        }
        if not keep:
            return None
        gated[layer] = keep
    return dataclasses.replace(tables, node_costs=gated)


def _scalarized_tables(
    context: SelectionContext, weights: Tuple[float, float, float]
):
    """Tables whose node and edge costs are normalized weighted sums."""
    tables = context.tables
    w_time, w_mem, w_energy = weights
    time_scale = max(
        (cost for costs in tables.node_costs.values() for cost in costs.values()),
        default=1.0,
    )
    mem_scale = max(
        (
            tables.primitive_workspace(layer, name)
            for layer, costs in tables.node_costs.items()
            for name in costs
        ),
        default=1.0,
    )
    energy_scale = max(
        (
            tables.primitive_energy(layer, name)
            for layer, costs in tables.node_costs.items()
            for name in costs
        ),
        default=1.0,
    )
    time_scale = time_scale or 1.0
    mem_scale = mem_scale or 1.0
    energy_scale = energy_scale or 1.0

    def scal(weight: float, value: float, scale: float) -> float:
        # 0 * inf is NaN; an objective with zero weight contributes nothing.
        return 0.0 if weight == 0.0 else weight * value / scale

    node_costs = {
        layer: {
            name: (
                scal(w_time, cost, time_scale)
                + scal(w_mem, tables.primitive_workspace(layer, name), mem_scale)
                + scal(w_energy, tables.primitive_energy(layer, name), energy_scale)
            )
            for name, cost in costs.items()
        }
        for layer, costs in tables.node_costs.items()
    }
    dt_costs = {}
    for shape, pairs in tables.dt_costs.items():
        scaled = {}
        for pair, cost in pairs.items():
            if cost == float("inf"):
                # No conversion chain: illegal under every weighting.
                scaled[pair] = float("inf")
            else:
                energy = tables.dt_energy.get(shape, {}).get(pair, 0.0)
                scaled[pair] = scal(w_time, cost, time_scale) + scal(
                    w_energy, energy, energy_scale
                )
        dt_costs[shape] = scaled
    return dataclasses.replace(tables, node_costs=node_costs, dt_costs=dt_costs)


def workspace_levels(context: SelectionContext) -> List[float]:
    """The feasible peak-workspace caps, lowest first.

    The floor is the lowest achievable peak (every layer takes its smallest-
    workspace primitive); levels are the distinct per-primitive workspace
    values at or above it — exactly the caps at which the gated PBQP instance
    changes.
    """
    tables = context.tables
    floor = max(
        min(
            tables.primitive_workspace(layer, name) for name in costs
        )
        for layer, costs in tables.node_costs.items()
    )
    distinct = {
        tables.primitive_workspace(layer, name)
        for layer, costs in tables.node_costs.items()
        for name in costs
    }
    return sorted({floor} | {value for value in distinct if value >= floor})


def solve_under_workspace_cap(
    context: SelectionContext, cap_bytes: float
) -> Optional[NetworkPlan]:
    """The fastest plan whose peak workspace stays at or under ``cap_bytes``.

    One epsilon-constraint solve: primitives above the per-layer cap are
    pruned and PBQP runs on the gated tables (exact, because peak workspace
    is a max over layers).  Returns ``None`` when the cap is infeasible —
    some layer has no primitive that fits.
    """
    gated = _workspace_gated_tables(context, cap_bytes)
    if gated is None:
        return None
    modified = dataclasses.replace(context, tables=gated)
    return _solve_with_tables(context, modified, f"cap:{int(cap_bytes)}")


def _plan_signature(plan: NetworkPlan) -> tuple:
    """A plan's decision identity: its precision plus every layer's primitive
    or adopted layout.

    The dtype is part of the identity: an int8 plan making the same per-layer
    choices as the fp32 plan is a *different* plan (different costs, different
    accuracy), so cross-precision candidates must never dedup each other.
    """
    return (plan.dtype,) + tuple(
        (name, decision.primitive or decision.output_layout.name)
        for name, decision in sorted(plan.layer_decisions.items())
    )


def build_frontier(
    context: SelectionContext,
    constraints: Optional[Dict[str, float]] = None,
    seed: int = 0,
    budget_steps: int = DEFAULT_BUDGET_STEPS,
    scalarization_weights: Sequence[Tuple[float, float, float]] = SCALARIZATION_WEIGHTS,
    dtype_contexts: Optional[Dict[str, SelectionContext]] = None,
) -> Frontier:
    """Build the Pareto frontier of whole-network plans for one context.

    ``constraints`` (``{objective}_max`` keys) additionally direct the
    epsilon-constraint generator at the given workspace budget, so the
    frontier always contains the best plan *under* the budget when one
    exists; decisions (:meth:`Frontier.min_time_under`) then apply the bounds
    strictly.

    ``dtype_contexts`` maps precision names to selection contexts priced at
    that precision (same network/platform/threads/batch as ``context``).
    Each contributes its scalar PBQP plan as a ``dtype:<name>`` candidate,
    finalized against its *own* tables so its cost vector — including the
    accuracy-loss axis — is exact.  This is what turns the frontier into an
    accuracy-vs-speed trade-off: the int8 plan anchors the fast/lossy end,
    the fp32 plan the exact end.
    """
    constraints = dict(constraints or {})
    # Validate constraint keys up front (same convention as CostVector).
    CostVector().satisfies(constraints)
    started = time.perf_counter()

    candidates: List[Tuple[NetworkPlan, str]] = []

    # 1. Seed strategies, the scalar PBQP plan first.
    strategies = applicable_strategies(context, include_frameworks=False)
    strategies.sort(key=lambda strategy: (strategy.name != "pbqp"))
    for strategy in strategies:
        candidates.append((strategy.build_plan(context), f"strategy:{strategy.name}"))

    # 1b. Cross-precision PBQP plans (deterministic dtype order).
    selector = PBQPSelector()
    for dtype_name in sorted(dtype_contexts or {}):
        other = dtype_contexts[dtype_name]
        if other is context or other.dtype == context.dtype:
            continue
        plan = selector.select(other)
        plan.metadata["generator"] = f"dtype:{dtype_name}"
        candidates.append((plan, f"dtype:{dtype_name}"))

    # 2. Epsilon-constraint sweep over peak-workspace caps.
    levels = workspace_levels(context)
    caps: List[float] = []
    if budget_steps > 0 and levels:
        if len(levels) <= budget_steps:
            caps = list(levels)
        else:
            step = (len(levels) - 1) / (budget_steps - 1)
            caps = sorted({levels[round(i * step)] for i in range(budget_steps)})
    budget = constraints.get("peak_workspace_bytes_max")
    if budget is not None:
        caps.append(float(budget))
    for cap in caps:
        gated = _workspace_gated_tables(context, cap)
        if gated is None:
            continue
        modified = dataclasses.replace(context, tables=gated)
        plan = _solve_with_tables(context, modified, f"cap:{int(cap)}")
        if plan is not None:
            candidates.append((plan, f"cap:{int(cap)}"))

    # 3. Weighted scalarization solves.
    for weights in scalarization_weights:
        label = "weights:" + "/".join(f"{w:g}" for w in weights)
        modified = dataclasses.replace(
            context, tables=_scalarized_tables(context, weights)
        )
        plan = _solve_with_tables(context, modified, label)
        if plan is not None:
            candidates.append((plan, label))

    # Deduplicate by decision signature (first generator wins) and evaluate
    # every surviving candidate exactly.
    seen: Dict[tuple, int] = {}
    unique: List[FrontierPoint] = []
    for plan, generator in candidates:
        signature = _plan_signature(plan)
        if signature in seen:
            continue
        seen[signature] = len(unique)
        unique.append(
            FrontierPoint(plan=plan, vector=plan.cost_vector(), generator=generator)
        )

    front_indices = _pareto_front([point.vector for point in unique])
    points = [unique[i] for i in front_indices]
    points.sort(key=lambda point: point.vector.as_tuple())

    return Frontier(
        network_name=context.network.name,
        platform_name=context.platform_name,
        threads=context.threads,
        batch=context.batch,
        seed=seed,
        points=points,
        constraints=constraints,
        candidates_evaluated=len(unique),
        dominated_count=len(unique) - len(points),
        solve_seconds=time.perf_counter() - started,
    )
