"""Nondominated sorting and Pareto-front construction over cost vectors.

The shapes here follow the ECC-selector idiom the ROADMAP points at:
:func:`_pareto_front` returns the nondominated subset in input order,
:func:`_nsga2_sort` peels the full population into successive nondominated
fronts (NSGA-II's fast nondominated sort), and the decision helpers (knee
point, lexicographic, constrained minimum) reduce a front to one pick with
*seeded deterministic* tie-breaking — the same seed always yields the same
selection, byte for byte.

Everything operates on plain :class:`~repro.multiobj.vector.CostVector`
sequences and returns **indices** into the input, so callers can carry
arbitrary payloads (whole network plans) alongside.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.multiobj.vector import OBJECTIVES, CostVector

#: Relative tolerance under which two objective values count as equal.
EPSILON = 1e-9


def _pareto_front(
    vectors: Sequence[CostVector], epsilon: float = EPSILON
) -> List[int]:
    """Indices of the nondominated vectors, in input order.

    A vector that is exactly equal (within ``epsilon``) to an earlier one is
    dropped — the earlier record wins, which is the deterministic tie-break
    callers rely on (candidates are ordered by generator priority before
    calling in).
    """
    front: List[int] = []
    for i, candidate in enumerate(vectors):
        dominated = False
        for j, other in enumerate(vectors):
            if i == j:
                continue
            if other.dominates(candidate, epsilon=epsilon):
                dominated = True
                break
            if j < i and _equal(other, candidate, epsilon):
                dominated = True  # duplicate of an earlier record
                break
        if not dominated:
            front.append(i)
    return front


def _equal(a: CostVector, b: CostVector, epsilon: float = EPSILON) -> bool:
    """Whether two vectors are equal within the relative tolerance."""
    for x, y in zip(a.as_tuple(), b.as_tuple()):
        if abs(x - y) > epsilon * max(abs(x), abs(y), 1.0):
            return False
    return True


def _nsga2_sort(
    vectors: Sequence[CostVector], epsilon: float = EPSILON
) -> List[List[int]]:
    """NSGA-II fast nondominated sort: successive fronts of indices.

    Front 0 is the Pareto front; front ``k`` is nondominated once fronts
    ``< k`` are removed.  Exact duplicates stay in the same front (they
    dominate nothing and are dominated by nothing).
    """
    n = len(vectors)
    dominated_by: List[List[int]] = [[] for _ in range(n)]
    domination_count = [0] * n
    for i in range(n):
        for j in range(i + 1, n):
            if vectors[i].dominates(vectors[j], epsilon=epsilon):
                dominated_by[i].append(j)
                domination_count[j] += 1
            elif vectors[j].dominates(vectors[i], epsilon=epsilon):
                dominated_by[j].append(i)
                domination_count[i] += 1
    fronts: List[List[int]] = []
    current = [i for i in range(n) if domination_count[i] == 0]
    while current:
        fronts.append(current)
        upcoming: List[int] = []
        for i in current:
            for j in dominated_by[i]:
                domination_count[j] -= 1
                if domination_count[j] == 0:
                    upcoming.append(j)
        current = sorted(upcoming)
    return fronts


# ---------------------------------------------------------------------------
# Decision helpers: reduce a front to one pick
# ---------------------------------------------------------------------------


def _normalized(vectors: Sequence[CostVector]) -> List[Tuple[float, ...]]:
    """Objective values scaled to [0, 1] per objective across the population."""
    tuples = [v.as_tuple() for v in vectors]
    lows = [min(t[k] for t in tuples) for k in range(len(OBJECTIVES))]
    highs = [max(t[k] for t in tuples) for k in range(len(OBJECTIVES))]
    spans = [max(high - low, EPSILON) for low, high in zip(lows, highs)]
    return [
        tuple((t[k] - lows[k]) / spans[k] for k in range(len(OBJECTIVES)))
        for t in tuples
    ]


def knee_index(vectors: Sequence[CostVector], seed: int = 0) -> int:
    """The knee of a front: closest (normalized Euclidean) to the ideal point.

    The ideal point takes the per-objective minimum over the front.  Exact
    distance ties are broken by a ``random.Random(seed)`` draw over the tied
    candidates, so the pick is deterministic for a fixed seed but carries no
    hidden input-order bias.
    """
    if not vectors:
        raise ValueError("cannot pick a knee from an empty front")
    scaled = _normalized(vectors)
    distances = [sum(value * value for value in point) for point in scaled]
    best = min(distances)
    tied = [i for i, d in enumerate(distances) if d <= best + EPSILON]
    if len(tied) == 1:
        return tied[0]
    return random.Random(seed).choice(tied)


def lexicographic_index(
    vectors: Sequence[CostVector],
    order: Sequence[str] = OBJECTIVES,
    seed: int = 0,
) -> int:
    """Minimum under a lexicographic objective ordering.

    ``order`` names the objectives most-important-first; unknown names raise.
    Full ties (identical vectors) are broken by a seeded draw.
    """
    for name in order:
        if name not in OBJECTIVES:
            raise ValueError(f"unknown objective {name!r}; expected {OBJECTIVES}")
    if not vectors:
        raise ValueError("cannot pick from an empty front")
    keys = [
        tuple(vector.to_dict()[name] for name in order) for vector in vectors
    ]
    best = min(keys)
    tied = [i for i, key in enumerate(keys) if key == best]
    if len(tied) == 1:
        return tied[0]
    return random.Random(seed).choice(tied)


def min_time_under_index(
    vectors: Sequence[CostVector],
    constraints: Optional[Dict[str, float]] = None,
    seed: int = 0,
) -> Optional[int]:
    """Fastest feasible point under ``{objective}_max`` constraints.

    Returns ``None`` when no point satisfies the constraints (the caller
    decides whether that is an error or a fall-back to the knee).
    """
    constraints = constraints or {}
    feasible = [
        i for i, vector in enumerate(vectors) if vector.satisfies(constraints)
    ]
    if not feasible:
        return None
    times = [vectors[i].time_ms for i in feasible]
    best = min(times)
    tied = [i for i, t in zip(feasible, times) if t <= best + EPSILON]
    if len(tied) == 1:
        return tied[0]
    return random.Random(seed).choice(tied)
