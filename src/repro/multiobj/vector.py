"""Vector-valued costs: time, peak workspace and an energy proxy.

The paper's PBQP formulation optimizes a single scalar — execution time — but
real deployments select primitives under memory and energy budgets too: the
FFT and im2col families buy speed with huge scratch workspaces, so an
embedded memory cap should flip layers back to the direct and Winograd
families.  :class:`CostVector` is the three-objective value the multi-
objective layer reasons about:

* ``time_ms`` — whole-network (or per-decision) modelled execution time;
  additive across layers and conversions.
* ``peak_workspace_bytes`` — the largest per-layer scratch footprint.  Peak
  memory is a *max*, not a sum: two layers never hold their workspaces at the
  same time, because the executor runs layers sequentially and workspaces are
  released between them.
* ``energy_proxy_j`` — an analytical energy proxy (operations times a
  per-flop energy plus memory traffic times a per-byte energy); additive.
  Deliberately *not* proportional to time: FFT spends few operations on much
  traffic while the direct loops spend many operations on little traffic, so
  the energy ordering of candidates differs from the time ordering.
* ``accuracy_proxy`` — modelled top-1 accuracy *loss* of running layers
  below fp32 (see :data:`repro.cost.analytical.DTYPE_ACCURACY_LOSS`);
  additive across layers, zero for pure-fp32 plans.  Minimized like the
  rest, which makes accuracy-vs-speed a genuine front axis once plans of
  several precisions compete.

This module has no dependency on the rest of :mod:`repro` so the cost layer
can import it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

#: Objective names, in canonical (lexicographic default) order.  All four
#: are minimized.
OBJECTIVES = ("time_ms", "peak_workspace_bytes", "energy_proxy_j", "accuracy_proxy")


@dataclass(frozen=True)
class CostVector:
    """One point in the (time, workspace, energy, accuracy-loss) space."""

    time_ms: float = 0.0
    peak_workspace_bytes: float = 0.0
    energy_proxy_j: float = 0.0
    accuracy_proxy: float = 0.0

    # -- composition ------------------------------------------------------------

    def combine(self, other: "CostVector") -> "CostVector":
        """Sequential composition: times, energies and accuracy losses add,
        workspaces max.

        This is the whole-network accumulation rule — layers execute one
        after another, so their scratch buffers never coexist (while every
        layer's quantization noise compounds into the final output).
        """
        return CostVector(
            time_ms=self.time_ms + other.time_ms,
            peak_workspace_bytes=max(
                self.peak_workspace_bytes, other.peak_workspace_bytes
            ),
            energy_proxy_j=self.energy_proxy_j + other.energy_proxy_j,
            accuracy_proxy=self.accuracy_proxy + other.accuracy_proxy,
        )

    @staticmethod
    def total(vectors: Sequence["CostVector"]) -> "CostVector":
        """Sequential composition of many decision vectors."""
        result = CostVector()
        for vector in vectors:
            result = result.combine(vector)
        return result

    # -- ordering ---------------------------------------------------------------

    def as_tuple(self) -> tuple:
        """The objective values in canonical order (all minimized)."""
        return (
            self.time_ms,
            self.peak_workspace_bytes,
            self.energy_proxy_j,
            self.accuracy_proxy,
        )

    def dominates(self, other: "CostVector", epsilon: float = 0.0) -> bool:
        """Pareto dominance: no worse in every objective, better in one.

        ``epsilon`` absorbs floating-point noise: objectives within
        ``epsilon`` (relative) of each other count as equal.
        """
        mine = self.as_tuple()
        theirs = other.as_tuple()
        better = False
        for a, b in zip(mine, theirs):
            slack = epsilon * max(abs(a), abs(b), 1.0)
            if a > b + slack:
                return False
            if a < b - slack:
                better = True
        return better

    def satisfies(self, constraints: Dict[str, float]) -> bool:
        """Whether this vector meets every ``<objective>_max`` constraint.

        Constraint keys follow the ``{objective}_max`` convention, e.g.
        ``{"peak_workspace_bytes_max": 1 << 20, "time_ms_max": 40.0}``.
        Unknown keys raise, so typos never silently pass.
        """
        values = self.to_dict()
        for key, bound in constraints.items():
            if not key.endswith("_max") or key[: -len("_max")] not in OBJECTIVES:
                raise ValueError(
                    f"unknown constraint {key!r}; expected one of "
                    f"{[name + '_max' for name in OBJECTIVES]}"
                )
            if values[key[: -len("_max")]] > bound:
                return False
        return True

    # -- serialization ----------------------------------------------------------

    def to_dict(self) -> Dict[str, float]:
        return {
            "time_ms": self.time_ms,
            "peak_workspace_bytes": self.peak_workspace_bytes,
            "energy_proxy_j": self.energy_proxy_j,
            "accuracy_proxy": self.accuracy_proxy,
        }

    @classmethod
    def from_dict(cls, document: Dict[str, float]) -> "CostVector":
        return cls(
            time_ms=float(document.get("time_ms", 0.0)),
            peak_workspace_bytes=float(document.get("peak_workspace_bytes", 0.0)),
            energy_proxy_j=float(document.get("energy_proxy_j", 0.0)),
            accuracy_proxy=float(document.get("accuracy_proxy", 0.0)),
        )

    def __repr__(self) -> str:
        return (
            f"CostVector(time={self.time_ms:.3f} ms, "
            f"workspace={self.peak_workspace_bytes / 1024.0:.1f} KiB, "
            f"energy={self.energy_proxy_j * 1e3:.3f} mJ, "
            f"accuracy_loss={self.accuracy_proxy:.5f})"
        )
