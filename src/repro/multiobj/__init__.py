"""Multi-objective selection: cost vectors, Pareto fronts and frontiers.

The subsystem has three layers:

* :mod:`repro.multiobj.vector` — :class:`CostVector`, the (time, peak
  workspace, energy proxy) value threaded through the cost model, the cost
  tables and every plan decision.  Dependency-free, so the cost layer imports
  it without cycles.
* :mod:`repro.multiobj.pareto` — nondominated sorting
  (:func:`_pareto_front`, :func:`_nsga2_sort`) and the seeded decision
  helpers (knee, lexicographic, constrained minimum).
* :mod:`repro.multiobj.frontier` — whole-network frontier construction:
  epsilon-constraint and weighted-scalarization PBQP solves plus the
  per-family baselines as seed points, evaluated exactly and reduced to a
  :class:`Frontier` of nondominated :class:`~repro.core.plan.NetworkPlan`
  points.  Imported lazily (it depends on the selection core, which depends
  on the cost layer, which imports ``vector`` above).
"""

from repro.multiobj.pareto import _nsga2_sort, _pareto_front  # noqa: F401
from repro.multiobj.vector import OBJECTIVES, CostVector  # noqa: F401

_FRONTIER_NAMES = (
    "Frontier",
    "FrontierPoint",
    "build_frontier",
    "solve_under_workspace_cap",
    "FRONTIER_FORMAT",
)


def __getattr__(name):
    if name in _FRONTIER_NAMES:
        from repro.multiobj import frontier

        return getattr(frontier, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "CostVector",
    "OBJECTIVES",
    "_pareto_front",
    "_nsga2_sort",
    *_FRONTIER_NAMES,
]
