"""Legalization: turn per-layer choices into an executable, costed plan.

Section 3 of the paper: "we combine different incompatible primitives using a
legalization phase.  The legalization phase inserts additional data layout
conversion layers to bisect illegal edges ...  the legalizer can then select
one or more data layout transformation primitives to implement the conversion
layers."

:func:`finalize_plan` performs that phase for any strategy: given the chosen
primitive for every convolution layer and the chosen layout for every other
layer, it walks every data-flow edge, looks up the cheapest conversion chain
between the producer's output layout and the consumer's required input layout
(the all-pairs shortest paths of the DT graph, already priced in the cost
tables), and assembles the resulting :class:`~repro.core.plan.NetworkPlan`.
"""

from __future__ import annotations

from typing import Dict, List, Tuple, TYPE_CHECKING

from repro.core.plan import EdgeDecision, LayerDecision, NetworkPlan
from repro.layouts.layout import Layout

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.core.selector import SelectionContext


class IllegalPlanError(ValueError):
    """Raised when a required layout conversion has no path in the DT graph."""


def finalize_plan(
    context: "SelectionContext",
    strategy: str,
    conv_primitives: Dict[str, str],
    wildcard_layouts: Dict[str, Layout],
) -> NetworkPlan:
    """Legalize per-layer choices into a complete :class:`NetworkPlan`.

    Parameters
    ----------
    context:
        The selection context (network, library, cost tables, platform).
    strategy:
        Name recorded on the plan (``"pbqp"``, ``"sum2d"``, ``"winograd"``, ...).
    conv_primitives:
        Mapping from convolution layer name to the chosen primitive name.
    wildcard_layouts:
        Mapping from every non-convolution layer name to the layout it
        operates in.

    Raises
    ------
    IllegalPlanError
        If two chosen layouts cannot be connected by any conversion chain.
    """
    network = context.network
    tables = context.tables
    library = context.library

    missing = {layer.name for layer in network.conv_layers()} - set(conv_primitives)
    if missing:
        raise ValueError(f"no primitive chosen for convolution layers {sorted(missing)}")

    layer_decisions: Dict[str, LayerDecision] = {}
    for layer in network.topological_order():
        if layer.is_convolution:
            primitive_name = conv_primitives[layer.name]
            primitive = library.get(primitive_name)
            cost = tables.primitive_cost(layer.name, primitive_name)
            layer_decisions[layer.name] = LayerDecision(
                layer=layer.name,
                primitive=primitive_name,
                input_layout=primitive.input_layout,
                output_layout=primitive.output_layout,
                cost=cost,
                workspace_bytes=tables.primitive_workspace(layer.name, primitive_name),
                energy_j=tables.primitive_energy(layer.name, primitive_name),
                accuracy_loss=tables.primitive_accuracy(layer.name, primitive_name),
            )
        else:
            if layer.name not in wildcard_layouts:
                raise ValueError(f"no layout chosen for non-convolution layer {layer.name!r}")
            layout = wildcard_layouts[layer.name]
            layer_decisions[layer.name] = LayerDecision(
                layer=layer.name,
                primitive=None,
                input_layout=layout,
                output_layout=layout,
                cost=0.0,
            )

    edge_decisions = []
    for edge in network.edges():
        producer_decision = layer_decisions[edge.producer]
        consumer_decision = layer_decisions[edge.consumer]
        shape = tables.shapes[edge.producer]
        path = tables.conversion_path(
            shape, producer_decision.output_layout, consumer_decision.input_layout
        )
        if not path.reachable:
            raise IllegalPlanError(
                f"edge {edge.producer!r} -> {edge.consumer!r}: no conversion chain from "
                f"{producer_decision.output_layout.name} to {consumer_decision.input_layout.name}"
            )
        edge_decisions.append(
            EdgeDecision(
                producer=edge.producer,
                consumer=edge.consumer,
                source_layout=producer_decision.output_layout,
                target_layout=consumer_decision.input_layout,
                chain=path.chain,
                cost=path.cost,
                energy_j=tables.conversion_energy(
                    shape, producer_decision.output_layout, consumer_decision.input_layout
                ),
            )
        )

    # Multi-input layers (concat, eltwise-add) operate in exactly one layout,
    # and because every inbound edge above targets the consumer's single
    # input_layout, the plan built here satisfies that by construction.
    # Hand-assembled or deserialized plans are validated where they are
    # consumed (see NetworkExecutor.__init__).

    _attribute_shared_chains(network, edge_decisions)

    return NetworkPlan(
        network_name=network.name,
        strategy=strategy,
        platform_name=context.platform_name,
        threads=context.threads,
        layer_decisions=layer_decisions,
        edge_decisions=edge_decisions,
        batch=context.batch,
        dtype=context.dtype,
    )


def _attribute_shared_chains(network, edge_decisions: List[EdgeDecision]) -> None:
    """Attribute each shared conversion chain's cost to exactly one edge.

    The executor converts once per (producer, target layout) and reuses the
    result — see ``NetworkExecutor.run_traced`` — charging the chain's time to
    the first consuming edge in topological order.  Pricing mirrors that
    here: within each dedup group the topologically first consumer's edge
    keeps the chain cost and energy, every other edge keeps its chain (the
    executor still needs it to find the cached tensor) at zero cost, so
    ``NetworkPlan.total_cost``/``cost_vector`` equal the executed trace.
    """
    topo_index = {layer.name: i for i, layer in enumerate(network.topological_order())}
    groups: Dict[Tuple[str, str], List[EdgeDecision]] = {}
    for decision in edge_decisions:
        if decision.needs_conversion:
            key = (decision.producer, decision.target_layout.name)
            groups.setdefault(key, []).append(decision)
    for members in groups.values():
        if len(members) < 2:
            continue
        members.sort(key=lambda decision: topo_index[decision.consumer])
        for duplicate in members[1:]:
            duplicate.cost = 0.0
            duplicate.energy_j = 0.0


def follow_producer_layouts(
    context: "SelectionContext", conv_primitives: Dict[str, str]
) -> Dict[str, Layout]:
    """Assign every non-convolution layer the layout of its first producer.

    This models the behaviour of the per-family greedy strategies of the
    evaluation: non-convolution layers simply operate on whatever layout the
    data arrives in, and conversions appear only where a convolution demands a
    different layout than its producer delivered.
    """
    from repro.layouts.layout import CHW

    network = context.network
    library = context.library
    layouts: Dict[str, Layout] = {}
    output_layout: Dict[str, Layout] = {}
    for layer in network.topological_order():
        producers = network.inputs_of(layer.name)
        if layer.is_convolution:
            primitive = library.get(conv_primitives[layer.name])
            output_layout[layer.name] = primitive.output_layout
            continue
        if not producers:
            layouts[layer.name] = CHW
        else:
            layouts[layer.name] = output_layout[producers[0]]
        output_layout[layer.name] = layouts[layer.name]
    return layouts


def fixed_layouts(context: "SelectionContext", layout: Layout) -> Dict[str, Layout]:
    """Assign one fixed layout to every non-convolution layer (canonical-layout strategies)."""
    return {
        layer.name: layout
        for layer in context.network.topological_order()
        if not layer.is_convolution
    }
