"""Emulated vendor-framework comparators (Caffe, MKL-DNN, ARM Compute Library).

The paper compares its PBQP-selected networks against BVLC Caffe (with
OpenBLAS) on both platforms, Intel MKL-DNN on the desktop platform, and the
ARM Compute Library on the embedded platform.  Those closed/pre-built
frameworks cannot be run inside this reproduction, so each is **modelled as a
fixed selection policy over the same analytical platform model**, with a small
number of calibration constants capturing the framework-level behaviour the
paper's measurements exhibit (see DESIGN.md, "Substitutions", and
EXPERIMENTS.md for the calibration notes):

* **Caffe** lowers every convolution to im2col + a canonical-layout GEMM and
  pays a per-layer framework overhead (buffer allocation, thread-pool spinup)
  that is painful on networks with many small layers — which is how Caffe
  ends up *slower than the SUM2D baseline* for GoogLeNet on the Cortex-A57 in
  the paper's Table 3.
* **MKL-DNN** JIT-generates blocked-layout direct convolutions of very high
  single-thread quality, but in the paper's measurements scales noticeably
  worse than the PBQP-selected code under multithreading (Figure 6).
* **ARM Compute Library** uses NEON GEMM-based convolution of good quality
  with moderate per-layer overhead.

These comparators deliberately do not use the PBQP machinery: each applies
one uniform lowering to every layer, exactly like the real frameworks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.legalize import finalize_plan, fixed_layouts, follow_producer_layouts
from repro.core.plan import NetworkPlan
from repro.core.selector import SelectionContext
from repro.layouts.layout import CHW


@dataclass(frozen=True)
class FrameworkModel:
    """Calibration constants of one emulated framework."""

    name: str
    #: Multiplier on the modelled primitive cost (framework code quality
    #: relative to the reproduction's primitives; < 1 means better).
    efficiency_factor: float
    #: Fixed per-convolution-layer overhead in milliseconds (dispatch,
    #: buffer allocation, thread spin-up).
    per_layer_overhead_ms: float
    #: Parallel efficiency under multithreading (fraction of ideal speedup).
    parallel_efficiency: float


#: Caffe + OpenBLAS: im2col/GEMM in the canonical layout with heavy per-layer overhead.
#: The per-layer overhead is platform dependent and charged for *every* layer
#: Caffe executes (convolution, ReLU, LRN, pooling are all separate layers
#: with their own buffer management); see :func:`caffe_like_plan`.
CAFFE_MODEL = FrameworkModel(
    name="caffe", efficiency_factor=1.60, per_layer_overhead_ms=0.0, parallel_efficiency=0.55
)
#: Intel MKL-DNN: JIT blocked direct convolution, excellent single-thread quality
#: (noticeably better than the reproduction's GEMM-based primitives) but with
#: the weaker multithreaded scaling the paper observes in Figure 6.
MKLDNN_MODEL = FrameworkModel(
    name="mkldnn", efficiency_factor=0.60, per_layer_overhead_ms=0.05, parallel_efficiency=0.55
)
#: ARM Compute Library: NEON GEMM-based convolution.
ARMCL_MODEL = FrameworkModel(
    name="armcl", efficiency_factor=1.05, per_layer_overhead_ms=0.6, parallel_efficiency=0.60
)
#: cuDNN: hand-tuned SIMT kernels with a per-layer heuristic algorithm pick
#: (implicit GEMM / Winograd / FFT).  Kernel quality is well above the
#: reproduction's primitives, but the per-layer dispatch (descriptor setup,
#: workspace query, kernel launch) is charged on every convolution — small
#: layers stay launch-bound, which is where whole-graph selection wins.
CUDNN_MODEL = FrameworkModel(
    name="cudnn", efficiency_factor=0.70, per_layer_overhead_ms=0.03, parallel_efficiency=0.90
)


def _framework_plan(
    context: SelectionContext,
    model: FrameworkModel,
    conv_primitives: Dict[str, str],
    canonical_layout: bool,
    overhead_layer_count: int | None = None,
) -> NetworkPlan:
    """Build a plan for an emulated framework and rescale its layer costs.

    ``overhead_layer_count`` is the number of layers the framework charges its
    per-layer overhead for; it defaults to the number of convolution layers,
    but Caffe-style frameworks execute *every* layer (activation, LRN,
    pooling, ...) as a separately dispatched operation.  The total overhead is
    spread evenly over the convolution-layer decisions so plan cost accounting
    stays uniform.
    """
    if canonical_layout:
        wildcard = fixed_layouts(context, CHW)
    else:
        wildcard = follow_producer_layouts(context, conv_primitives)
    plan = finalize_plan(context, model.name, conv_primitives, wildcard)

    threads = context.threads
    conv_count = max(len(conv_primitives), 1)
    charged_layers = overhead_layer_count if overhead_layer_count is not None else conv_count
    overhead_seconds = model.per_layer_overhead_ms * 1e-3 * charged_layers / conv_count
    for decision in plan.layer_decisions.values():
        if decision.primitive is None:
            continue
        cost = decision.cost * model.efficiency_factor
        if threads > 1:
            # The underlying cost tables already include the reproduction's
            # multithreaded scaling; adjust to the framework's poorer scaling
            # by re-deriving from the single-thread cost of the same primitive.
            single = context.tables_single_thread.primitive_cost(
                decision.layer, decision.primitive
            )
            cost = (
                single
                * model.efficiency_factor
                / (1.0 + (threads - 1) * model.parallel_efficiency)
            )
        decision.cost = cost + overhead_seconds
        decision.note = f"emulated {model.name}"
    plan.metadata["framework_model"] = model
    return plan


def _best_of_families(context: SelectionContext, layer_name: str, prefixes) -> str:
    """Fastest primitive for a layer among those whose name starts with a prefix."""
    costs = context.tables.node_costs[layer_name]
    candidates = {
        name: cost
        for name, cost in costs.items()
        if any(name.startswith(prefix) for prefix in prefixes)
    }
    if not candidates:
        return "sum2d"
    return min(candidates, key=candidates.get)


def caffe_like_plan(context: SelectionContext) -> NetworkPlan:
    """Emulate BVLC Caffe: im2col + GEMM in the canonical CHW layout everywhere.

    The per-layer framework overhead is taken from the platform description
    (Caffe's repeated column-buffer allocation and OpenBLAS thread spin-up are
    far more painful on the embedded platform), which is what reproduces the
    paper's observation that Caffe is slower than the SUM2D baseline for
    GoogLeNet on the Cortex-A57 (Table 3).
    """
    width = 8 if context.platform_vector_width >= 8 else 4
    conv_primitives = {
        layer.name: _best_of_families(context, layer.name, (f"im2col_vf{width}", "im2col_vf"))
        for layer in context.network.conv_layers()
    }
    overhead = (
        context.platform.framework_overhead_ms if context.platform is not None else 0.5
    )
    model = FrameworkModel(
        name=CAFFE_MODEL.name,
        efficiency_factor=CAFFE_MODEL.efficiency_factor,
        per_layer_overhead_ms=overhead,
        parallel_efficiency=CAFFE_MODEL.parallel_efficiency,
    )
    return _framework_plan(
        context,
        model,
        conv_primitives,
        canonical_layout=True,
        overhead_layer_count=len(context.network),
    )


def mkldnn_like_plan(context: SelectionContext) -> NetworkPlan:
    """Emulate Intel MKL-DNN: JIT blocked-layout direct/GEMM convolution."""
    conv_primitives = {
        layer.name: _best_of_families(
            context, layer.name, ("direct_mhwc_t8_vf8", "direct_hwmc_t8_vf8", "im2col_vf8")
        )
        for layer in context.network.conv_layers()
    }
    return _framework_plan(context, MKLDNN_MODEL, conv_primitives, canonical_layout=False)


def armcl_like_plan(context: SelectionContext) -> NetworkPlan:
    """Emulate the ARM Compute Library: NEON GEMM-based convolution."""
    conv_primitives = {
        layer.name: _best_of_families(context, layer.name, ("im2row_vf4", "im2col_vf4"))
        for layer in context.network.conv_layers()
    }
    return _framework_plan(context, ARMCL_MODEL, conv_primitives, canonical_layout=False)


def cudnn_like_plan(context: SelectionContext) -> NetworkPlan:
    """Emulate cuDNN: per-layer heuristic pick among its algorithm menu.

    cuDNN chooses per layer among implicit/explicit GEMM, tiled Winograd and
    2D FFT — a *local* per-layer pick, blind to the layout-conversion edges,
    exactly like the other framework comparators.  The 1D (row-streaming)
    Winograd/FFT forms are not in the menu: they have no SIMT kernels (and
    are declined by the primitives' platform gating anyway).
    """
    conv_primitives = {
        layer.name: _best_of_families(
            context, layer.name, ("im2col", "im2row", "winograd_2d", "fft_2d")
        )
        for layer in context.network.conv_layers()
    }
    return _framework_plan(context, CUDNN_MODEL, conv_primitives, canonical_layout=False)
