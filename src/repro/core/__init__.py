"""Primitive selection: the paper's primary contribution.

Given a DNN graph, a primitive library, a DT graph of layout conversions and
a cost model, this package builds the PBQP instance of section 3.2/3.3 of the
paper, solves it, legalizes the resulting assignment by inserting layout
conversion chains, and returns an executable :class:`~repro.core.plan.NetworkPlan`.

It also implements every comparison strategy of the evaluation section:

* the SUM2D baseline;
* the per-family greedy strategies (direct / im2 / kn2 / winograd / fft) that
  replace SUM2D layer-by-layer when a family variant is locally faster and pay
  the layout-conversion bill afterwards;
* the "Local Optimal (CHW)" canonical-layout strategy;
* emulations of the vendor frameworks the paper compares against (Caffe,
  MKL-DNN, ARM Compute Library);
* a "greedy ignoring DT costs" ablation strategy.
"""

from repro.core.plan import LayerDecision, EdgeDecision, NetworkPlan
from repro.core.selector import PBQPSelector, SelectionContext, select_primitives
from repro.core.baselines import (
    sum2d_plan,
    family_greedy_plan,
    local_optimal_plan,
    greedy_ignore_dt_plan,
)
from repro.core.frameworks import caffe_like_plan, mkldnn_like_plan, armcl_like_plan
from repro.core.strategies import (
    STRATEGIES,
    Strategy,
    applicable_strategies,
    figure_strategy_names,
    get_strategy,
    register_strategy,
    registered_names,
)

__all__ = [
    "LayerDecision",
    "EdgeDecision",
    "NetworkPlan",
    "PBQPSelector",
    "SelectionContext",
    "select_primitives",
    "STRATEGIES",
    "Strategy",
    "register_strategy",
    "get_strategy",
    "registered_names",
    "figure_strategy_names",
    "applicable_strategies",
    "sum2d_plan",
    "family_greedy_plan",
    "local_optimal_plan",
    "greedy_ignore_dt_plan",
    "caffe_like_plan",
    "mkldnn_like_plan",
    "armcl_like_plan",
]
