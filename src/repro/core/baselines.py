"""Baseline selection strategies from the paper's evaluation (section 5).

* :func:`sum2d_plan` — "all convolutions in the network are performed using
  the textbook sum-of-single-channels algorithm"; the common baseline every
  speedup is reported against.
* :func:`family_greedy_plan` — the per-family bars (direct / im2 / kn2 /
  winograd / fft): "we construct the test network by picking the fastest
  variant of that family to replace the sum-of-single-channels algorithm for
  each individual convolution in the network, if the replacement is, in fact,
  faster than sum-of-single-channels for that convolutional scenario."  The
  required layout conversions are inserted afterwards (and paid for), which
  is exactly what makes this strategy a net slowdown in some cases
  (section 5.8).
* :func:`local_optimal_plan` — "Local Optimal (CHW)": the canonical-layout
  strategy that eliminates every conversion by keeping all tensors in the
  Caffe CHW layout and picking, per layer, the fastest CHW-to-CHW primitive.
* :func:`greedy_ignore_dt_plan` — an ablation: pick the globally fastest
  primitive per layer ignoring conversion costs, then pay them.
"""

from __future__ import annotations

from typing import Dict

from repro.core.legalize import finalize_plan, fixed_layouts, follow_producer_layouts
from repro.core.plan import NetworkPlan
from repro.core.selector import SelectionContext
from repro.layouts.layout import CHW
from repro.primitives.base import PrimitiveFamily

#: Name of the baseline primitive used by the SUM2D strategy.
SUM2D_PRIMITIVE = "sum2d"


def sum2d_plan(context: SelectionContext) -> NetworkPlan:
    """The SUM2D baseline: every convolution uses the textbook algorithm."""
    conv_primitives = {layer.name: SUM2D_PRIMITIVE for layer in context.network.conv_layers()}
    wildcard = fixed_layouts(context, CHW)
    return finalize_plan(context, "sum2d", conv_primitives, wildcard)


def family_greedy_plan(context: SelectionContext, family: PrimitiveFamily) -> NetworkPlan:
    """The per-family greedy strategy of the evaluation's family bars.

    For each convolution layer the fastest variant *of the given family* is
    chosen if it beats SUM2D for that layer in isolation, otherwise the layer
    keeps SUM2D.  Layout conversions are not considered during selection and
    are inserted (and paid for) afterwards.
    """
    tables = context.tables
    conv_primitives: Dict[str, str] = {}
    for layer in context.network.conv_layers():
        scenario = tables.scenarios[layer.name]
        costs = tables.node_costs[layer.name]
        sum2d_cost = costs[SUM2D_PRIMITIVE]
        candidates = {
            primitive.name: costs[primitive.name]
            for primitive in context.library.applicable(
                scenario, family=family, platform=context.platform
            )
        }
        if candidates:
            best_name = min(candidates, key=candidates.get)
            if candidates[best_name] < sum2d_cost:
                conv_primitives[layer.name] = best_name
                continue
        conv_primitives[layer.name] = SUM2D_PRIMITIVE
    wildcard = follow_producer_layouts(context, conv_primitives)
    return finalize_plan(context, family.value, conv_primitives, wildcard)


def local_optimal_plan(context: SelectionContext) -> NetworkPlan:
    """The "Local Optimal (CHW)" canonical-layout strategy (section 2.2 / 5.5).

    Every tensor stays in the default Caffe layout (CHW), so no conversions
    are ever needed; each layer independently picks the fastest primitive
    that both consumes and produces CHW.
    """
    tables = context.tables
    conv_primitives: Dict[str, str] = {}
    for layer in context.network.conv_layers():
        costs = tables.node_costs[layer.name]
        canonical = {
            name: cost
            for name, cost in costs.items()
            if context.library.get(name).input_layout == CHW
            and context.library.get(name).output_layout == CHW
        }
        if not canonical:
            canonical = {SUM2D_PRIMITIVE: costs[SUM2D_PRIMITIVE]}
        conv_primitives[layer.name] = min(canonical, key=canonical.get)
    wildcard = fixed_layouts(context, CHW)
    return finalize_plan(context, "local_optimal", conv_primitives, wildcard)


def greedy_ignore_dt_plan(context: SelectionContext) -> NetworkPlan:
    """Ablation strategy: per-layer global fastest primitive, DT costs ignored.

    This is the strategy discussed in section 5.8 for Winograd on AlexNet:
    "simply selecting the fastest Winograd variant ignoring data layout
    transformation costs yields an instantiation that performs only marginally
    better than the baseline" — generalized to the whole library.
    """
    conv_primitives = {
        layer.name: context.tables.cheapest_primitive(layer.name)[0]
        for layer in context.network.conv_layers()
    }
    wildcard = follow_producer_layouts(context, conv_primitives)
    return finalize_plan(context, "greedy_ignore_dt", conv_primitives, wildcard)
