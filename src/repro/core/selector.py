"""The PBQP-based primitive selector (sections 3.2 and 3.3 of the paper).

The encoding follows the paper exactly:

* every DNN layer becomes a PBQP node;
* a **convolution** node's alternatives are the applicable primitives and its
  cost vector is the profiled execution time of each (the cost tables);
* every **other** layer is a "dummy node, accepting any input and output
  layouts, and having zero cost" (section 5.2) — its alternatives are the
  layouts of the DT graph, all with zero cost.  The network input is pinned
  to the canonical CHW layout, since that is the format the data arrives in;
* every data-flow edge becomes a PBQP edge whose cost matrix is indexed by
  the producer's output layout and the consumer's input layout and holds the
  cheapest layout-conversion chain cost for the tensor shape flowing across
  that edge (all-pairs shortest paths over the DT graph, section 3.1);
* the PBQP solver finds the minimum-cost assignment, which the legalizer
  turns into an executable :class:`~repro.core.plan.NetworkPlan`.

One place this reproduction deliberately departs from the paper's encoding:
the executor deduplicates conversion chains by (producer, target layout) —
a producer fanning out into several consumers that demand the same layout
converts once and reuses the result — so pricing the chain on every edge
would double-count it (the plan verifier's RV140 rule used to quantify that
gap on ResNet-18's ``pool1``).  For a fan-out producer the encoder therefore
replaces its per-edge cost matrices with one auxiliary *conversion node*
whose alternatives are the sets of target layouts the consumers may demand:
the producer→aux edge prices each candidate set once (the executor's cost),
and the aux→consumer edges are zero/infinity compatibility matrices forcing
the chosen set to cover every consumer's demand.  The objective the solver
minimizes then equals the cost the executor pays, mixed-target fan-outs
included, and the auxiliary node folds away under the ordinary R1/R2
reductions (the aux simply takes over the producer's adjacency), so the
solver stays exact on the paper's graphs.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.legalize import finalize_plan
from repro.core.plan import NetworkPlan
from repro.cost.analytical import AnalyticalCostModel
from repro.cost.model import CostModel
from repro.cost.platform import Platform
from repro.cost.tables import CostTables, build_cost_tables
from repro.graph.layer import LayerKind
from repro.graph.network import Network
from repro.layouts.dt_graph import DTGraph
from repro.layouts.layout import CHW, Layout
from repro.layouts.transforms import default_transform_library
from repro.pbqp.graph import PBQPGraph
from repro.pbqp.solver import PBQPSolver
from repro.primitives.registry import PrimitiveLibrary, default_primitive_library


@dataclass
class SelectionContext:
    """Everything a selection strategy needs about one (network, platform, threads).

    Build one with :meth:`SelectionContext.create`; the cost tables are
    profiled once at construction and shared by every strategy, mirroring the
    paper's "profile once, ship the cost tables" workflow.
    """

    network: Network
    library: PrimitiveLibrary
    dt_graph: DTGraph
    cost_model: CostModel
    platform_name: str
    threads: int
    tables: CostTables
    platform: Optional[Platform] = None
    #: Minibatch size the context's cost tables were priced for.
    batch: int = 1
    #: Numeric precision the context's cost tables were priced for.
    dtype: str = "fp32"
    _single_thread_tables: Optional[CostTables] = field(default=None, repr=False)
    #: Optional hook producing single-threaded tables (set by the Session API so
    #: the lazy rebuild below goes through its cost provider — and therefore
    #: through a persistent store — instead of re-profiling directly).
    single_thread_tables_factory: Optional[Callable[[], CostTables]] = field(
        default=None, repr=False, compare=False
    )

    @property
    def platform_vector_width(self) -> int:
        """Native FP32 SIMD width of the target platform (defaults to 8)."""
        return self.platform.vector_width if self.platform is not None else 8

    @property
    def platform_features(self) -> frozenset:
        """Capability set of the target platform (empty when platform-less).

        Strategy gating (:meth:`repro.core.strategies.Strategy.applies_to`)
        consults this instead of hard-coding platform names, so registered
        third-party platforms gate correctly by declaring features.
        """
        return self.platform.features if self.platform is not None else frozenset()

    @property
    def tables_single_thread(self) -> CostTables:
        """Cost tables profiled for single-threaded execution.

        Used by the framework emulations, which apply their own (poorer)
        multithreaded scaling on top of single-thread costs.
        """
        if self.threads == 1:
            return self.tables
        if self._single_thread_tables is None:
            if self.single_thread_tables_factory is not None:
                self._single_thread_tables = self.single_thread_tables_factory()
            else:
                self._single_thread_tables = build_cost_tables(
                    self.network,
                    self.library,
                    self.dt_graph,
                    self.cost_model,
                    threads=1,
                    batch=self.batch,
                    platform=self.platform,
                    dtype=self.dtype,
                )
        return self._single_thread_tables

    @classmethod
    def create(
        cls,
        network: Network,
        platform: Optional[Platform] = None,
        cost_model: Optional[CostModel] = None,
        library: Optional[PrimitiveLibrary] = None,
        dt_graph: Optional[DTGraph] = None,
        threads: int = 1,
        batch: int = 1,
        dtype: str = "fp32",
    ) -> "SelectionContext":
        """Assemble a context, defaulting every component sensibly.

        Either ``platform`` (priced with the analytical model) or an explicit
        ``cost_model`` must be provided; if both are given the explicit cost
        model wins.  ``batch`` prices the whole context for minibatches of
        that size, ``dtype`` at that precision (per-precision primitive
        gating and pricing both apply).
        """
        if cost_model is None:
            if platform is None:
                raise ValueError("provide either a platform or a cost model")
            cost_model = AnalyticalCostModel(platform)
        platform_name = platform.name if platform is not None else type(cost_model).__name__
        library = library if library is not None else default_primitive_library()
        if dt_graph is None:
            dt_graph = DTGraph(library.layouts_used(), default_transform_library())
        tables = build_cost_tables(
            network,
            library,
            dt_graph,
            cost_model,
            threads=threads,
            batch=batch,
            platform=platform,
            dtype=dtype,
        )
        return cls(
            network=network,
            library=library,
            dt_graph=dt_graph,
            cost_model=cost_model,
            platform_name=platform_name,
            threads=threads,
            tables=tables,
            platform=platform,
            batch=batch,
            dtype=dtype,
        )


class PBQPSelector:
    """Encode primitive selection as PBQP, solve it, and emit a plan."""

    def __init__(self, solver: Optional[PBQPSolver] = None) -> None:
        self.solver = solver or PBQPSolver()

    # -- encoding -----------------------------------------------------------------

    def build_pbqp(self, context: SelectionContext) -> Tuple[PBQPGraph, Dict[int, str]]:
        """Build the PBQP instance for a selection context.

        Returns the graph and a mapping from PBQP node id to DNN layer name.
        """
        network = context.network
        tables = context.tables
        layouts = context.dt_graph.layouts

        graph = PBQPGraph()
        node_of_layer: Dict[str, int] = {}
        id_to_layer: Dict[int, str] = {}

        for layer in network.topological_order():
            if layer.is_convolution:
                costs = tables.node_costs[layer.name]
                labels = sorted(costs)
                vector = [costs[name] for name in labels]
            elif layer.kind is LayerKind.INPUT:
                # The network input arrives in the canonical layout.
                labels = [CHW.name]
                vector = [0.0]
            else:
                labels = [layout.name for layout in layouts]
                vector = [0.0] * len(labels)
            node_id = graph.add_node(vector, name=layer.name, labels=labels)
            node_of_layer[layer.name] = node_id
            id_to_layer[node_id] = layer.name

        for edge in network.edges():
            if len(network.consumers_of(edge.producer)) >= 2:
                continue  # priced once through the producer's conversion node below
            producer = network.layer(edge.producer)
            consumer = network.layer(edge.consumer)
            shape = tables.shapes[edge.producer]
            out_layouts = self._alternative_layouts(context, producer, output=True)
            in_layouts = self._alternative_layouts(context, consumer, output=False)
            matrix = [
                [
                    tables.dt_costs[shape][(src.name, dst.name)]
                    for dst in in_layouts
                ]
                for src in out_layouts
            ]
            graph.add_edge(node_of_layer[edge.producer], node_of_layer[edge.consumer], matrix)

        for layer in network.topological_order():
            consumers = network.consumers_of(layer.name)
            if len(consumers) >= 2:
                self._add_fanout_conversion_node(
                    context, graph, node_of_layer, layer, consumers
                )

        return graph, id_to_layer

    def _add_fanout_conversion_node(
        self,
        context: SelectionContext,
        graph: PBQPGraph,
        node_of_layer: Dict[str, int],
        producer,
        consumers: Sequence[str],
    ) -> None:
        """Price a fan-out producer's conversions once per distinct target layout.

        The auxiliary node's alternatives are the candidate *sets* of target
        layouts (every non-empty subset, up to the fan-out width, of the
        layouts some consumer can demand).  The producer→aux matrix charges
        the dt-graph chain cost of each layout in the set exactly once — the
        executor's deduplicated cost — and each aux→consumer matrix is 0
        where the set covers the consumer's demanded input layout and
        infinite where it does not, so a minimizing assignment picks exactly
        the distinct targets the consumers chose.
        """
        tables = context.tables
        network = context.network
        shape = tables.shapes[producer.name]
        out_layouts = self._alternative_layouts(context, producer, output=True)
        consumer_in_layouts = {
            name: self._alternative_layouts(context, network.layer(name), output=False)
            for name in consumers
        }
        targets = sorted(
            {layout.name for layouts in consumer_in_layouts.values() for layout in layouts}
        )
        # A set of k consumers demands at most k distinct layouts, so larger
        # subsets are never selectable and need not be encoded.
        subsets = [
            combo
            for size in range(1, min(len(consumers), len(targets)) + 1)
            for combo in itertools.combinations(targets, size)
        ]
        aux_id = graph.add_node(
            [0.0] * len(subsets),
            name=f"{producer.name}::conversions",
            labels=["+".join(combo) for combo in subsets],
        )
        chain_costs = [
            [
                sum(tables.dt_costs[shape][(src.name, dst)] for dst in combo)
                for combo in subsets
            ]
            for src in out_layouts
        ]
        graph.add_edge(node_of_layer[producer.name], aux_id, chain_costs)
        covered = [frozenset(combo) for combo in subsets]
        for name in consumers:
            compatibility = [
                [
                    0.0 if layout.name in cover else math.inf
                    for layout in consumer_in_layouts[name]
                ]
                for cover in covered
            ]
            graph.add_edge(aux_id, node_of_layer[name], compatibility)

    def _alternative_layouts(
        self, context: SelectionContext, layer, output: bool
    ) -> List[Layout]:
        """The layout implied by each alternative of a layer's PBQP node."""
        if layer.is_convolution:
            labels = sorted(context.tables.node_costs[layer.name])
            primitives = [context.library.get(name) for name in labels]
            return [p.output_layout if output else p.input_layout for p in primitives]
        if layer.kind is LayerKind.INPUT:
            return [CHW]
        return context.dt_graph.layouts

    # -- solving ---------------------------------------------------------------------

    def select(self, context: SelectionContext) -> NetworkPlan:
        """Solve the selection problem and return the legalized plan."""
        graph, id_to_layer = self.build_pbqp(context)
        solution = self.solver.solve(graph)

        conv_primitives: Dict[str, str] = {}
        wildcard_layouts: Dict[str, Layout] = {}
        layout_by_name = {layout.name: layout for layout in context.dt_graph.layouts}
        layout_by_name.setdefault(CHW.name, CHW)

        for node_id, index in solution.assignment.items():
            layer_name = id_to_layer.get(node_id)
            if layer_name is None:
                continue  # auxiliary conversion node, not a layer decision
            layer = context.network.layer(layer_name)
            label = graph.node(node_id).label_of(index)
            if layer.is_convolution:
                conv_primitives[layer_name] = label
            else:
                wildcard_layouts[layer_name] = layout_by_name[label]

        plan = finalize_plan(context, "pbqp", conv_primitives, wildcard_layouts)
        stats = self.solver.last_stats
        plan.metadata.update(
            {
                "pbqp_cost": solution.cost,
                "pbqp_optimal": solution.optimal,
                "pbqp_nodes": graph.num_nodes,
                "pbqp_edges": graph.num_edges,
                "solver_seconds": stats.solve_seconds if stats else None,
                "solver_reductions": stats.total_reductions() if stats else None,
            }
        )
        return plan


def select_primitives(
    network: Network,
    platform: Optional[Platform] = None,
    cost_model: Optional[CostModel] = None,
    library: Optional[PrimitiveLibrary] = None,
    dt_graph: Optional[DTGraph] = None,
    threads: int = 1,
    batch: int = 1,
    dtype: str = "fp32",
) -> NetworkPlan:
    """One-call convenience API: profile, encode, solve and legalize.

    This is the entry point shown in the README quickstart.
    """
    context = SelectionContext.create(
        network,
        platform=platform,
        cost_model=cost_model,
        library=library,
        dt_graph=dt_graph,
        threads=threads,
        batch=batch,
        dtype=dtype,
    )
    return PBQPSelector().select(context)
