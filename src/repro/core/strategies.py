"""The unified strategy registry: every selection strategy behind one interface.

The paper's contribution is a *selection* framework — PBQP against a field of
baseline and vendor-framework strategies.  This module gives that field a
single extensible API: a :class:`Strategy` describes one way of instantiating
a network (``name``, ``applies_to`` gating, ``build_plan``), the
:func:`register_strategy` decorator publishes it in the global
:data:`STRATEGIES` registry, and the experiment harnesses, the CLI and the
:class:`~repro.api.Engine` all enumerate the registry instead of importing
strategy functions.  Adding a new strategy is a single decorated class.

Registered strategies (the ten of the paper's figures plus the SUM2D baseline
and the DT-blind greedy ablation):

===================  ============================================================
name                 plan builder
===================  ============================================================
``sum2d``            :func:`repro.core.baselines.sum2d_plan` (the common baseline)
``direct``           per-family greedy over the direct family
``im2``              per-family greedy over the im2col/im2row family
``kn2``              per-family greedy over the kn2col/kn2row family
``winograd``         per-family greedy over the Winograd family
``fft``              per-family greedy over the FFT family
``local_optimal``    :func:`repro.core.baselines.local_optimal_plan`
``pbqp``             :class:`repro.core.selector.PBQPSelector`
``greedy_ignore_dt`` :func:`repro.core.baselines.greedy_ignore_dt_plan`
``mkldnn``           Intel MKL-DNN emulation (``x86`` platforms)
``armcl``            ARM Compute Library emulation (``neon`` platforms)
``caffe``            BVLC Caffe emulation (every CPU platform)
``cudnn``            cuDNN-style emulation (``simt`` / GPU-shaped platforms)
===================  ============================================================

Framework emulations are gated by :attr:`Platform.features` (see
:mod:`repro.cost.platform`), not by hard-coded platform names, so registered
third-party platforms pick up the right comparators by declaring features.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Type

from repro.core.baselines import (
    family_greedy_plan,
    greedy_ignore_dt_plan,
    local_optimal_plan,
    sum2d_plan,
)
from repro.core.frameworks import (
    armcl_like_plan,
    caffe_like_plan,
    cudnn_like_plan,
    mkldnn_like_plan,
)
from repro.core.plan import NetworkPlan
from repro.core.selector import PBQPSelector, SelectionContext
from repro.primitives.base import PrimitiveFamily

#: Name of the strategy whose single-threaded plan is the common speedup baseline.
BASELINE_STRATEGY = "sum2d"


class Strategy:
    """One way of instantiating a network: the unit of the registry.

    Subclasses set :attr:`name` and implement :meth:`build_plan`;
    :meth:`applies_to` encodes platform gating (e.g. the MKL-DNN emulation
    only models desktop-class SIMD machines) and defaults to "everywhere".

    Attributes
    ----------
    name:
        Registry key, also used as the plan's ``strategy`` field.
    figure_order:
        Position of this strategy's bar in the paper's whole-network figures,
        or ``None`` for strategies that are not a figure bar (the SUM2D
        baseline and the ablation-only strategies).
    is_framework:
        Whether this is an emulated vendor framework (the harnesses allow
        excluding those with ``include_frameworks=False``).
    """

    name: str = ""
    figure_order: Optional[int] = None
    is_framework: bool = False

    def applies_to(self, context: SelectionContext) -> bool:
        """Whether this strategy is meaningful for the context's platform."""
        return True

    def build_plan(self, context: SelectionContext) -> NetworkPlan:
        """Build the strategy's plan from an already-profiled context."""
        raise NotImplementedError

    @property
    def description(self) -> str:
        """One-line human-readable description (first docstring line)."""
        doc = (type(self).__doc__ or "").strip()
        return doc.splitlines()[0] if doc else ""

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}(name={self.name!r})"


#: The global registry: strategy name -> strategy instance, in registration order.
STRATEGIES: Dict[str, Strategy] = {}


def register_strategy(cls: Type[Strategy]) -> Type[Strategy]:
    """Class decorator publishing a :class:`Strategy` in :data:`STRATEGIES`."""
    instance = cls()
    if not instance.name:
        raise ValueError(f"strategy class {cls.__name__} must set a non-empty name")
    if instance.name in STRATEGIES:
        raise ValueError(f"duplicate strategy name {instance.name!r}")
    STRATEGIES[instance.name] = instance
    return cls


def get_strategy(name: str) -> Strategy:
    """Look up a registered strategy by name."""
    try:
        return STRATEGIES[name]
    except KeyError:
        raise KeyError(
            f"unknown strategy {name!r}; registered strategies: {sorted(STRATEGIES)}"
        ) from None


def registered_names() -> List[str]:
    """Names of all registered strategies, in registration order."""
    return list(STRATEGIES)


def figure_strategy_names() -> List[str]:
    """Registered strategy names in the bar order of the paper's figures."""
    bars = [s for s in STRATEGIES.values() if s.figure_order is not None]
    return [s.name for s in sorted(bars, key=lambda s: s.figure_order)]


def applicable_strategies(
    context: SelectionContext, include_frameworks: bool = True
) -> List[Strategy]:
    """Registered strategies applicable to a context, in registration order."""
    return [
        strategy
        for strategy in STRATEGIES.values()
        if (include_frameworks or not strategy.is_framework)
        and strategy.applies_to(context)
    ]


# ---------------------------------------------------------------------------
# Baseline strategies (section 5 of the paper)
# ---------------------------------------------------------------------------


@register_strategy
class Sum2dStrategy(Strategy):
    """SUM2D baseline: every convolution uses the textbook algorithm."""

    name = "sum2d"

    def build_plan(self, context: SelectionContext) -> NetworkPlan:
        return sum2d_plan(context)


class FamilyGreedyStrategy(Strategy):
    """Per-family greedy: fastest family variant per layer when it beats SUM2D."""

    family: PrimitiveFamily

    def build_plan(self, context: SelectionContext) -> NetworkPlan:
        return family_greedy_plan(context, self.family)


@register_strategy
class DirectGreedyStrategy(FamilyGreedyStrategy):
    """Per-layer greedy over the direct convolution family."""

    name = "direct"
    family = PrimitiveFamily.DIRECT
    figure_order = 0


@register_strategy
class Im2GreedyStrategy(FamilyGreedyStrategy):
    """Per-layer greedy over the im2col/im2row family."""

    name = "im2"
    family = PrimitiveFamily.IM2
    figure_order = 1


@register_strategy
class Kn2GreedyStrategy(FamilyGreedyStrategy):
    """Per-layer greedy over the kn2col/kn2row family."""

    name = "kn2"
    family = PrimitiveFamily.KN2
    figure_order = 2


@register_strategy
class WinogradGreedyStrategy(FamilyGreedyStrategy):
    """Per-layer greedy over the Winograd family."""

    name = "winograd"
    family = PrimitiveFamily.WINOGRAD
    figure_order = 3


@register_strategy
class FFTGreedyStrategy(FamilyGreedyStrategy):
    """Per-layer greedy over the FFT family."""

    name = "fft"
    family = PrimitiveFamily.FFT
    figure_order = 4


@register_strategy
class LocalOptimalStrategy(Strategy):
    """Local Optimal (CHW): fastest canonical-layout primitive per layer."""

    name = "local_optimal"
    figure_order = 5

    def build_plan(self, context: SelectionContext) -> NetworkPlan:
        return local_optimal_plan(context)


@register_strategy
class PBQPStrategy(Strategy):
    """The paper's contribution: globally optimal selection via PBQP."""

    name = "pbqp"
    figure_order = 6

    def build_plan(self, context: SelectionContext) -> NetworkPlan:
        return PBQPSelector().select(context)


@register_strategy
class GreedyIgnoreDTStrategy(Strategy):
    """Ablation: per-layer fastest primitive, layout-conversion costs ignored."""

    name = "greedy_ignore_dt"

    def build_plan(self, context: SelectionContext) -> NetworkPlan:
        return greedy_ignore_dt_plan(context)


# ---------------------------------------------------------------------------
# Emulated vendor frameworks (platform-gated)
# ---------------------------------------------------------------------------


@register_strategy
class MKLDNNStrategy(Strategy):
    """Intel MKL-DNN emulation: JIT blocked direct convolution."""

    name = "mkldnn"
    figure_order = 7
    is_framework = True

    def applies_to(self, context: SelectionContext) -> bool:
        # MKL-DNN exists for x86 parts (AVX2 desktop and AVX-512 server
        # alike).  Feature-less contexts (hand-built platforms, the host
        # profiler) fall back to the historical wide-SIMD heuristic.
        features = context.platform_features
        if features:
            return "x86" in features
        return context.platform_vector_width >= 8

    def build_plan(self, context: SelectionContext) -> NetworkPlan:
        return mkldnn_like_plan(context)


@register_strategy
class ARMCLStrategy(Strategy):
    """ARM Compute Library emulation: NEON GEMM-based convolution."""

    name = "armcl"
    figure_order = 8
    is_framework = True

    def applies_to(self, context: SelectionContext) -> bool:
        # The ARM Compute Library only exists for NEON-class parts.
        features = context.platform_features
        if features:
            return "neon" in features
        return context.platform_vector_width < 8

    def build_plan(self, context: SelectionContext) -> NetworkPlan:
        return armcl_like_plan(context)


@register_strategy
class CaffeStrategy(Strategy):
    """BVLC Caffe emulation: im2col + GEMM in the canonical layout."""

    name = "caffe"
    figure_order = 9
    is_framework = True

    def applies_to(self, context: SelectionContext) -> bool:
        # CPU-only: BVLC Caffe's CPU path is what the paper compares against
        # (its GPU path *is* cuDNN, emulated separately below).
        return "simt" not in context.platform_features

    def build_plan(self, context: SelectionContext) -> NetworkPlan:
        return caffe_like_plan(context)


@register_strategy
class CudnnStrategy(Strategy):
    """cuDNN-style emulation: per-layer algorithm pick on a SIMT device."""

    name = "cudnn"
    figure_order = 10
    is_framework = True

    def applies_to(self, context: SelectionContext) -> bool:
        # cuDNN only exists for GPU-shaped (SIMT) platforms.
        return "simt" in context.platform_features

    def build_plan(self, context: SelectionContext) -> NetworkPlan:
        return cudnn_like_plan(context)
