"""Network plans: the output of primitive selection.

A :class:`NetworkPlan` records, for one network on one platform / thread
count, which primitive implements each convolution layer, which data layout
each non-convolution layer operates in, which layout-conversion chains are
inserted on which edges (the legalization of section 3 of the paper), and the
resulting cost breakdown.  Plans are produced both by the PBQP selector and by
every baseline strategy, so the whole evaluation compares like with like.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.layouts.layout import Layout
from repro.layouts.transforms import TransformChain
from repro.multiobj.vector import CostVector


@dataclass
class LayerDecision:
    """The selection made for one layer.

    ``primitive`` is the name of the convolution primitive for convolution
    layers and ``None`` for every other layer kind (which the formulation
    treats as zero-cost nodes that simply adopt a layout).
    """

    layer: str
    primitive: Optional[str]
    input_layout: Layout
    output_layout: Layout
    cost: float = 0.0
    note: str = ""
    #: Peak scratch workspace (bytes) of the selected primitive; 0 for
    #: non-convolution layers and for plans predating the vector cost layer.
    workspace_bytes: float = 0.0
    #: Energy proxy (joules) of the selected primitive; 0 when not modelled.
    energy_j: float = 0.0
    #: Modelled accuracy loss of running this layer at the plan's precision;
    #: 0 for fp32 and for plans predating the precision axis.
    accuracy_loss: float = 0.0


@dataclass
class EdgeDecision:
    """The layout-conversion chain inserted on one data-flow edge."""

    producer: str
    consumer: str
    source_layout: Layout
    target_layout: Layout
    chain: Optional[TransformChain]
    cost: float = 0.0
    #: Energy proxy (joules) of the conversion chain; 0 when not modelled.
    energy_j: float = 0.0

    @property
    def needs_conversion(self) -> bool:
        """Whether any transformation is actually executed on this edge."""
        return self.chain is not None and len(self.chain) > 0


@dataclass
class NetworkPlan:
    """A complete instantiation of a network with primitives and conversions."""

    network_name: str
    strategy: str
    platform_name: str
    threads: int
    layer_decisions: Dict[str, LayerDecision] = field(default_factory=dict)
    #: Minibatch size the plan's costs describe (1 = the paper's setting).
    batch: int = 1
    #: Numeric precision the plan selects for ("fp32" = the paper's setting).
    dtype: str = "fp32"
    edge_decisions: List[EdgeDecision] = field(default_factory=list)
    #: Extra information recorded by the strategy (e.g. solver statistics).
    metadata: Dict[str, object] = field(default_factory=dict)

    # -- cost breakdown ------------------------------------------------------------

    @property
    def conv_cost(self) -> float:
        """Total cost of the selected convolution primitives, in seconds."""
        return sum(d.cost for d in self.layer_decisions.values())

    @property
    def dt_cost(self) -> float:
        """Total cost of the inserted layout conversions, in seconds."""
        return sum(e.cost for e in self.edge_decisions)

    @property
    def total_cost(self) -> float:
        """Whole-network cost in seconds (convolutions plus conversions)."""
        return self.conv_cost + self.dt_cost

    @property
    def total_ms(self) -> float:
        """Whole-network cost in milliseconds (for the whole batch)."""
        return 1e3 * self.total_cost

    @property
    def per_image_ms(self) -> float:
        """Whole-network cost per image, in milliseconds."""
        return self.total_ms / self.batch

    @property
    def peak_workspace_bytes(self) -> float:
        """Largest per-layer scratch footprint of the plan, in bytes.

        Peak memory is a *max*, not a sum: layers execute sequentially and
        their workspaces are released between layers, so the plan's peak is
        the single worst layer.
        """
        if not self.layer_decisions:
            return 0.0
        return max(d.workspace_bytes for d in self.layer_decisions.values())

    @property
    def energy_proxy_j(self) -> float:
        """Whole-network energy proxy, in joules (primitives plus conversions)."""
        return sum(d.energy_j for d in self.layer_decisions.values()) + sum(
            e.energy_j for e in self.edge_decisions
        )

    @property
    def accuracy_proxy(self) -> float:
        """Whole-network modelled accuracy loss (sum of per-layer losses).

        Quantization noise compounds layer by layer, so losses add; a pure
        fp32 plan reports exactly 0.
        """
        return sum(d.accuracy_loss for d in self.layer_decisions.values())

    def cost_vector(self) -> CostVector:
        """The plan's full (time, workspace, energy, accuracy) objective vector."""
        return CostVector(
            time_ms=self.total_ms,
            peak_workspace_bytes=self.peak_workspace_bytes,
            energy_proxy_j=self.energy_proxy_j,
            accuracy_proxy=self.accuracy_proxy,
        )

    # -- queries --------------------------------------------------------------------

    def decision(self, layer: str) -> LayerDecision:
        """The decision recorded for one layer."""
        return self.layer_decisions[layer]

    def primitive_for(self, layer: str) -> Optional[str]:
        """Name of the primitive selected for a layer (``None`` for non-conv layers)."""
        return self.layer_decisions[layer].primitive

    def conv_selections(self) -> Dict[str, str]:
        """Mapping from convolution layer name to selected primitive name."""
        return {
            name: decision.primitive
            for name, decision in self.layer_decisions.items()
            if decision.primitive is not None
        }

    def conversions(self) -> List[EdgeDecision]:
        """The edges on which a layout conversion is actually executed."""
        return [edge for edge in self.edge_decisions if edge.needs_conversion]

    def speedup_over(self, baseline: "NetworkPlan") -> float:
        """Speedup of this plan relative to a baseline plan."""
        if self.total_cost <= 0:
            raise ValueError("plan has non-positive total cost")
        return baseline.total_cost / self.total_cost

    # -- reporting ---------------------------------------------------------------------

    def summary(self) -> str:
        """Human-readable description of the plan (selection table + cost)."""
        batch = f", batch {self.batch}" if self.batch != 1 else ""
        dtype = f", {self.dtype}" if self.dtype != "fp32" else ""
        per_image = f", {self.per_image_ms:.2f} ms/image" if self.batch != 1 else ""
        lines = [
            f"Plan for {self.network_name!r} [{self.strategy}] on {self.platform_name} "
            f"({self.threads} thread{'s' if self.threads != 1 else ''}{batch}{dtype})",
            f"  total {self.total_ms:.2f} ms{per_image}  (conv {1e3 * self.conv_cost:.2f} ms, "
            f"layout transforms {1e3 * self.dt_cost:.2f} ms, "
            f"{len(self.conversions())} conversions)",
        ]
        for name, decision in self.layer_decisions.items():
            if decision.primitive is None:
                continue
            lines.append(
                f"    {name:<24} {decision.primitive:<28} "
                f"{decision.input_layout.name}->{decision.output_layout.name}  "
                f"{1e3 * decision.cost:8.3f} ms"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"NetworkPlan({self.network_name!r}, strategy={self.strategy!r}, "
            f"total={self.total_ms:.2f} ms)"
        )
