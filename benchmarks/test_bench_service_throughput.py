"""Planner-service throughput: warm vs cold request latency over real HTTP.

The service's contract is that a *warm* ``POST /v1/plan`` is a dictionary
read — no profiling, no PBQP solve — so its latency is wire + JSON, orders of
magnitude under a cold plan.  The benchmark boots the real daemon (ephemeral
port, threaded server), measures one cold request, then hammers a warmed
mixed grid with concurrent clients and records the warm p50/p99 and the
sustained requests/second into ``BENCH_service_throughput.json``.

The correctness gates of the acceptance criterion ride along: every
concurrent response must be 200 with a plan byte-identical to the direct
:meth:`Session.plan` answer, and the barrage must perform zero PBQP solves
(checked via the process-wide solve counter, not timing).
"""

import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from benchmarks.conftest import SMOKE, emit, record_metric
from repro.cost.serialize import plan_to_dict
from repro.pbqp.solver import solve_count
from repro.service import PlannerApp, PlannerClient, make_server
from repro.service.metrics import quantile

MODELS = ("alexnet",) if SMOKE else ("alexnet", "resnet18", "mobilenet_v1")
PLATFORMS = ("intel-haswell",) if SMOKE else ("intel-haswell", "arm-cortex-a57")
BATCHES = (1,) if SMOKE else (1, 4)
CONCURRENT_REQUESTS = 20 if SMOKE else 100
POOL_WIDTH = 8 if SMOKE else 16


def test_service_warm_throughput(benchmark, tmp_path):
    app = PlannerApp(cache_dir=str(tmp_path))
    server = make_server(app)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    client = PlannerClient(*server.server_address[:2])
    try:
        client.wait_until_ready()

        # One cold request: profile + solve + serialize, the price the warm
        # path amortizes away.
        start = time.perf_counter()
        client.plan(MODELS[0], PLATFORMS[0])
        cold_ms = (time.perf_counter() - start) * 1e3

        # Warm the whole grid and pin the expected canonical plan bytes.
        grid = [
            (model, platform, batch)
            for model in MODELS
            for platform in PLATFORMS
            for batch in BATCHES
        ]
        expected = {}
        for model, platform, batch in grid:
            client.plan(model, platform, batch=batch)
            direct = app.session.plan(model, platform, batch=batch)
            expected[(model, platform, batch)] = json.dumps(
                plan_to_dict(direct.network_plan), sort_keys=True
            )

        # Warm request latency, measured sequentially from one client: the
        # true per-request service time (wire + JSON + a dictionary read).
        # Under the saturated barrage below, per-request wall time measures
        # queueing (in-flight / throughput), not service time — and the
        # server-side request_latency histogram covers the cold warm-up
        # builds above, so neither is the honest warm-latency number.
        warm_latencies_ms = []
        for index in range(3 * len(grid)):
            model, platform, batch = grid[index % len(grid)]
            start = time.perf_counter()
            client.plan(model, platform, batch=batch)
            warm_latencies_ms.append((time.perf_counter() - start) * 1e3)

        requests = [grid[i % len(grid)] for i in range(CONCURRENT_REQUESTS)]
        solves_before = solve_count()

        def barrage():
            with ThreadPoolExecutor(max_workers=POOL_WIDTH) as pool:
                return list(
                    pool.map(
                        lambda spec: client.plan(spec[0], spec[1], batch=spec[2]),
                        requests,
                    )
                )

        documents = benchmark.pedantic(barrage, rounds=3, iterations=1)

        # Correctness gates: all cached, byte-identical, zero solves.
        assert solve_count() == solves_before
        for spec, document in zip(requests, documents):
            assert document["from_cache"] is True
            assert json.dumps(document["plan"], sort_keys=True) == expected[spec]

        elapsed_s = benchmark.stats.stats.mean
        requests_per_s = CONCURRENT_REQUESTS / elapsed_s
        ordered = sorted(warm_latencies_ms)
        warm_p50_ms = quantile(ordered, 0.50)
        warm_p99_ms = quantile(ordered, 0.99)
        record_metric("service_throughput", "cold_plan_ms", cold_ms)
        record_metric("service_throughput", "warm_p50_ms", warm_p50_ms)
        record_metric("service_throughput", "warm_p99_ms", warm_p99_ms)
        record_metric("service_throughput", "requests_per_s", requests_per_s)
        emit(
            "Planner service — warm concurrent throughput over HTTP\n"
            f"grid: {len(MODELS)} models x {len(PLATFORMS)} platforms x "
            f"{len(BATCHES)} batches, {CONCURRENT_REQUESTS} concurrent requests "
            f"({POOL_WIDTH} client threads)\n"
            f"cold plan request:        {cold_ms:10.2f} ms\n"
            f"warm request p50:         {warm_p50_ms:10.2f} ms\n"
            f"warm request p99:         {warm_p99_ms:10.2f} ms\n"
            f"sustained throughput:     {requests_per_s:10.0f} requests/s\n"
            f"PBQP solves during barrage: {solve_count() - solves_before} (must be 0)"
        )
        assert warm_p99_ms < cold_ms
    finally:
        server.shutdown()
        server.server_close()
        app.close()
