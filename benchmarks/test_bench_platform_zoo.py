"""E12 — platform zoo: selection drift across the four modelled backends.

The paper's Figure 4 shows its two CPU platforms disagreeing on most AlexNet
layers; with the platform registry the claim extends to a zoo.  This
benchmark sweeps the networks over every registered platform (the paper's
pair plus the AVX-512 server and the GPU-shaped accelerator) and encodes the
headline findings:

* **PBQP optimality everywhere**: on all four platforms PBQP is at least as
  fast as every single-primitive-family bar (and every framework emulation);
* **GPU pushes transform/GEMM at batch 1**: the SIMT lanes starve the plain
  loop nests, so AlexNet's GPU selection contains no direct/sum2d layer even
  in the paper's latency setting, and the whole-graph selection beats the
  per-layer-greedy cuDNN comparator;
* **new platforms drift from both CPU baselines**: on GoogLeNet each new
  platform selects a different family than *both* CPU platforms for several
  layers (the paper's platform-dependence claim, zoo edition);
* **AVX-512 widens the batch-amortization gap** (PR-4 follow-up): at batch
  16 the server part's bandwidth/cache headroom pushes MobileNet-v1's
  remaining direct-family selections into the GEMM families, beyond what
  Haswell's tables justify.

Smoke mode (``REPRO_BENCH_SMOKE=1``) trims the sweep to AlexNet; the
GoogLeNet/MobileNet drift assertions are skipped there.
"""

import pytest

from benchmarks.conftest import emit, smoke_networks, smoke_skip
from repro.api import Session
from repro.cost.platform import list_platforms
from repro.experiments.platform_scaling import run_platform_scaling
from repro.primitives.base import PrimitiveFamily

NETWORKS = smoke_networks(["alexnet", "googlenet", "mobilenet_v1"], tiny=("alexnet",))

#: The single-primitive-family baselines of the figures.
FAMILY_STRATEGIES = ("direct", "im2", "kn2", "winograd", "fft")

BATCHES = (1, 16)


@pytest.fixture(scope="module")
def session():
    return Session()


@pytest.fixture(scope="module")
def sweep(session):
    return run_platform_scaling(
        networks=NETWORKS, batches=BATCHES, session=session
    )


def test_platform_zoo_sweep(benchmark, session, sweep):
    benchmark.pedantic(
        lambda: run_platform_scaling(
            networks=NETWORKS[:1], batches=(1,), session=session
        ),
        rounds=1,
        iterations=1,
    )
    emit(sweep.format())
    assert sweep.platforms == list_platforms()
    assert len(sweep.platforms) >= 4


def test_pbqp_at_least_matches_every_family_bar_on_all_platforms(session, sweep):
    """PBQP >= every single-family baseline, on every registered platform."""
    for network in NETWORKS:
        for platform in sweep.platforms:
            report = session.compare(
                network, platform, strategies=("pbqp",) + FAMILY_STRATEGIES
            )
            by_name = {result.strategy: result.total_ms for result in report}
            for family in FAMILY_STRATEGIES:
                assert by_name["pbqp"] <= by_name[family] + 1e-9, (
                    network,
                    platform,
                    family,
                )


def test_gpu_pushes_transform_gemm_families_at_batch_1(session, sweep):
    """The SIMT part never places a plain loop nest on an AlexNet layer."""
    cell = sweep.cell("alexnet", "gpu-sim", 1)
    plain = {PrimitiveFamily.DIRECT.value, PrimitiveFamily.SUM2D.value}
    assert not plain & set(cell.families.values()), cell.families
    # The cuDNN emulation's hand-tuned kernels (efficiency factor < 1) keep
    # it competitive on AlexNet's few big layers — within a few percent of
    # the whole-graph selection either way.
    report = session.compare("alexnet", "gpu-sim", strategies=("pbqp", "cudnn"))
    by_name = {result.strategy: result.total_ms for result in report}
    assert by_name["pbqp"] <= 1.10 * by_name["cudnn"]


@smoke_skip
def test_whole_graph_selection_beats_cudnn_on_many_small_layers(session):
    """GoogLeNet's 57 small convolutions make cuDNN's per-layer dispatch the
    bottleneck: the whole-graph selection wins clearly (the GPU analogue of
    the paper's Caffe-slower-than-baseline GoogLeNet/ARM observation)."""
    report = session.compare("googlenet", "gpu-sim", strategies=("pbqp", "cudnn"))
    by_name = {result.strategy: result.total_ms for result in report}
    assert by_name["pbqp"] < by_name["cudnn"]


def test_gpu_small_layers_are_launch_bound(session):
    """On the GPU the predicted cost of a tiny layer is dominated by launches."""
    from repro.cost.analytical import AnalyticalCostModel
    from repro.cost.platform import get_platform
    from repro.graph.scenario import ConvScenario

    gpu = get_platform("gpu-sim")
    model = AnalyticalCostModel(gpu)
    tiny = ConvScenario(c=16, h=7, w=7, stride=1, k=1, m=16)
    for primitive in session.library.applicable(tiny, platform=gpu):
        cost = model.primitive_cost(primitive, tiny)
        assert cost >= gpu.launch_overhead_s


@smoke_skip
def test_new_platforms_drift_from_both_cpu_baselines(sweep):
    """Acceptance: >= 1 GoogLeNet layer leaves both CPU families on each new part."""
    for platform in ("avx512-server", "gpu-sim"):
        drift = sweep.drift_layers("googlenet", platform, 1)
        assert len(drift) >= 1, (platform, drift)
        for layer, (family, baselines) in drift.items():
            assert all(family != other for other in baselines.values()), layer


@smoke_skip
def test_avx512_widens_batch_amortization_beyond_haswell(sweep):
    """At batch 16 the server part abandons direct loops Haswell still keeps."""
    direct = PrimitiveFamily.DIRECT.value
    intel = sweep.cell("mobilenet_v1", "intel-haswell", 16).family_histogram()
    server = sweep.cell("mobilenet_v1", "avx512-server", 16).family_histogram()
    assert server.get(direct, 0) < intel.get(direct, 0), (intel, server)
