"""E10 — Ablations of the design choices DESIGN.md calls out.

Two ablations:

* DT-cost awareness (section 5.8 / 6): scale the cost of layout
  transformations and compare the PBQP selection against per-layer greedy
  selection that ignores DT costs, and against the canonical-layout strategy.
  When conversions are free the greedy matches PBQP; as they get more
  expensive the gap widens, quantifying why selection must model them.
* Exact versus heuristic PBQP solving: the RN heuristic's solution quality
  and time against the provably optimal branch-and-bound core search on the
  real selection instances.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments.ablation import dt_cost_ablation, solver_mode_ablation

SCALES = (0.0, 0.5, 1.0, 2.0, 4.0)


@pytest.fixture(scope="module")
def ablation_points(library, intel):
    return dt_cost_ablation(
        model_name="googlenet", platform=intel, scales=SCALES, library=library
    )


def test_dt_cost_ablation(benchmark, library, intel, ablation_points):
    benchmark.pedantic(
        lambda: dt_cost_ablation(
            model_name="alexnet", platform=intel, scales=(1.0,), library=library
        ),
        rounds=1,
        iterations=1,
    )
    lines = ["DT-cost ablation (GoogLeNet, Intel Haswell, single-threaded)"]
    lines.append(f"{'scale':>8}{'pbqp ms':>12}{'greedy ms':>12}{'local opt ms':>14}{'pbqp/greedy':>14}")
    for point in ablation_points:
        lines.append(
            f"{point.scale:>8.1f}{point.pbqp_ms:>12.2f}{point.greedy_ignore_dt_ms:>12.2f}"
            f"{point.local_optimal_ms:>14.2f}{point.pbqp_advantage_over_greedy:>14.3f}"
        )
    emit("\n".join(lines))

    assert ablation_points[0].pbqp_advantage_over_greedy == pytest.approx(1.0, rel=1e-6)
    for point in ablation_points:
        assert point.pbqp_advantage_over_greedy >= 1.0 - 1e-9
        assert point.pbqp_advantage_over_local >= 1.0 - 1e-9
    assert (
        ablation_points[-1].pbqp_advantage_over_greedy
        > ablation_points[0].pbqp_advantage_over_greedy
    )


def test_solver_mode_ablation(benchmark, library, intel):
    results = benchmark.pedantic(
        lambda: solver_mode_ablation(networks=["alexnet", "googlenet"], platform=intel, library=library),
        rounds=1,
        iterations=1,
    )
    lines = ["Exact vs heuristic PBQP solving"]
    for result in results:
        lines.append(
            f"  {result.network:<12} exact {1e3 * result.exact_cost:9.2f} ms-cost in {result.exact_seconds:.4f}s"
            f" | heuristic {1e3 * result.heuristic_cost:9.2f} ms-cost in {result.heuristic_seconds:.4f}s"
            f" | gap {100 * result.heuristic_gap:.2f}%"
        )
    emit("\n".join(lines))

    for result in results:
        assert result.exact_provably_optimal
        assert result.heuristic_cost >= result.exact_cost - 1e-12
