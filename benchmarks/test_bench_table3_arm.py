"""E7 — Table 3: absolute single-inference times on the ARM Cortex-A57.

Same structure as Table 2 on the embedded platform.  The assertions include
the table's most striking feature: Caffe's GoogLeNet time exceeds even the
SUM2D baseline on this platform.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments.tables import format_absolute_table, run_absolute_time_table


@pytest.fixture(scope="module")
def table3_rows(library, arm):
    return run_absolute_time_table(arm, library=library)


def test_table3_absolute_times_arm(benchmark, library, arm, table3_rows):
    benchmark.pedantic(
        lambda: run_absolute_time_table(arm, networks=["alexnet"], thread_counts=(1,), library=library),
        rounds=1,
        iterations=1,
    )
    emit(format_absolute_table(table3_rows, "Table 3 — single inference time on ARM Cortex-A57 (ms)"))

    for row in table3_rows:
        times = row.times_ms
        assert times["SUM2D"] > times["L.OPT"] > times["PBQP"]
        assert times["CAFFE"] > times["PBQP"]


def test_table3_caffe_slower_than_baseline_for_googlenet(table3_rows):
    single_threaded = {
        row.network: row.times_ms for row in table3_rows if row.mode == "S"
    }
    assert single_threaded["googlenet"]["CAFFE"] > single_threaded["googlenet"]["SUM2D"]
    # For AlexNet Caffe is roughly at parity with the baseline (2341 vs 2369 ms
    # in the paper); allow a generous band around 1.0.
    ratio = single_threaded["alexnet"]["CAFFE"] / single_threaded["alexnet"]["SUM2D"]
    assert 0.7 < ratio < 1.6


def test_table3_arm_slower_than_intel(table3_rows, library, intel):
    """The embedded platform is several times slower than the desktop part."""
    intel_rows = run_absolute_time_table(
        intel, networks=["alexnet"], thread_counts=(1,), library=library
    )
    arm_alexnet = next(r for r in table3_rows if r.network == "alexnet" and r.mode == "S")
    intel_alexnet = intel_rows[0]
    assert arm_alexnet.times_ms["PBQP"] > 2.0 * intel_alexnet.times_ms["PBQP"]
