"""Static-analysis benchmark: verifier and lint wall-time over the zoo.

The verifier gates every ``Session.plan`` call and every disk-tier admission
in the service, so its cost is paid on the planning hot path; this benchmark
pins it down and tracks it in the ``BENCH_analysis.json`` trajectory.  The
headline invariants ride along: every freshly planned zoo document verifies
clean (no false positives), and the ResNet-18 fan-out double-pricing finding
(the known cost-model blind spot this layer was built to surface) is present
with a positive quantified delta.
"""

import re

import pytest

from benchmarks.conftest import emit, record_metric, smoke_networks, smoke_skip
from repro.analysis.lint import run_lint
from repro.analysis.plan_verifier import verify_document
from repro.api import Session
from repro.cost.serialize import plan_to_dict

NETWORKS = smoke_networks(["alexnet", "vgg-a", "googlenet", "resnet18", "mobilenet_v1"])

PLATFORM = "intel-haswell"


@pytest.fixture(scope="module")
def session(library):
    return Session(library=library)


@pytest.fixture(scope="module")
def zoo_documents(session):
    # verify=False: the benchmark times verification separately, below.
    return {
        name: plan_to_dict(session.plan(name, PLATFORM, verify=False).network_plan)
        for name in NETWORKS
    }


def test_verifier_walltime_over_zoo(zoo_documents, benchmark):
    def verify_all():
        return [
            verify_document(doc, source=name)
            for name, doc in zoo_documents.items()
        ]

    reports = benchmark.pedantic(verify_all, rounds=5, iterations=1)
    for name, report in zip(zoo_documents, reports):
        assert report.ok, f"{name}: {report.summary()}"

    total_ms = benchmark.stats.stats.mean * 1e3
    record_metric("analysis", "verify_zoo_ms", total_ms)
    record_metric(
        "analysis", "verify_per_plan_ms", total_ms / max(1, len(zoo_documents))
    )
    emit(
        f"Static verification — {len(zoo_documents)} zoo plans on {PLATFORM}\n"
        f"  total          {total_ms:8.2f} ms\n"
        f"  per plan       {total_ms / max(1, len(zoo_documents)):8.2f} ms"
    )


@smoke_skip
def test_fanout_finding_on_resnet18(zoo_documents):
    report = verify_document(zoo_documents["resnet18"], source="resnet18")
    fanout = [f for f in report.findings if f.rule == "RV140"]
    assert fanout, "resnet18 pool1 fan-out double-pricing must be detected"
    deltas = []
    for finding in fanout:
        match = re.search(r"double-priced by ([0-9.]+) ms", finding.message)
        assert match, finding.message
        deltas.append(float(match.group(1)))
    assert all(delta > 0 for delta in deltas)
    record_metric("analysis", "fanout_delta_ms", max(deltas))
    emit(
        "Fan-out double-pricing (resnet18, intel-haswell)\n"
        + "\n".join(f"  {f.location}: {f.message}" for f in fanout)
    )


def test_lint_walltime_over_src(benchmark):
    report = benchmark.pedantic(lambda: run_lint(["src"]), rounds=3, iterations=1)
    assert report.ok, report.summary()
    lint_ms = benchmark.stats.stats.mean * 1e3
    record_metric("analysis", "lint_src_ms", lint_ms)
    emit(f"Project lint — src tree\n  total          {lint_ms:8.2f} ms")
