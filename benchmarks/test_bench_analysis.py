"""Static-analysis benchmark: verifier and lint wall-time over the zoo.

The verifier gates every ``Session.plan`` call and every disk-tier admission
in the service, so its cost is paid on the planning hot path; this benchmark
pins it down and tracks it in the ``BENCH_analysis.json`` trajectory.  The
headline invariants ride along: every freshly planned zoo document verifies
clean (no false positives), and the ResNet-18 fan-out double-pricing delta —
once the known cost-model blind spot this layer was built to surface, fixed
by the fan-out-aware PBQP encoding — stays pinned at zero.
"""

import pytest

from benchmarks.conftest import emit, record_metric, smoke_networks, smoke_skip
from repro.analysis.lint import run_lint
from repro.analysis.plan_verifier import verify_document
from repro.api import Session
from repro.cost.serialize import plan_to_dict

NETWORKS = smoke_networks(["alexnet", "vgg-a", "googlenet", "resnet18", "mobilenet_v1"])

PLATFORM = "intel-haswell"


@pytest.fixture(scope="module")
def session(library):
    return Session(library=library)


@pytest.fixture(scope="module")
def zoo_documents(session):
    # verify=False: the benchmark times verification separately, below.
    return {
        name: plan_to_dict(session.plan(name, PLATFORM, verify=False).network_plan)
        for name in NETWORKS
    }


def test_verifier_walltime_over_zoo(zoo_documents, benchmark):
    def verify_all():
        return [
            verify_document(doc, source=name)
            for name, doc in zoo_documents.items()
        ]

    reports = benchmark.pedantic(verify_all, rounds=5, iterations=1)
    for name, report in zip(zoo_documents, reports):
        assert report.ok, f"{name}: {report.summary()}"

    total_ms = benchmark.stats.stats.mean * 1e3
    record_metric("analysis", "verify_zoo_ms", total_ms)
    record_metric(
        "analysis", "verify_per_plan_ms", total_ms / max(1, len(zoo_documents))
    )
    emit(
        f"Static verification — {len(zoo_documents)} zoo plans on {PLATFORM}\n"
        f"  total          {total_ms:8.2f} ms\n"
        f"  per plan       {total_ms / max(1, len(zoo_documents)):8.2f} ms"
    )


@smoke_skip
def test_fanout_finding_on_resnet18(zoo_documents):
    """Fan-out-aware encoding: the RV140 delta is pinned to zero.

    Before the fan-out-aware PBQP encoding this asserted a *positive*
    double-pricing delta on ResNet-18's shared ``pool1`` chain (1.225 ms on
    intel-haswell); shared chains are now priced once, so the detector — kept
    as a regression tripwire — must stay silent, and the metric trajectory
    records the delta as exactly 0.
    """
    report = verify_document(zoo_documents["resnet18"], source="resnet18")
    fanout = [f for f in report.findings if f.rule == "RV140"]
    assert not fanout, "\n".join(f"  {f.location}: {f.message}" for f in fanout)
    record_metric("analysis", "fanout_delta_ms", 0.0)
    emit("Fan-out double-pricing (resnet18, intel-haswell)\n  delta          0.00 ms")


def test_lint_walltime_over_src(benchmark):
    report = benchmark.pedantic(lambda: run_lint(["src"]), rounds=3, iterations=1)
    assert report.ok, report.summary()
    lint_ms = benchmark.stats.stats.mean * 1e3
    record_metric("analysis", "lint_src_ms", lint_ms)
    emit(f"Project lint — src tree\n  total          {lint_ms:8.2f} ms")
