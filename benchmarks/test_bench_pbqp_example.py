"""E1 — Figure 2: the worked PBQP example (node-only versus node+edge costs).

Benchmarks the PBQP solver on the three-layer example and checks the two
qualitative properties the figure demonstrates: the node-only optimum is the
per-node minimum (cost 37), and adding edge costs changes the problem in a
way the solver still solves to proven optimality (verified against brute
force).
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments.pbqp_example import figure2_example


def test_figure2_pbqp_example(benchmark):
    result = benchmark.pedantic(figure2_example, rounds=5, iterations=1)

    emit(
        "Figure 2 — PBQP example\n"
        f"  node costs only : cost {result.node_only_cost:.1f}, "
        f"selection {result.node_only_selection}\n"
        f"  node + edge     : cost {result.with_edges_cost:.1f}, "
        f"selection {result.with_edges_selection}\n"
        f"  brute force     : cost {result.brute_force_cost:.1f}"
    )

    assert result.node_only_cost == pytest.approx(37.0)
    assert result.node_only_selection == {"conv1": "B", "conv2": "C", "conv3": "B"}
    assert result.with_edges_cost == pytest.approx(result.brute_force_cost)
    assert result.with_edges.optimal
    assert result.with_edges_cost >= result.node_only_cost
