"""E10 — residual/depthwise zoo extension: ResNet-18 and MobileNet-v1.

The paper's scenario-diversity claim is strongest on DAG-shaped graphs where
layout decisions interact; this benchmark extends the whole-network
evaluation beyond the paper's three families to the residual (ResNet-18) and
depthwise-separable (MobileNet-v1) networks on both modelled platforms.  The
assertions encode the headline: PBQP is at least as fast as *every*
single-primitive-family baseline on both networks, on both platforms, and
the per-layer selections respect the capability model (no kn2/FFT primitive
is ever placed on a depthwise layer, which those families decline).
"""

import pytest

from benchmarks.conftest import emit, smoke_networks
from repro.api import Session
from repro.experiments.selections import selection_comparison
from repro.experiments.whole_network import (
    EXTENDED_NETWORKS,
    format_speedup_table,
    run_whole_network,
)

NETWORKS = smoke_networks(EXTENDED_NETWORKS["intel-haswell"], tiny=("mobilenet_v1",))

#: The single-primitive-family baselines of the figures.
FAMILY_STRATEGIES = ("direct", "im2", "kn2", "winograd", "fft")


@pytest.fixture(scope="module")
def session():
    return Session()


@pytest.fixture(scope="module")
def extended_results(session, intel, arm):
    return {
        platform.name: [
            run_whole_network(name, platform, threads=1, session=session)
            for name in NETWORKS
        ]
        for platform in (intel, arm)
    }


def test_extended_zoo_speedups(benchmark, session, intel, extended_results):
    benchmark.pedantic(
        lambda: run_whole_network(NETWORKS[0], intel, threads=1, session=session),
        rounds=1,
        iterations=1,
    )
    for platform_name, results in extended_results.items():
        emit(
            format_speedup_table(
                results,
                f"Extended zoo — whole-network speedups, {platform_name}, single-threaded",
            )
        )
        for result in results:
            speedups = result.speedups()
            # PBQP >= every single-primitive-family baseline (and every other bar).
            for strategy, value in speedups.items():
                if strategy != "pbqp":
                    assert speedups["pbqp"] >= value - 1e-9, (
                        platform_name,
                        result.network,
                        strategy,
                    )
            assert speedups["pbqp"] > 1.0


def test_depthwise_layers_never_get_kn2_or_fft(session, intel, arm):
    """kn2/FFT decline depthwise scenarios, so no plan may place them there."""
    if "mobilenet_v1" not in NETWORKS:
        pytest.skip("mobilenet_v1 trimmed from this run")
    comparison = selection_comparison(
        "mobilenet_v1", threads=1, platforms=[arm, intel], session=session
    )
    emit(comparison.format())
    for platform_name, selections in comparison.selections.items():
        depthwise = {
            layer: primitive
            for layer, primitive in selections.items()
            if layer.endswith("/dw")
        }
        assert len(depthwise) == 13
        for layer, primitive in depthwise.items():
            assert not primitive.startswith(("kn2", "fft")), (
                platform_name,
                layer,
                primitive,
            )


def test_residual_joins_are_layout_consistent(session, intel):
    """PBQP merges both paths into every residual add in one layout.

    The eltwise join is where layout decisions interact.  Every inbound edge
    of a join must deliver the join's single operating layout (the legalizer
    invariant), and for the identity-shortcut second block of each stage the
    optimal selection keeps the whole block in one blocked layout, so those
    joins are conversion-free.  Downsample blocks may legitimately pay a
    conversion at the join (their 1x1 projection runs in the canonical
    layout).
    """
    if "resnet18" not in NETWORKS:
        pytest.skip("resnet18 trimmed from this run")
    plan = session.select("resnet18", intel, strategy="pbqp").plan
    join_layout = {
        name: decision.input_layout.name
        for name, decision in plan.layer_decisions.items()
        if name.endswith("/add")
    }
    assert len(join_layout) == 8
    for edge in plan.edge_decisions:
        if edge.consumer in join_layout:
            assert edge.target_layout.name == join_layout[edge.consumer]
    add_conversions = {
        edge.consumer for edge in plan.conversions() if edge.consumer in join_layout
    }
    emit(
        f"ResNet-18 PBQP on {intel.name}: {len(plan.conversions())} conversions "
        f"total, joins paying one: {sorted(add_conversions) or 'none'}"
    )
    # The identity-shortcut second blocks keep their joins conversion-free.
    for stage in ("conv2", "conv3", "conv4", "conv5"):
        assert f"{stage}_2/add" not in add_conversions
