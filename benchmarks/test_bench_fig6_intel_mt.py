"""E4 — Figure 6: multithreaded whole-network speedups on Intel Haswell.

Same strategies and networks as Figure 5, executed with all four cores; bars
remain normalized to the *single-threaded* SUM2D baseline, as in the paper.
The assertions encode the claims the paper draws from this figure: the PBQP
approach "really shines" under multithreading, outperforming the vendor
library on every model and by around 2x on VGG-E, and the Winograd-only
strategy for AlexNet is only marginally better than the baseline once its
layout transformations are paid for (section 5.8).
"""

import pytest

from benchmarks.conftest import emit, smoke_networks, smoke_skip
from repro.experiments.whole_network import (
    FIGURE_NETWORKS,
    format_speedup_table,
    run_whole_network,
)

NETWORKS = smoke_networks(FIGURE_NETWORKS["intel-haswell"])


@pytest.fixture(scope="module")
def figure6_results(library, intel):
    return [
        run_whole_network(name, intel, threads=4, library=library) for name in NETWORKS
    ]


def test_figure6_multithreaded_intel(benchmark, library, intel, figure6_results):
    benchmark.pedantic(
        lambda: run_whole_network("alexnet", intel, threads=4, library=library),
        rounds=1,
        iterations=1,
    )
    emit(format_speedup_table(figure6_results, "Figure 6 — whole-network speedups, Intel Haswell, multithreaded"))

    for result in figure6_results:
        speedups = result.speedups()
        for strategy, value in speedups.items():
            if strategy != "pbqp":
                assert speedups["pbqp"] >= value - 1e-9, (result.network, strategy)


@smoke_skip
def test_figure6_pbqp_outperforms_vendor_library(figure6_results):
    by_network = {result.network: result.speedups() for result in figure6_results}
    for network, speedups in by_network.items():
        assert speedups["pbqp"] > speedups["mkldnn"], network
    # The gap reaches roughly a factor of two on the VGG-E model.
    assert by_network["vgg-e"]["pbqp"] / by_network["vgg-e"]["mkldnn"] > 1.8


def test_figure6_multithreading_amplifies_pbqp(figure5_speedup_factor=2.0):
    """PBQP's multithreaded bars are well above its single-threaded bars."""
    from repro.cost.platform import PLATFORMS
    from repro.primitives.registry import default_primitive_library

    library = default_primitive_library()
    intel = PLATFORMS["intel-haswell"]
    single = run_whole_network("alexnet", intel, threads=1, library=library)
    multi = run_whole_network("alexnet", intel, threads=4, library=library)
    assert multi.speedup("pbqp") > figure5_speedup_factor * single.speedup("pbqp") / 1.5
