"""E11 — batch-scaling study: minibatching as one more integer parameter.

The paper's formulation is batch-1 (latency-sensitive inference) but notes
that minibatching is just one more parameter.  With the batch threaded
through scenarios, cost model, store and executor, this benchmark sweeps
batch sizes on both modelled platforms and encodes the headline findings:

* re-selecting at the deployment batch is never worse than replaying the
  batch-1 plan (PBQP optimality over the batched cost tables), and on the
  full network set it is *strictly* better at batch 16 on both platforms —
  the batch amortizes transform/GEMM setup, so the optimal selection drifts
  toward those families;
* the per-image PBQP cost never increases with the batch (amortization).

Smoke mode (``REPRO_BENCH_SMOKE=1``) trims the sweep to AlexNet and the
strict-divergence assertion is skipped (AlexNet's large layers amortize
per-call setup already at batch 1 on the Intel part).
"""

import pytest

from benchmarks.conftest import SMOKE, emit, smoke_networks
from repro.api import Session
from repro.experiments.batch_scaling import run_batch_scaling

#: GoogLeNet's many small layers are where batch amortization bites; AlexNet
#: is the smoke-mode stand-in.
NETWORKS = smoke_networks(["googlenet"], tiny=("alexnet",)) or ["alexnet"]

BATCHES = (1, 4, 16) if SMOKE else (1, 4, 16, 64)


@pytest.fixture(scope="module")
def session():
    return Session()


@pytest.fixture(scope="module")
def sweeps(session, intel, arm):
    return {
        platform.name: {
            network: run_batch_scaling(
                network, platform, batches=BATCHES, session=session
            )
            for network in NETWORKS
        }
        for platform in (intel, arm)
    }


def test_batch16_reselection_beats_replayed_batch1_plan(
    benchmark, session, intel, sweeps
):
    benchmark.pedantic(
        lambda: run_batch_scaling(
            NETWORKS[0], intel, batches=(16,), session=session
        ),
        rounds=1,
        iterations=1,
    )
    strict_wins = 0
    for platform_name, by_network in sweeps.items():
        for network, result in by_network.items():
            emit(result.format())
            point = result.point(16)
            # Optimality over the batched tables: replaying batch-1 choices is
            # one feasible assignment, so fresh selection can never lose.
            assert point.pbqp_ms <= point.replayed_ms * (1 + 1e-9), (
                platform_name,
                network,
            )
            if point.pbqp_ms < point.replayed_ms * (1 - 1e-9):
                strict_wins += 1
                assert point.selection_changes, (platform_name, network)
    if not SMOKE:
        # Full mode: the batch-16 selection strictly beats the replayed
        # batch-1 plan on BOTH platforms.
        assert strict_wins == 2 * len(NETWORKS), "expected divergence at batch 16"


def test_per_image_cost_never_increases_with_batch(sweeps):
    for platform_name, by_network in sweeps.items():
        for network, result in by_network.items():
            per_image = [point.pbqp_per_image_ms for point in result.points]
            for smaller, larger in zip(per_image, per_image[1:]):
                assert larger <= smaller * (1 + 1e-9), (platform_name, network)


def test_batched_selection_amortizes_setup(sweeps):
    """Total cost grows with the batch but strictly sublinearly."""
    for platform_name, by_network in sweeps.items():
        for network, result in by_network.items():
            base = result.point(1)
            for point in result.points:
                if point.batch == 1:
                    continue
                assert point.pbqp_ms > base.pbqp_ms, (platform_name, network)
                assert point.pbqp_ms < point.batch * base.pbqp_ms, (
                    platform_name,
                    network,
                )
