"""Frontier benchmark: Pareto-front construction and the memory-budget story.

The multi-objective layer answers the deployment question the scalar solver
cannot: what does a peak-workspace budget cost, and which layers flip family
to fit?  This benchmark builds the frontier for the paper's two DAG-shaped
networks, reports the budget sweep across the platform zoo
(:mod:`repro.experiments.memory_budget`), and records the frontier build
time in the ``BENCH_frontier.json`` trajectory.

Headline assertions (the issue's acceptance criteria, at full size):

* the frontier's min-time point is exactly the scalar PBQP plan;
* on both AlexNet and GoogLeNet a tightened workspace budget flips at least
  one layer from an im2col/FFT-family pick to a low-scratch family on both
  of the paper's platforms.
"""

import pytest

from benchmarks.conftest import SMOKE, emit, record_metric, smoke_networks
from repro.api import Session
from repro.experiments.memory_budget import run_memory_budget

NETWORKS = smoke_networks(["alexnet", "googlenet"])

#: The paper's two platforms: where the budget flips must appear.
PLATFORM_PAIR = ("intel-haswell", "arm-cortex-a57")

HEAVY = {"im2", "fft"}


@pytest.fixture(scope="module")
def session(library):
    return Session(library=library)


def test_frontier_build_time_and_min_time_point(session, benchmark):
    """Frontier construction cost, with the min-time == PBQP invariant.

    The frontier is pinned to fp32: the invariant is *per precision* (the
    multi-precision front's min-time point is the int8 PBQP plan instead —
    covered by ``test_bench_precision.py`` and ``tests/test_precision.py``).
    """
    model = NETWORKS[-1]  # the largest instance in this mode
    frontier = benchmark.pedantic(
        lambda: session.plan_frontier(model, "intel-haswell", dtypes=("fp32",)),
        rounds=3,
        iterations=1,
    )
    scalar = session.select(model, "intel-haswell", strategy="pbqp").plan
    best = frontier.min_time()
    assert best.vector.time_ms == pytest.approx(scalar.total_ms)
    assert best.plan.conv_selections() == scalar.conv_selections()

    build_seconds = benchmark.stats.stats.mean
    record_metric("frontier", "build_ms", build_seconds * 1e3)
    record_metric("frontier", "points", len(frontier))
    record_metric("frontier", "candidates", frontier.candidates_evaluated)
    emit(
        f"Frontier build — {model} on intel-haswell\n"
        f"build time (all PBQP solves): {build_seconds * 1e3:10.2f} ms\n"
        f"{frontier.format()}"
    )


def test_memory_budget_sweep_flips_families(session):
    """The cap-driven family flips across the platform zoo (Figure-4 inverted)."""
    platforms = list(PLATFORM_PAIR) if SMOKE else None  # None = the whole zoo
    sweep = run_memory_budget(
        networks=NETWORKS, platform_names=platforms, session=session
    )
    emit(sweep.format())

    library = session.library
    for network in sweep.networks:
        for platform in PLATFORM_PAIR:
            base = sweep.baselines[(network, platform)]
            base_families = {
                layer: library.get(primitive).family.value
                for layer, primitive in base.conv_selections().items()
            }
            cell = sweep.cell(network, platform, 0.1)
            assert cell.feasible
            assert cell.plan.peak_workspace_bytes <= cell.cap_bytes
            flipped_from_heavy = [
                layer
                for layer, (before, after) in cell.flips.items()
                if before in HEAVY and after not in HEAVY
            ]
            assert flipped_from_heavy or not (HEAVY & set(base_families.values())), (
                f"{network} on {platform}: a 10% workspace budget flipped no "
                "layer away from the scratch-hungry families"
            )


def test_frontier_is_deterministic(session):
    """Byte-identical serialization across builds under a fixed seed."""
    first = session.plan_frontier(NETWORKS[0], "arm-cortex-a57", seed=7)
    second = session.plan_frontier(NETWORKS[0], "arm-cortex-a57", seed=7)
    assert first.to_json() == second.to_json()
