"""E6 — Table 2: absolute single-inference times on the Intel Core i5-4570.

Regenerates the SUM2D / L.OPT / PBQP / CAFFE columns for AlexNet and GoogLeNet
under single- and multi-threaded execution.  Absolute milliseconds are not
expected to match the paper (the platform is modelled, not measured); the
assertions check the orderings the table demonstrates.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments.tables import format_absolute_table, run_absolute_time_table


@pytest.fixture(scope="module")
def table2_rows(library, intel):
    return run_absolute_time_table(intel, library=library)


def test_table2_absolute_times_intel(benchmark, library, intel, table2_rows):
    benchmark.pedantic(
        lambda: run_absolute_time_table(intel, networks=["alexnet"], thread_counts=(1,), library=library),
        rounds=1,
        iterations=1,
    )
    emit(format_absolute_table(table2_rows, "Table 2 — single inference time on Intel Core i5-4570 (ms)"))

    for row in table2_rows:
        times = row.times_ms
        # The table's consistent ordering: SUM2D slowest of the non-framework
        # strategies, L.OPT in between, PBQP fastest.
        assert times["SUM2D"] > times["L.OPT"] > times["PBQP"]
        # Caffe never beats the PBQP selection.
        assert times["CAFFE"] > times["PBQP"]


def test_table2_multithreading_helps_pbqp_more_than_caffe(table2_rows):
    by_key = {(row.network, row.mode): row.times_ms for row in table2_rows}
    for network in ("alexnet", "googlenet"):
        pbqp_scaling = by_key[(network, "S")]["PBQP"] / by_key[(network, "M")]["PBQP"]
        caffe_scaling = by_key[(network, "S")]["CAFFE"] / by_key[(network, "M")]["CAFFE"]
        assert pbqp_scaling > caffe_scaling
