"""E2 — Figure 4: PBQP selections for AlexNet on ARM Cortex-A57 and Intel Core i5.

Regenerates the per-layer selection table for multithreaded execution on both
platforms and asserts the structural properties the paper highlights: im2 for
the K=11 stride-4 conv1, Winograd for the remaining layers, AVX2 (VF8) 2D
variants on Intel versus NEON (VF4) mostly-1D variants on ARM.
"""

from benchmarks.conftest import emit
from repro.experiments.selections import alexnet_selection_comparison


def test_figure4_alexnet_selections(benchmark, library):
    comparison = benchmark.pedantic(
        lambda: alexnet_selection_comparison(threads=4, library=library), rounds=1, iterations=1
    )
    emit(comparison.format())

    intel = comparison.selections["intel-haswell"]
    arm = comparison.selections["arm-cortex-a57"]
    rest = ("conv2", "conv3", "conv4", "conv5")

    assert intel["conv1"].startswith("im2")
    assert arm["conv1"].startswith("im2")
    assert all("winograd" in intel[layer] for layer in rest)
    assert all("winograd" in arm[layer] for layer in rest)
    assert all("vf8" in intel[layer] for layer in rest)
    assert all("vf4" in arm[layer] for layer in rest)
    assert all("winograd_2d" in intel[layer] for layer in rest)
    assert sum("winograd_1d" in arm[layer] for layer in rest) >= 2
