"""E3 — Figure 5: single-threaded whole-network speedups on Intel Haswell.

For AlexNet, VGG-B, VGG-C, VGG-E and GoogLeNet, every strategy bar of the
figure (direct / im2 / kn2 / Winograd / fft family greedy, Local Optimal
(CHW), PBQP, MKL-DNN, Caffe) is evaluated and reported as a speedup over the
single-threaded SUM2D baseline.  The assertions encode the figure's shape:
PBQP is the best non-vendor strategy everywhere and beats Local Optimal, and
the Winograd-only strategy approaches PBQP only on the all-K=3 VGG models.
"""

import pytest

from benchmarks.conftest import emit, smoke_networks, smoke_skip
from repro.experiments.whole_network import (
    FIGURE_NETWORKS,
    format_speedup_table,
    run_whole_network,
)

NETWORKS = smoke_networks(FIGURE_NETWORKS["intel-haswell"])


@pytest.fixture(scope="module")
def figure5_results(library, intel):
    return [
        run_whole_network(name, intel, threads=1, library=library) for name in NETWORKS
    ]


def test_figure5_single_threaded_intel(benchmark, library, intel, figure5_results):
    benchmark.pedantic(
        lambda: run_whole_network("alexnet", intel, threads=1, library=library),
        rounds=1,
        iterations=1,
    )
    emit(format_speedup_table(figure5_results, "Figure 5 — whole-network speedups, Intel Haswell, single-threaded"))

    for result in figure5_results:
        speedups = result.speedups()
        # PBQP dominates every non-vendor strategy and the vendor libraries.
        for strategy, value in speedups.items():
            if strategy != "pbqp":
                assert speedups["pbqp"] >= value - 1e-9, (result.network, strategy)
        assert speedups["pbqp"] > 1.0
        assert speedups["pbqp"] > speedups["local_optimal"]


@smoke_skip
def test_figure5_winograd_behaviour_matches_paper(figure5_results):
    by_network = {result.network: result.speedups() for result in figure5_results}
    # Winograd-only is close to PBQP on the all-3x3 VGG-B/E models (on VGG-C
    # the three 1x1 layers fall back to SUM2D, so the bar sits lower)...
    for vgg in ("vgg-b", "vgg-e"):
        assert by_network[vgg]["winograd"] >= 0.85 * by_network[vgg]["pbqp"]
    assert by_network["vgg-c"]["winograd"] >= 0.6 * by_network["vgg-c"]["pbqp"]
    # ...and Winograd is the best family bar on every VGG model.
    for vgg in ("vgg-b", "vgg-c", "vgg-e"):
        families = {k: by_network[vgg][k] for k in ("direct", "im2", "kn2", "winograd", "fft")}
        assert max(families, key=families.get) == "winograd"
    # But it is far from PBQP on AlexNet and GoogLeNet.
    assert by_network["alexnet"]["winograd"] < 0.6 * by_network["alexnet"]["pbqp"]
    assert by_network["googlenet"]["winograd"] < 0.6 * by_network["googlenet"]["pbqp"]


def test_figure5_local_optimal_always_loses_to_pbqp(figure5_results):
    """Section 6: the canonical-layout strategy is always outperformed by PBQP."""
    gaps = {
        result.network: result.speedup("pbqp") / result.speedup("local_optimal")
        for result in figure5_results
    }
    assert all(gap > 1.0 for gap in gaps.values())
    # The AlexNet gap is wide, as in the paper.
    assert gaps["alexnet"] > 1.3
