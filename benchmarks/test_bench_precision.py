"""E12 — precision-scaling study: selecting under quantization vs quantizing.

With dtype threaded through scenarios, primitives, cost model, store and
frontier, this benchmark sweeps precisions on the lane-packing platforms and
encodes the headline findings:

* re-selecting at the deployment precision is never worse than replaying the
  quantized fp32 plan (PBQP optimality over the precision-priced tables),
  and on the full network set the int8 selection *strictly* beats the replay
  on the ``dotprod`` ARM part — the 4x lane packing reorders the families,
  so the fp32 optimum is no longer the int8 optimum;
* the multi-precision frontier spans the accuracy axis: its min-time point
  is an int8 plan, its max-accuracy point the (zero-loss) fp32 plan.

Each precision's PBQP time and replay advantage land in
``BENCH_precision.json`` under the trajectory's dtype dimension
(``pbqp_ms@int8`` next to the comparable fp32 ``pbqp_ms``).

Smoke mode (``REPRO_BENCH_SMOKE=1``) trims the sweep to AlexNet and skips
the strict-divergence assertion (AlexNet's few large layers sit firmly in
the GEMM families at every precision on the AVX-512 part).
"""

import pytest

from benchmarks.conftest import SMOKE, emit, record_metric, smoke_networks
from repro.api import Session
from repro.cost.platform import PLATFORMS
from repro.experiments.precision_scaling import (
    frontier_endpoints,
    run_precision_scaling,
)

#: GoogLeNet's mixed layer population is where precision-driven re-selection
#: bites; AlexNet is the smoke-mode stand-in.
NETWORKS = smoke_networks(["googlenet"], tiny=("alexnet",)) or ["alexnet"]

#: The platforms with narrow-precision lane packing (vnni / dotprod).
PLATFORM_NAMES = ("avx512-server", "arm-cortex-a57")


@pytest.fixture(scope="module")
def session():
    return Session()


@pytest.fixture(scope="module")
def sweeps(session):
    return {
        name: {
            network: run_precision_scaling(
                network, PLATFORMS[name], session=session
            )
            for network in NETWORKS
        }
        for name in PLATFORM_NAMES
    }


def test_quantized_reselection_beats_quantized_replay(benchmark, session, sweeps):
    benchmark.pedantic(
        lambda: run_precision_scaling(
            NETWORKS[0], PLATFORMS["avx512-server"], dtypes=("int8",), session=session
        ),
        rounds=1,
        iterations=1,
    )
    strict_wins = 0
    for platform_name, by_network in sweeps.items():
        for network, result in by_network.items():
            emit(result.format())
            for point in result.points:
                # Optimality over the precision-priced tables: the quantized
                # fp32 plan is one feasible assignment, so fresh selection
                # can never lose to it.
                assert point.pbqp_ms <= point.replayed_ms * (1 + 1e-9), (
                    platform_name,
                    network,
                    point.dtype,
                )
                record_metric(
                    "precision", "pbqp_ms", point.pbqp_ms, dtype=point.dtype
                )
                record_metric(
                    "precision", "replay_advantage_x", point.advantage, dtype=point.dtype
                )
                if point.pbqp_ms < point.replayed_ms * (1 - 1e-9):
                    strict_wins += 1
                    assert point.selection_changes, (platform_name, network)
    if not SMOKE:
        # Full mode: selecting under int8 strictly beats quantizing the fp32
        # plan on both lane-packing platforms.
        assert strict_wins >= len(PLATFORM_NAMES), "expected divergence under int8"


def test_narrow_precisions_never_cost_more(sweeps):
    """fp16/int8 tables price every plan at or below its fp32 cost."""
    for platform_name, by_network in sweeps.items():
        for network, result in by_network.items():
            base = result.point("fp32")
            for point in result.points:
                assert point.pbqp_ms <= base.pbqp_ms * (1 + 1e-9), (
                    platform_name,
                    network,
                    point.dtype,
                )


def test_frontier_spans_the_precision_axis(session):
    frontier = session.plan_frontier(NETWORKS[0], "avx512-server")
    emit(frontier.format())
    fastest_dtype, most_accurate_dtype = frontier_endpoints(frontier)
    assert fastest_dtype == "int8"
    assert most_accurate_dtype == "fp32"
    fastest = min(frontier.points, key=lambda point: point.vector.time_ms)
    record_metric("precision", "frontier_min_time_ms", fastest.vector.time_ms, dtype="int8")
