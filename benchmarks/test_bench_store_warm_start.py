"""Warm-start benchmark: a fresh process with a populated CostStore skips profiling.

Section 4 of the paper ships profiled cost tables with the model so selection
is cheap at deployment time.  The :class:`repro.cost.store.CostStore` makes
that persistent: the first session profiles and writes the tables to disk;
every later *session* (standing in for a fresh process — no in-memory state
survives) loads them instead of re-profiling.  The benchmark asserts the warm
start performs **zero** profiling and reports the warm/cold ratio.
"""

import time

import repro.cost.provider as provider_module
from benchmarks.conftest import SMOKE, emit, record_metric
from repro.api import Session

MODEL = "alexnet" if SMOKE else "googlenet"


def test_store_warm_start_skips_profiling(benchmark, library, intel, tmp_path, monkeypatch):
    builds = []
    original = provider_module.build_cost_tables

    def counting_build(*args, **kwargs):
        builds.append(kwargs.get("threads"))
        return original(*args, **kwargs)

    monkeypatch.setattr(provider_module, "build_cost_tables", counting_build)

    start = time.perf_counter()
    cold_session = Session(library=library, cache_dir=tmp_path)
    cold = cold_session.select(MODEL, intel, strategy="pbqp")
    cold_seconds = time.perf_counter() - start
    assert builds == [1]
    assert cold_session.store.stats().misses == 1

    def warm_start():
        # A brand-new session: the only warm state is the on-disk store.
        session = Session(library=library, cache_dir=tmp_path)
        return session.select(MODEL, intel, strategy="pbqp")

    warm = benchmark.pedantic(warm_start, rounds=5, iterations=1)

    # Zero profiling across every warm start, and an identical selection.
    assert builds == [1]
    assert warm.plan.conv_selections() == cold.plan.conv_selections()

    warm_seconds = benchmark.stats.stats.mean
    record_metric("store_warm_start", "cold_start_ms", cold_seconds * 1e3)
    record_metric("store_warm_start", "warm_start_ms", warm_seconds * 1e3)
    record_metric("store_warm_start", "warm_speedup_x", cold_seconds / warm_seconds)
    emit(
        "CostStore warm start — fresh process, zero profiling\n"
        f"model: {MODEL}, store: {len(Session(library=library, cache_dir=tmp_path).store.entries())} entr(y/ies)\n"
        f"cold start (profile + solve + persist): {cold_seconds * 1e3:10.2f} ms\n"
        f"warm start (load tables + solve):       {warm_seconds * 1e3:10.2f} ms\n"
        f"warm/cold speedup:                      {cold_seconds / warm_seconds:10.2f}x\n"
        f"cost-table builds observed:             {len(builds)} (cold only)"
    )
    assert warm_seconds < cold_seconds
