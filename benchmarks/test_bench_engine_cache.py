"""Engine cache benchmark: "profile once, select many" in numbers.

Section 4 of the paper ships profiled cost tables with the model so selection
is cheap at deployment time.  The :class:`repro.api.Engine` realizes that
workflow in-process: the first ``select`` for a (network, platform, threads)
key profiles the cost tables, every later call reuses them.  The benchmark
measures a cold select against warm selects of GoogLeNet (the largest
instance) and asserts the cache is actually doing the work.
"""

import time

from benchmarks.conftest import SMOKE, emit, record_metric
from repro.api import Engine

MODEL = "alexnet" if SMOKE else "googlenet"


def test_engine_cache_reuses_cost_tables(benchmark, library, intel):
    engine = Engine(library=library)

    start = time.perf_counter()
    cold = engine.select(MODEL, intel, strategy="pbqp")
    cold_seconds = time.perf_counter() - start

    assert not cold.from_cache
    assert engine.cache_info().misses == 1

    warm_result = benchmark.pedantic(
        lambda: engine.select(MODEL, intel, strategy="pbqp"), rounds=5, iterations=1
    )
    assert warm_result.from_cache
    info = engine.cache_info()
    assert info.contexts == 1 and info.misses == 1 and info.hits >= 5

    warm_seconds = benchmark.stats.stats.mean
    record_metric("engine_cache", "cold_select_ms", cold_seconds * 1e3)
    record_metric("engine_cache", "warm_select_ms", warm_seconds * 1e3)
    record_metric("engine_cache", "warm_speedup_x", cold_seconds / warm_seconds)
    emit(
        "Engine context cache — profile once, select many\n"
        f"cold select (profiling + solve): {cold_seconds * 1e3:10.2f} ms\n"
        f"warm select (cached tables):     {warm_seconds * 1e3:10.2f} ms\n"
        f"speedup from cached cost tables: {cold_seconds / warm_seconds:10.2f}x\n"
        f"cache: {info.contexts} context(s), {info.hits} hits, {info.misses} miss(es)"
    )
    # Re-profiling dominates a cold query; a warm query must be clearly faster.
    assert warm_seconds < cold_seconds


def test_engine_compare_profiles_once(library, intel):
    engine = Engine(library=library)
    results = engine.compare(MODEL, intel, threads=4)
    # compare() profiles the context exactly once; every per-strategy select
    # then hits the cache.
    assert engine.cache_info().misses == 1
    assert all(r.from_cache for r in results)
    best = min(results, key=lambda r: r.total_ms)
    assert best.strategy == "pbqp"
