"""E8 — Table 1: strengths and weaknesses of the convolution algorithm families.

Table 1 is qualitative; the benchmark derives the same judgements from the
cost model over a probe-scenario sweep and asserts each cell:

* direct loops handle strided convolution but are slow in general;
* im2 handles everything but suffers on large images (huge Toeplitz matrix);
* kn2 is fast with low memory but cannot do strided convolution and suffers
  with few channels;
* Winograd has the best time for its supported cases but more memory and no
  strided support;
* FFT needs a large kernel to be worthwhile (a small kernel is its bad case).
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments.family_traits import family_traits_table


@pytest.fixture(scope="module")
def traits(library, intel):
    return family_traits_table(platform=intel, library=library)


def test_table1_family_traits(benchmark, library, intel, traits):
    benchmark.pedantic(
        lambda: family_traits_table(platform=intel, library=library), rounds=1, iterations=1
    )
    emit(traits.format())

    # Strided support: only direct and im2 can implement the strided probe.
    for family in ("kn2", "winograd", "fft"):
        assert traits.best_cost["strided"][family] is None
    assert traits.best_cost["strided"]["direct"] is not None
    assert traits.best_cost["strided"]["im2"] is not None

    # Time: Winograd is the fastest family on the bread-and-butter K=3 layer,
    # and the direct loops are the slowest supported family there.
    k3 = traits.best_cost["k3_mid"]
    assert traits.fastest_family("k3_mid") == "winograd"
    assert k3["direct"] == max(v for v in k3.values() if v is not None)

    # Memory: kn2 needs far less workspace than im2; Winograd needs more than kn2.
    assert traits.workspace["k3_mid"]["kn2"] < traits.workspace["k3_mid"]["im2"]
    assert traits.workspace["k3_mid"]["winograd"] > traits.workspace["k3_mid"]["kn2"]

    # Bad cases: large images hurt im2 relative to kn2; few channels hurt kn2
    # relative to im2; a small kernel hurts FFT.
    assert traits.best_cost["large_image"]["kn2"] < traits.best_cost["large_image"]["im2"]
    few = traits.best_cost["few_channels"]
    assert few["im2"] < few["kn2"]
    k5 = traits.best_cost["k5_layer"]
    pointwise = traits.best_cost["pointwise"]
    fft_gap_k5 = k5["fft"] / min(v for v in k5.values() if v is not None)
    fft_gap_1x1 = pointwise["fft"] / min(v for v in pointwise.values() if v is not None)
    assert fft_gap_k5 < fft_gap_1x1
