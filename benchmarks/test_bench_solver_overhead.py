"""E9 — Section 5.4: optimization overhead.

"Solving the PBQP optimization query took less than one second for each of
the networks we experimented with ...  In each case, the solver reported that
the optimal solution was found."

The benchmark measures PBQP construction + solve time (the reported
``solve_seconds`` is the solver alone) for every network of the evaluation
and asserts both properties.
"""

import pytest

from benchmarks.conftest import emit, smoke_networks
from repro.experiments.overhead import format_overhead_report, solver_overhead_report

NETWORKS = smoke_networks(["alexnet", "vgg-b", "vgg-c", "vgg-e", "googlenet"],
                          tiny=("alexnet", "googlenet"))


@pytest.fixture(scope="module")
def overhead_entries(library, intel):
    return solver_overhead_report(networks=NETWORKS, platform=intel, library=library)


def test_solver_overhead_under_one_second(benchmark, library, intel, overhead_entries):
    benchmark.pedantic(
        lambda: solver_overhead_report(networks=["googlenet"], platform=intel, library=library),
        rounds=1,
        iterations=1,
    )
    emit(format_overhead_report(overhead_entries))

    for entry in overhead_entries:
        assert entry.solve_seconds < 1.0, entry.network
        assert entry.optimal, entry.network
        assert entry.pbqp_nodes > 0 and entry.pbqp_edges > 0


def test_googlenet_is_the_largest_instance(overhead_entries):
    by_network = {entry.network: entry for entry in overhead_entries}
    largest = max(overhead_entries, key=lambda entry: entry.pbqp_nodes)
    assert largest.network == "googlenet"
    assert by_network["googlenet"].pbqp_edges > by_network["alexnet"].pbqp_edges
