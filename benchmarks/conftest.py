"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper (see the
per-experiment index in DESIGN.md) and prints the reproduced rows so that
``pytest benchmarks/ --benchmark-only -s`` doubles as the reproduction report.
"""

from __future__ import annotations

import pytest

from repro.cost.platform import PLATFORMS
from repro.primitives.registry import default_primitive_library


@pytest.fixture(scope="session")
def library():
    """The full primitive library, shared across every benchmark."""
    return default_primitive_library()


@pytest.fixture(scope="session")
def intel():
    return PLATFORMS["intel-haswell"]


@pytest.fixture(scope="session")
def arm():
    return PLATFORMS["arm-cortex-a57"]


def emit(text: str) -> None:
    """Print a reproduced table/figure with a separating banner."""
    print()
    print("=" * 96)
    print(text)
    print("=" * 96)
