"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper (see the
per-experiment index in DESIGN.md) and prints the reproduced rows so that
``pytest benchmarks/ --benchmark-only -s`` doubles as the reproduction report.

Setting ``REPRO_BENCH_SMOKE=1`` runs the suite in *smoke mode*: scenario
lists are trimmed to the tiny networks (the VGG instances dominate the
runtime) and assertions that need the full network set are skipped.  CI uses
this to smoke-test every benchmark on each pull request.
"""

from __future__ import annotations

import os
from typing import List, Sequence, Tuple

import pytest

from repro.cost.platform import PLATFORMS
from repro.primitives.registry import default_primitive_library

#: Whether the suite runs with trimmed, tiny scenario sizes (CI smoke job).
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in {"", "0"}

#: Mark for assertions that only hold on the full (non-smoke) scenario set.
smoke_skip = pytest.mark.skipif(
    SMOKE, reason="assertion needs the full scenario set (REPRO_BENCH_SMOKE is on)"
)


def smoke_networks(
    names: Sequence[str], tiny: Tuple[str, ...] = ("alexnet",)
) -> List[str]:
    """In smoke mode, trim a benchmark's network list to the tiny scenarios."""
    if not SMOKE:
        return list(names)
    return [name for name in names if name in tiny]


@pytest.fixture(scope="session")
def library():
    """The full primitive library, shared across every benchmark."""
    return default_primitive_library()


@pytest.fixture(scope="session")
def intel():
    return PLATFORMS["intel-haswell"]


@pytest.fixture(scope="session")
def arm():
    return PLATFORMS["arm-cortex-a57"]


def emit(text: str) -> None:
    """Print a reproduced table/figure with a separating banner."""
    print()
    print("=" * 96)
    print(text)
    print("=" * 96)
