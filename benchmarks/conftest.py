"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper (see the
per-experiment index in DESIGN.md) and prints the reproduced rows so that
``pytest benchmarks/ --benchmark-only -s`` doubles as the reproduction report.

Setting ``REPRO_BENCH_SMOKE=1`` runs the suite in *smoke mode*: scenario
lists are trimmed to the tiny networks (the VGG instances dominate the
runtime) and assertions that need the full network set are skipped.  CI uses
this to smoke-test every benchmark on each pull request.

Benchmarks that measure a speed call :func:`record_metric`; at the end of
the run each recording benchmark's metrics are written to a
``BENCH_<name>.json`` trajectory file at the repository root (one run entry
per commit), so the warm-path speedups and solver times are tracked across
PRs instead of staying anecdotal in the printed tables.  Set
``REPRO_BENCH_DIR`` to redirect the files (CI smoke runs write to a scratch
directory instead of dirtying the checkout).
"""

from __future__ import annotations

import json
import os
import subprocess
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

import pytest

from repro.cost.platform import PLATFORMS
from repro.primitives.registry import default_primitive_library

#: Schema tag of the ``BENCH_*.json`` trajectory files.
BENCH_FORMAT = "repro/bench-trajectory/v1"

#: Whether the suite runs with trimmed, tiny scenario sizes (CI smoke job).
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in {"", "0"}

#: Mark for assertions that only hold on the full (non-smoke) scenario set.
smoke_skip = pytest.mark.skipif(
    SMOKE, reason="assertion needs the full scenario set (REPRO_BENCH_SMOKE is on)"
)


def smoke_networks(
    names: Sequence[str], tiny: Tuple[str, ...] = ("alexnet",)
) -> List[str]:
    """In smoke mode, trim a benchmark's network list to the tiny scenarios."""
    if not SMOKE:
        return list(names)
    return [name for name in names if name in tiny]


@pytest.fixture(scope="session")
def library():
    """The full primitive library, shared across every benchmark."""
    return default_primitive_library()


@pytest.fixture(scope="session")
def intel():
    return PLATFORMS["intel-haswell"]


@pytest.fixture(scope="session")
def arm():
    return PLATFORMS["arm-cortex-a57"]


def emit(text: str) -> None:
    """Print a reproduced table/figure with a separating banner."""
    print()
    print("=" * 96)
    print(text)
    print("=" * 96)


# ---------------------------------------------------------------------------
# BENCH_*.json perf trajectories
# ---------------------------------------------------------------------------

#: Metrics recorded by the current run, keyed by benchmark name.
_RECORDS: Dict[str, Dict[str, float]] = {}


def record_metric(benchmark: str, metric: str, value: float, dtype: str = "fp32") -> None:
    """Record one scalar for the ``BENCH_<benchmark>.json`` trajectory file.

    ``benchmark`` is a short slug (``"engine_cache"``, ``"frontier"``);
    ``metric`` names the measurement, with its unit as a suffix
    (``"warm_select_ms"``, ``"speedup_x"``).  ``dtype`` is the precision
    dimension: non-fp32 measurements are keyed ``<metric>@<dtype>`` so the
    fp32 history stays comparable across commits while the quantized runs
    land beside it in the same trajectory.  Each call updates the file on
    disk immediately (pytest imports conftest plugins under their own module
    names, so a session-finish hook could see different module state than
    the benchmarks that imported :func:`record_metric`).
    """
    key = metric if dtype == "fp32" else f"{metric}@{dtype}"
    _RECORDS.setdefault(benchmark, {})[key] = float(value)
    _flush(benchmark)


def _bench_dir() -> Path:
    override = os.environ.get("REPRO_BENCH_DIR", "")
    if override:
        return Path(override)
    return Path(__file__).resolve().parent.parent


def _git_commit() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def _flush(benchmark: str) -> None:
    """Write one benchmark's metrics into its trajectory file.

    A re-run at the same commit (and smoke setting) replaces its earlier
    entry, so iterating locally never inflates the trajectory.
    """
    metrics = _RECORDS.get(benchmark, {})
    if not metrics:
        return
    directory = _bench_dir()
    directory.mkdir(parents=True, exist_ok=True)
    commit = _git_commit()
    path = directory / f"BENCH_{benchmark}.json"
    document = {"format": BENCH_FORMAT, "benchmark": benchmark, "runs": []}
    if path.exists():
        try:
            loaded = json.loads(path.read_text())
            if loaded.get("format") == BENCH_FORMAT:
                document = loaded
        except (ValueError, OSError):
            pass
    runs = [
        run
        for run in document.get("runs", [])
        if not (run.get("commit") == commit and run.get("smoke") == SMOKE)
    ]
    runs.append(
        {"commit": commit, "smoke": SMOKE, "metrics": dict(sorted(metrics.items()))}
    )
    document["runs"] = runs
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
