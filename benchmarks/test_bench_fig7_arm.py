"""E5 — Figures 7a and 7b: whole-network speedups on the ARM Cortex-A57.

The VGG models are too large for the embedded board (as in the paper), so the
ARM figures cover AlexNet and GoogLeNet, single-threaded (7a) and
multithreaded (7b), with the ARM Compute Library and Caffe as the vendor
comparators.  The assertions encode the paper's discussion of this figure:
PBQP delivers a large speedup on the embedded platform too, and for GoogLeNet
the cost of post-hoc layout legalization makes careless greedy strategies
barely better (or worse) than the SUM2D baseline while Caffe is actually
slower than the baseline (Table 3).
"""

import pytest

from benchmarks.conftest import emit, smoke_networks, smoke_skip
from repro.experiments.whole_network import (
    FIGURE_NETWORKS,
    format_speedup_table,
    run_whole_network,
)

NETWORKS = smoke_networks(FIGURE_NETWORKS["arm-cortex-a57"])


@pytest.fixture(scope="module")
def figure7a_results(library, arm):
    return [run_whole_network(name, arm, threads=1, library=library) for name in NETWORKS]


@pytest.fixture(scope="module")
def figure7b_results(library, arm):
    return [run_whole_network(name, arm, threads=4, library=library) for name in NETWORKS]


def test_figure7a_single_threaded_arm(benchmark, library, arm, figure7a_results):
    benchmark.pedantic(
        lambda: run_whole_network("alexnet", arm, threads=1, library=library),
        rounds=1,
        iterations=1,
    )
    emit(format_speedup_table(figure7a_results, "Figure 7a — whole-network speedups, ARM Cortex-A57, single-threaded"))

    for result in figure7a_results:
        speedups = result.speedups()
        for strategy, value in speedups.items():
            if strategy != "pbqp":
                assert speedups["pbqp"] >= value - 1e-9, (result.network, strategy)
        assert speedups["pbqp"] > speedups["armcl"]
        assert speedups["pbqp"] > speedups["caffe"]


@smoke_skip
def test_figure7a_googlenet_shows_legalization_cost(figure7a_results):
    googlenet = {r.network: r for r in figure7a_results}["googlenet"]
    speedups = googlenet.speedups()
    # Caffe is slower than the SUM2D baseline on the embedded platform (Table 3).
    assert speedups["caffe"] < 1.0
    # The direct-loop family gains little over the baseline once legalizing
    # transformations are paid (the paper measures a net slowdown; the
    # reproduction's analytical model keeps it within a factor ~2 of baseline,
    # far below every layout-aware strategy).
    assert speedups["direct"] < 0.5 * speedups["pbqp"]
    assert speedups["direct"] < speedups["local_optimal"]


def test_figure7b_multithreaded_arm(benchmark, library, arm, figure7b_results):
    benchmark.pedantic(
        lambda: run_whole_network("googlenet", arm, threads=4, library=library),
        rounds=1,
        iterations=1,
    )
    emit(format_speedup_table(figure7b_results, "Figure 7b — whole-network speedups, ARM Cortex-A57, multithreaded"))

    for result in figure7b_results:
        speedups = result.speedups()
        for strategy, value in speedups.items():
            if strategy != "pbqp":
                assert speedups["pbqp"] >= value - 1e-9, (result.network, strategy)
        # "We still see a very significant speedup from our approach versus
        # Caffe on the Cortex-A57."
        assert speedups["pbqp"] / speedups["caffe"] > 4.0
