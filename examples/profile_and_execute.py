#!/usr/bin/env python
"""Profile real primitives on this machine and execute the selected network.

The other examples drive selection with the analytical platform model.  This
one uses the paper's original methodology end to end on the host machine,
through the Session API's pluggable cost providers:

1. a small CNN is defined with the graph-building API;
2. a :class:`repro.ProfiledCostProvider` *actually times* the numpy-backed
   primitives on tensors of each layer's size (the wall-clock profiler — the
   paper's layerwise profiling) — and because the session wraps it in a
   persistent :class:`repro.CostStore`, a second run of this script skips the
   slow profiling entirely;
3. the PBQP selector consumes those measured costs;
4. the resulting plan is executed on a real input and its output is verified
   against the all-SUM2D reference execution, demonstrating that the selected
   primitives and inserted layout conversions compute the same function.

Run:  python examples/profile_and_execute.py   (twice, to see the warm start)
"""

import time

import numpy as np

from repro.api import Session
from repro.cost.provider import ProfiledCostProvider
from repro.graph.layer import (
    ConcatLayer,
    ConvLayer,
    FlattenLayer,
    FullyConnectedLayer,
    InputLayer,
    PoolLayer,
    ReLULayer,
    SoftmaxLayer,
)
from repro.graph.network import Network


def build_mini_inception() -> Network:
    """A small CNN with an inception-style branch/concat structure."""
    net = Network("mini-inception")
    net.add_layer(InputLayer("data", shape=(3, 40, 40)))
    net.add_layer(ConvLayer("stem", out_channels=16, kernel=5, stride=2, padding=2), ["data"])
    net.add_layer(ReLULayer("stem_relu"), ["stem"])
    net.add_layer(PoolLayer("pool1", kernel=3, stride=2), ["stem_relu"])
    net.add_layer(ConvLayer("b1x1", out_channels=16, kernel=1), ["pool1"])
    net.add_layer(ConvLayer("b3x3_reduce", out_channels=8, kernel=1), ["pool1"])
    net.add_layer(ConvLayer("b3x3", out_channels=16, kernel=3, padding=1), ["b3x3_reduce"])
    net.add_layer(ConvLayer("b5x5_reduce", out_channels=4, kernel=1), ["pool1"])
    net.add_layer(ConvLayer("b5x5", out_channels=8, kernel=5, padding=2), ["b5x5_reduce"])
    net.add_layer(ConcatLayer("concat"), ["b1x1", "b3x3", "b5x5"])
    net.add_layer(ConvLayer("head", out_channels=24, kernel=3, padding=1), ["concat"])
    net.add_layer(PoolLayer("pool2", kernel=2, stride=2), ["head"])
    net.add_layer(FlattenLayer("flatten"), ["pool2"])
    net.add_layer(FullyConnectedLayer("fc", out_features=10), ["flatten"])
    net.add_layer(SoftmaxLayer("prob"), ["fc"])
    net.validate()
    return net


def main() -> None:
    network = build_mini_inception()
    print(network.summary())
    print()

    # Layerwise profiling on the host machine (measured, not modelled), with
    # the measured tables persisted on disk for the next run of this script.
    session = Session(
        provider=ProfiledCostProvider(repetitions=3, warmup=1),
        cache_dir="repro-cache-profiled",
    )
    print("Profiling every applicable primitive for every convolution layer ...")
    start = time.perf_counter()
    plan = session.plan(network, None)  # no modelled platform: costs are measured
    elapsed = time.perf_counter() - start
    context = session.context_for(network, None)
    source = "warm start (tables loaded from the cost store)" if session.store.stats().hits else "cold start (profiled on this host)"
    print(f"{context.tables.table_entries()} cost-table entries in {elapsed:.2f} s — {source}")
    print()

    print(plan.summary())
    baseline = session.plan(network, None, strategy="sum2d")
    print()
    print(f"Measured SUM2D baseline: {baseline.total_ms:.2f} ms, "
          f"PBQP selection: {plan.total_ms:.2f} ms "
          f"({plan.network_plan.speedup_over(baseline.network_plan):.2f}x, "
          f"on this host's numpy primitives)")
    print()

    # Execute both plans on the same input and weights; outputs must agree.
    x = np.random.default_rng(0).standard_normal((3, 40, 40)).astype(np.float32)
    reference = baseline.execute(input=x, seed=42)
    selected = plan.execute(input=x, seed=42)
    difference = float(np.max(np.abs(reference.output - selected.output)))
    print(f"Executed both instantiations on a real input: "
          f"max output difference {difference:.2e} "
          f"({selected.conversions_executed} layout conversions executed, "
          f"{selected.measured_conversion_ms:.2f} ms)")
    print(f"Measured vs profiled-predicted total: {selected.measured_total_ms:.2f} ms "
          f"vs {selected.predicted_total_ms:.2f} ms "
          f"(ratio {selected.prediction_ratio:.2f}x — the profiler's estimates "
          f"are close on the machine they were taken on)")
    print(f"Predicted class: {int(selected.output.argmax())} "
          f"(probability {float(selected.output.max()):.3f})")


if __name__ == "__main__":
    main()
