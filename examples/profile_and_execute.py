#!/usr/bin/env python
"""Profile real primitives on this machine and execute the selected network.

The other examples drive selection with the analytical platform model.  This
one uses the paper's original methodology end to end on the host machine:

1. a small CNN is defined with the graph-building API;
2. the numpy-backed primitives are *actually timed* on tensors of each
   layer's size (the wall-clock profiler — the paper's layerwise profiling);
3. the PBQP selector consumes those measured costs;
4. the resulting plan is executed on a real input and its output is verified
   against the all-SUM2D reference execution, demonstrating that the selected
   primitives and inserted layout conversions compute the same function.

Run:  python examples/profile_and_execute.py
"""

import numpy as np

from repro.core.baselines import sum2d_plan
from repro.core.selector import PBQPSelector, SelectionContext
from repro.cost.profiler import WallClockProfiler
from repro.graph.layer import (
    ConcatLayer,
    ConvLayer,
    FlattenLayer,
    FullyConnectedLayer,
    InputLayer,
    PoolLayer,
    ReLULayer,
    SoftmaxLayer,
)
from repro.graph.network import Network
from repro.runtime import NetworkExecutor, WeightStore


def build_mini_inception() -> Network:
    """A small CNN with an inception-style branch/concat structure."""
    net = Network("mini-inception")
    net.add_layer(InputLayer("data", shape=(3, 40, 40)))
    net.add_layer(ConvLayer("stem", out_channels=16, kernel=5, stride=2, padding=2), ["data"])
    net.add_layer(ReLULayer("stem_relu"), ["stem"])
    net.add_layer(PoolLayer("pool1", kernel=3, stride=2), ["stem_relu"])
    net.add_layer(ConvLayer("b1x1", out_channels=16, kernel=1), ["pool1"])
    net.add_layer(ConvLayer("b3x3_reduce", out_channels=8, kernel=1), ["pool1"])
    net.add_layer(ConvLayer("b3x3", out_channels=16, kernel=3, padding=1), ["b3x3_reduce"])
    net.add_layer(ConvLayer("b5x5_reduce", out_channels=4, kernel=1), ["pool1"])
    net.add_layer(ConvLayer("b5x5", out_channels=8, kernel=5, padding=2), ["b5x5_reduce"])
    net.add_layer(ConcatLayer("concat"), ["b1x1", "b3x3", "b5x5"])
    net.add_layer(ConvLayer("head", out_channels=24, kernel=3, padding=1), ["concat"])
    net.add_layer(PoolLayer("pool2", kernel=2, stride=2), ["head"])
    net.add_layer(FlattenLayer("flatten"), ["pool2"])
    net.add_layer(FullyConnectedLayer("fc", out_features=10), ["flatten"])
    net.add_layer(SoftmaxLayer("prob"), ["fc"])
    net.validate()
    return net


def main() -> None:
    network = build_mini_inception()
    print(network.summary())
    print()

    # Layerwise profiling on the host machine (measured, not modelled).
    profiler = WallClockProfiler(repetitions=3, warmup=1)
    print("Profiling every applicable primitive for every convolution layer ...")
    context = SelectionContext.create(network, cost_model=profiler)
    print(f"profiled {context.tables.table_entries()} cost-table entries")
    print()

    plan = PBQPSelector().select(context)
    baseline = sum2d_plan(context)
    print(plan.summary())
    print()
    print(f"Measured SUM2D baseline: {baseline.total_ms:.2f} ms, "
          f"PBQP selection: {plan.total_ms:.2f} ms "
          f"({plan.speedup_over(baseline):.2f}x, on this host's numpy primitives)")
    print()

    # Execute both plans on the same input and weights; outputs must agree.
    weights = WeightStore(network, seed=42)
    x = np.random.default_rng(0).standard_normal((3, 40, 40)).astype(np.float32)
    reference_out = NetworkExecutor(network, baseline, context.library, weights).run(x)
    selected_out, trace = NetworkExecutor(network, plan, context.library, weights).run_traced(x)
    difference = float(np.max(np.abs(reference_out - selected_out)))
    print(f"Executed both instantiations on a real input: "
          f"max output difference {difference:.2e} "
          f"({trace.conversions_executed} layout conversions executed)")
    print(f"Predicted class: {int(selected_out.argmax())} "
          f"(probability {float(selected_out.max()):.3f})")


if __name__ == "__main__":
    main()
