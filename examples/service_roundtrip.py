#!/usr/bin/env python
"""Round-trip the planning daemon: one plan per registered platform, then metrics.

Exercises the full service surface the way a deployment would: health check,
platform listing, one ``POST /v1/plan`` per registered platform (cold, then
warm to show the cached path), a strategy comparison, a Pareto frontier, and
a final ``/v1/metrics`` scrape.  Exits non-zero if any response is a 5xx or a
warm plan differs from its cold twin — which makes the script double as the
CI smoke gate for ``repro serve``.

Run against an already-running daemon (as CI does):

    repro serve --port 8735 &
    REPRO_SERVICE_PORT=8735 python examples/service_roundtrip.py

or standalone — without ``REPRO_SERVICE_PORT`` the script boots an in-process
server on an ephemeral port and tears it down afterwards.
"""

import json
import os
import sys
import threading

from repro.service import PlannerClient, ServiceError

MODEL = "alexnet"


def run(client: "PlannerClient") -> int:
    health = client.wait_until_ready(timeout=60)
    print(f"healthz: {health['status']} (uptime {health['uptime_s']:.1f}s, "
          f"{health['models']} models, {health['platforms']} platforms)")

    failures = 0
    platforms = [p["name"] for p in client.platforms()]
    print(f"platforms: {', '.join(platforms)}")
    for platform in platforms:
        try:
            cold = client.plan(MODEL, platform)
            warm = client.plan(MODEL, platform)
        except ServiceError as error:
            print(f"  {platform}: FAILED — {error}")
            failures += 1
            continue
        identical = json.dumps(cold["plan"], sort_keys=True) == json.dumps(
            warm["plan"], sort_keys=True
        )
        if not warm["from_cache"] or not identical:
            print(f"  {platform}: FAILED — warm response not served from cache")
            failures += 1
            continue
        print(
            f"  {platform:<16} {cold['total_ms']:8.2f} ms total, "
            f"warm from_cache={warm['from_cache']}"
        )

    compare = client.compare(MODEL, platforms[0])
    print(f"compare on {platforms[0]}: best strategy {compare['best']} "
          f"({len(compare['results'])} strategies ranked)")
    frontier = client.frontier(MODEL, platforms[0], budget_steps=2)
    print(f"frontier on {platforms[0]}: {len(frontier['points'])} Pareto points "
          f"from {frontier['candidates_evaluated']} candidates")

    metrics = client.metrics()
    counters = metrics["counters"]
    print(
        f"metrics: {counters.get('requests_total', 0)} requests, "
        f"{counters.get('responses_5xx', 0)} 5xx, "
        f"{metrics['pbqp_solves_total']} PBQP solves, "
        f"{metrics['cached_documents']} cached documents"
    )
    if counters.get("responses_5xx", 0):
        print("FAILED — the daemon returned 5xx responses")
        failures += 1
    return failures


def main() -> int:
    port = os.environ.get("REPRO_SERVICE_PORT")
    if port:
        host = os.environ.get("REPRO_SERVICE_HOST", "127.0.0.1")
        print(f"connecting to running daemon at {host}:{port}")
        return 1 if run(PlannerClient(host, int(port))) else 0

    # Standalone: boot an in-process daemon on an ephemeral port.
    from repro.service import PlannerApp, make_server

    app = PlannerApp()
    server = make_server(app)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    print(f"booted in-process daemon on port {server.server_address[1]}")
    try:
        return 1 if run(PlannerClient(*server.server_address[:2])) else 0
    finally:
        server.shutdown()
        server.server_close()
        app.close()


if __name__ == "__main__":
    sys.exit(main())
