#!/usr/bin/env python
"""DAG-shaped selection: GoogLeNet's inception modules.

Figure 3 of the paper motivates the PBQP formulation with the inception
module: one producer feeds four parallel branches whose outputs are
concatenated, so a layout decision at the module input constrains (or taxes)
every branch.  This example optimizes the full GoogLeNet graph through the
Session API, shows the selections inside one inception module, and
demonstrates the failure mode of greedy selection: picking each layer's
fastest primitive in isolation incurs layout-conversion costs that the PBQP
solution avoids.

Run:  python examples/inception_dag.py
"""

from repro.api import Session


def main() -> None:
    session = Session()
    platform = "intel-haswell"

    # All four strategies share one profiled context inside the session.
    pbqp = session.select("googlenet", platform, strategy="pbqp").plan
    greedy = session.select("googlenet", platform, strategy="greedy_ignore_dt").plan
    local = session.select("googlenet", platform, strategy="local_optimal").plan
    baseline = session.select("googlenet", platform, strategy="sum2d").plan
    assert session.cache_info().misses == 1  # profiled exactly once

    network = session.context_for("googlenet", platform).network
    print(f"GoogLeNet on {platform}: {len(network.conv_layers())} convolution layers, "
          f"{len(network.edges())} data-flow edges")
    print()
    print(f"{'strategy':<28}{'conv ms':>12}{'transform ms':>14}{'total ms':>12}{'speedup':>10}")
    for plan in (baseline, local, greedy, pbqp):
        print(
            f"{plan.strategy:<28}{1e3 * plan.conv_cost:>12.2f}{1e3 * plan.dt_cost:>14.2f}"
            f"{plan.total_ms:>12.2f}{plan.speedup_over(baseline):>10.2f}"
        )
    print()
    print("Greedy per-layer selection picks marginally faster primitives "
          f"({1e3 * greedy.conv_cost:.1f} vs {1e3 * pbqp.conv_cost:.1f} ms of convolution) but pays "
          f"{1e3 * greedy.dt_cost:.1f} ms of layout conversions; PBQP pays only "
          f"{1e3 * pbqp.dt_cost:.1f} ms.")
    print()

    # Selections inside one inception module.
    module = "inception_4c"
    print(f"Selections inside {module}:")
    for layer, primitive in pbqp.conv_selections().items():
        if layer.startswith(module):
            decision = pbqp.decision(layer)
            print(f"  {layer:<28} {primitive:<26} "
                  f"{decision.input_layout.name}->{decision.output_layout.name}")
    conversions = [edge for edge in pbqp.conversions() if edge.consumer.startswith(module)]
    print(f"  conversions entering the module: {len(conversions)}")


if __name__ == "__main__":
    main()
