#!/usr/bin/env python
"""DAG-shaped selection: GoogLeNet's inception modules.

Figure 3 of the paper motivates the PBQP formulation with the inception
module: one producer feeds four parallel branches whose outputs are
concatenated, so a layout decision at the module input constrains (or taxes)
every branch.  This example optimizes the full GoogLeNet graph, shows the
selections inside one inception module, and demonstrates the failure mode of
greedy selection: picking each layer's fastest primitive in isolation incurs
layout-conversion costs that the PBQP solution avoids.

Run:  python examples/inception_dag.py
"""

from repro.core.baselines import greedy_ignore_dt_plan, local_optimal_plan, sum2d_plan
from repro.core.selector import PBQPSelector, SelectionContext
from repro.cost.platform import PLATFORMS
from repro.models import build_model


def main() -> None:
    network = build_model("googlenet")
    platform = PLATFORMS["intel-haswell"]
    context = SelectionContext.create(network, platform=platform, threads=1)

    pbqp = PBQPSelector().select(context)
    greedy = greedy_ignore_dt_plan(context)
    local = local_optimal_plan(context)
    baseline = sum2d_plan(context)

    print(f"GoogLeNet on {platform.name}: {len(network.conv_layers())} convolution layers, "
          f"{len(network.edges())} data-flow edges")
    print()
    print(f"{'strategy':<28}{'conv ms':>12}{'transform ms':>14}{'total ms':>12}{'speedup':>10}")
    for plan in (baseline, local, greedy, pbqp):
        print(
            f"{plan.strategy:<28}{1e3 * plan.conv_cost:>12.2f}{1e3 * plan.dt_cost:>14.2f}"
            f"{plan.total_ms:>12.2f}{plan.speedup_over(baseline):>10.2f}"
        )
    print()
    print("Greedy per-layer selection picks marginally faster primitives "
          f"({1e3 * greedy.conv_cost:.1f} vs {1e3 * pbqp.conv_cost:.1f} ms of convolution) but pays "
          f"{1e3 * greedy.dt_cost:.1f} ms of layout conversions; PBQP pays only "
          f"{1e3 * pbqp.dt_cost:.1f} ms.")
    print()

    # Selections inside one inception module.
    module = "inception_4c"
    print(f"Selections inside {module}:")
    for layer, primitive in pbqp.conv_selections().items():
        if layer.startswith(module):
            decision = pbqp.decision(layer)
            print(f"  {layer:<28} {primitive:<26} "
                  f"{decision.input_layout.name}->{decision.output_layout.name}")
    conversions = [edge for edge in pbqp.conversions() if edge.consumer.startswith(module)]
    print(f"  conversions entering the module: {len(conversions)}")


if __name__ == "__main__":
    main()
