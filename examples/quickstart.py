#!/usr/bin/env python
"""Quickstart: plan, compare and execute AlexNet with the Session API.

This walks the paper's whole pipeline in a few lines:

1. open a :class:`repro.Session` (optionally with a ``cache_dir`` so the
   profiled cost tables persist across runs — try running this twice);
2. ``session.plan(...)`` profiles every applicable primitive and every
   layout-conversion chain on a modelled platform, encodes the selection
   problem as PBQP, solves it, and legalizes the result;
3. ``session.compare(...)`` ranks every registered strategy by total cost;
4. ``plan.execute()`` runs a real forward pass with the selected primitives
   and reports per-layer measured times against the model's predictions.

Run:  python examples/quickstart.py
"""

from repro.api import Session
from repro.runtime.codegen import render_schedule


def main() -> None:
    # A cache_dir makes the cost tables persistent: a second run of this
    # script performs zero profiling.
    session = Session(cache_dir="repro-cache")

    # The paper's approach: PBQP selection with layout-transformation costs.
    plan = session.plan("alexnet", "intel-haswell", threads=4)
    network = session.context_for("alexnet", "intel-haswell", 4).network
    print(f"Network: {network.name} with {len(network.conv_layers())} convolution layers")
    print(plan.summary())
    metadata = plan.network_plan.metadata
    print(
        f"PBQP instance: {metadata['pbqp_nodes']} nodes, "
        f"{metadata['pbqp_edges']} edges, solved in "
        f"{metadata['solver_seconds'] * 1e3:.1f} ms "
        f"(optimal: {metadata['pbqp_optimal']})"
    )
    print()

    # Every registered strategy, ranked by total cost, with speedups over the
    # single-threaded SUM2D baseline (the whole sweep profiles exactly once).
    comparison = session.compare("alexnet", "intel-haswell", threads=4)
    print(comparison.format())
    print()

    # Execute the selected instantiation on a real input.
    print("Executing one forward pass with the selected primitives ...")
    report = plan.execute()
    print(f"  measured {report.measured_total_ms:.1f} ms on this host "
          f"({report.conversions_executed} layout conversions, "
          f"{report.measured_conversion_ms:.2f} ms)")
    print(f"  predicted class: {int(report.output.argmax())}")
    print()

    print("Generated schedule (first 12 steps):")
    for line in render_schedule(network, plan.network_plan).splitlines()[:13]:
        print("  " + line)
    print()
    print(f"Cost store: {[str(e.path.name) for e in session.store.entries()]}")


if __name__ == "__main__":
    main()
