#!/usr/bin/env python
"""Quickstart: select primitives for AlexNet and inspect the plan.

This walks the paper's whole pipeline in a few lines:

1. build a network graph from the model zoo;
2. profile every applicable primitive for every convolution layer and every
   layout-conversion chain on a modelled platform (the cost tables);
3. encode the selection problem as PBQP, solve it, and legalize the result;
4. compare the selected plan against the SUM2D baseline and the
   canonical-layout "Local Optimal" strategy.

Run:  python examples/quickstart.py
"""

from repro.core.baselines import local_optimal_plan, sum2d_plan
from repro.core.selector import PBQPSelector, SelectionContext
from repro.cost.platform import PLATFORMS
from repro.models import build_model
from repro.runtime.codegen import render_schedule


def main() -> None:
    network = build_model("alexnet")
    platform = PLATFORMS["intel-haswell"]

    print(f"Network: {network.name} with {len(network.conv_layers())} convolution layers")
    print(f"Platform: {platform.name} ({platform.cores} cores, {platform.vector_width}-wide FP32 SIMD)")
    print()

    # Profile once; every strategy below shares the same cost tables.
    context = SelectionContext.create(network, platform=platform, threads=4)
    print(f"Cost tables hold {context.tables.table_entries()} profiled numbers")
    print()

    # The paper's approach: PBQP selection with layout-transformation costs.
    plan = PBQPSelector().select(context)
    print(plan.summary())
    print()
    print(
        f"PBQP instance: {plan.metadata['pbqp_nodes']} nodes, "
        f"{plan.metadata['pbqp_edges']} edges, solved in "
        f"{plan.metadata['solver_seconds'] * 1e3:.1f} ms "
        f"(optimal: {plan.metadata['pbqp_optimal']})"
    )
    print()

    # Baselines for comparison.
    baseline = sum2d_plan(context)
    local = local_optimal_plan(context)
    print(f"SUM2D baseline     : {baseline.total_ms:10.2f} ms")
    print(f"Local Optimal (CHW): {local.total_ms:10.2f} ms ({local.speedup_over(baseline):5.2f}x)")
    print(f"PBQP selection     : {plan.total_ms:10.2f} ms ({plan.speedup_over(baseline):5.2f}x)")
    print()

    print("Generated schedule (first 12 steps):")
    for line in render_schedule(network, plan).splitlines()[:13]:
        print("  " + line)


if __name__ == "__main__":
    main()
