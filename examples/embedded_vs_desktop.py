#!/usr/bin/env python
"""Embedded vs desktop: how the optimal selection changes with the platform.

Reproduces the study behind Figure 4 of the paper: the same AlexNet graph is
optimized for the Intel Core i5-4570 (Haswell, AVX2) and for the ARM
Cortex-A57 (NEON, small caches), and the per-layer selections are compared.
The interesting outcome is that the selections differ in exactly the ways the
paper describes — 8-wide 2D Winograd variants on the desktop part, 4-wide
low-memory 1D Winograd variants on the embedded part, and an im2-family
primitive for the strided 11x11 first layer on both.

One Session serves every query, so each (network, platform, threads) triple
is profiled exactly once across the whole script.

Run:  python examples/embedded_vs_desktop.py
"""

from repro.api import Session
from repro.experiments.selections import alexnet_selection_comparison


def main() -> None:
    session = Session()

    # Per-layer selections on the two platforms (Figure 4).
    comparison = alexnet_selection_comparison(threads=4, session=session)
    print(comparison.format())
    print()

    # The per-layer cost tables that explain the different choices.
    for platform_name in ("intel-haswell", "arm-cortex-a57"):
        plan = session.plan("alexnet", platform_name, threads=4)
        context = session.context_for("alexnet", platform_name, 4)
        print(f"--- {platform_name} ---")
        for layer, primitive in plan.network_plan.conv_selections().items():
            scenario = context.tables.scenarios[layer]
            cost_ms = 1e3 * context.tables.primitive_cost(layer, primitive)
            print(f"  {layer:<8} [{scenario.describe():<45}] -> {primitive:<26} {cost_ms:8.3f} ms")
        print(f"  layout conversions inserted: {len(plan.network_plan.conversions())}, "
              f"costing {1e3 * plan.network_plan.dt_cost:.3f} ms")
        print()

    # Whole-network comparison on both platforms, ranked by total cost.
    for platform_name in ("intel-haswell", "arm-cortex-a57"):
        report = session.compare("alexnet", platform_name, threads=4)
        pbqp = next(r for r in report.results if r.strategy == "pbqp")
        print(f"{platform_name}: PBQP {report.speedup(pbqp):.1f}x over single-threaded "
              f"SUM2D, best strategy = {report.best.strategy}")
    info = session.cache_info()
    print(f"(session cache: {info.contexts} profiled contexts, "
          f"{info.hits} hits, {info.misses} misses)")


if __name__ == "__main__":
    main()
