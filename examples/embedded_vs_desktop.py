#!/usr/bin/env python
"""Embedded vs desktop: how the optimal selection changes with the platform.

Reproduces the study behind Figure 4 of the paper: the same AlexNet graph is
optimized for the Intel Core i5-4570 (Haswell, AVX2) and for the ARM
Cortex-A57 (NEON, small caches), and the per-layer selections are compared.
The interesting outcome is that the selections differ in exactly the ways the
paper describes — 8-wide 2D Winograd variants on the desktop part, 4-wide
low-memory 1D Winograd variants on the embedded part, and an im2-family
primitive for the strided 11x11 first layer on both.

Run:  python examples/embedded_vs_desktop.py
"""

from repro.core.selector import PBQPSelector, SelectionContext
from repro.cost.platform import PLATFORMS
from repro.experiments.selections import alexnet_selection_comparison
from repro.experiments.whole_network import format_speedup_table, run_whole_network
from repro.models import build_model


def main() -> None:
    # Per-layer selections on the two platforms (Figure 4).
    comparison = alexnet_selection_comparison(threads=4)
    print(comparison.format())
    print()

    # The per-layer cost tables that explain the different choices.
    for platform_name in ("intel-haswell", "arm-cortex-a57"):
        platform = PLATFORMS[platform_name]
        network = build_model("alexnet")
        context = SelectionContext.create(network, platform=platform, threads=4)
        plan = PBQPSelector().select(context)
        print(f"--- {platform_name} ---")
        for layer, primitive in plan.conv_selections().items():
            scenario = context.tables.scenarios[layer]
            cost_ms = 1e3 * context.tables.primitive_cost(layer, primitive)
            print(f"  {layer:<8} [{scenario.describe():<45}] -> {primitive:<26} {cost_ms:8.3f} ms")
        print(f"  layout conversions inserted: {len(plan.conversions())}, "
              f"costing {1e3 * plan.dt_cost:.3f} ms")
        print()

    # Whole-network comparison on both platforms (Figures 6 and 7b).
    results = [
        run_whole_network("alexnet", PLATFORMS["intel-haswell"], threads=4),
        run_whole_network("alexnet", PLATFORMS["arm-cortex-a57"], threads=4),
    ]
    for result in results:
        print(f"{result.platform}: PBQP {result.speedup('pbqp'):.1f}x over single-threaded SUM2D, "
              f"best strategy = {result.best_strategy()}")


if __name__ == "__main__":
    main()
