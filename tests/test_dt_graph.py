"""Tests for the data-layout transformation (DT) graph."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.layouts.dt_graph import DTGraph, element_traffic_cost
from repro.layouts.layout import CHW, CHW8c, HWC, HWC8c, WHC, STANDARD_LAYOUTS
from repro.layouts.transforms import LayoutTransform, default_transform_library


@pytest.fixture(scope="module")
def standard_graph():
    return DTGraph(STANDARD_LAYOUTS.values(), default_transform_library())


class TestStructure:
    def test_nodes_and_edges(self, standard_graph):
        assert len(standard_graph.layouts) == len(STANDARD_LAYOUTS)
        assert len(standard_graph.transforms) == len(default_transform_library())

    def test_direct_transform_lookup(self, standard_graph):
        assert standard_graph.direct_transform(CHW, HWC) is not None
        assert standard_graph.direct_transform(CHW, WHC) is None

    def test_successors(self, standard_graph):
        names = {layout.name for layout in standard_graph.successors(CHW)}
        assert "HWC" in names and "CHWc8" in names
        assert "WHC" not in names

    def test_duplicate_edge_rejected(self):
        with pytest.raises(ValueError):
            DTGraph(
                [CHW, HWC],
                [LayoutTransform(CHW, HWC), LayoutTransform(CHW, HWC, efficiency=0.5)],
            )

    def test_layouts_from_transforms_added_automatically(self):
        graph = DTGraph([], [LayoutTransform(CHW, HWC)])
        assert {layout.name for layout in graph.layouts} == {"CHW", "HWC"}


class TestReachability:
    def test_transitive_closure_includes_self(self, standard_graph):
        closure = standard_graph.transitive_closure()
        for name in standard_graph.layout_names:
            assert (name, name) in closure

    def test_all_standard_layouts_mutually_reachable(self, standard_graph):
        closure = standard_graph.transitive_closure()
        names = standard_graph.layout_names
        assert all((a, b) in closure for a in names for b in names)

    def test_unreachable_pair_detected(self):
        # One-way edge only: HWC cannot reach CHW.
        graph = DTGraph([CHW, HWC], [LayoutTransform(CHW, HWC)])
        assert graph.is_reachable(CHW, HWC)
        assert not graph.is_reachable(HWC, CHW)


class TestShortestPaths:
    def test_identity_path_is_free(self, standard_graph):
        paths = standard_graph.all_pairs_shortest_paths((8, 8, 8))
        path = paths[("CHW", "CHW")]
        assert path.cost == 0
        assert path.hops == 0
        assert path.reachable

    def test_direct_pair_uses_single_hop(self, standard_graph):
        path = standard_graph.shortest_path(CHW, HWC, (16, 10, 10))
        assert path.hops == 1
        assert path.chain.transforms[0].source == CHW

    def test_multi_hop_chain_for_indirect_pair(self, standard_graph):
        path = standard_graph.shortest_path(CHW8c, HWC8c, (64, 14, 14))
        assert path.hops >= 3
        assert path.chain.source == CHW8c
        assert path.chain.target == HWC8c

    def test_whc_needs_two_hops_from_chw(self, standard_graph):
        path = standard_graph.shortest_path(CHW, WHC, (8, 9, 10))
        assert path.hops == 2

    def test_unreachable_pair_has_infinite_cost(self):
        graph = DTGraph([CHW, HWC], [LayoutTransform(CHW, HWC)])
        paths = graph.all_pairs_shortest_paths((4, 4, 4))
        assert math.isinf(paths[("HWC", "CHW")].cost)
        assert paths[("HWC", "CHW")].chain is None

    def test_shortest_path_cost_matches_chain_traffic(self, standard_graph):
        shape = (32, 12, 12)
        paths = standard_graph.all_pairs_shortest_paths(shape)
        for path in paths.values():
            if path.reachable and path.hops:
                assert path.cost == pytest.approx(path.chain.element_traffic(*shape))

    def test_negative_cost_rejected(self, standard_graph):
        with pytest.raises(ValueError):
            standard_graph.all_pairs_shortest_paths((4, 4, 4), cost_fn=lambda t, s: -1.0)

    def test_custom_cost_function(self, standard_graph):
        unit = standard_graph.all_pairs_shortest_paths((4, 4, 4), cost_fn=lambda t, s: 1.0)
        # With unit edge costs, cost equals hop count.
        for path in unit.values():
            if path.reachable:
                assert path.cost == pytest.approx(path.hops)

    def test_shortest_never_worse_than_direct(self, standard_graph):
        """The all-pairs answer is never worse than any direct edge."""
        shape = (16, 8, 8)
        paths = standard_graph.all_pairs_shortest_paths(shape)
        for transform in standard_graph.transforms:
            key = (transform.source.name, transform.target.name)
            assert paths[key].cost <= element_traffic_cost(transform, shape) + 1e-9

    @settings(max_examples=25, deadline=None)
    @given(
        a=st.sampled_from(sorted(STANDARD_LAYOUTS)),
        b=st.sampled_from(sorted(STANDARD_LAYOUTS)),
        c=st.sampled_from(sorted(STANDARD_LAYOUTS)),
    )
    def test_triangle_inequality(self, standard_graph, a, b, c):
        """Shortest-path costs satisfy the triangle inequality."""
        shape = (16, 10, 10)
        paths = standard_graph.all_pairs_shortest_paths(shape)
        direct = paths[(a, c)].cost
        via = paths[(a, b)].cost + paths[(b, c)].cost
        assert direct <= via + 1e-6
