"""Tests for the Winograd transform generation and the Winograd primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.scenario import ConvScenario
from repro.layouts.tensor import LayoutTensor
from repro.primitives.reference import reference_convolution
from repro.primitives.winograd import (
    Winograd1DPrimitive,
    Winograd2DPrimitive,
    winograd_matrices,
)

#: All (m, r) pairs the registry instantiates.
TILE_KERNEL_PAIRS = [(2, 3), (3, 3), (4, 3), (2, 5), (3, 5)]


class TestTransformGeneration:
    @pytest.mark.parametrize("m,r", TILE_KERNEL_PAIRS + [(4, 5), (6, 3)])
    def test_matrices_have_expected_shapes(self, m, r):
        at, g, bt = winograd_matrices(m, r)
        n = m + r - 1
        assert at.shape == (m, n)
        assert g.shape == (n, r)
        assert bt.shape == (n, n)

    @pytest.mark.parametrize("m,r", TILE_KERNEL_PAIRS)
    def test_f23_style_identity_on_random_signals(self, m, r):
        """AT((Gg) * (BTd)) equals the valid 1D correlation for random inputs."""
        n = m + r - 1
        at, g, bt = winograd_matrices(m, r)
        rng = np.random.default_rng(m * 10 + r)
        for _ in range(25):
            d = rng.standard_normal(n)
            kernel = rng.standard_normal(r)
            result = at @ ((g @ kernel) * (bt @ d))
            expected = np.array([np.dot(d[i : i + r], kernel) for i in range(m)])
            np.testing.assert_allclose(result, expected, rtol=1e-8, atol=1e-8)

    def test_f23_matches_published_output_count(self):
        at, g, bt = winograd_matrices(2, 3)
        # F(2,3) uses 4 multiplications for 2 outputs (the published minimum).
        assert at.shape == (2, 4)
        assert g.shape == (4, 3)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            winograd_matrices(0, 3)
        with pytest.raises(ValueError):
            winograd_matrices(3, 0)

    def test_results_cached(self):
        first = winograd_matrices(2, 3)
        second = winograd_matrices(2, 3)
        assert first[0] is second[0]

    @settings(max_examples=30, deadline=None)
    @given(
        m=st.integers(2, 5),
        r=st.sampled_from([3, 5]),
        seed=st.integers(0, 1000),
    )
    def test_identity_property(self, m, r, seed):
        n = m + r - 1
        at, g, bt = winograd_matrices(m, r)
        rng = np.random.default_rng(seed)
        d = rng.uniform(-2, 2, size=n)
        kernel = rng.uniform(-2, 2, size=r)
        result = at @ ((g @ kernel) * (bt @ d))
        expected = np.array([np.dot(d[i : i + r], kernel) for i in range(m)])
        np.testing.assert_allclose(result, expected, rtol=1e-7, atol=1e-7)


class TestWinogradPrimitives:
    @pytest.mark.parametrize("m,r", TILE_KERNEL_PAIRS)
    @pytest.mark.parametrize("dimensionality", ["1d", "2d"])
    def test_matches_reference_on_awkward_sizes(self, m, r, dimensionality):
        """Image sizes that are not multiples of the tile size still work."""
        scenario = ConvScenario(c=3, h=11, w=13, stride=1, k=r, m=4, padding=r // 2)
        if dimensionality == "2d":
            primitive = Winograd2DPrimitive(name="w2", tile=m, kernel_size=r)
        else:
            primitive = Winograd1DPrimitive(name="w1", tile=m, kernel_size=r)
        rng = np.random.default_rng(m * 7 + r)
        x = rng.standard_normal(scenario.input_shape).astype(np.float32)
        kernel = rng.standard_normal(scenario.kernel_shape).astype(np.float32)
        reference = reference_convolution(x, kernel, scenario)
        output = primitive.execute(
            LayoutTensor.from_chw(x, primitive.input_layout), kernel, scenario
        )
        np.testing.assert_allclose(output.to_chw(), reference, rtol=1e-4, atol=1e-4)

    def test_supports_only_matching_kernel_and_unit_stride(self):
        primitive = Winograd2DPrimitive(name="w", tile=2, kernel_size=3)
        assert primitive.supports(ConvScenario(c=4, h=8, w=8, k=3, m=4, padding=1))
        assert not primitive.supports(ConvScenario(c=4, h=8, w=8, k=5, m=4, padding=2))
        assert not primitive.supports(
            ConvScenario(c=4, h=8, w=8, k=3, m=4, padding=1, stride=2)
        )

    def test_1d_needs_fewer_workspace_elements_than_2d(self):
        """The low-memory property the paper attributes to the 1D form."""
        scenario = ConvScenario(c=256, h=13, w=13, stride=1, k=3, m=384, padding=1)
        two_d = Winograd2DPrimitive(name="w2", tile=2, kernel_size=3)
        one_d = Winograd1DPrimitive(name="w1", tile=2, kernel_size=3)
        assert one_d.workspace_elements(scenario) < two_d.workspace_elements(scenario)
        assert one_d.inner_working_set_elements(scenario) < two_d.inner_working_set_elements(
            scenario
        )

    def test_1d_performs_more_operations_than_2d(self):
        """...at the cost of more floating point operations (paper section 4)."""
        scenario = ConvScenario(c=256, h=13, w=13, stride=1, k=3, m=384, padding=1)
        two_d = Winograd2DPrimitive(name="w2", tile=2, kernel_size=3)
        one_d = Winograd1DPrimitive(name="w1", tile=2, kernel_size=3)
        assert one_d.arithmetic_ops(scenario) > two_d.arithmetic_ops(scenario)

    def test_2d_performs_fewer_ops_than_textbook(self):
        scenario = ConvScenario(c=64, h=28, w=28, stride=1, k=3, m=64, padding=1)
        primitive = Winograd2DPrimitive(name="w", tile=4, kernel_size=3)
        assert primitive.arithmetic_ops(scenario) < scenario.flops()

    def test_larger_tiles_reduce_elementwise_work(self):
        scenario = ConvScenario(c=64, h=56, w=56, stride=1, k=3, m=64, padding=1)
        small = Winograd2DPrimitive(name="a", tile=2, kernel_size=3)
        large = Winograd2DPrimitive(name="b", tile=4, kernel_size=3)
        assert large.arithmetic_ops(scenario) < small.arithmetic_ops(scenario)

    def test_grouped_convolution_correct(self):
        scenario = ConvScenario(c=4, h=10, w=10, stride=1, k=3, m=6, padding=1, groups=2)
        primitive = Winograd2DPrimitive(name="w", tile=2, kernel_size=3)
        rng = np.random.default_rng(11)
        x = rng.standard_normal(scenario.input_shape).astype(np.float32)
        kernel = rng.standard_normal(scenario.kernel_shape).astype(np.float32)
        reference = reference_convolution(x, kernel, scenario)
        output = primitive.execute(LayoutTensor.from_chw(x, primitive.input_layout), kernel, scenario)
        np.testing.assert_allclose(output.to_chw(), reference, rtol=1e-4, atol=1e-4)
