"""Tests for the analytical cost model, the wall-clock profiler and cost tables."""


import numpy as np
import pytest

from repro.cost.analytical import AnalyticalCostModel, ModelParameters
from repro.cost.platform import PLATFORMS, arm_cortex_a57, intel_haswell
from repro.cost.profiler import WallClockProfiler
from repro.cost.tables import build_cost_tables
from repro.graph.scenario import ConvScenario
from repro.layouts.layout import CHW, CHW8c, HWC
from repro.layouts.transforms import LayoutTransform


@pytest.fixture(scope="module")
def k3_scenario():
    return ConvScenario(c=64, h=28, w=28, stride=1, k=3, m=64, padding=1)


class TestPlatform:
    def test_registry_contains_the_platform_zoo(self):
        # The paper's pair plus the post-paper zoo (AVX-512 server, GPU-sim).
        assert set(PLATFORMS) >= {
            "intel-haswell",
            "arm-cortex-a57",
            "avx512-server",
            "gpu-sim",
        }

    def test_peak_scales_with_lanes_up_to_width(self):
        assert intel_haswell.peak_gflops_per_core(8) == pytest.approx(
            8 * intel_haswell.peak_gflops_per_core(1)
        )
        # Requests beyond the native width are clamped.
        assert arm_cortex_a57.peak_gflops_per_core(8) == pytest.approx(
            arm_cortex_a57.peak_gflops_per_core(4)
        )

    def test_intel_peak_exceeds_arm_peak(self):
        assert intel_haswell.peak_gflops_per_core(8) > arm_cortex_a57.peak_gflops_per_core(4)

    def test_cache_structure(self):
        assert intel_haswell.last_level_cache_bytes() == 6144 * 1024
        assert arm_cortex_a57.last_level_cache_bytes() == 2048 * 1024
        assert intel_haswell.per_core_cache_bytes() == 256 * 1024
        # The A57's L2 is shared, so its private cache is only the L1.
        assert arm_cortex_a57.per_core_cache_bytes() == 32 * 1024


class TestAnalyticalModel:
    def test_costs_positive_for_all_applicable_primitives(
        self, library, intel_cost_model, k3_scenario
    ):
        for primitive in library.applicable(k3_scenario):
            cost = intel_cost_model.primitive_cost(primitive, k3_scenario)
            assert np.isfinite(cost) and cost > 0

    def test_arm_slower_than_intel(self, library, intel_cost_model, arm_cost_model, k3_scenario):
        for name in ("sum2d", "im2col_vf4", "winograd_2d_m2_r3_vf4"):
            primitive = library.get(name)
            assert arm_cost_model.primitive_cost(primitive, k3_scenario) > (
                intel_cost_model.primitive_cost(primitive, k3_scenario)
            )

    def test_multithreading_never_slows_down(self, library, intel_cost_model, k3_scenario):
        for name in ("sum2d", "im2col_vf8", "winograd_2d_m4_r3_vf8", "fft_1d_chw_vf8"):
            primitive = library.get(name)
            single = intel_cost_model.primitive_cost(primitive, k3_scenario, threads=1)
            multi = intel_cost_model.primitive_cost(primitive, k3_scenario, threads=4)
            assert multi <= single

    def test_invalid_thread_count(self, library, intel_cost_model, k3_scenario):
        with pytest.raises(ValueError):
            intel_cost_model.primitive_cost(library.get("sum2d"), k3_scenario, threads=0)

    def test_vector_width_matters_on_intel_not_on_arm(self, library, k3_scenario):
        """VF8 variants pay a penalty on NEON but win on AVX2 (Figure 4's VF split)."""
        intel_model = AnalyticalCostModel(intel_haswell)
        arm_model = AnalyticalCostModel(arm_cortex_a57)
        vf8 = library.get("im2col_vf8")
        vf4 = library.get("im2col_vf4")
        assert intel_model.primitive_cost(vf8, k3_scenario) < intel_model.primitive_cost(
            vf4, k3_scenario
        )
        assert arm_model.primitive_cost(vf4, k3_scenario) < arm_model.primitive_cost(
            vf8, k3_scenario
        )

    def test_sum2d_is_much_slower_than_gemm_based(self, library, intel_cost_model, k3_scenario):
        sum2d = intel_cost_model.primitive_cost(library.get("sum2d"), k3_scenario)
        im2 = intel_cost_model.primitive_cost(library.get("im2col_vf8"), k3_scenario)
        assert sum2d / im2 > 3.0

    def test_winograd_beats_im2_on_k3(self, library, intel_cost_model, k3_scenario):
        winograd = min(
            intel_cost_model.primitive_cost(library.get(name), k3_scenario)
            for name in ("winograd_2d_m2_r3_vf8", "winograd_2d_m4_r3_vf8")
        )
        im2 = intel_cost_model.primitive_cost(library.get("im2col_vf8"), k3_scenario)
        assert winograd < im2

    def test_one_d_winograd_preferred_on_arm_for_large_layers(self, library, arm_cost_model):
        """The small-cache platform favours the low-memory 1D form (Figure 4)."""
        scenario = ConvScenario(c=256, h=13, w=13, stride=1, k=3, m=384, padding=1)
        one_d = arm_cost_model.primitive_cost(library.get("winograd_1d_m4_r3_vf4"), scenario)
        two_d = arm_cost_model.primitive_cost(library.get("winograd_2d_m4_r3_vf4"), scenario)
        assert one_d < two_d

    def test_two_d_winograd_preferred_on_intel_for_same_layer(self, library, intel_cost_model):
        scenario = ConvScenario(c=256, h=13, w=13, stride=1, k=3, m=384, padding=1)
        one_d = intel_cost_model.primitive_cost(library.get("winograd_1d_m4_r3_vf8"), scenario)
        two_d = intel_cost_model.primitive_cost(library.get("winograd_2d_m4_r3_vf8"), scenario)
        assert two_d < one_d

    def test_cache_pressure_parameter_slows_large_workspaces(self, library, k3_scenario):
        gentle = AnalyticalCostModel(intel_haswell, ModelParameters(cache_pressure=0.0))
        harsh = AnalyticalCostModel(intel_haswell, ModelParameters(cache_pressure=2.0))
        primitive = library.get("im2col_vf8")
        assert harsh.primitive_cost(primitive, k3_scenario) > gentle.primitive_cost(
            primitive, k3_scenario
        )

    def test_transform_cost_scales_with_tensor_size(self, intel_cost_model):
        transform = LayoutTransform(source=CHW, target=HWC)
        small = intel_cost_model.transform_cost(transform, (16, 14, 14))
        large = intel_cost_model.transform_cost(transform, (256, 56, 56))
        assert large > small > 0

    def test_transform_cost_cheaper_on_intel(self, intel_cost_model, arm_cost_model):
        transform = LayoutTransform(source=CHW, target=CHW8c)
        shape = (128, 28, 28)
        assert intel_cost_model.transform_cost(transform, shape) < arm_cost_model.transform_cost(
            transform, shape
        )

    def test_transform_threads_help_a_little(self, intel_cost_model):
        transform = LayoutTransform(source=CHW, target=HWC)
        shape = (256, 28, 28)
        assert intel_cost_model.transform_cost(transform, shape, threads=4) < (
            intel_cost_model.transform_cost(transform, shape, threads=1)
        )


class TestWallClockProfiler:
    def test_measures_positive_times_and_caches(self, library):
        profiler = WallClockProfiler(repetitions=1, warmup=0)
        scenario = ConvScenario(c=2, h=8, w=8, stride=1, k=3, m=2, padding=1)
        primitive = library.get("im2col_vf1")
        first = profiler.primitive_cost(primitive, scenario)
        second = profiler.primitive_cost(primitive, scenario)
        assert first > 0
        assert first == second  # cached

    def test_transform_measurement(self):
        profiler = WallClockProfiler(repetitions=1, warmup=0)
        transform = LayoutTransform(source=CHW, target=HWC)
        assert profiler.transform_cost(transform, (4, 8, 8)) > 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            WallClockProfiler(repetitions=0)
        with pytest.raises(ValueError):
            WallClockProfiler(warmup=-1)


class TestCostTables:
    def test_tables_for_tiny_network(self, tiny_network, library, dt_graph, intel_cost_model):
        tables = build_cost_tables(tiny_network, library, dt_graph, intel_cost_model, threads=1)
        assert set(tables.layers()) == {layer.name for layer in tiny_network.conv_layers()}
        # Every conv layer has at least the sum2d fallback plus GEMM variants.
        for layer, costs in tables.node_costs.items():
            assert "sum2d" in costs
            assert len(costs) > 10
            assert all(np.isfinite(c) and c > 0 for c in costs.values())
        assert tables.table_entries() > 0

    def test_identity_conversion_is_free(self, tiny_network, library, dt_graph, intel_cost_model):
        tables = build_cost_tables(tiny_network, library, dt_graph, intel_cost_model)
        shape = next(iter(tables.dt_costs))
        assert tables.conversion_cost(shape, CHW, CHW) == 0.0

    def test_cheapest_primitive(self, tiny_network, library, dt_graph, intel_cost_model):
        tables = build_cost_tables(tiny_network, library, dt_graph, intel_cost_model)
        name, cost = tables.cheapest_primitive("conv1")
        assert cost == min(tables.node_costs["conv1"].values())
        assert tables.primitive_cost("conv1", name) == cost

    def test_multithreaded_tables_not_slower(
        self, tiny_network, library, dt_graph, intel_cost_model
    ):
        single = build_cost_tables(tiny_network, library, dt_graph, intel_cost_model, threads=1)
        multi = build_cost_tables(tiny_network, library, dt_graph, intel_cost_model, threads=4)
        for layer in single.layers():
            for name, cost in single.node_costs[layer].items():
                assert multi.node_costs[layer][name] <= cost + 1e-12

    def test_invalid_threads(self, tiny_network, library, dt_graph, intel_cost_model):
        with pytest.raises(ValueError):
            build_cost_tables(tiny_network, library, dt_graph, intel_cost_model, threads=0)
