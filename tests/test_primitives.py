"""Numerical correctness and capability tests for the primitive library.

Every executable primitive is compared against the reference convolution on a
grid of scenarios covering unit and non-unit stride, 1x1/3x3/5x5/11x11
kernels, padding, grouping and non-square images.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.scenario import ConvScenario
from repro.layouts.layout import CHW
from repro.layouts.tensor import LayoutTensor
from repro.primitives import (
    PrimitiveFamily,
    Sum2DPrimitive,
    UnsupportedScenarioError,
    reference_convolution,
)
from repro.primitives.im2 import im2col_matrix, im2row_matrix

#: Scenarios chosen to exercise every capability dimension of the library.
CORRECTNESS_SCENARIOS = {
    "k3_pad": ConvScenario(c=4, h=12, w=12, stride=1, k=3, m=6, padding=1),
    "k3_nonsquare": ConvScenario(c=3, h=9, w=14, stride=1, k=3, m=5, padding=1),
    "k5_pad": ConvScenario(c=4, h=14, w=14, stride=1, k=5, m=3, padding=2),
    "k1_pointwise": ConvScenario(c=8, h=10, w=10, stride=1, k=1, m=5),
    "strided_k5": ConvScenario(c=3, h=13, w=11, stride=2, k=5, m=4, padding=2),
    "strided_k11": ConvScenario(c=3, h=19, w=19, stride=4, k=11, m=4),
    "grouped": ConvScenario(c=4, h=12, w=12, stride=1, k=3, m=6, padding=1, groups=2),
    "depthwise": ConvScenario(c=6, h=12, w=12, stride=1, k=3, m=6, padding=1, groups=6),
    "strided_depthwise": ConvScenario(
        c=6, h=13, w=13, stride=2, k=3, m=6, padding=1, groups=6
    ),
    "depthwise_multiplier": ConvScenario(
        c=4, h=10, w=10, stride=1, k=3, m=8, padding=1, groups=4
    ),
    "no_padding": ConvScenario(c=2, h=8, w=8, stride=1, k=3, m=3),
}


def _run_primitive(primitive, scenario, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(scenario.input_shape).astype(np.float32)
    kernel = rng.standard_normal(scenario.kernel_shape).astype(np.float32)
    reference = reference_convolution(x, kernel, scenario)
    tensor = LayoutTensor.from_chw(x, primitive.input_layout)
    output = primitive.execute(tensor, kernel, scenario)
    return output, reference


class TestLibraryContents:
    def test_more_than_seventy_primitives(self, library):
        assert len(library) > 70

    def test_every_family_represented(self, library):
        for family in PrimitiveFamily:
            assert library.by_family(family), f"family {family.value} is empty"

    def test_names_unique_and_lookup(self, library):
        names = library.names()
        assert len(names) == len(set(names))
        assert library.get("sum2d").family is PrimitiveFamily.SUM2D
        with pytest.raises(KeyError):
            library.get("not-a-primitive")

    def test_layouts_used_cover_blocked_and_permuted(self, library):
        names = {layout.name for layout in library.layouts_used()}
        assert {"CHW", "HWC", "HCW", "CHWc4", "CHWc8"} <= names

    def test_subset(self, library):
        subset = library.subset(["sum2d", "im2col_vf8"])
        assert len(subset) == 2
        assert "winograd_2d_m2_r3_vf8" not in subset

    def test_vector_factors_cover_platforms(self, library):
        factors = {p.vector_factor for p in library}
        assert {1, 4, 8} <= factors

    def test_traits_are_sane(self, library, small_scenario):
        for primitive in library:
            traits = primitive.traits()
            assert 0.0 <= traits.gemm_fraction <= 1.0
            assert 0.0 <= traits.locality <= 1.0
            assert 0.0 < traits.parallel_efficiency <= 1.0
            assert traits.per_call_overhead_ops >= 0.0

    def test_work_estimates_positive(self, library, small_scenario):
        for primitive in library:
            if not primitive.supports(small_scenario):
                continue
            assert primitive.arithmetic_ops(small_scenario) > 0
            assert primitive.workspace_elements(small_scenario) >= 0
            assert primitive.memory_traffic_elements(small_scenario) > 0
            assert primitive.inner_working_set_elements(small_scenario) >= 0


class TestCapabilities:
    def test_strided_scenarios_reject_kn2_winograd_fft(self, library):
        strided = CORRECTNESS_SCENARIOS["strided_k11"]
        for family in (PrimitiveFamily.KN2, PrimitiveFamily.WINOGRAD, PrimitiveFamily.FFT):
            assert library.applicable(strided, family=family) == []

    def test_direct_and_im2_support_everything(self, library):
        for scenario in CORRECTNESS_SCENARIOS.values():
            assert library.applicable(scenario, family=PrimitiveFamily.DIRECT)
            assert library.applicable(scenario, family=PrimitiveFamily.IM2)

    def test_depthwise_scenarios_reject_kn2_and_fft(self, library):
        """kn2/FFT must decline ``groups == C`` scenarios, not miscost them."""
        for name in ("depthwise", "depthwise_multiplier"):
            scenario = CORRECTNESS_SCENARIOS[name]
            assert scenario.is_depthwise
            for family in (PrimitiveFamily.KN2, PrimitiveFamily.FFT):
                assert library.applicable(scenario, family=family) == [], (name, family)
            # The families that do claim depthwise keep their word below (the
            # correctness sweep runs every applicable primitive on it).
            for family in (
                PrimitiveFamily.SUM2D,
                PrimitiveFamily.DIRECT,
                PrimitiveFamily.IM2,
                PrimitiveFamily.WINOGRAD,
            ):
                assert library.applicable(scenario, family=family), (name, family)

    def test_merely_grouped_scenarios_keep_kn2_and_fft(self, library):
        """AlexNet-style groups=2 is not depthwise and stays fully supported."""
        grouped = CORRECTNESS_SCENARIOS["grouped"]
        assert grouped.is_grouped and not grouped.is_depthwise
        for family in (PrimitiveFamily.KN2, PrimitiveFamily.FFT):
            assert library.applicable(grouped, family=family)

    def test_winograd_requires_matching_kernel(self, library):
        k3 = CORRECTNESS_SCENARIOS["k3_pad"]
        k5 = CORRECTNESS_SCENARIOS["k5_pad"]
        k3_names = {p.name for p in library.applicable(k3, family=PrimitiveFamily.WINOGRAD)}
        k5_names = {p.name for p in library.applicable(k5, family=PrimitiveFamily.WINOGRAD)}
        assert all("r3" in name for name in k3_names)
        assert all("r5" in name for name in k5_names)
        assert k3_names and k5_names

    def test_executing_unsupported_scenario_raises(self, library):
        strided = CORRECTNESS_SCENARIOS["strided_k11"]
        winograd = library.get("winograd_2d_m2_r3_vf8")
        rng = np.random.default_rng(0)
        tensor = LayoutTensor.from_chw(
            rng.standard_normal(strided.input_shape).astype(np.float32), winograd.input_layout
        )
        kernel = rng.standard_normal(strided.kernel_shape).astype(np.float32)
        with pytest.raises(UnsupportedScenarioError):
            winograd.execute(tensor, kernel, strided)

    def test_wrong_layout_rejected(self, library, small_scenario):
        primitive = library.get("im2row_vf4")  # expects HWC
        rng = np.random.default_rng(0)
        tensor = LayoutTensor.from_chw(
            rng.standard_normal(small_scenario.input_shape).astype(np.float32), CHW
        )
        kernel = rng.standard_normal(small_scenario.kernel_shape).astype(np.float32)
        with pytest.raises(UnsupportedScenarioError):
            primitive.execute(tensor, kernel, small_scenario)

    def test_wrong_kernel_shape_rejected(self, library, small_scenario):
        primitive = library.get("sum2d")
        rng = np.random.default_rng(0)
        tensor = LayoutTensor.from_chw(
            rng.standard_normal(small_scenario.input_shape).astype(np.float32), CHW
        )
        with pytest.raises(ValueError):
            primitive.execute(tensor, np.zeros((2, 2, 3, 3), dtype=np.float32), small_scenario)

    def test_wrong_input_shape_rejected(self, library, small_scenario):
        primitive = library.get("sum2d")
        rng = np.random.default_rng(0)
        tensor = LayoutTensor.from_chw(rng.standard_normal((4, 10, 10)).astype(np.float32), CHW)
        kernel = rng.standard_normal(small_scenario.kernel_shape).astype(np.float32)
        with pytest.raises(ValueError):
            primitive.execute(tensor, kernel, small_scenario)


class TestNumericalCorrectness:
    @pytest.mark.parametrize("scenario_name", sorted(CORRECTNESS_SCENARIOS))
    def test_every_applicable_primitive_matches_reference(self, library, scenario_name):
        scenario = CORRECTNESS_SCENARIOS[scenario_name]
        applicable = library.applicable(scenario)
        assert applicable
        for primitive in applicable:
            output, reference = _run_primitive(primitive, scenario)
            np.testing.assert_allclose(
                output.to_chw(),
                reference,
                rtol=1e-3,
                atol=1e-3,
                err_msg=f"{primitive.name} disagrees on {scenario_name}",
            )
            assert output.layout == primitive.output_layout
            assert output.logical_shape == scenario.output_shape

    def test_sum2d_matches_reference_on_groups(self):
        scenario = CORRECTNESS_SCENARIOS["grouped"]
        output, reference = _run_primitive(Sum2DPrimitive(), scenario)
        np.testing.assert_allclose(output.to_chw(), reference, rtol=1e-4, atol=1e-5)

    @settings(max_examples=20, deadline=None)
    @given(
        c=st.integers(1, 6),
        m=st.integers(1, 6),
        size=st.integers(6, 14),
        k=st.sampled_from([1, 3, 5]),
        family_name=st.sampled_from(["im2", "kn2", "direct"]),
    )
    def test_gemm_families_match_reference_property(self, library, c, m, size, k, family_name):
        """Property test: GEMM-based families agree with the reference on random shapes."""
        padding = k // 2
        scenario = ConvScenario(c=c, h=size, w=size, stride=1, k=k, m=m, padding=padding)
        family = PrimitiveFamily(family_name)
        primitive = library.applicable(scenario, family=family)[0]
        output, reference = _run_primitive(primitive, scenario, seed=c * 100 + m)
        np.testing.assert_allclose(output.to_chw(), reference, rtol=1e-3, atol=1e-3)

    def test_convolution_is_linear_in_input(self, library, small_scenario):
        """conv(a*x + b*y) == a*conv(x) + b*conv(y) for a linear primitive."""
        primitive = library.get("im2col_vf8")
        rng = np.random.default_rng(5)
        kernel = rng.standard_normal(small_scenario.kernel_shape).astype(np.float32)
        x = rng.standard_normal(small_scenario.input_shape).astype(np.float32)
        y = rng.standard_normal(small_scenario.input_shape).astype(np.float32)

        def conv(array):
            return primitive.execute(
                LayoutTensor.from_chw(array, primitive.input_layout), kernel, small_scenario
            ).to_chw()

        combined = conv(2.0 * x - 3.0 * y)
        np.testing.assert_allclose(combined, 2.0 * conv(x) - 3.0 * conv(y), rtol=1e-3, atol=1e-3)

    def test_zero_kernel_gives_zero_output(self, library, small_scenario):
        primitive = library.get("winograd_2d_m2_r3_vf1")
        rng = np.random.default_rng(2)
        x = rng.standard_normal(small_scenario.input_shape).astype(np.float32)
        kernel = np.zeros(small_scenario.kernel_shape, dtype=np.float32)
        out = primitive.execute(
            LayoutTensor.from_chw(x, primitive.input_layout), kernel, small_scenario
        ).to_chw()
        np.testing.assert_allclose(out, 0.0, atol=1e-6)


class TestPatchMatrices:
    def test_im2col_matrix_shape_and_content(self):
        scenario = ConvScenario(c=2, h=5, w=5, stride=1, k=3, m=1)
        x = np.arange(2 * 5 * 5, dtype=np.float64).reshape(2, 5, 5)
        matrix = im2col_matrix(x, scenario)
        assert matrix.shape == (2 * 9, 9)
        # First column is the top-left 3x3 window of both channels flattened
        # in (C, kh, kw) order.
        expected_first = np.concatenate([x[0, :3, :3].reshape(-1), x[1, :3, :3].reshape(-1)])
        np.testing.assert_allclose(matrix[:, 0], expected_first)

    def test_im2row_matrix_shape(self):
        scenario = ConvScenario(c=3, h=6, w=6, stride=2, k=3, m=1)
        x = np.random.default_rng(0).standard_normal((3, 6, 6))
        matrix = im2row_matrix(x, scenario)
        assert matrix.shape == (scenario.out_h * scenario.out_w, 9 * 3)

    def test_workspace_matches_patch_matrix_size(self, library):
        scenario = ConvScenario(c=4, h=10, w=10, stride=1, k=3, m=8, padding=1)
        primitive = library.get("im2col_vf8")
        assert primitive.workspace_elements(scenario) == pytest.approx(
            scenario.out_h * scenario.out_w * scenario.k**2 * scenario.c
        )
