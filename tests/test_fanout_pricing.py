"""Fan-out-aware conversion pricing: solver objective == executor cost.

The executor deduplicates conversion chains by (producer, target layout) —
a producer fanning out into several consumers demanding the same layout
converts once and reuses the cached tensor — and the fan-out-aware PBQP
encoding prices exactly that objective through per-producer auxiliary
conversion nodes.  These tests pin the whole pipeline to the grouped
formula: PBQP equals the exhaustive network-level reference, the plan's
predicted conversion accounting equals the executed trace, the RV140
double-pricing tripwire reports zero on fresh plans (ResNet-18's ``pool1``
fan-out, the motivating case, pinned on both paper platforms), and legacy
double-priced documents are transparently re-attributed on load.
"""

from __future__ import annotations

import copy
import json

import numpy as np
import pytest

from repro.analysis.plan_verifier import verify_document
from repro.api import Session
from repro.core.legalize import finalize_plan
from repro.core.selector import PBQPSelector, SelectionContext
from repro.cost.platform import PLATFORMS
from repro.cost.serialize import (
    LEGACY_PLAN_FORMATS,
    PLAN_FORMAT,
    plan_from_dict,
    plan_to_dict,
    upgrade_plan_document,
)
from repro.graph.layer import ConcatLayer, ConvLayer, InputLayer
from repro.graph.network import Network
from repro.layouts.dt_graph import DTGraph
from repro.layouts.transforms import default_transform_library
from repro.pbqp.bruteforce import brute_force_network_select
from repro.primitives.registry import PrimitiveLibrary, default_primitive_library
from repro.runtime import NetworkExecutor, WeightStore

#: A small mixed-layout library keeping the brute-force space enumerable:
#: one CHW, one CHWc4, one CHWc8, one HWC and one HCW primitive.
SMALL_LIBRARY_NAMES = [
    "sum2d",
    "direct_mchw_vf4",
    "direct_mchw_vf8",
    "im2row_vf1",
    "winograd_1d_m2_r3_vf1",
]


@pytest.fixture(scope="module")
def small_library():
    full = default_primitive_library()
    return PrimitiveLibrary([full.get(name) for name in SMALL_LIBRARY_NAMES])


@pytest.fixture(scope="module")
def small_dt(small_library):
    return DTGraph(small_library.layouts_used(), default_transform_library())


@pytest.fixture(scope="module")
def session():
    return Session()


def fanout_network(consumers: int, mixed: bool) -> Network:
    """One producer convolution fanning out into 2-4 consumer convolutions.

    ``mixed`` alternates consumer kernels between 3x3 and 1x1, so different
    consumers may end up demanding different input layouts (mixed targets).
    """
    net = Network(f"fanout-{consumers}-{'mixed' if mixed else 'same'}")
    net.add_layer(InputLayer("data", shape=(4, 16, 16)))
    net.add_layer(
        ConvLayer("producer", out_channels=8, kernel=3, padding=1), ["data"]
    )
    names = []
    for index in range(consumers):
        kernel = 1 if mixed and index % 2 else 3
        name = f"consumer{index}"
        net.add_layer(
            ConvLayer(name, out_channels=8, kernel=kernel, padding=kernel // 2),
            ["producer"],
        )
        names.append(name)
    net.add_layer(ConcatLayer("join"), names)
    net.validate()
    return net


def chain_groups(plan):
    """The (producer, target layout) dedup groups of a plan's conversions."""
    groups = {}
    for edge in plan.conversions():
        groups.setdefault((edge.producer, edge.target_layout.name), []).append(edge)
    return groups


# ---------------------------------------------------------------------------
# PBQP == exhaustive reference under the grouped objective


class TestPBQPMatchesBruteforce:
    @pytest.mark.parametrize(
        "consumers,mixed",
        [(2, False), (2, True), (3, False), (3, True), (4, True)],
    )
    def test_solver_equals_grouped_reference(
        self, consumers, mixed, small_library, small_dt, intel
    ):
        context = SelectionContext.create(
            fanout_network(consumers, mixed),
            platform=intel,
            library=small_library,
            dt_graph=small_dt,
        )
        conv, wildcard, reference_cost = brute_force_network_select(context)
        plan = PBQPSelector().select(context)
        assert plan.metadata["pbqp_optimal"] is True
        assert plan.metadata["pbqp_cost"] == pytest.approx(reference_cost, rel=1e-9)
        # The solver's objective IS the plan's (deduplicated) total cost.
        assert plan.total_cost == pytest.approx(plan.metadata["pbqp_cost"], rel=1e-9)
        # Legalizing the reference's choices prices identically.
        reference_plan = finalize_plan(context, "bruteforce", conv, wildcard)
        assert reference_plan.total_cost == pytest.approx(reference_cost, rel=1e-9)
        assert plan.total_cost <= reference_plan.total_cost + 1e-12

    def test_shared_chain_priced_once_in_plan(self, small_library, small_dt, intel):
        """Force a fan-out conversion and check exactly one edge carries it."""
        context = SelectionContext.create(
            fanout_network(2, mixed=False),
            platform=intel,
            library=small_library,
            dt_graph=small_dt,
        )
        layouts = {layout.name: layout for layout in context.dt_graph.layouts}
        # Producer emits CHW; both consumers demand CHWc8: one shared chain.
        plan = finalize_plan(
            context,
            "forced",
            {
                "producer": "sum2d",
                "consumer0": "direct_mchw_vf8",
                "consumer1": "direct_mchw_vf8",
            },
            {
                "data": layouts["CHW"],
                "join": layouts["CHWc8"],
            },
        )
        groups = chain_groups(plan)
        shared = groups[("producer", "CHWc8")]
        assert len(shared) == 2
        carried = [edge for edge in shared if edge.cost > 0]
        zeroed = [edge for edge in shared if edge.cost == 0.0]
        assert len(carried) == 1 and len(zeroed) == 1
        # Both edges keep their chain so the executor finds the cached tensor.
        assert all(edge.chain is not None and len(edge.chain) for edge in shared)
        shape = context.tables.shapes["producer"]
        assert carried[0].cost == pytest.approx(
            context.tables.dt_costs[shape][("CHW", "CHWc8")], rel=1e-12
        )


# ---------------------------------------------------------------------------
# predicted conversion accounting == executed trace


class TestPlanMatchesTrace:
    @pytest.mark.parametrize("consumers,mixed", [(2, False), (3, True), (4, True)])
    def test_trace_executes_one_chain_per_group(
        self, consumers, mixed, small_library, small_dt, intel
    ):
        network = fanout_network(consumers, mixed)
        context = SelectionContext.create(
            network, platform=intel, library=small_library, dt_graph=small_dt
        )
        plan = PBQPSelector().select(context)
        weights = WeightStore(network, seed=5)
        x = np.random.default_rng(3).standard_normal((4, 16, 16)).astype(np.float32)
        executor = NetworkExecutor(network, plan, small_library, weights)
        _, trace = executor.run_traced(x)
        groups = chain_groups(plan)
        assert trace.conversions_executed == len(groups)
        # Exactly one member of every group carries the chain cost.
        for members in groups.values():
            assert sum(1 for edge in members if edge.cost > 0) <= 1
        # The plan's conversion total is the grouped total, nothing more.
        assert plan.dt_cost == pytest.approx(
            sum(max(edge.cost for edge in members) for members in groups.values()),
            rel=1e-12,
        )

    def test_execution_report_accounts_per_group(self, session):
        """API layer: ExecutionReport attributes a deduped chain to one consumer."""
        plan = session.plan(fanout_network(3, mixed=False), "intel-haswell")
        report = plan.execute()
        groups = chain_groups(plan.network_plan)
        assert report.conversions_planned == len(groups)
        assert report.conversions_executed == report.conversions_planned
        duplicates = [entry for entry in report.conversions if entry.deduplicated]
        assert len(duplicates) == len(plan.network_plan.conversions()) - len(groups)
        assert all(entry.predicted_ms == 0.0 for entry in duplicates)
        assert all(entry.measured_ms == 0.0 for entry in duplicates)

    def test_fresh_fanout_plans_verify_without_rv140(
        self, small_library, small_dt, intel
    ):
        for consumers, mixed in [(2, False), (3, True)]:
            context = SelectionContext.create(
                fanout_network(consumers, mixed),
                platform=intel,
                library=small_library,
                dt_graph=small_dt,
            )
            doc = plan_to_dict(PBQPSelector().select(context))
            report = verify_document(doc)
            fanout = [f for f in report.findings if f.rule == "RV140"]
            assert not fanout, [f.message for f in fanout]


# ---------------------------------------------------------------------------
# the motivating regression, pinned on both paper platforms


class TestResNet18Pool1Regression:
    @pytest.mark.parametrize("platform", ["intel-haswell", "arm-cortex-a57"])
    def test_pool1_gap_is_zero(self, session, platform):
        plan = session.plan("resnet18", platform).network_plan
        doc = plan_to_dict(plan)
        report = verify_document(doc, source=f"resnet18/{platform}")
        assert report.ok
        assert not [f for f in report.findings if f.rule == "RV140"], report.to_json()
        # pool1 fans out into the first residual block; its shared chain must
        # be carried by exactly one edge.
        groups = chain_groups(plan)
        pool1_groups = {
            key: members for key, members in groups.items() if key[0] == "pool1"
        }
        assert pool1_groups, "resnet18 pool1 must still require a conversion"
        for members in pool1_groups.values():
            assert len(members) >= 2
            assert sum(1 for edge in members if edge.cost > 0) == 1

    def test_solver_objective_equals_plan_total(self, session):
        for platform in ("intel-haswell", "arm-cortex-a57"):
            plan = session.plan("resnet18", platform).network_plan
            assert plan.metadata["pbqp_optimal"] is True
            assert plan.total_cost == pytest.approx(
                plan.metadata["pbqp_cost"], rel=1e-9
            )


# ---------------------------------------------------------------------------
# legacy double-priced documents


def make_legacy_document(doc: dict) -> dict:
    """Rebuild the pre-fix serialization: every group member fully priced."""
    legacy = copy.deepcopy(doc)
    legacy["format"] = LEGACY_PLAN_FORMATS[0]
    carriers = {}
    for edge in legacy["edges"]:
        if edge["hops"]:
            key = (edge["producer"], edge["target_layout"])
            carriers[key] = max(carriers.get(key, 0.0), edge["cost"])
    extra = 0.0
    for edge in legacy["edges"]:
        if edge["hops"] and edge["cost"] == 0.0:
            key = (edge["producer"], edge["target_layout"])
            edge["cost"] = carriers[key]
            extra += carriers[key]
    legacy["total_ms"] = doc["total_ms"] + 1e3 * extra
    legacy["cost_vector"] = dict(doc["cost_vector"])
    legacy["cost_vector"]["time_ms"] = legacy["total_ms"]
    return legacy


class TestLegacyUpgrade:
    @pytest.fixture()
    def fresh_doc(self, small_library, small_dt, intel):
        """A plan with a genuinely shared chain: both consumers demand CHWc8."""
        context = SelectionContext.create(
            fanout_network(2, mixed=False),
            platform=intel,
            library=small_library,
            dt_graph=small_dt,
        )
        layouts = {layout.name: layout for layout in context.dt_graph.layouts}
        plan = finalize_plan(
            context,
            "forced",
            {
                "producer": "sum2d",
                "consumer0": "direct_mchw_vf8",
                "consumer1": "direct_mchw_vf8",
            },
            {"data": layouts["CHW"], "join": layouts["CHWc8"]},
        )
        return plan_to_dict(plan)

    def test_upgrade_reattributes_and_recomputes(self, fresh_doc):
        legacy = make_legacy_document(fresh_doc)
        assert legacy["total_ms"] > fresh_doc["total_ms"]
        upgraded = upgrade_plan_document(legacy)
        assert upgraded["format"] == PLAN_FORMAT
        assert upgraded["total_ms"] == pytest.approx(fresh_doc["total_ms"], rel=1e-9)
        assert upgraded["cost_vector"]["time_ms"] == pytest.approx(
            fresh_doc["cost_vector"]["time_ms"], rel=1e-9
        )
        for upgraded_edge, fresh_edge in zip(upgraded["edges"], fresh_doc["edges"]):
            assert upgraded_edge["cost"] == pytest.approx(
                fresh_edge["cost"], abs=1e-15
            )

    def test_upgrade_passes_current_documents_through(self, fresh_doc):
        assert upgrade_plan_document(fresh_doc) is fresh_doc

    def test_upgrade_refuses_unknown_formats(self):
        with pytest.raises(ValueError, match="repro/plan"):
            upgrade_plan_document({"format": "repro/plan/v0"})

    def test_plan_from_dict_transparently_upgrades(self, session, fresh_doc):
        legacy = make_legacy_document(fresh_doc)
        plan = plan_from_dict(legacy, session.dt_graph)
        reference = plan_from_dict(fresh_doc, session.dt_graph)
        assert plan.total_cost == pytest.approx(reference.total_cost, rel=1e-9)

    def test_plan_from_file_upgrades_stale_documents(self, session, fresh_doc, tmp_path):
        legacy = make_legacy_document(fresh_doc)
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps(legacy, sort_keys=True))
        network = fanout_network(2, mixed=False)
        plan = session.plan_from_file(path, network=network)
        assert plan.network_plan.total_cost == pytest.approx(
            1e-3 * fresh_doc["total_ms"], rel=1e-9
        )

    def test_verifier_names_the_stale_format(self, session, fresh_doc):
        """Without the upgrade path, a stale document is refused clearly."""
        legacy = make_legacy_document(fresh_doc)
        report = verify_document(legacy)
        assert not report.ok
        stale = [f for f in report.findings if f.rule == "RV100"]
        assert stale, report.to_json()
        assert "stale plan format" in stale[0].message
        assert "upgrade_plan_document" in stale[0].message
