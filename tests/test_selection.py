"""Tests for the PBQP selector, the baselines and the framework emulations."""

import math

import pytest

from repro.core.baselines import (
    family_greedy_plan,
    greedy_ignore_dt_plan,
    local_optimal_plan,
    sum2d_plan,
)
from repro.core.frameworks import armcl_like_plan, caffe_like_plan, mkldnn_like_plan
from repro.core.legalize import finalize_plan, fixed_layouts, follow_producer_layouts
from repro.core.selector import PBQPSelector, SelectionContext, select_primitives
from repro.cost.analytical import AnalyticalCostModel
from repro.layouts.layout import CHW
from repro.primitives.base import PrimitiveFamily


@pytest.fixture(scope="module")
def intel_context(tiny_network_session, library, dt_graph, intel):
    return SelectionContext.create(
        tiny_network_session, platform=intel, library=library, dt_graph=dt_graph, threads=1
    )


@pytest.fixture(scope="module")
def arm_context(tiny_network_session, library, dt_graph, arm):
    return SelectionContext.create(
        tiny_network_session, platform=arm, library=library, dt_graph=dt_graph, threads=1
    )


class TestSelectionContext:
    def test_requires_platform_or_cost_model(self, tiny_network):
        with pytest.raises(ValueError):
            SelectionContext.create(tiny_network)

    def test_defaults_built(self, tiny_network, intel):
        context = SelectionContext.create(tiny_network, platform=intel)
        assert len(context.library) > 70
        assert context.tables.layers()
        assert context.platform_vector_width == 8

    def test_explicit_cost_model_wins(self, tiny_network, intel, arm):
        context = SelectionContext.create(
            tiny_network, platform=arm, cost_model=AnalyticalCostModel(intel)
        )
        assert context.cost_model.platform is intel

    def test_single_thread_tables_cached(self, tiny_network, intel, library, dt_graph):
        context = SelectionContext.create(
            tiny_network, platform=intel, library=library, dt_graph=dt_graph, threads=4
        )
        first = context.tables_single_thread
        assert first is context.tables_single_thread
        assert first is not context.tables


class TestPBQPEncoding:
    def test_one_node_per_layer_plus_one_aux_per_fanout_producer(self, intel_context):
        graph, id_to_layer = PBQPSelector().build_pbqp(intel_context)
        network = intel_context.network
        fanout_producers = [
            layer
            for layer in network.topological_order()
            if len(network.consumers_of(layer.name)) >= 2
        ]
        # tiny_network: pool1 fans out into the three inception-style branches.
        assert len(fanout_producers) == 1
        # One node per layer plus one conversion node per fan-out producer;
        # each fan-out producer trades its k direct edges for 1 + k aux edges.
        assert graph.num_nodes == len(network) + len(fanout_producers)
        assert graph.num_edges == len(network.edges()) + len(fanout_producers)
        assert set(id_to_layer.values()) == set(network.layer_names())

    def test_conv_nodes_have_primitive_alternatives(self, intel_context):
        graph, id_to_layer = PBQPSelector().build_pbqp(intel_context)
        layer_to_id = {v: k for k, v in id_to_layer.items()}
        conv1 = graph.node(layer_to_id["conv1"])
        assert conv1.degree_of_freedom == len(intel_context.tables.node_costs["conv1"])
        assert all(cost > 0 for cost in conv1.costs)

    def test_wildcard_nodes_are_zero_cost_layout_choices(self, intel_context):
        graph, id_to_layer = PBQPSelector().build_pbqp(intel_context)
        layer_to_id = {v: k for k, v in id_to_layer.items()}
        relu = graph.node(layer_to_id["relu1"])
        assert relu.degree_of_freedom == len(intel_context.dt_graph.layouts)
        assert all(cost == 0 for cost in relu.costs)
        data = graph.node(layer_to_id["data"])
        assert data.degree_of_freedom == 1
        assert data.labels == ("CHW",)

    def test_edge_matrices_are_dt_costs(self, intel_context):
        graph, id_to_layer = PBQPSelector().build_pbqp(intel_context)
        layer_to_id = {v: k for k, v in id_to_layer.items()}
        matrix = graph.edge_matrix(layer_to_id["data"], layer_to_id["conv1"])
        # Row 0 is the CHW input; any primitive consuming CHW has zero cost.
        assert matrix.min() == 0.0
        assert matrix.max() > 0.0


class TestPBQPSelection:
    def test_plan_covers_every_layer_and_is_legal(self, intel_context):
        plan = PBQPSelector().select(intel_context)
        network = intel_context.network
        assert set(plan.layer_decisions) == set(network.layer_names())
        assert len(plan.edge_decisions) == len(network.edges())
        for edge in plan.edge_decisions:
            assert math.isfinite(edge.cost)
            # After legalization the chain really connects the two layouts.
            if edge.needs_conversion:
                assert edge.chain.source == edge.source_layout
                assert edge.chain.target == edge.target_layout

    def test_metadata_reports_optimality_and_size(self, intel_context):
        plan = PBQPSelector().select(intel_context)
        network = intel_context.network
        fanout_producers = sum(
            1
            for layer in network.topological_order()
            if len(network.consumers_of(layer.name)) >= 2
        )
        assert plan.metadata["pbqp_optimal"] is True
        assert plan.metadata["pbqp_nodes"] == len(network) + fanout_producers
        assert plan.metadata["solver_seconds"] >= 0

    def test_pbqp_beats_or_matches_every_baseline(self, intel_context):
        """Optimality: PBQP is never worse than any other strategy under the same costs."""
        pbqp = PBQPSelector().select(intel_context)
        others = [
            sum2d_plan(intel_context),
            local_optimal_plan(intel_context),
            greedy_ignore_dt_plan(intel_context),
        ]
        others.extend(
            family_greedy_plan(intel_context, family)
            for family in (
                PrimitiveFamily.DIRECT,
                PrimitiveFamily.IM2,
                PrimitiveFamily.KN2,
                PrimitiveFamily.WINOGRAD,
                PrimitiveFamily.FFT,
            )
        )
        for other in others:
            assert pbqp.total_cost <= other.total_cost + 1e-12, other.strategy

    def test_pbqp_cost_matches_plan_cost(self, intel_context):
        plan = PBQPSelector().select(intel_context)
        assert plan.total_cost == pytest.approx(plan.metadata["pbqp_cost"], rel=1e-9)

    def test_select_primitives_convenience(self, tiny_network, intel):
        plan = select_primitives(tiny_network, platform=intel)
        assert plan.strategy == "pbqp"
        assert plan.total_cost > 0

    def test_platform_specific_vector_factor(self, intel_context, arm_context):
        intel_plan = PBQPSelector().select(intel_context)
        arm_plan = PBQPSelector().select(arm_context)
        intel_names = " ".join(intel_plan.conv_selections().values())
        arm_names = " ".join(arm_plan.conv_selections().values())
        assert "vf8" in intel_names and "vf8" not in arm_names
        assert "vf4" in arm_names


class TestBaselines:
    def test_sum2d_plan_uses_sum2d_everywhere_with_no_conversions(self, intel_context):
        plan = sum2d_plan(intel_context)
        assert set(plan.conv_selections().values()) == {"sum2d"}
        assert plan.dt_cost == 0.0
        assert not plan.conversions()

    def test_local_optimal_uses_only_canonical_layouts(self, intel_context):
        plan = local_optimal_plan(intel_context)
        library = intel_context.library
        for primitive_name in plan.conv_selections().values():
            primitive = library.get(primitive_name)
            assert primitive.input_layout == CHW and primitive.output_layout == CHW
        assert plan.dt_cost == 0.0

    def test_local_optimal_not_slower_than_sum2d(self, intel_context):
        assert local_optimal_plan(intel_context).total_cost <= sum2d_plan(intel_context).total_cost

    def test_family_greedy_only_uses_family_or_sum2d(self, intel_context):
        plan = family_greedy_plan(intel_context, PrimitiveFamily.WINOGRAD)
        library = intel_context.library
        for name in plan.conv_selections().values():
            primitive = library.get(name)
            assert primitive.family in (PrimitiveFamily.WINOGRAD, PrimitiveFamily.SUM2D)

    def test_family_greedy_keeps_sum2d_where_family_unsupported(self, intel_context):
        plan = family_greedy_plan(intel_context, PrimitiveFamily.KN2)
        # conv1 is strided, which the kn2 family cannot implement.
        assert plan.conv_selections()["conv1"] == "sum2d"

    def test_greedy_ignore_dt_picks_per_layer_minimum(self, intel_context):
        plan = greedy_ignore_dt_plan(intel_context)
        tables = intel_context.tables
        for layer, primitive in plan.conv_selections().items():
            assert primitive == tables.cheapest_primitive(layer)[0]

    def test_greedy_conv_cost_lower_but_total_not_better_than_pbqp(self, intel_context):
        greedy = greedy_ignore_dt_plan(intel_context)
        pbqp = PBQPSelector().select(intel_context)
        assert greedy.conv_cost <= pbqp.conv_cost + 1e-12
        assert pbqp.total_cost <= greedy.total_cost + 1e-12


class TestLegalization:
    def test_missing_conv_choice_rejected(self, intel_context):
        with pytest.raises(ValueError):
            finalize_plan(intel_context, "broken", {}, fixed_layouts(intel_context, CHW))

    def test_missing_wildcard_layout_rejected(self, intel_context):
        conv_primitives = {layer.name: "sum2d" for layer in intel_context.network.conv_layers()}
        with pytest.raises(ValueError):
            finalize_plan(intel_context, "broken", conv_primitives, {})

    def test_follow_producer_assigns_all_wildcards(self, intel_context):
        conv_primitives = {layer.name: "im2row_vf8" for layer in intel_context.network.conv_layers()}
        layouts = follow_producer_layouts(intel_context, conv_primitives)
        wildcard_layers = [
            layer.name
            for layer in intel_context.network.topological_order()
            if not layer.is_convolution
        ]
        assert set(layouts) == set(wildcard_layers)
        # The relu after an HWC-producing conv operates in HWC.
        assert layouts["relu1"].name == "HWC"

    def test_plan_summary_and_repr(self, intel_context):
        plan = sum2d_plan(intel_context)
        text = plan.summary()
        assert "sum2d" in text and intel_context.network.name in text
        assert "NetworkPlan" in repr(plan)

    def test_speedup_over(self, intel_context):
        base = sum2d_plan(intel_context)
        pbqp = PBQPSelector().select(intel_context)
        assert pbqp.speedup_over(base) > 1.0
        assert base.speedup_over(base) == pytest.approx(1.0)


class TestFrameworkEmulations:
    def test_caffe_plan_uses_im2col_in_canonical_layout(self, intel_context):
        plan = caffe_like_plan(intel_context)
        assert plan.strategy == "caffe"
        for name in plan.conv_selections().values():
            assert name.startswith("im2col")
        assert plan.dt_cost == 0.0

    def test_caffe_slower_than_local_optimal(self, intel_context):
        assert caffe_like_plan(intel_context).total_cost > local_optimal_plan(
            intel_context
        ).total_cost

    def test_mkldnn_never_beats_pbqp(self, intel_context):
        pbqp = PBQPSelector().select(intel_context)
        mkldnn = mkldnn_like_plan(intel_context)
        assert pbqp.total_cost <= mkldnn.total_cost

    def test_armcl_plan_on_arm_context(self, arm_context):
        plan = armcl_like_plan(arm_context)
        assert plan.strategy == "armcl"
        assert plan.total_cost > 0

    def test_framework_mt_scaling_is_poorer_than_pbqp(
        self, tiny_network_session, library, dt_graph, intel
    ):
        single = SelectionContext.create(
            tiny_network_session, platform=intel, library=library, dt_graph=dt_graph, threads=1
        )
        multi = SelectionContext.create(
            tiny_network_session, platform=intel, library=library, dt_graph=dt_graph, threads=4
        )
        pbqp_scaling = (
            PBQPSelector().select(single).total_cost / PBQPSelector().select(multi).total_cost
        )
        mkldnn_scaling = (
            mkldnn_like_plan(single).total_cost / mkldnn_like_plan(multi).total_cost
        )
        assert pbqp_scaling > mkldnn_scaling
