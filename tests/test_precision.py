"""Acceptance of the precision axis: dtype threaded scenario → frontier.

The executable claims: every primitive's quantized compute path matches the
fp32 reference within its precision's declared tolerance; capability gating
holds (FFT declines int8, Winograd carries the int8 accuracy penalty); the
analytical model prices lane packing and conversion boundaries; the store
never aliases precisions on disk and evicts foreign-format entries; and the
multi-precision frontier is deterministic with an int8 min-time point and
the fp32 max-accuracy point.
"""

import json

import numpy as np
import pytest

from repro.api import Session
from repro.cost.analytical import (
    DTYPE_ACCURACY_LOSS,
    WINOGRAD_INT8_PENALTY,
    AnalyticalCostModel,
)
from repro.cost.platform import PLATFORMS
from repro.cost.store import CostStore
from repro.graph.scenario import DTYPES, ConvScenario
from repro.layouts.tensor import (
    LayoutTensor,
    dequantize,
    fp16_round_trip,
    quantize_symmetric,
)
from repro.primitives.base import PrimitiveFamily
from repro.primitives.reference import reference_convolution

#: Declared per-precision tolerance: max |out - ref| <= tol * max |ref|.
TOLERANCES = {"fp32": 1e-5, "fp16": 0.01, "int8": 0.1}

SCENARIOS = {
    "small": ConvScenario(c=4, h=12, w=12, stride=1, k=3, m=6, padding=1),
    "pointwise": ConvScenario(c=8, h=10, w=10, stride=1, k=1, m=8),
    "strided": ConvScenario(c=3, h=13, w=13, stride=2, k=5, m=4, padding=2),
    "depthwise": ConvScenario(c=6, h=12, w=12, stride=1, k=3, m=6, padding=1, groups=6),
}


def within_tolerance(out: np.ndarray, ref: np.ndarray, tol: float) -> bool:
    return float(np.max(np.abs(out - ref))) <= tol * float(np.max(np.abs(ref)))


class TestScenarioAxis:
    def test_default_is_fp32(self, small_scenario):
        assert small_scenario.dtype == "fp32"
        assert small_scenario.itemsize == 4
        assert not small_scenario.is_quantized

    def test_with_dtype(self, small_scenario):
        for dtype, itemsize in (("fp16", 2), ("int8", 1)):
            narrow = small_scenario.with_dtype(dtype)
            assert narrow.dtype == dtype
            assert narrow.itemsize == itemsize
            assert narrow.is_quantized
            assert dtype in narrow.describe()
        assert small_scenario.with_dtype("fp32") == small_scenario

    def test_unknown_dtype_rejected(self, small_scenario):
        with pytest.raises(ValueError, match="dtype"):
            small_scenario.with_dtype("bf16")


class TestQuantizationHelpers:
    def test_symmetric_int8_round_trip(self, rng):
        x = rng.standard_normal((4, 9, 9)).astype(np.float32)
        q, scale = quantize_symmetric(x)
        assert q.dtype == np.int8
        assert int(np.max(np.abs(q.astype(np.int32)))) <= 127
        assert within_tolerance(dequantize(q, scale), x, TOLERANCES["int8"])

    def test_quantize_zero_tensor(self):
        q, scale = quantize_symmetric(np.zeros((2, 3, 3), dtype=np.float32))
        assert np.all(q == 0) and scale > 0

    def test_fp16_round_trip(self, rng):
        x = rng.standard_normal((4, 9, 9)).astype(np.float32)
        assert within_tolerance(fp16_round_trip(x), x, TOLERANCES["fp16"])


class TestPrimitiveDtypeExecution:
    @pytest.mark.parametrize("dtype", DTYPES)
    @pytest.mark.parametrize("scenario_name", sorted(SCENARIOS))
    def test_every_applicable_primitive_matches_fp32_reference(
        self, library, scenario_name, dtype
    ):
        """Claim (c): quantized outputs stay within the declared tolerance."""
        scenario = SCENARIOS[scenario_name].with_dtype(dtype)
        rng = np.random.default_rng(0)
        x = rng.standard_normal(scenario.input_shape).astype(np.float32)
        kernel = rng.standard_normal(scenario.kernel_shape).astype(np.float32)
        reference = reference_convolution(x, kernel, scenario.with_dtype("fp32"))
        checked = 0
        for primitive in library:
            if not primitive.supports(scenario):
                continue
            tensor = LayoutTensor.from_chw(x, primitive.input_layout)
            out = primitive.execute(tensor, kernel, scenario)
            assert within_tolerance(
                out.to_logical(), reference, TOLERANCES[dtype]
            ), f"{primitive.name} at {dtype} on {scenario_name}"
            checked += 1
        assert checked > 0

    def test_fft_declines_int8(self, library):
        ffts = list(library.by_family(PrimitiveFamily.FFT))
        assert ffts
        for primitive in ffts:
            assert primitive.supports_dtype("fp16")
            assert not primitive.supports_dtype("int8")
            assert not primitive.supports(SCENARIOS["small"].with_dtype("int8"))

    def test_every_other_family_keeps_an_int8_path(self, library):
        int8 = SCENARIOS["small"].with_dtype("int8")
        families_with_int8 = {
            primitive.family for primitive in library if primitive.supports(int8)
        }
        assert PrimitiveFamily.FFT not in families_with_int8
        assert {
            PrimitiveFamily.DIRECT,
            PrimitiveFamily.IM2,
            PrimitiveFamily.WINOGRAD,
        } <= families_with_int8


class TestPrecisionPricing:
    @pytest.fixture(scope="class")
    def vnni_model(self):
        return AnalyticalCostModel(PLATFORMS["avx512-server"])

    def test_lane_packing_rates(self, vnni_model):
        assert vnni_model._precision_rate("fp32") == 1.0
        assert vnni_model._precision_rate("int8") == 4.0
        gpu = AnalyticalCostModel(PLATFORMS["gpu-sim"])
        assert gpu._precision_rate("fp16") == 2.0
        arm = AnalyticalCostModel(PLATFORMS["arm-cortex-a57"])
        assert arm._precision_rate("int8") == 4.0
        haswell = AnalyticalCostModel(PLATFORMS["intel-haswell"])
        # No vnni/fp16-fast on Haswell: narrow types move less data but the
        # ALUs run at the fp32 rate.
        assert haswell._precision_rate("fp16") == 1.0
        assert haswell._precision_rate("int8") == 1.0

    def test_int8_undercuts_fp32_on_vnni(self, library, vnni_model):
        scenario = ConvScenario(c=64, h=28, w=28, stride=1, k=3, m=64, padding=1)
        primitive = library.get("im2col_bt_vf8")
        fp32 = vnni_model.primitive_cost(primitive, scenario)
        int8 = vnni_model.primitive_cost(primitive, scenario.with_dtype("int8"))
        assert int8 < fp32

    def test_accuracy_loss_model(self, library, vnni_model):
        gemm = library.get("im2col_bt_vf8")
        winograd = next(iter(library.by_family(PrimitiveFamily.WINOGRAD)))
        scenario = SCENARIOS["small"]
        assert vnni_model.primitive_accuracy_loss(gemm, scenario) == 0.0
        int8 = scenario.with_dtype("int8")
        assert vnni_model.primitive_accuracy_loss(gemm, int8) == DTYPE_ACCURACY_LOSS["int8"]
        assert vnni_model.primitive_accuracy_loss(winograd, int8) == pytest.approx(
            WINOGRAD_INT8_PENALTY * DTYPE_ACCURACY_LOSS["int8"]
        )

    def test_layout_transforms_scale_with_itemsize(self, vnni_model, dt_graph):
        transform = next(iter(t for t in dt_graph.transforms if t.source.name == "CHW"))
        shape = (32, 28, 28)
        fp32 = vnni_model.transform_cost(transform, shape)
        int8 = vnni_model.transform_cost(transform, shape, dtype="int8")
        assert int8 < fp32


class TestStoreNeverAliasesPrecisions:
    def test_three_dtypes_three_disk_entries(self, tmp_path):
        session = Session(cache_dir=str(tmp_path))
        for dtype in DTYPES:
            session.context_for("alexnet", "intel-haswell", dtype=dtype)
        store = CostStore(tmp_path)
        assert store.stats().entries == len(DTYPES)
        paths = sorted(str(path.name) for path in tmp_path.rglob("*.json"))
        assert len(paths) == len(set(paths)) == len(DTYPES)
        for dtype in DTYPES:
            assert any(dtype in name for name in paths), paths

    def test_tables_round_trip_their_dtype(self, tmp_path):
        first = Session(cache_dir=str(tmp_path))
        warm = first.context_for("alexnet", "intel-haswell", dtype="int8")
        second = Session(cache_dir=str(tmp_path))
        cold = second.context_for("alexnet", "intel-haswell", dtype="int8")
        assert cold.tables.dtype == "int8"
        assert warm.tables.node_costs == cold.tables.node_costs
        assert warm.tables.node_accuracy == cold.tables.node_accuracy

    def test_cache_evict_drops_foreign_format_entries(self, tmp_path, capsys):
        from repro.cli import main

        session = Session(cache_dir=str(tmp_path))
        session.context_for("alexnet", "intel-haswell")
        stale = tmp_path / "aaaaaaaa_old_1t_b1_0123456789abcdef.json"
        stale.write_text(
            json.dumps({"format": "repro/cost-store-entry/v4", "payload": {}})
        )
        assert main(["cache", "--cache-dir", str(tmp_path), "--evict"]) == 0
        assert not stale.exists()
        assert CostStore(tmp_path).stats().entries == 1


class TestPlannedExecutionAcrossPrecisions:
    @pytest.mark.parametrize("dtype", ["fp16", "int8"])
    def test_quantized_plan_matches_fp32_reference(self, tiny_network, dtype):
        session = Session()
        x = np.random.default_rng(5).standard_normal((3, 32, 32)).astype(np.float32)
        reference = session.plan(tiny_network, "avx512-server", strategy="sum2d")
        quantized = session.plan(tiny_network, "avx512-server", dtype=dtype)
        assert quantized.network_plan.dtype == dtype
        out_ref = reference.execute(input=x, seed=3).output
        out = quantized.execute(input=x, seed=3).output
        # The graph softmaxes into [0, 1]; compare pre-normalized magnitudes
        # via the declared relative-to-peak tolerance.
        assert within_tolerance(out, out_ref, TOLERANCES[dtype])


class TestFrontierSpansPrecisions:
    @pytest.fixture(scope="class")
    def frontier(self):
        return Session().plan_frontier("alexnet", "avx512-server")

    def test_min_time_is_int8_and_max_accuracy_is_fp32(self, frontier):
        fastest = min(frontier.points, key=lambda p: p.vector.time_ms)
        assert fastest.plan.dtype == "int8"
        most_accurate = min(
            frontier.points, key=lambda p: (p.vector.accuracy_proxy, p.vector.time_ms)
        )
        assert most_accurate.plan.dtype == "fp32"
        assert most_accurate.vector.accuracy_proxy == 0.0

    def test_front_is_byte_identical_across_runs(self, frontier):
        again = Session().plan_frontier("alexnet", "avx512-server")
        assert json.dumps(frontier.to_dict(), sort_keys=True) == json.dumps(
            again.to_dict(), sort_keys=True
        )

    def test_restricting_dtypes_restricts_the_front(self):
        fp32_only = Session().plan_frontier("alexnet", "avx512-server", dtypes=("fp32",))
        assert {point.plan.dtype for point in fp32_only.points} == {"fp32"}
