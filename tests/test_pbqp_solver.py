"""Tests for the PBQP reductions, solver and brute-force oracle."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pbqp.bruteforce import brute_force_solve
from repro.pbqp.graph import PBQPGraph
from repro.pbqp.reductions import apply_r0, apply_r1, apply_r2, apply_rn
from repro.pbqp.solution import PBQPSolution
from repro.pbqp.solver import PBQPSolver


def random_graph(rng, num_nodes, edge_probability=0.5, max_alternatives=4):
    """Build a random PBQP instance."""
    graph = PBQPGraph()
    ids = []
    for index in range(num_nodes):
        size = int(rng.integers(1, max_alternatives + 1))
        ids.append(graph.add_node(rng.uniform(0, 10, size=size), name=f"n{index}"))
    for i in range(num_nodes):
        for j in range(i + 1, num_nodes):
            if rng.random() < edge_probability:
                rows = graph.node(ids[i]).degree_of_freedom
                cols = graph.node(ids[j]).degree_of_freedom
                graph.add_edge(ids[i], ids[j], rng.uniform(0, 10, size=(rows, cols)))
    return graph


class TestReductions:
    def test_r0_picks_minimum(self):
        graph = PBQPGraph()
        node = graph.add_node([5.0, 2.0, 7.0])
        record = apply_r0(graph, node)
        assert graph.num_nodes == 0
        assert record.back_propagate({}) == 1

    def test_r0_requires_isolated_node(self):
        graph = PBQPGraph()
        a = graph.add_node([1.0])
        b = graph.add_node([1.0])
        graph.add_edge(a, b, [[0.0]])
        with pytest.raises(ValueError):
            apply_r0(graph, a)

    def test_r1_folds_costs_into_neighbor(self):
        graph = PBQPGraph()
        leaf = graph.add_node([1.0, 4.0])
        hub = graph.add_node([0.0, 0.0])
        graph.add_edge(leaf, hub, [[0.0, 10.0], [10.0, 0.0]])
        record = apply_r1(graph, leaf)
        # For hub alternative 0 the best leaf choice is 0 (1 + 0); for hub
        # alternative 1 it is 1 (4 + 0).
        np.testing.assert_allclose(graph.node(hub).costs, [1.0, 4.0])
        assert record.back_propagate({hub: 0}) == 0
        assert record.back_propagate({hub: 1}) == 1

    def test_r2_creates_edge_between_neighbors(self):
        graph = PBQPGraph()
        middle = graph.add_node([0.0, 5.0])
        left = graph.add_node([0.0, 0.0])
        right = graph.add_node([0.0, 0.0])
        graph.add_edge(middle, left, [[0.0, 3.0], [1.0, 0.0]])
        graph.add_edge(middle, right, [[0.0, 2.0], [4.0, 0.0]])
        record = apply_r2(graph, middle)
        assert graph.has_edge(left, right)
        delta = graph.edge_matrix(left, right)
        # delta[jl, jr] = min_i(c[i] + Ml[i, jl] + Mr[i, jr])
        expected = np.array([[0.0, 2.0], [3.0, 5.0]])
        np.testing.assert_allclose(delta, expected)
        assert record.back_propagate({left: 0, right: 0}) == 0

    def test_rn_commits_and_folds(self):
        graph = PBQPGraph()
        center = graph.add_node([0.0, 100.0])
        spokes = [graph.add_node([0.0, 0.0]) for _ in range(3)]
        for spoke in spokes:
            graph.add_edge(center, spoke, [[0.0, 1.0], [2.0, 3.0]])
        record = apply_rn(graph, center)
        assert record.chosen == 0
        assert center not in graph.node_ids
        for spoke in spokes:
            np.testing.assert_allclose(graph.node(spoke).costs, [0.0, 1.0])


class TestSolverSmallInstances:
    def test_single_node(self):
        graph = PBQPGraph()
        graph.add_node([3.0, 1.0, 2.0])
        solution = PBQPSolver().solve(graph)
        assert solution.cost == pytest.approx(1.0)
        assert solution.optimal

    def test_figure2_node_only(self):
        graph = PBQPGraph()
        graph.add_node([8.0, 6.0, 10.0], labels=["A", "B", "C"])
        graph.add_node([17.0, 19.0, 14.0], labels=["A", "B", "C"])
        graph.add_node([20.0, 17.0, 22.0], labels=["A", "B", "C"])
        solution = PBQPSolver().solve(graph)
        assert solution.cost == pytest.approx(37.0)
        assert [graph.node(n).label_of(solution.assignment[n]) for n in graph.node_ids] == [
            "B",
            "C",
            "B",
        ]

    def test_edge_costs_change_optimum(self):
        """A cheap node choice can be overridden by expensive edge costs."""
        graph = PBQPGraph()
        a = graph.add_node([0.0, 1.0])
        b = graph.add_node([0.0, 1.0])
        graph.add_edge(a, b, [[10.0, 10.0], [10.0, 0.0]])
        solution = PBQPSolver().solve(graph)
        assert solution.assignment[a] == 1 and solution.assignment[b] == 1
        assert solution.cost == pytest.approx(2.0)

    def test_infinite_edges_avoided_when_possible(self):
        graph = PBQPGraph()
        a = graph.add_node([0.0, 5.0])
        b = graph.add_node([0.0, 5.0])
        graph.add_edge(a, b, [[math.inf, 0.0], [0.0, math.inf]])
        solution = PBQPSolver().solve(graph)
        assert math.isfinite(solution.cost)
        assert solution.cost == pytest.approx(5.0)

    def test_solution_verify(self):
        graph = PBQPGraph()
        a = graph.add_node([1.0, 2.0])
        b = graph.add_node([3.0, 4.0])
        graph.add_edge(a, b, [[0.0, 1.0], [1.0, 0.0]])
        solution = PBQPSolver().solve(graph)
        assert solution.verify(graph)
        wrong = PBQPSolution(assignment=dict(solution.assignment), cost=solution.cost + 5)
        assert not wrong.verify(graph)

    def test_named_selection(self):
        graph = PBQPGraph()
        graph.add_node([1.0, 0.0], name="layer", labels=["slow", "fast"])
        solution = PBQPSolver().solve(graph)
        assert solution.named_selection(graph) == {"layer": "fast"}

    def test_stats_populated(self):
        solver = PBQPSolver()
        graph = random_graph(np.random.default_rng(0), 8, edge_probability=0.4)
        solver.solve(graph)
        stats = solver.last_stats
        assert stats is not None
        assert stats.total_reductions() >= 1
        assert stats.solve_seconds >= 0.0

    def test_input_graph_not_mutated(self):
        graph = random_graph(np.random.default_rng(3), 6)
        nodes_before = graph.num_nodes
        edges_before = graph.num_edges
        PBQPSolver().solve(graph)
        assert graph.num_nodes == nodes_before
        assert graph.num_edges == edges_before

    def test_invalid_core_limit(self):
        with pytest.raises(ValueError):
            PBQPSolver(exact_core_limit=0)


class TestSolverAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_sparse_instances(self, seed):
        rng = np.random.default_rng(seed)
        graph = random_graph(rng, num_nodes=int(rng.integers(2, 8)), edge_probability=0.45)
        solution = PBQPSolver().solve(graph)
        oracle = brute_force_solve(graph)
        assert solution.cost == pytest.approx(oracle.cost, rel=1e-9)
        assert solution.verify(graph)

    @pytest.mark.parametrize("seed", range(8))
    def test_random_dense_instances_need_rn_or_bnb(self, seed):
        """Dense graphs have irreducible cores, exercising the exact core search."""
        rng = np.random.default_rng(100 + seed)
        graph = random_graph(rng, num_nodes=6, edge_probability=0.9, max_alternatives=3)
        solution = PBQPSolver().solve(graph)
        oracle = brute_force_solve(graph)
        assert solution.optimal
        assert solution.cost == pytest.approx(oracle.cost, rel=1e-9)

    def test_heuristic_fallback_still_feasible(self):
        """With the exact core disabled, the RN heuristic still returns a valid solution."""
        rng = np.random.default_rng(7)
        graph = random_graph(rng, num_nodes=7, edge_probability=0.9, max_alternatives=3)
        heuristic = PBQPSolver(exact_core_limit=1).solve(graph)
        oracle = brute_force_solve(graph)
        assert heuristic.cost >= oracle.cost - 1e-9
        assert heuristic.verify(graph)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_solver_matches_oracle_property(self, seed):
        rng = np.random.default_rng(seed)
        graph = random_graph(rng, num_nodes=int(rng.integers(1, 6)), edge_probability=0.5)
        solution = PBQPSolver().solve(graph)
        oracle = brute_force_solve(graph)
        assert solution.cost == pytest.approx(oracle.cost, rel=1e-9)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_chain_graphs_fully_reduce(self, seed):
        """Linear chains (like VGG) are solved exactly by R1/R2 alone."""
        rng = np.random.default_rng(seed)
        graph = PBQPGraph()
        previous = None
        for index in range(int(rng.integers(2, 10))):
            node = graph.add_node(rng.uniform(0, 5, size=3))
            if previous is not None:
                graph.add_edge(previous, node, rng.uniform(0, 5, size=(3, 3)))
            previous = node
        solver = PBQPSolver()
        solution = solver.solve(graph)
        oracle = brute_force_solve(graph)
        assert solution.cost == pytest.approx(oracle.cost, rel=1e-9)
        assert solver.last_stats.core_nodes == 0
        assert solver.last_stats.rn_count == 0


class TestBruteForce:
    def test_limit_enforced(self):
        graph = PBQPGraph()
        for _ in range(12):
            graph.add_node([1.0] * 8)
        with pytest.raises(ValueError):
            brute_force_solve(graph, limit=1000)

    def test_single_node(self):
        graph = PBQPGraph()
        graph.add_node([4.0, 2.0])
        assert brute_force_solve(graph).cost == pytest.approx(2.0)
