"""End-to-end acceptance of the residual/depthwise zoo extension.

The executable claims: selection runs end-to-end for the residual and
depthwise-separable models (API and CLI) — ResNet-18/50 and
MobileNet-v1/v2 — the PBQP-selected instantiation computes the same
function as the all-SUM2D reference, and PBQP is at least as fast as every
single-primitive-family baseline on all four networks.  Execution tests
use width-scaled builds (identical structure, every layer kind and both
depthwise stride cases included) to keep the reference execution cheap.
"""

import numpy as np
import pytest

from repro.api import Session, SelectionRequest
from repro.cli import main
from repro.models import (
    build_mobilenet_v1,
    build_mobilenet_v2,
    build_resnet18,
    build_resnet50,
)

FAMILY_STRATEGIES = ("direct", "im2", "kn2", "winograd", "fft")


@pytest.fixture(scope="module")
def session(library, dt_graph):
    return Session(library=library, dt_graph=dt_graph)


class TestExecutionMatchesReference:
    @pytest.mark.parametrize("strategy", ["pbqp", "local_optimal", "winograd"])
    def test_scaled_resnet18(self, session, strategy):
        network = build_resnet18(input_size=64, base_width=8)
        self._check(session, network, strategy)

    @pytest.mark.parametrize("strategy", ["pbqp", "local_optimal", "im2"])
    def test_scaled_mobilenet_v1(self, session, strategy):
        network = build_mobilenet_v1(input_size=64, width_multiplier=0.125)
        self._check(session, network, strategy)

    @pytest.mark.parametrize("strategy", ["pbqp", "local_optimal"])
    def test_scaled_resnet50(self, session, strategy):
        network = build_resnet50(input_size=64, base_width=8)
        self._check(session, network, strategy)

    @pytest.mark.parametrize("strategy", ["pbqp", "local_optimal"])
    def test_scaled_mobilenet_v2(self, session, strategy):
        network = build_mobilenet_v2(input_size=64, width_multiplier=0.125)
        self._check(session, network, strategy)

    @staticmethod
    def _check(session, network, strategy):
        x = np.random.default_rng(2).standard_normal((3, 64, 64)).astype(np.float32)
        reference = session.plan(network, "intel-haswell", strategy="sum2d")
        plan = session.plan(network, "intel-haswell", strategy=strategy)
        out_ref = reference.execute(input=x, seed=7).output
        out = plan.execute(input=x, seed=7).output
        np.testing.assert_allclose(out, out_ref, rtol=1e-3, atol=1e-4)


class TestPBQPDominates:
    @pytest.mark.parametrize(
        "model", ["resnet18", "resnet50", "mobilenet_v1", "mobilenet_v2"]
    )
    @pytest.mark.parametrize("platform", ["intel-haswell", "arm-cortex-a57"])
    def test_full_size_compare(self, session, model, platform):
        report = session.compare(model, platform)
        by_strategy = {result.strategy: result.total_ms for result in report}
        for strategy in FAMILY_STRATEGIES:
            assert by_strategy["pbqp"] <= by_strategy[strategy] + 1e-9, strategy
        assert by_strategy["pbqp"] <= by_strategy["sum2d"]
        assert report.speedup(
            next(r for r in report if r.strategy == "pbqp")
        ) > 1.0


class TestSelectMany:
    def test_batches_over_the_extended_zoo(self, session):
        requests = [
            SelectionRequest("resnet18", "intel-haswell"),
            SelectionRequest("mobilenet_v1", "intel-haswell"),
            SelectionRequest("resnet18", "arm-cortex-a57"),
            SelectionRequest("mobilenet_v1", "arm-cortex-a57"),
        ]
        results = session.select_many(requests)
        assert [r.model for r in results] == [
            "resnet18",
            "mobilenet_v1",
            "resnet18",
            "mobilenet_v1",
        ]
        assert all(r.strategy == "pbqp" and r.total_ms > 0 for r in results)


class TestCLINetworkFlag:
    @pytest.mark.parametrize(
        "model", ["resnet18", "resnet50", "mobilenet_v1", "mobilenet_v2"]
    )
    def test_select_with_network_flag(self, model, capsys):
        assert main(["select", "--network", model]) == 0
        out = capsys.readouterr().out
        assert f"Plan for '{model}' [pbqp]" in out
        assert "speedup over single-threaded SUM2D baseline" in out

    def test_compare_with_network_flag(self, capsys):
        assert main(["compare", "--network", "mobilenet_v1"]) == 0
        out = capsys.readouterr().out
        assert "pbqp" in out and "best strategy" in out

    def test_positional_and_flag_must_agree(self, capsys):
        with pytest.raises(SystemExit):
            main(["select", "resnet18", "--network", "mobilenet_v1"])

    def test_network_required(self, capsys):
        with pytest.raises(SystemExit):
            main(["select"])
