"""Tests for cost-table / plan serialization and the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.core.baselines import sum2d_plan
from repro.core.selector import PBQPSelector, SelectionContext
from repro.cost.serialize import (
    cost_tables_from_dict,
    load_cost_tables,
    load_plan,
    plan_from_dict,
    plan_to_dict,
    save_cost_tables,
    save_plan,
)
from repro.runtime import NetworkExecutor, WeightStore


@pytest.fixture(scope="module")
def context(tiny_network_session, library, dt_graph, intel):
    return SelectionContext.create(
        tiny_network_session, platform=intel, library=library, dt_graph=dt_graph, threads=1
    )


class TestCostTableSerialization:
    def test_roundtrip_preserves_node_costs(self, context, dt_graph, tmp_path):
        path = tmp_path / "tables.json"
        save_cost_tables(context.tables, path)
        loaded = load_cost_tables(path, dt_graph)
        assert loaded.network_name == context.tables.network_name
        assert loaded.threads == context.tables.threads
        assert set(loaded.node_costs) == set(context.tables.node_costs)
        for layer, costs in context.tables.node_costs.items():
            assert loaded.node_costs[layer] == pytest.approx(costs)
        assert set(loaded.scenarios) == set(context.tables.scenarios)
        for layer, scenario in context.tables.scenarios.items():
            assert loaded.scenarios[layer] == scenario

    def test_roundtrip_preserves_dt_paths(self, context, dt_graph, tmp_path):
        path = tmp_path / "tables.json"
        save_cost_tables(context.tables, path)
        loaded = load_cost_tables(path, dt_graph)
        for shape, pairs in context.tables.dt_costs.items():
            for key, cost in pairs.items():
                assert loaded.dt_costs[shape][key] == pytest.approx(cost)
                original_path = context.tables.dt_paths[shape][key]
                loaded_path = loaded.dt_paths[shape][key]
                assert loaded_path.hops == original_path.hops

    def test_document_is_json_and_versioned(self, context, tmp_path):
        path = tmp_path / "tables.json"
        save_cost_tables(context.tables, path)
        document = json.loads(path.read_text())
        assert document["format"] == "repro/cost-tables/v3"

    def test_wrong_format_rejected(self, dt_graph):
        with pytest.raises(ValueError):
            cost_tables_from_dict({"format": "something-else"}, dt_graph)

    def test_loaded_tables_drive_selection_identically(self, context, dt_graph, tmp_path):
        """Selection from reloaded (shipped) cost tables matches the original."""
        path = tmp_path / "tables.json"
        save_cost_tables(context.tables, path)
        loaded_tables = load_cost_tables(path, dt_graph)
        shipped_context = SelectionContext(
            network=context.network,
            library=context.library,
            dt_graph=context.dt_graph,
            cost_model=context.cost_model,
            platform_name=context.platform_name,
            threads=context.threads,
            tables=loaded_tables,
            platform=context.platform,
        )
        original = PBQPSelector().select(context)
        shipped = PBQPSelector().select(shipped_context)
        assert shipped.conv_selections() == original.conv_selections()
        assert shipped.total_cost == pytest.approx(original.total_cost)


class TestPlanSerialization:
    def test_roundtrip_preserves_costs_and_selections(self, context, dt_graph, tmp_path):
        plan = PBQPSelector().select(context)
        path = tmp_path / "plan.json"
        save_plan(plan, path)
        loaded = load_plan(path, dt_graph)
        assert loaded.conv_selections() == plan.conv_selections()
        assert loaded.total_cost == pytest.approx(plan.total_cost)
        assert loaded.dt_cost == pytest.approx(plan.dt_cost)
        assert len(loaded.edge_decisions) == len(plan.edge_decisions)

    def test_loaded_plan_is_executable(self, context, dt_graph, tmp_path):
        plan = PBQPSelector().select(context)
        path = tmp_path / "plan.json"
        save_plan(plan, path)
        loaded = load_plan(path, dt_graph)
        weights = WeightStore(context.network, seed=3)
        x = np.random.default_rng(1).standard_normal((3, 32, 32)).astype(np.float32)
        expected = NetworkExecutor(context.network, plan, context.library, weights).run(x)
        actual = NetworkExecutor(context.network, loaded, context.library, weights).run(x)
        np.testing.assert_allclose(actual, expected, rtol=1e-5, atol=1e-6)

    def test_wrong_format_rejected(self, dt_graph):
        with pytest.raises(ValueError):
            plan_from_dict({"format": "nope"}, dt_graph)

    def test_plan_dict_contains_strategy_and_platform(self, context):
        plan = sum2d_plan(context)
        document = plan_to_dict(plan)
        assert document["strategy"] == "sum2d"
        assert document["platform"] == "intel-haswell"
        assert document["total_ms"] == pytest.approx(plan.total_ms)


class TestCLI:
    def test_parser_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["select", "alexnet", "--platform", "arm-cortex-a57"])
        assert args.command == "select" and args.model == "alexnet"
        args = parser.parse_args(["tables", "--platform", "intel-haswell"])
        assert args.command == "tables"

    def test_select_command_runs_and_writes_plan(self, tmp_path, capsys):
        output = tmp_path / "alexnet_plan.json"
        code = main(
            [
                "select",
                "alexnet",
                "--platform",
                "intel-haswell",
                "--threads",
                "2",
                "--output",
                str(output),
            ]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "speedup over single-threaded SUM2D baseline" in captured
        assert output.exists()
        document = json.loads(output.read_text())
        assert document["network"] == "alexnet"

    def test_compare_command(self, capsys):
        assert main(["compare", "alexnet", "--threads", "1"]) == 0
        out = capsys.readouterr().out
        assert "pbqp" in out and "best strategy" in out

    def test_tables_command(self, capsys):
        assert main(["tables", "--platform", "arm-cortex-a57"]) == 0
        out = capsys.readouterr().out
        assert "PBQP" in out and "googlenet" in out

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            main(["select", "resnet-50"])
