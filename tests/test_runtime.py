"""Tests for the reference operators, the weight store and the executor."""

import numpy as np
import pytest

from repro.core.baselines import local_optimal_plan, sum2d_plan
from repro.core.selector import PBQPSelector, SelectionContext
from repro.runtime import NetworkExecutor, WeightStore
from repro.runtime import reference_ops as ops
from repro.runtime.codegen import generate_schedule, render_schedule


class TestReferenceOps:
    def test_relu(self):
        x = np.array([[[-1.0, 2.0], [0.0, -3.0]]])
        np.testing.assert_allclose(ops.relu(x), [[[0.0, 2.0], [0.0, 0.0]]])

    def test_max_pool_basic(self):
        x = np.arange(16.0).reshape(1, 4, 4)
        pooled = ops.max_pool(x, kernel=2, stride=2, padding=0, output_shape=(1, 2, 2))
        np.testing.assert_allclose(pooled, [[[5.0, 7.0], [13.0, 15.0]]])

    def test_max_pool_overlapping_windows(self):
        x = np.arange(25.0).reshape(1, 5, 5)
        pooled = ops.max_pool(x, kernel=3, stride=2, padding=0, output_shape=(1, 2, 2))
        np.testing.assert_allclose(pooled, [[[12.0, 14.0], [22.0, 24.0]]])

    def test_average_pool(self):
        x = np.ones((2, 4, 4))
        pooled = ops.average_pool(x, kernel=2, stride=2, padding=0, output_shape=(2, 2, 2))
        np.testing.assert_allclose(pooled, np.ones((2, 2, 2)))

    def test_lrn_preserves_shape_and_reduces_magnitude(self):
        x = np.full((8, 3, 3), 2.0)
        normalized = ops.local_response_norm(x, local_size=5, alpha=1.0, beta=0.75)
        assert normalized.shape == x.shape
        assert np.all(np.abs(normalized) < np.abs(x))

    def test_lrn_near_identity_for_tiny_alpha(self):
        x = np.random.default_rng(0).standard_normal((4, 5, 5))
        normalized = ops.local_response_norm(x, alpha=1e-12)
        np.testing.assert_allclose(normalized, x, rtol=1e-6)

    def test_fully_connected(self):
        x = np.arange(4.0).reshape(1, 2, 2)
        weights = np.array([[1.0, 0.0, 0.0, 0.0], [1.0, 1.0, 1.0, 1.0]])
        bias = np.array([0.5, -1.0])
        out = ops.fully_connected(x, weights, bias)
        assert out.shape == (2, 1, 1)
        np.testing.assert_allclose(out.reshape(-1), [0.5, 5.0])

    def test_fully_connected_shape_mismatch(self):
        with pytest.raises(ValueError):
            ops.fully_connected(np.ones((2, 2, 2)), np.ones((3, 9)), np.zeros(3))

    def test_softmax_normalizes(self):
        x = np.array([1.0, 2.0, 3.0]).reshape(3, 1, 1)
        result = ops.softmax(x)
        assert result.sum() == pytest.approx(1.0)
        assert result.argmax() == 2

    def test_softmax_stable_for_large_inputs(self):
        x = np.array([1000.0, 1001.0]).reshape(2, 1, 1)
        result = ops.softmax(x)
        assert np.isfinite(result).all()

    def test_eltwise_add_sums_inputs(self):
        a = np.arange(8, dtype=np.float32).reshape(2, 2, 2)
        b = np.ones((2, 2, 2), dtype=np.float32)
        out = ops.eltwise_add([a, b])
        np.testing.assert_allclose(out, a + b)
        out3 = ops.eltwise_add([a, b, b])
        np.testing.assert_allclose(out3, a + 2.0)
        # The inputs themselves are left untouched.
        np.testing.assert_allclose(b, np.ones((2, 2, 2)))

    def test_eltwise_add_rejects_bad_inputs(self):
        a = np.zeros((2, 2, 2))
        with pytest.raises(ValueError):
            ops.eltwise_add([a])
        with pytest.raises(ValueError):
            ops.eltwise_add([a, np.zeros((2, 2, 3))])

    def test_concat_and_flatten(self):
        a, b = np.ones((2, 3, 3)), np.zeros((4, 3, 3))
        merged = ops.concat_channels([a, b])
        assert merged.shape == (6, 3, 3)
        assert ops.flatten(merged).shape == (54, 1, 1)


class TestWeightStore:
    def test_deterministic_across_instances(self, tiny_network):
        first = WeightStore(tiny_network, seed=3)
        second = WeightStore(tiny_network, seed=3)
        np.testing.assert_array_equal(first.conv_weights("conv1"), second.conv_weights("conv1"))
        w1, b1 = first.fc_weights("fc")
        w2, b2 = second.fc_weights("fc")
        np.testing.assert_array_equal(w1, w2)
        np.testing.assert_array_equal(b1, b2)

    def test_different_seeds_differ(self, tiny_network):
        a = WeightStore(tiny_network, seed=1).conv_weights("conv1")
        b = WeightStore(tiny_network, seed=2).conv_weights("conv1")
        assert not np.array_equal(a, b)

    def test_shapes_match_scenarios(self, tiny_network):
        store = WeightStore(tiny_network)
        scenarios = tiny_network.conv_scenarios()
        for name, scenario in scenarios.items():
            assert store.conv_weights(name).shape == scenario.kernel_shape

    def test_type_errors(self, tiny_network):
        store = WeightStore(tiny_network)
        with pytest.raises(TypeError):
            store.conv_weights("relu1")
        with pytest.raises(TypeError):
            store.fc_weights("conv1")


class TestExecutor:
    @pytest.fixture(scope="class")
    def context(self, tiny_network_session, library, dt_graph, intel):
        return SelectionContext.create(
            tiny_network_session, platform=intel, library=library, dt_graph=dt_graph
        )

    def test_pbqp_plan_computes_same_function_as_sum2d(self, context):
        network = context.network
        weights = WeightStore(network, seed=11)
        x = np.random.default_rng(4).standard_normal((3, 32, 32)).astype(np.float32)
        reference = NetworkExecutor(network, sum2d_plan(context), context.library, weights).run(x)
        pbqp = NetworkExecutor(
            network, PBQPSelector().select(context), context.library, weights
        ).run(x)
        np.testing.assert_allclose(pbqp, reference, rtol=1e-3, atol=1e-4)

    def test_local_optimal_plan_matches_too(self, context):
        network = context.network
        weights = WeightStore(network, seed=11)
        x = np.random.default_rng(5).standard_normal((3, 32, 32)).astype(np.float32)
        reference = NetworkExecutor(network, sum2d_plan(context), context.library, weights).run(x)
        local = NetworkExecutor(
            network, local_optimal_plan(context), context.library, weights
        ).run(x)
        np.testing.assert_allclose(local, reference, rtol=1e-3, atol=1e-4)

    def test_output_is_probability_distribution(self, context):
        network = context.network
        executor = NetworkExecutor(network, sum2d_plan(context), context.library)
        x = np.random.default_rng(6).standard_normal((3, 32, 32)).astype(np.float32)
        out = executor.run(x)
        assert out.shape == (10, 1, 1)
        assert out.sum() == pytest.approx(1.0, abs=1e-5)
        assert (out >= 0).all()

    def test_trace_reports_layers_and_conversions(self, context):
        network = context.network
        plan = PBQPSelector().select(context)
        executor = NetworkExecutor(network, plan, context.library)
        x = np.random.default_rng(7).standard_normal((3, 32, 32)).astype(np.float32)
        _, trace = executor.run_traced(x, keep_outputs=True)
        assert trace.layer_order == [layer.name for layer in network.topological_order()]
        assert trace.conversions_executed == len(plan.conversions()) >= 0
        assert set(trace.outputs) == set(network.layer_names())
        assert trace.wall_seconds > 0

    def test_wrong_input_shape_rejected(self, context):
        executor = NetworkExecutor(context.network, sum2d_plan(context), context.library)
        with pytest.raises(ValueError):
            executor.run(np.zeros((3, 16, 16), dtype=np.float32))

    def test_plan_network_mismatch_rejected(self, context, library, intel):
        other = __import__("repro.models", fromlist=["build_model"]).build_model("alexnet")
        plan = sum2d_plan(context)
        with pytest.raises(ValueError):
            NetworkExecutor(other, plan, library)


class TestExecutorDAG:
    """DAG-shaped executor behaviour: multi-output networks and fan-out edges."""

    @pytest.fixture(scope="class")
    def context(self, tiny_network_session, library, dt_graph, intel):
        return SelectionContext.create(
            tiny_network_session, platform=intel, library=library, dt_graph=dt_graph
        )

    def _context(self, network, library, dt_graph, intel):
        return SelectionContext.create(
            network, platform=intel, library=library, dt_graph=dt_graph
        )

    def test_multi_output_network_returns_every_output(self, library, dt_graph, intel):
        from repro.core.legalize import finalize_plan, fixed_layouts
        from repro.graph.layer import ConvLayer, InputLayer, PoolLayer, ReLULayer
        from repro.graph.network import Network
        from repro.layouts.layout import CHW

        net = Network("two-heads")
        net.add_layer(InputLayer("data", shape=(3, 12, 12)))
        net.add_layer(ConvLayer("conv", out_channels=4, kernel=3, padding=1), ["data"])
        net.add_layer(ReLULayer("head_a"), ["conv"])
        net.add_layer(PoolLayer("head_b", kernel=2, stride=2), ["conv"])
        net.validate()
        context = self._context(net, library, dt_graph, intel)
        plan = finalize_plan(
            context, "probe", {"conv": "sum2d"}, fixed_layouts(context, CHW)
        )
        executor = NetworkExecutor(net, plan, library)
        x = np.random.default_rng(3).standard_normal((3, 12, 12)).astype(np.float32)
        result, trace = executor.run_traced(x, keep_outputs=True)
        assert isinstance(result, dict)
        assert set(result) == {"head_a", "head_b"}
        np.testing.assert_allclose(result["head_a"], trace.outputs["head_a"])
        np.testing.assert_allclose(result["head_b"], trace.outputs["head_b"])
        assert result["head_a"].shape == (4, 12, 12)
        assert result["head_b"].shape == (4, 6, 6)

    def test_single_output_network_keeps_array_fast_path(self, context):
        executor = NetworkExecutor(context.network, sum2d_plan(context), context.library)
        x = np.random.default_rng(9).standard_normal((3, 32, 32)).astype(np.float32)
        out = executor.run(x)
        assert isinstance(out, np.ndarray)

    def test_fanout_conversion_chain_runs_once(self, library, dt_graph, intel):
        from repro.core.legalize import finalize_plan
        from repro.graph.layer import EltwiseAddLayer, InputLayer, ReLULayer
        from repro.graph.network import Network
        from repro.layouts.layout import CHW, CHW8c

        net = Network("fanout")
        net.add_layer(InputLayer("data", shape=(4, 8, 8)))
        net.add_layer(ReLULayer("relu_a"), ["data"])
        net.add_layer(ReLULayer("relu_b"), ["data"])
        net.add_layer(EltwiseAddLayer("add"), ["relu_a", "relu_b"])
        net.validate()
        context = self._context(net, library, dt_graph, intel)
        # Force both fan-out edges of "data" to need the same CHW -> CHWc8
        # conversion chain: the executor must apply it once and reuse it.
        plan = finalize_plan(
            context,
            "probe",
            {},
            {"data": CHW, "relu_a": CHW8c, "relu_b": CHW8c, "add": CHW8c},
        )
        assert len(plan.conversions()) == 2
        executor = NetworkExecutor(net, plan, library)
        x = np.random.default_rng(5).standard_normal((4, 8, 8)).astype(np.float32)
        out, trace = executor.run_traced(x)
        assert trace.conversions_executed == 1
        assert len(trace.conversion_seconds) == 1
        assert trace.total_conversion_seconds > 0
        np.testing.assert_allclose(out, 2.0 * np.maximum(x, 0.0), rtol=1e-6, atol=1e-6)

    def test_inconsistent_multi_input_plan_rejected(self, library, dt_graph, intel):
        """A hand-assembled plan whose join edges disagree on layout is refused."""
        from repro.core.legalize import finalize_plan
        from repro.graph.layer import EltwiseAddLayer, InputLayer, ReLULayer
        from repro.graph.network import Network
        from repro.layouts.layout import CHW, CHW8c

        net = Network("bad-join")
        net.add_layer(InputLayer("data", shape=(4, 8, 8)))
        net.add_layer(ReLULayer("relu_a"), ["data"])
        net.add_layer(ReLULayer("relu_b"), ["data"])
        net.add_layer(EltwiseAddLayer("add"), ["relu_a", "relu_b"])
        net.validate()
        context = self._context(net, library, dt_graph, intel)
        plan = finalize_plan(
            context,
            "probe",
            {},
            {"data": CHW, "relu_a": CHW, "relu_b": CHW, "add": CHW},
        )
        # Tamper one join edge so the add would receive mixed layouts.
        for edge in plan.edge_decisions:
            if edge.producer == "relu_b" and edge.consumer == "add":
                edge.target_layout = CHW8c
        with pytest.raises(ValueError, match="different layouts"):
            NetworkExecutor(net, plan, library)

    def test_distinct_target_layouts_still_convert_separately(
        self, library, dt_graph, intel
    ):
        from repro.core.legalize import finalize_plan
        from repro.graph.layer import ConcatLayer, InputLayer, ReLULayer
        from repro.graph.network import Network
        from repro.layouts.layout import CHW, CHW8c, HWC

        net = Network("fanout-mixed")
        net.add_layer(InputLayer("data", shape=(4, 8, 8)))
        net.add_layer(ReLULayer("relu_a"), ["data"])
        net.add_layer(ReLULayer("relu_b"), ["data"])
        net.add_layer(ConcatLayer("concat"), ["relu_a", "relu_b"])
        net.validate()
        context = self._context(net, library, dt_graph, intel)
        plan = finalize_plan(
            context,
            "probe",
            {},
            {"data": CHW, "relu_a": CHW8c, "relu_b": HWC, "concat": CHW},
        )
        executor = NetworkExecutor(net, plan, library)
        x = np.random.default_rng(6).standard_normal((4, 8, 8)).astype(np.float32)
        out, trace = executor.run_traced(x)
        # Different targets on the two fan-out edges: nothing can be reused.
        assert trace.conversions_executed == len(plan.conversions())
        expected = np.concatenate([np.maximum(x, 0.0)] * 2, axis=0)
        np.testing.assert_allclose(out, expected, rtol=1e-6, atol=1e-6)


class TestCodegen:
    @pytest.fixture(scope="class")
    def context(self, tiny_network_session, library, dt_graph, intel):
        return SelectionContext.create(
            tiny_network_session, platform=intel, library=library, dt_graph=dt_graph
        )

    def test_schedule_contains_every_layer(self, context):
        plan = PBQPSelector().select(context)
        schedule = generate_schedule(context.network, plan)
        layers_emitted = {step.layer for step in schedule}
        assert layers_emitted == set(context.network.layer_names())

    def test_conversion_steps_match_plan(self, context):
        plan = PBQPSelector().select(context)
        schedule = generate_schedule(context.network, plan)
        converts = [step for step in schedule if step.kind == "convert"]
        assert len(converts) == len(plan.conversions())

    def test_render_is_readable(self, context):
        plan = sum2d_plan(context)
        text = render_schedule(context.network, plan)
        assert "// schedule for" in text
        assert "sum2d" in text
